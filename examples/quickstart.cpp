// Quickstart: the paper's running example end to end.
//
// Registers the three airfare contracts of Example 2 (Tickets A, B, C) by
// their temporal behavior and runs the paper's queries against them,
// printing which tickets permit what and the broker's per-query statistics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "broker/database.h"
#include "broker/durable.h"
#include "wal/wal.h"

namespace {

// The lifecycle clauses C0-C5 shared by every airfare (paper Example 5):
// one event per instant, a single purchase that precedes everything, missed
// flights void the ticket unless rescheduled, refund/use are terminal.
const char* kCommonClauses =
    "G(purchase -> !use & !missedFlight & !refund & !dateChange) &"
    "G(use -> !purchase & !missedFlight & !refund & !dateChange) &"
    "G(missedFlight -> !purchase & !use & !refund & !dateChange) &"
    "G(refund -> !purchase & !use & !missedFlight & !dateChange) &"
    "G(dateChange -> !purchase & !use & !missedFlight & !refund) &"
    "G(purchase -> X(!F purchase)) &"
    "(purchase B (use | missedFlight | refund | dateChange)) &"
    "G((missedFlight -> !F use) W dateChange) &"
    "G(refund -> X(!F(use | missedFlight | refund | dateChange))) &"
    "G(use -> X(!F(use | missedFlight | refund | dateChange)))";

}  // namespace

int main() {
  ctdb::broker::ContractDatabase db;

  // --- Providers register contracts by their temporal behavior. -----------
  struct Spec {
    const char* name;
    const char* clauses;  // the ticket-specific clauses of Example 5
  };
  const Spec tickets[] = {
      // Ticket A: no refunds after date changes; unlimited date changes.
      {"Ticket A", "G(dateChange -> !F refund)"},
      // Ticket B: refunds always allowed; date changes only before departure
      // (no rescheduling once the flight was missed).
      {"Ticket B", "G(missedFlight -> !F dateChange)"},
      // Ticket C: no refunds; at most one date change; no rescheduling after
      // a missed flight.
      {"Ticket C",
       "G(!refund) & G(dateChange -> X(!F dateChange)) & "
       "G(missedFlight -> !F dateChange)"},
  };
  for (const Spec& ticket : tickets) {
    auto id = db.Register(ticket.name,
                          std::string(kCommonClauses) + " & " + ticket.clauses);
    if (!id.ok()) {
      std::fprintf(stderr, "registration failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
    std::printf("registered %-9s as contract #%u\n", ticket.name, *id);
  }
  // The marketplace vocabulary can mention events no contract cites yet.
  if (!db.InternEvent("classUpgrade").ok()) return 1;

  // --- Customers query by desired temporal behavior. ----------------------
  const struct {
    const char* description;
    const char* ltl;
  } queries[] = {
      {"refund or date change after a missed flight (the intro's query)",
       "F(missedFlight & F(refund | dateChange))"},
      {"a refund after a missed flight (Figure 1b)",
       "F(missedFlight & F refund)"},
      {"class upgrade after a date change (Example 4's Q2)",
       "F(dateChange & F classUpgrade)"},
      {"class upgrade OR refund after a date change (Q3)",
       "F(dateChange & F(classUpgrade | refund))"},
      {"two date changes", "F(dateChange & X F dateChange)"},
      {"plain old use-it ticket", "F(purchase & F use)"},
  };

  for (const auto& q : queries) {
    auto result = db.Query(q.ltl);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("\nquery: %s\n  LTL: %s\n  permitted by:", q.description,
                q.ltl);
    if (result->matches.empty()) std::printf(" (no contract)");
    for (uint32_t id : result->matches) {
      std::printf(" %s", db.contract(id).name.c_str());
    }
    std::printf("\n  stats: %s\n", result->stats.ToString().c_str());
  }

  // --- A production broker would make registrations durable (§10). --------
  // DurableDatabase wraps the same database behind a write-ahead log:
  // Register returns only once the record is fsynced per the policy, and
  // Open replays the log after a crash or restart.
  char wal_dir[] = "/tmp/ctdb_quickstart_XXXXXX";
  if (::mkdtemp(wal_dir) == nullptr) return 1;
  ctdb::wal::DurabilityOptions durability;
  durability.fsync_policy = ctdb::wal::FsyncPolicy::kGroup;  // 1 fsync/group
  durability.group_commit_window = std::chrono::microseconds(200);
  durability.checkpoint_log_bytes = 8u << 20;  // background checkpoint cadence
  {
    auto durable = ctdb::broker::DurableDatabase::Open(wal_dir, durability);
    if (!durable.ok()) return 1;
    for (const Spec& ticket : tickets) {
      if (!(*durable)
               ->Register(ticket.name,
                          std::string(kCommonClauses) + " & " + ticket.clauses)
               .ok()) {
        return 1;
      }
    }
    if (!(*durable)->Close().ok()) return 1;
  }
  // "Restart": reopen the directory and everything acknowledged is back.
  auto reopened = ctdb::broker::DurableDatabase::Open(wal_dir, durability);
  if (!reopened.ok()) return 1;
  std::printf("\ndurable broker at %s recovered %zu contracts from its log\n",
              wal_dir, (*reopened)->size());
  return (*reopened)->Close().ok() ? 0 : 1;
}
