// Warranty marketplace at scale: generates a synthetic market of warranty
// contracts with the paper's workload generator, then compares the
// unoptimized scan against the optimized engine on the same shopping
// queries — a miniature, self-contained rerun of the Figure 5 experiment
// through the public API.

#include <cstdio>
#include <string>

#include "broker/database.h"
#include "util/stats.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace ctdb;

  const size_t contracts = argc > 1 ? std::stoul(argv[1]) : 60;
  const size_t queries = argc > 2 ? std::stoul(argv[2]) : 10;

  broker::ContractDatabase db;

  workload::GeneratorOptions options;
  options.properties = 5;
  options.vocabulary_size = 12;
  workload::SpecGenerator generator(options, /*seed=*/0xACDC, db.vocabulary(),
                                    db.factory());
  std::printf("registering %zu synthetic warranty contracts...\n", contracts);
  for (size_t i = 0; i < contracts; ++i) {
    auto spec = generator.Next();
    if (!spec.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   spec.status().ToString().c_str());
      return 1;
    }
    auto id = db.RegisterFormula("warranty-" + std::to_string(i),
                                 spec->formula, spec->text);
    if (!id.ok()) {
      std::fprintf(stderr, "registration failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
  }

  workload::GeneratorOptions query_options;
  query_options.properties = 1;
  query_options.vocabulary_size = 12;
  workload::SpecGenerator query_gen(query_options, 0xFEED, db.vocabulary(),
                                    db.factory());

  broker::QueryOptions optimized;
  broker::QueryOptions unoptimized;
  unoptimized.use_prefilter = false;
  unoptimized.use_projections = false;
  unoptimized.permission.use_seeds = false;

  RunningStats scan_ms;
  RunningStats opt_ms;
  RunningStats speedup;
  std::printf("running %zu shopping queries both ways...\n\n", queries);
  for (size_t i = 0; i < queries; ++i) {
    auto spec = query_gen.Next();
    if (!spec.ok()) return 1;
    auto fast = db.Query(spec->text, optimized);
    auto slow = db.Query(spec->text, unoptimized);
    if (!fast.ok() || !slow.ok()) {
      std::fprintf(stderr, "query failed\n");
      return 1;
    }
    if (fast->matches != slow->matches) {
      std::fprintf(stderr, "BUG: optimized and scan disagree on %s\n",
                   spec->text.c_str());
      return 1;
    }
    scan_ms.Add(slow->stats.total_ms);
    opt_ms.Add(fast->stats.total_ms);
    if (fast->stats.total_ms > 0) {
      speedup.Add(slow->stats.total_ms / fast->stats.total_ms);
    }
    std::printf("query %2zu: %3zu/%zu contracts permit | scan %8.2f ms, "
                "optimized %7.2f ms (candidates %zu)\n",
                i, fast->matches.size(), db.size(), slow->stats.total_ms,
                fast->stats.total_ms, fast->stats.candidates);
  }
  std::printf("\nscan      : %s\n", scan_ms.ToString().c_str());
  std::printf("optimized : %s\n", opt_ms.ToString().c_str());
  std::printf("speedup   : %s\n", speedup.ToString().c_str());
  std::printf("\n(results verified identical between both engines)\n");
  return 0;
}
