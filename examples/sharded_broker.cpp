// Sharded broker: the durable database partitioned across four shards
// (DESIGN.md §13), driven through the same broker::Broker interface the
// network server speaks.
//
// Registers a handful of airline-style contracts, queries them through the
// scatter-gather router, then "restarts" by reopening the directory with
// shards=0 — the topology MANIFEST is adopted and every shard's log is
// replayed in parallel.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j --target sharded_broker
//   ./build/examples/sharded_broker

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "shard/sharded.h"
#include "wal/wal.h"

int main() {
  char dir[] = "/tmp/ctdb_sharded_XXXXXX";
  if (::mkdtemp(dir) == nullptr) return 1;

  ctdb::wal::DurabilityOptions durability;
  durability.fsync_policy = ctdb::wal::FsyncPolicy::kGroup;

  // --- Create a 4-shard topology and register through the router. ---------
  ctdb::broker::DatabaseOptions topology;
  topology.shards = 4;
  auto db = ctdb::shard::ShardedDatabase::Open(dir, durability, topology);
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }

  const std::vector<std::pair<std::string, std::string>> contracts = {
      {"refundable", "G(purchase -> F (use | refund))"},
      {"no-refund-after-use", "G(use -> X !F refund)"},
      {"exchange-once", "G(exchange -> X !F exchange)"},
      {"upgrade-path", "G(purchase -> F (use | upgrade))"},
      {"strict-use", "F use"},
      {"grant-cycle", "G(request -> F grant)"},
  };
  for (const auto& [name, ltl] : contracts) {
    auto id = (*db)->Register(name, ltl);
    if (!id.ok()) {
      std::fprintf(stderr, "register %s: %s\n", name.c_str(),
                   id.status().ToString().c_str());
      return 1;
    }
    // Global ids are striped: shard(id) = id % 4 — dense across the router.
    std::printf("registered %-20s global id %2u  (shard %u)\n", name.c_str(),
                *id, *id % 4);
  }

  // One query fans out to every shard; matches come back merged ascending
  // by global id, stats summed/maxed so they read like one database.
  auto result = (*db)->Query("G(purchase -> F (use | refund | upgrade))");
  if (!result.ok()) return 1;
  std::printf("\nquery permitted by %zu of %zu contracts across %zu shards\n",
              result->matches.size(), (*db)->size(), (*db)->shard_count());

  if (!(*db)->Close().ok()) return 1;

  // --- "Restart": shards=0 adopts the MANIFEST, recovery is parallel. -----
  ctdb::broker::DatabaseOptions adopt;
  adopt.shards = 0;
  auto reopened = ctdb::shard::ShardedDatabase::Open(dir, durability, adopt);
  if (!reopened.ok()) {
    std::fprintf(stderr, "reopen: %s\n", reopened.status().ToString().c_str());
    return 1;
  }
  const auto& stats = (*reopened)->recovery_stats();
  std::printf(
      "recovered %zu contracts from %zu shards in %.2f ms "
      "(%.2f ms of replay done in parallel)\n",
      (*reopened)->size(), (*reopened)->shard_count(), stats.wall_ms,
      stats.replay_ms_sum);

  // A mismatched shard count is refused — resharding must be explicit.
  ctdb::broker::DatabaseOptions wrong;
  wrong.shards = 8;
  auto mismatch = ctdb::shard::ShardedDatabase::Open(dir, durability, wrong);
  std::printf("opening with --shards=8: %s\n",
              mismatch.status().ToString().c_str());

  return (*reopened)->Close().ok() ? 0 : 1;
}
