// Insurance policies: a second contract domain from the paper's motivation
// ("airfares, insurances, warranties"). Policies differ in how claims,
// premium payments, cancellations and payouts may interleave; customers shop
// by the temporal behavior they need.
//
// Vocabulary: enroll, payPremium, fileClaim, approveClaim, payout,
//             cancel, lapse.

#include <cstdio>
#include <string>

#include "broker/database.h"

namespace {

// Domain lifecycle clauses, shared by all policies.
const char* kLifecycle =
    // One event per instant.
    "G(enroll -> !payPremium & !fileClaim & !approveClaim & !payout & !cancel & !lapse) &"
    "G(payPremium -> !enroll & !fileClaim & !approveClaim & !payout & !cancel & !lapse) &"
    "G(fileClaim -> !enroll & !payPremium & !approveClaim & !payout & !cancel & !lapse) &"
    "G(approveClaim -> !enroll & !payPremium & !fileClaim & !payout & !cancel & !lapse) &"
    "G(payout -> !enroll & !payPremium & !fileClaim & !approveClaim & !cancel & !lapse) &"
    "G(cancel -> !enroll & !payPremium & !fileClaim & !approveClaim & !payout & !lapse) &"
    "G(lapse -> !enroll & !payPremium & !fileClaim & !approveClaim & !payout & !cancel) &"
    // One enrollment, before any activity.
    "G(enroll -> X(!F enroll)) &"
    "(enroll B (payPremium | fileClaim | approveClaim | payout | cancel | lapse)) &"
    // Claims must be filed before they are approved; approvals before payout.
    "(fileClaim B approveClaim) & (approveClaim B payout) &"
    // Cancellation and lapse are terminal.
    "G(cancel -> X(!F(payPremium | fileClaim | approveClaim | payout | cancel | lapse))) &"
    "G(lapse -> X(!F(payPremium | fileClaim | approveClaim | payout | cancel | lapse)))";

}  // namespace

int main() {
  ctdb::broker::ContractDatabase db;

  const struct {
    const char* name;
    const char* clauses;
  } policies[] = {
      // Budget: a single claim ever; cancelling forfeits pending claims
      // (modeled: no payout after cancel is implied by terminal cancel).
      {"BudgetCare",
       "G(fileClaim -> X(!F fileClaim)) & G(!payout | F payout)"},
      // Standard: claims allowed only while premiums keep coming — a claim
      // must be preceded by a premium payment at some point.
      {"StandardShield", "(payPremium B fileClaim)"},
      // Premium: even after a lapse... nothing special; but payouts always
      // follow approved claims.
      {"PremiumGuard", "G(approveClaim -> F payout)"},
      // NoClaims: a cut-rate policy that never approves anything.
      {"CutRate", "G(!approveClaim)"},
  };
  for (const auto& p : policies) {
    auto id = db.Register(p.name, std::string(kLifecycle) + " & " + p.clauses);
    if (!id.ok()) {
      std::fprintf(stderr, "register %s failed: %s\n", p.name,
                   id.status().ToString().c_str());
      return 1;
    }
  }

  const struct {
    const char* description;
    const char* ltl;
  } queries[] = {
      {"a claim that actually gets approved and paid out",
       "F(fileClaim & F(approveClaim & F payout))"},
      {"two separate claims over the policy's life",
       "F(fileClaim & X F fileClaim)"},
      {"guaranteed payout once a claim is approved (who even allows "
       "approval?)",
       "F approveClaim"},
      {"file a claim without ever paying a premium",
       "(!payPremium U fileClaim)"},
      {"cancel after a payout", "F(payout & F cancel)"},
  };

  for (const auto& q : queries) {
    auto result = db.Query(q.ltl);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-62s ->", q.description);
    if (result->matches.empty()) std::printf(" none");
    for (uint32_t id : result->matches) {
      std::printf(" %s", db.contract(id).name.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
