// broker_shell: an interactive (or scriptable via stdin) front-end to a
// contract database. Exercises the full public API including persistence
// and witness extraction.
//
//   ./broker_shell [database-file]
//
// Commands:
//   register <name> ::= <ltl>     add a contract
//   query <ltl>                   contracts permitting the query
//   explain <ltl>                 like query, plus a witness run per match
//   show <id>                     contract details
//   list                          all contracts
//   vocab                         the event vocabulary
//   stats                         database statistics
//   save <path> | load <path>     persistence
//   help | quit

#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "broker/database.h"
#include "broker/persistence.h"
#include "util/string_util.h"

namespace {

using namespace ctdb;

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  register <name> ::= <ltl clauses>\n"
      "  query <ltl>\n"
      "  explain <ltl>        (query + witness sequences)\n"
      "  show <id> | list | vocab | stats\n"
      "  save <path> | load <path>\n"
      "  help | quit\n");
}

void DoQuery(broker::ContractDatabase& db, const std::string& ltl,
             bool explain) {
  broker::QueryOptions options;
  options.collect_witnesses = explain;
  auto result = db.Query(ltl, options);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%zu of %zu contracts permit the query (%.2f ms, %zu candidates "
              "after prefiltering)\n",
              result->matches.size(), db.size(), result->stats.total_ms,
              result->stats.candidates);
  for (size_t i = 0; i < result->matches.size(); ++i) {
    const auto& contract = db.contract(result->matches[i]);
    std::printf("  #%u %s\n", contract.id, contract.name.c_str());
    if (explain && i < result->witnesses.size() &&
        result->witnesses[i].Valid()) {
      std::printf("     witness: %s\n",
                  result->witnesses[i].ToString(*db.vocabulary()).c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto db = std::make_unique<broker::ContractDatabase>();
  if (argc > 1) {
    auto loaded = broker::LoadDatabaseFromFile(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    db = std::move(*loaded);
    std::printf("loaded %zu contracts from %s\n", db->size(), argv[1]);
  }

  std::string line;
  std::printf("ctdb shell — 'help' for commands\n> ");
  while (std::getline(std::cin, line)) {
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) {
      std::printf("> ");
      continue;
    }
    std::istringstream iss{std::string(trimmed)};
    std::string cmd;
    iss >> cmd;
    std::string rest;
    std::getline(iss, rest);
    rest = std::string(Trim(rest));

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "register") {
      const size_t sep = rest.find("::=");
      if (sep == std::string::npos) {
        std::printf("usage: register <name> ::= <ltl>\n");
      } else {
        const std::string name(Trim(rest.substr(0, sep)));
        const std::string ltl(Trim(rest.substr(sep + 3)));
        broker::RegistrationStats stats;
        auto id = db->Register(name, ltl, &stats);
        if (id.ok()) {
          std::printf("registered #%u (%s)\n", *id, stats.ToString().c_str());
        } else {
          std::printf("error: %s\n", id.status().ToString().c_str());
        }
      }
    } else if (cmd == "query") {
      DoQuery(*db, rest, /*explain=*/false);
    } else if (cmd == "explain") {
      DoQuery(*db, rest, /*explain=*/true);
    } else if (cmd == "show") {
      uint32_t id = 0;
      if (std::sscanf(rest.c_str(), "%u", &id) != 1 || id >= db->size()) {
        std::printf("no such contract\n");
      } else {
        const auto& c = db->contract(id);
        std::printf("#%u %s\n  ltl: %s\n  BA: %zu states, %zu transitions\n",
                    c.id, c.name.c_str(), c.ltl_text.c_str(),
                    c.automaton().StateCount(),
                    c.automaton().TransitionCount());
        std::printf("  events:");
        for (size_t e : c.events.Indices()) {
          std::printf(" %s", db->vocabulary()->Name(static_cast<EventId>(e))
                                 .c_str());
        }
        std::printf("\n");
      }
    } else if (cmd == "list") {
      for (uint32_t id = 0; id < db->size(); ++id) {
        std::printf("  #%u %s\n", id, db->contract(id).name.c_str());
      }
    } else if (cmd == "vocab") {
      for (const std::string& name : db->vocabulary()->names()) {
        std::printf("  %s\n", name.c_str());
      }
    } else if (cmd == "stats") {
      const auto pf = db->prefilter().Stats();
      std::printf("contracts: %zu\nprefilter: %zu nodes, %s\n"
                  "contract BAs: %s\nprojections: %s\n",
                  db->size(), pf.node_count,
                  HumanBytes(pf.memory_bytes).c_str(),
                  HumanBytes(db->ContractMemoryUsage()).c_str(),
                  HumanBytes(db->ProjectionMemoryUsage()).c_str());
    } else if (cmd == "save") {
      auto status = broker::SaveDatabaseToFile(*db, rest);
      std::printf("%s\n", status.ok() ? "saved" : status.ToString().c_str());
    } else if (cmd == "load") {
      auto loaded = broker::LoadDatabaseFromFile(rest);
      if (loaded.ok()) {
        db = std::move(*loaded);
        std::printf("loaded %zu contracts\n", db->size());
      } else {
        std::printf("error: %s\n", loaded.status().ToString().c_str());
      }
    } else {
      std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    }
    std::printf("> ");
  }
  return 0;
}
