// Spec inspector: a small developer tool over the library's lower layers.
// Give it an LTL specification (as a command-line argument) and it prints
// the normalized formula, the translated Büchi automaton (text format and
// Graphviz dot), its statistics, and — given a second argument — whether the
// first specification (as a contract) permits the second (as a query).
//
//   ./spec_inspector 'G(dateChange -> !F refund)'
//   ./spec_inspector '<contract ltl>' '<query ltl>'

#include <cstdio>
#include <string>

#include "automata/dot.h"
#include "automata/ops.h"
#include "automata/serialize.h"
#include "core/permission.h"
#include "ltl/parser.h"
#include "ltl/rewriter.h"
#include "translate/ltl_to_ba.h"

int main(int argc, char** argv) {
  using namespace ctdb;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s '<ltl contract>' ['<ltl query>']\n", argv[0]);
    return 2;
  }

  Vocabulary vocab;
  ltl::FormulaFactory factory;

  auto contract = ltl::Parse(argv[1], &factory, &vocab);
  if (!contract.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 contract.status().ToString().c_str());
    return 1;
  }
  std::printf("formula    : %s\n", (*contract)->ToString(vocab).c_str());
  std::printf("normalized : %s\n",
              ltl::Normalize(*contract, &factory)->ToString(vocab).c_str());

  translate::TranslateInfo info;
  auto ba = translate::LtlToBuchi(*contract, &factory, {}, &info);
  if (!ba.ok()) {
    std::fprintf(stderr, "translation error: %s\n",
                 ba.status().ToString().c_str());
    return 1;
  }
  std::printf("tableau    : %zu states;  degeneralized: %zu;  final: %zu "
              "states / %zu transitions\n",
              info.tableau_states, info.degeneralized, info.final_states,
              info.final_transitions);
  std::printf("language   : %s\n",
              automata::IsEmptyLanguage(*ba) ? "EMPTY (unsatisfiable)"
                                             : "non-empty");
  std::printf("\n-- text serialization --\n%s",
              automata::Serialize(*ba, vocab).c_str());
  std::printf("\n-- graphviz --\n%s", automata::ToDot(*ba, vocab).c_str());

  if (argc > 2) {
    auto query = ltl::Parse(argv[2], &factory, &vocab);
    if (!query.ok()) {
      std::fprintf(stderr, "query parse error: %s\n",
                   query.status().ToString().c_str());
      return 1;
    }
    auto qba = translate::LtlToBuchi(*query, &factory);
    if (!qba.ok()) {
      std::fprintf(stderr, "query translation error: %s\n",
                   qba.status().ToString().c_str());
      return 1;
    }
    Bitset events;
    (*contract)->CollectEvents(&events);
    core::PermissionStats stats;
    const bool permits = core::Permits(*ba, events, *qba, {}, nullptr, &stats);
    std::printf("\npermission : contract %s the query\n",
                permits ? "PERMITS" : "does NOT permit");
    std::printf("  product pairs visited: %llu, cycle searches: %llu\n",
                static_cast<unsigned long long>(stats.pairs_visited),
                static_cast<unsigned long long>(stats.cycle_searches));
  }
  return 0;
}
