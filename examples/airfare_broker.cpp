// Airfare broker: the complete two-stage pipeline the paper sketches in §1.
//
// Stage 1 — a relational pre-selection (route, date, price) picks the fares
// that are available at all; stage 2 — the temporal engine filters those by
// the customer's required behavior and the cheapest survivor wins. This is
// exactly the "cheapest fare from San Diego to New York on 10/19 that allows
// a partial refund or a date change after the first leg has been missed"
// scenario from the introduction.

#include <cstdio>
#include <string>
#include <vector>

#include "broker/database.h"
#include "relational/table.h"

namespace {

const char* kCommonClauses =
    "G(purchase -> !use & !missedFlight & !refund & !dateChange) &"
    "G(use -> !purchase & !missedFlight & !refund & !dateChange) &"
    "G(missedFlight -> !purchase & !use & !refund & !dateChange) &"
    "G(refund -> !purchase & !use & !missedFlight & !dateChange) &"
    "G(dateChange -> !purchase & !use & !missedFlight & !refund) &"
    "G(purchase -> X(!F purchase)) &"
    "(purchase B (use | missedFlight | refund | dateChange)) &"
    "G((missedFlight -> !F use) W dateChange) &"
    "G(refund -> X(!F(use | missedFlight | refund | dateChange))) &"
    "G(use -> X(!F(use | missedFlight | refund | dateChange)))";

struct Fare {
  const char* airline;
  const char* route;
  const char* date;
  int64_t price;
  const char* policy;  // ticket-specific temporal clauses
};

}  // namespace

int main() {
  using namespace ctdb;

  broker::ContractDatabase db;
  relational::Table fares;

  const Fare catalog[] = {
      // San Diego → New York fares with the Example 2 policies.
      {"United Business", "SAN-NYC", "2010-10-19", 890,
       "G(dateChange -> !F refund)"},
      {"AA Economy Platinum", "SAN-NYC", "2010-10-19", 450,
       "G(missedFlight -> !F dateChange)"},
      {"Coastal Saver", "SAN-NYC", "2010-10-19", 310,
       "G(!refund) & G(dateChange -> X(!F dateChange)) & "
       "G(missedFlight -> !F dateChange)"},
      // Distractors on other routes / dates.
      {"United Business", "SAN-BOS", "2010-10-19", 880,
       "G(dateChange -> !F refund)"},
      {"AA Economy", "SAN-NYC", "2010-10-20", 410,
       "G(!refund) & G(missedFlight -> !F dateChange)"},
  };

  for (const Fare& fare : catalog) {
    auto id = db.Register(std::string(fare.airline) + " " + fare.route,
                          std::string(kCommonClauses) + " & " + fare.policy);
    if (!id.ok()) {
      std::fprintf(stderr, "register failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
    fares.Put(*id, relational::Row{
                       {"airline", std::string(fare.airline)},
                       {"route", std::string(fare.route)},
                       {"date", std::string(fare.date)},
                       {"price", fare.price},
                   });
  }

  // ---- The customer's request -------------------------------------------
  const std::vector<relational::Predicate> relational_filter = {
      relational::Predicate::Eq("route", std::string("SAN-NYC")),
      relational::Predicate::Eq("date", std::string("2010-10-19")),
  };
  const char* temporal_requirement =
      "F(missedFlight & F(refund | dateChange))";

  std::printf("request: SAN-NYC on 2010-10-19, cheapest fare that allows a\n"
              "         refund or a date change after a missed flight\n\n");

  // Stage 1: relational pre-selection (paper assumption (a)).
  const std::vector<uint32_t> available = fares.Select(relational_filter);
  std::printf("stage 1 (relational): %zu of %zu fares available\n",
              available.size(), fares.size());

  // Stage 2: temporal filtering — query once, intersect with availability.
  auto result = db.Query(temporal_requirement);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("stage 2 (temporal) : %zu of %zu contracts permit the query "
              "(%0.2f ms, %zu candidates after prefilter)\n",
              result->matches.size(), db.size(), result->stats.total_ms,
              result->stats.candidates);

  // Join + cheapest.
  int64_t best_price = INT64_MAX;
  std::string best;
  for (uint32_t id : result->matches) {
    if (std::find(available.begin(), available.end(), id) ==
        available.end()) {
      continue;
    }
    auto row = fares.Get(id);
    const int64_t price = std::get<int64_t>(row->at("price"));
    std::printf("  eligible: %-28s $%lld\n", db.contract(id).name.c_str(),
                static_cast<long long>(price));
    if (price < best_price) {
      best_price = price;
      best = db.contract(id).name;
    }
  }
  if (best.empty()) {
    std::printf("\nno fare satisfies the request\n");
  } else {
    std::printf("\nbooked: %s at $%lld\n", best.c_str(),
                static_cast<long long>(best_price));
  }
  return 0;
}
