#include "workload/generator.h"

#include <cassert>

#include "automata/ops.h"
#include "util/string_util.h"

namespace ctdb::workload {

using ltl::Formula;
using ltl::PatternBehavior;
using ltl::PatternScope;

SpecGenerator::SpecGenerator(const GeneratorOptions& options, uint64_t seed,
                             Vocabulary* vocab, ltl::FormulaFactory* factory)
    : options_(options),
      rng_(seed),
      vocab_(vocab),
      factory_(factory),
      freq_(ltl::PatternFrequencies::Survey()) {
  events_.reserve(options.vocabulary_size);
  for (size_t i = 1; i <= options.vocabulary_size; ++i) {
    auto id = vocab_->Intern(StringFormat("p%zu", i));
    assert(id.ok());
    events_.push_back(*id);
  }
}

const Formula* SpecGenerator::DrawProperty() {
  const auto behavior =
      static_cast<PatternBehavior>(rng_.WeightedIndex(freq_.behavior));
  const auto scope =
      static_cast<PatternScope>(rng_.WeightedIndex(freq_.scope));
  const int arity = ltl::PatternArity(behavior, scope);

  // Sample `arity` distinct events (distinct within a property; reuse across
  // properties of a spec is what creates the clause interactions Example 14
  // points out).
  std::vector<EventId> chosen;
  while (chosen.size() < static_cast<size_t>(arity)) {
    const EventId e = events_[rng_.Uniform(events_.size())];
    bool dup = false;
    for (EventId c : chosen) {
      if (c == e) {
        dup = true;
        break;
      }
    }
    if (!dup) chosen.push_back(e);
  }

  // Parameter order: p, then s (behaviors with two events), then scope
  // delimiters q / r as needed.
  size_t next = 0;
  const Formula* p = factory_->Prop(chosen[next++]);
  const Formula* s = nullptr;
  if (behavior == PatternBehavior::kPrecedence ||
      behavior == PatternBehavior::kResponse) {
    s = factory_->Prop(chosen[next++]);
  }
  const Formula* q = nullptr;
  const Formula* r = nullptr;
  switch (scope) {
    case PatternScope::kGlobal:
      break;
    case PatternScope::kBefore:
      r = factory_->Prop(chosen[next++]);
      break;
    case PatternScope::kAfter:
      q = factory_->Prop(chosen[next++]);
      break;
    case PatternScope::kBetween:
      q = factory_->Prop(chosen[next++]);
      r = factory_->Prop(chosen[next++]);
      break;
  }
  return ltl::MakePattern(behavior, scope, p, s, q, r, factory_);
}

const Formula* SpecGenerator::DrawConjunction() {
  const Formula* spec = factory_->True();
  for (size_t i = 0; i < options_.properties; ++i) {
    spec = factory_->And(spec, DrawProperty());
  }
  return spec;
}

Result<GeneratedSpec> SpecGenerator::Next() {
  GeneratedSpec out;
  for (size_t attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    out.attempts = attempt;
    const Formula* spec = DrawConjunction();
    auto translated =
        translate::LtlToBuchi(spec, factory_, options_.translate);
    if (!translated.ok()) {
      if (options_.redraw_degenerate &&
          translated.status().IsResourceExhausted()) {
        continue;  // tableau blow-up: redraw
      }
      return translated.status();
    }
    if (options_.redraw_degenerate &&
        automata::IsEmptyLanguage(*translated)) {
      continue;  // unsatisfiable conjunction: redraw
    }
    out.formula = spec;
    out.text = spec->ToString(*vocab_);
    out.automaton = std::move(*translated);
    return out;
  }
  return Status::ResourceExhausted(StringFormat(
      "no satisfiable specification found in %zu attempts",
      options_.max_attempts));
}

}  // namespace ctdb::workload
