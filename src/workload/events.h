// Event-style workload for the streaming compliance monitor (DESIGN.md §15).
//
// Two generators, both reproducible from a seed:
//
//  - EventSpecGenerator draws contracts from the event-pattern corner of the
//    Dwyer catalogue — absence / response / precedence behaviors under the
//    before / after / between scopes ("Events in Property Patterns",
//    PAPERS.md). These are the patterns whose verdicts actually move while a
//    finite trace unfolds (a scoped absence can be violated by one event and
//    discharged by the scope closing), which is what makes them the right
//    fuel for monitor tests and bench_monitor.
//
//  - TraceGenerator draws the event stream itself: per instant, a small
//    random subset of a named vocabulary. Pointing it at a prefix the
//    contracts never cite (e.g. "q" against "p1".."pN" contracts) produces
//    the mismatched-vocabulary streams that exercise alphabet pruning.

#pragma once

#include <string>
#include <vector>

#include "monitor/types.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace ctdb::workload {

/// \brief Draws event-pattern specifications: conjunctions of
/// absence/response/precedence properties under before/after/between scopes,
/// sampled uniformly. Degenerate draws (empty-language BA, tableau blow-up)
/// are redrawn exactly like SpecGenerator.
class EventSpecGenerator {
 public:
  EventSpecGenerator(const GeneratorOptions& options, uint64_t seed,
                     Vocabulary* vocab, ltl::FormulaFactory* factory);

  /// Draws the next specification.
  Result<GeneratedSpec> Next();

  /// Draws a single scoped event property (exposed for tests).
  const ltl::Formula* DrawProperty();

 private:
  GeneratorOptions options_;
  Rng rng_;
  Vocabulary* vocab_;
  ltl::FormulaFactory* factory_;
  std::vector<EventId> events_;
};

/// Trace-generation configuration.
struct TraceOptions {
  /// Vocabulary the stream draws from: `prefix`1 .. `prefix`N. Using a
  /// prefix no contract cites yields a mismatched-vocabulary stream.
  size_t vocabulary_size = 20;
  std::string prefix = "p";

  /// Events per instant: uniform in [0, max_events_per_instant], so traces
  /// mix silent instants with multi-event ones.
  size_t max_events_per_instant = 3;
};

/// \brief Draws random event traces reproducibly from a seed.
class TraceGenerator {
 public:
  TraceGenerator(const TraceOptions& options, uint64_t seed);

  /// The event-name set of the next instant (distinct names, unordered).
  std::vector<std::string> NextInstant();

  /// The next `instants` instants as one monitor batch.
  monitor::EventBatch NextBatch(size_t instants);

 private:
  TraceOptions options_;
  Rng rng_;
  std::vector<std::string> names_;
};

}  // namespace ctdb::workload
