// The six datasets of Table 2 and helpers to materialize them at any scale.

#pragma once

#include <string>
#include <vector>

#include "workload/generator.h"

namespace ctdb::workload {

/// One row of Table 2.
struct DatasetSpec {
  std::string name;
  size_t size = 0;        ///< number of contracts / queries
  size_t patterns = 0;    ///< LTL properties per specification
  bool is_query = false;
  uint64_t seed = 0;      ///< base RNG seed (deterministic datasets)
};

/// The paper's six datasets (Table 2): Simple/Medium/Complex contracts
/// (3000×5, 1000×6, 1000×7) and Simple/Medium/Complex queries
/// (100×1, 100×2, 100×3).
std::vector<DatasetSpec> PaperDatasets();

/// A scaled copy of PaperDatasets(): every `size` multiplied by `scale`
/// (rounded up, min 1). Used to keep CI benchmark runs short.
std::vector<DatasetSpec> ScaledDatasets(double scale);

/// \brief Materializes a dataset into specs (deterministic in spec.seed).
Result<std::vector<GeneratedSpec>> GenerateDataset(
    const DatasetSpec& spec, Vocabulary* vocab, ltl::FormulaFactory* factory,
    const GeneratorOptions& base_options = {});

}  // namespace ctdb::workload
