#include "workload/events.h"

#include <cassert>

#include "automata/ops.h"
#include "ltl/patterns.h"
#include "translate/ltl_to_ba.h"
#include "util/string_util.h"

namespace ctdb::workload {

using ltl::Formula;
using ltl::PatternBehavior;
using ltl::PatternScope;

namespace {

// The event-pattern corner: behaviors that talk about event occurrences
// (not state invariants) under the scopes that open and close at runtime.
constexpr PatternBehavior kEventBehaviors[] = {
    PatternBehavior::kAbsence,
    PatternBehavior::kResponse,
    PatternBehavior::kPrecedence,
};
constexpr PatternScope kEventScopes[] = {
    PatternScope::kBefore,
    PatternScope::kAfter,
    PatternScope::kBetween,
};

}  // namespace

EventSpecGenerator::EventSpecGenerator(const GeneratorOptions& options,
                                       uint64_t seed, Vocabulary* vocab,
                                       ltl::FormulaFactory* factory)
    : options_(options), rng_(seed), vocab_(vocab), factory_(factory) {
  events_.reserve(options.vocabulary_size);
  for (size_t i = 1; i <= options.vocabulary_size; ++i) {
    auto id = vocab_->Intern(StringFormat("p%zu", i));
    assert(id.ok());
    events_.push_back(*id);
  }
}

const Formula* EventSpecGenerator::DrawProperty() {
  const PatternBehavior behavior =
      kEventBehaviors[rng_.Uniform(std::size(kEventBehaviors))];
  const PatternScope scope = kEventScopes[rng_.Uniform(std::size(kEventScopes))];
  const int arity = ltl::PatternArity(behavior, scope);

  std::vector<EventId> chosen;
  while (chosen.size() < static_cast<size_t>(arity)) {
    const EventId e = events_[rng_.Uniform(events_.size())];
    bool dup = false;
    for (EventId c : chosen) {
      if (c == e) {
        dup = true;
        break;
      }
    }
    if (!dup) chosen.push_back(e);
  }

  // Same parameter order as SpecGenerator: p, s (two-event behaviors), then
  // scope delimiters q / r.
  size_t next = 0;
  const Formula* p = factory_->Prop(chosen[next++]);
  const Formula* s = nullptr;
  if (behavior == PatternBehavior::kPrecedence ||
      behavior == PatternBehavior::kResponse) {
    s = factory_->Prop(chosen[next++]);
  }
  const Formula* q = nullptr;
  const Formula* r = nullptr;
  switch (scope) {
    case PatternScope::kGlobal:
      break;
    case PatternScope::kBefore:
      r = factory_->Prop(chosen[next++]);
      break;
    case PatternScope::kAfter:
      q = factory_->Prop(chosen[next++]);
      break;
    case PatternScope::kBetween:
      q = factory_->Prop(chosen[next++]);
      r = factory_->Prop(chosen[next++]);
      break;
  }
  return ltl::MakePattern(behavior, scope, p, s, q, r, factory_);
}

Result<GeneratedSpec> EventSpecGenerator::Next() {
  GeneratedSpec out;
  for (size_t attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    out.attempts = attempt;
    const Formula* spec = factory_->True();
    for (size_t i = 0; i < options_.properties; ++i) {
      spec = factory_->And(spec, DrawProperty());
    }
    auto translated =
        translate::LtlToBuchi(spec, factory_, options_.translate);
    if (!translated.ok()) {
      if (options_.redraw_degenerate &&
          translated.status().IsResourceExhausted()) {
        continue;
      }
      return translated.status();
    }
    if (options_.redraw_degenerate &&
        automata::IsEmptyLanguage(*translated)) {
      continue;
    }
    out.formula = spec;
    out.text = spec->ToString(*vocab_);
    out.automaton = std::move(*translated);
    return out;
  }
  return Status::ResourceExhausted(StringFormat(
      "no satisfiable event specification found in %zu attempts",
      options_.max_attempts));
}

TraceGenerator::TraceGenerator(const TraceOptions& options, uint64_t seed)
    : options_(options), rng_(seed) {
  names_.reserve(options.vocabulary_size);
  for (size_t i = 1; i <= options.vocabulary_size; ++i) {
    names_.push_back(StringFormat("%s%zu", options.prefix.c_str(), i));
  }
}

std::vector<std::string> TraceGenerator::NextInstant() {
  std::vector<std::string> instant;
  const size_t count = rng_.Uniform(options_.max_events_per_instant + 1);
  while (instant.size() < count) {
    const std::string& name = names_[rng_.Uniform(names_.size())];
    bool dup = false;
    for (const std::string& n : instant) {
      if (n == name) {
        dup = true;
        break;
      }
    }
    if (!dup) instant.push_back(name);
  }
  return instant;
}

monitor::EventBatch TraceGenerator::NextBatch(size_t instants) {
  monitor::EventBatch batch;
  batch.reserve(instants);
  for (size_t i = 0; i < instants; ++i) batch.push_back(NextInstant());
  return batch;
}

}  // namespace ctdb::workload
