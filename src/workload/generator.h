// Synthetic contract / query generation (Section 7.2).
//
// Specifications are conjunctions of n randomly drawn Dwyer-pattern
// properties (Table 3) with behaviors and scopes sampled from the survey
// frequencies of [8], and event placeholders substituted by random variables
// from a common vocabulary (p1..p20 by default). Specifications whose BA is
// empty (unsatisfiable conjunction — they can permit nothing) or whose
// tableau blows past the node budget are redrawn, mirroring the paper's
// datasets whose BA statistics are all non-trivial (Table 2).

#pragma once

#include <string>
#include <vector>

#include "automata/buchi.h"
#include "base/vocabulary.h"
#include "ltl/formula.h"
#include "ltl/patterns.h"
#include "translate/ltl_to_ba.h"
#include "util/result.h"
#include "util/rng.h"

namespace ctdb::workload {

/// Generator configuration.
struct GeneratorOptions {
  /// Vocabulary size (the paper uses 20 events, §7.2 Example 14).
  size_t vocabulary_size = 20;
  /// Properties per specification (5/6/7 for simple/medium/complex contracts,
  /// 1/2/3 for queries — Table 2).
  size_t properties = 5;
  /// Redraw when the specification's BA is empty or exceeds limits.
  bool redraw_degenerate = true;
  size_t max_attempts = 64;
  /// Translation settings used for the degeneracy check. The tableau budget
  /// defaults to a much lower value than the library default: rare degenerate
  /// draws (whose BA would dwarf the Table 2 averages anyway) are rejected
  /// quickly and redrawn instead of being ground out.
  translate::TranslateOptions translate = [] {
    translate::TranslateOptions t;
    t.tableau.max_nodes = 1u << 15;
    return t;
  }();
};

/// One generated specification.
struct GeneratedSpec {
  const ltl::Formula* formula = nullptr;
  std::string text;                 ///< LTL text form
  automata::Buchi automaton;        ///< its translated BA
  size_t attempts = 0;              ///< redraws needed (diagnostics)
};

/// \brief Draws specifications reproducibly from a seeded RNG.
///
/// The generator interns events "p1".."pN" into the provided vocabulary and
/// builds formulas in the provided factory, so generated contracts/queries
/// can be registered directly into a ContractDatabase sharing them.
class SpecGenerator {
 public:
  SpecGenerator(const GeneratorOptions& options, uint64_t seed,
                Vocabulary* vocab, ltl::FormulaFactory* factory);

  /// Draws the next specification.
  Result<GeneratedSpec> Next();

  /// Draws a single pattern property (exposed for tests/examples).
  const ltl::Formula* DrawProperty();

 private:
  const ltl::Formula* DrawConjunction();

  GeneratorOptions options_;
  Rng rng_;
  Vocabulary* vocab_;
  ltl::FormulaFactory* factory_;
  std::vector<EventId> events_;
  ltl::PatternFrequencies freq_;
};

}  // namespace ctdb::workload
