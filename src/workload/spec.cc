#include "workload/spec.h"

#include <algorithm>
#include <cmath>

namespace ctdb::workload {

std::vector<DatasetSpec> PaperDatasets() {
  return {
      {"Simple contracts", 3000, 5, false, 0xC0117AC7'0001ULL},
      {"Medium contracts", 1000, 6, false, 0xC0117AC7'0002ULL},
      {"Complex contracts", 1000, 7, false, 0xC0117AC7'0003ULL},
      {"Simple queries", 100, 1, true, 0x0E3A11'0001ULL},
      {"Medium queries", 100, 2, true, 0x0E3A11'0002ULL},
      {"Complex queries", 100, 3, true, 0x0E3A11'0003ULL},
  };
}

std::vector<DatasetSpec> ScaledDatasets(double scale) {
  std::vector<DatasetSpec> datasets = PaperDatasets();
  for (DatasetSpec& d : datasets) {
    d.size = std::max<size_t>(
        1, static_cast<size_t>(std::llround(std::ceil(
               static_cast<double>(d.size) * scale))));
  }
  return datasets;
}

Result<std::vector<GeneratedSpec>> GenerateDataset(
    const DatasetSpec& spec, Vocabulary* vocab, ltl::FormulaFactory* factory,
    const GeneratorOptions& base_options) {
  GeneratorOptions options = base_options;
  options.properties = spec.patterns;
  SpecGenerator generator(options, spec.seed, vocab, factory);
  std::vector<GeneratedSpec> out;
  out.reserve(spec.size);
  for (size_t i = 0; i < spec.size; ++i) {
    CTDB_ASSIGN_OR_RETURN(GeneratedSpec g, generator.Next());
    out.push_back(std::move(g));
  }
  return out;
}

}  // namespace ctdb::workload
