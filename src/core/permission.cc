#include "core/permission.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "automata/scc.h"
#include "core/compatibility.h"
#include "obs/metrics.h"

namespace ctdb::core {

using automata::Buchi;
using automata::StateId;
using automata::Transition;

namespace {

/// Packs a product pair into one 64-bit key.
inline uint64_t PairKey(StateId s, StateId q) {
  return (static_cast<uint64_t>(s) << 32) | q;
}

/// Enumerates the product successors of (s, q): all (θ.to, τ.to) with
/// compatible labels.
template <typename Fn>
void ForEachSuccessor(const Buchi& contract, const Bitset& contract_events,
                      const Buchi& query, StateId s, StateId q, Fn&& fn) {
  for (const Transition& theta : contract.Out(s)) {
    for (const Transition& tau : query.Out(q)) {
      if (Compatible(theta.label, tau.label, contract_events)) {
        fn(theta.to, tau.to);
      }
    }
  }
}

/// Inner search of Algorithm 2 (procedure cycle_search), memoized: looks for
/// a cycle from `seed` back to `seed` containing a contract-final pair.
/// Nodes are (pair, seen-final) and each is visited at most once.
bool CycleSearch(const Buchi& contract, const Bitset& contract_events,
                 const Buchi& query, StateId seed_s, StateId seed_q,
                 PermissionStats* stats) {
  const bool seed_final = contract.IsFinal(seed_s);
  // Node key: pair key shifted, low bit = seen-contract-final flag.
  std::unordered_set<uint64_t> visited;
  std::vector<std::pair<uint64_t, bool>> stack;  // (pair key, flag)

  bool found = false;
  ForEachSuccessor(contract, contract_events, query, seed_s, seed_q,
                   [&](StateId s2, StateId q2) {
                     if (found) return;
                     const bool flag =
                         seed_final || contract.IsFinal(s2);
                     if (s2 == seed_s && q2 == seed_q && flag) {
                       found = true;
                       return;
                     }
                     const uint64_t key = (PairKey(s2, q2) << 1) |
                                          (flag ? 1u : 0u);
                     if (visited.insert(key).second) {
                       stack.emplace_back(PairKey(s2, q2), flag);
                     }
                   });
  while (!found && !stack.empty()) {
    const auto [pair, flag] = stack.back();
    stack.pop_back();
    if (stats != nullptr) ++stats->cycle_pairs;
    const StateId s = static_cast<StateId>(pair >> 32);
    const StateId q = static_cast<StateId>(pair & 0xffffffffu);
    ForEachSuccessor(contract, contract_events, query, s, q,
                     [&](StateId s2, StateId q2) {
                       if (found) return;
                       const bool flag2 = flag || contract.IsFinal(s2);
                       if (s2 == seed_s && q2 == seed_q && flag2) {
                         found = true;
                         return;
                       }
                       const uint64_t key = (PairKey(s2, q2) << 1) |
                                            (flag2 ? 1u : 0u);
                       if (visited.insert(key).second) {
                         stack.emplace_back(PairKey(s2, q2), flag2);
                       }
                     });
  }
  return found;
}

/// Algorithm 2: outer DFS over product pairs; inner cycle search at seeds.
bool PermitsNestedDfs(const Buchi& contract, const Bitset& contract_events,
                      const Buchi& query, const Bitset* seed_states,
                      bool use_seeds, PermissionStats* stats) {
  Bitset local_seeds;
  if (use_seeds && seed_states == nullptr) {
    local_seeds = ComputeSeedStates(contract);
    seed_states = &local_seeds;
  }

  std::unordered_set<uint64_t> visited;
  std::vector<uint64_t> stack;
  const uint64_t root = PairKey(contract.initial(), query.initial());
  visited.insert(root);
  stack.push_back(root);

  while (!stack.empty()) {
    const uint64_t pair = stack.back();
    stack.pop_back();
    if (stats != nullptr) ++stats->pairs_visited;
    const StateId s = static_cast<StateId>(pair >> 32);
    const StateId q = static_cast<StateId>(pair & 0xffffffffu);

    // Seed test: query state final, and (seeds optimization, §6.2.4) the
    // contract state lies on a contract cycle through a contract-final state.
    if (query.IsFinal(q) && (!use_seeds || seed_states->Test(s))) {
      if (stats != nullptr) ++stats->cycle_searches;
      if (CycleSearch(contract, contract_events, query, s, q, stats)) {
        return true;
      }
    }

    ForEachSuccessor(contract, contract_events, query, s, q,
                     [&](StateId s2, StateId q2) {
                       const uint64_t key = PairKey(s2, q2);
                       if (visited.insert(key).second) stack.push_back(key);
                     });
  }
  return false;
}

/// SCC-based variant: explore the reachable product, then decide via Tarjan
/// whether some cyclic SCC contains both a contract-final and a query-final
/// pair.
bool PermitsScc(const Buchi& contract, const Bitset& contract_events,
                const Buchi& query, PermissionStats* stats) {
  // Materialize the reachable product as a small graph.
  std::unordered_map<uint64_t, uint32_t> id_of;
  std::vector<std::pair<StateId, StateId>> nodes;
  std::vector<std::vector<uint32_t>> adj;

  const uint64_t root = PairKey(contract.initial(), query.initial());
  id_of.emplace(root, 0);
  nodes.emplace_back(contract.initial(), query.initial());
  adj.emplace_back();
  for (uint32_t i = 0; i < nodes.size(); ++i) {
    const auto [s, q] = nodes[i];
    if (stats != nullptr) ++stats->pairs_visited;
    ForEachSuccessor(contract, contract_events, query, s, q,
                     [&](StateId s2, StateId q2) {
                       const uint64_t key = PairKey(s2, q2);
                       auto [it, inserted] =
                           id_of.emplace(key, static_cast<uint32_t>(nodes.size()));
                       if (inserted) {
                         nodes.emplace_back(s2, q2);
                         adj.emplace_back();
                       }
                       adj[i].push_back(it->second);
                     });
  }

  // Iterative Tarjan on the materialized product.
  const size_t n = nodes.size();
  constexpr uint32_t kUnvisited = UINT32_MAX;
  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> scc_stack;
  uint32_t next_index = 0;

  struct Frame {
    uint32_t node;
    uint32_t edge;
  };
  std::vector<Frame> frames;
  frames.push_back({0, 0});
  index[0] = lowlink[0] = next_index++;
  scc_stack.push_back(0);
  on_stack[0] = true;

  while (!frames.empty()) {
    Frame& f = frames.back();
    if (f.edge < adj[f.node].size()) {
      const uint32_t w = adj[f.node][f.edge];
      ++f.edge;
      if (index[w] == kUnvisited) {
        index[w] = lowlink[w] = next_index++;
        scc_stack.push_back(w);
        on_stack[w] = true;
        frames.push_back({w, 0});
      } else if (on_stack[w]) {
        lowlink[f.node] = std::min(lowlink[f.node], index[w]);
      }
      continue;
    }
    const uint32_t v = f.node;
    frames.pop_back();
    if (!frames.empty()) {
      lowlink[frames.back().node] =
          std::min(lowlink[frames.back().node], lowlink[v]);
    }
    if (lowlink[v] == index[v]) {
      std::vector<uint32_t> comp;
      while (true) {
        const uint32_t w = scc_stack.back();
        scc_stack.pop_back();
        on_stack[w] = false;
        comp.push_back(w);
        if (w == v) break;
      }
      bool contract_final = false;
      bool query_final = false;
      for (uint32_t w : comp) {
        if (contract.IsFinal(nodes[w].first)) contract_final = true;
        if (query.IsFinal(nodes[w].second)) query_final = true;
      }
      if (!contract_final || !query_final) continue;
      // Cyclic: an edge between two members (self-loops included).
      std::unordered_set<uint32_t> members(comp.begin(), comp.end());
      for (uint32_t w : comp) {
        for (uint32_t succ : adj[w]) {
          if (members.count(succ) > 0) return true;
        }
      }
    }
  }
  return false;
}

/// Early-exit variant of PermitsScc: the product is discovered lazily during
/// an iterative Tarjan DFS, and the check returns the instant an accepting
/// cyclic SCC (contract-final + query-final member, cycle present) is popped.
/// A permitted contract therefore pays only for the pairs on the DFS path to
/// its first witness lasso; only rejections explore the whole product.
bool PermitsSccEarlyExit(const Buchi& contract, const Bitset& contract_events,
                         const Buchi& query, PermissionStats* stats) {
  constexpr uint32_t kUnvisited = UINT32_MAX;
  std::unordered_map<uint64_t, uint32_t> id_of;
  std::vector<std::pair<StateId, StateId>> nodes;
  std::vector<std::vector<uint32_t>> adj;  ///< filled when DFS enters a node
  std::vector<uint32_t> index;
  std::vector<uint32_t> lowlink;
  std::vector<uint8_t> on_stack;
  std::vector<uint8_t> self_loop;

  auto intern = [&](StateId s, StateId q) -> uint32_t {
    const uint64_t key = PairKey(s, q);
    auto [it, inserted] =
        id_of.emplace(key, static_cast<uint32_t>(nodes.size()));
    if (inserted) {
      nodes.emplace_back(s, q);
      adj.emplace_back();
      index.push_back(kUnvisited);
      lowlink.push_back(0);
      on_stack.push_back(0);
      self_loop.push_back(0);
    }
    return it->second;
  };

  struct Frame {
    uint32_t node;
    uint32_t edge;
  };
  std::vector<Frame> frames;
  std::vector<uint32_t> scc_stack;
  uint32_t next_index = 0;

  // Enters `v`: assigns its DFS index, pushes it on both stacks, and
  // materializes its product successors (the lazy construction step).
  auto discover = [&](uint32_t v) {
    index[v] = lowlink[v] = next_index++;
    scc_stack.push_back(v);
    on_stack[v] = 1;
    if (stats != nullptr) ++stats->pairs_visited;
    const auto [s, q] = nodes[v];
    ForEachSuccessor(contract, contract_events, query, s, q,
                     [&](StateId s2, StateId q2) {
                       const uint32_t w = intern(s2, q2);
                       if (w == v) self_loop[v] = 1;
                       adj[v].push_back(w);
                     });
    frames.push_back({v, 0});
  };

  discover(intern(contract.initial(), query.initial()));
  while (!frames.empty()) {
    Frame& f = frames.back();
    if (f.edge < adj[f.node].size()) {
      const uint32_t w = adj[f.node][f.edge];
      ++f.edge;
      if (index[w] == kUnvisited) {
        discover(w);  // invalidates `f`; loop re-reads frames.back()
      } else if (on_stack[w]) {
        lowlink[f.node] = std::min(lowlink[f.node], index[w]);
      }
      continue;
    }
    const uint32_t v = f.node;
    frames.pop_back();
    if (!frames.empty()) {
      lowlink[frames.back().node] =
          std::min(lowlink[frames.back().node], lowlink[v]);
    }
    if (lowlink[v] == index[v]) {
      // SCC rooted at v closes: classify it as it pops. Any SCC with more
      // than one member is cyclic; a singleton is cyclic iff it self-loops.
      bool contract_final = false;
      bool query_final = false;
      bool cyclic = false;
      size_t size = 0;
      while (true) {
        const uint32_t w = scc_stack.back();
        scc_stack.pop_back();
        on_stack[w] = 0;
        ++size;
        if (contract.IsFinal(nodes[w].first)) contract_final = true;
        if (query.IsFinal(nodes[w].second)) query_final = true;
        if (self_loop[w] != 0) cyclic = true;
        if (w == v) break;
      }
      if (size > 1) cyclic = true;
      if (cyclic && contract_final && query_final) return true;
    }
  }
  return false;
}

}  // namespace

Bitset ComputeSeedStates(const Buchi& contract) {
  const automata::SccInfo scc = automata::ComputeScc(contract);
  Bitset seeds(contract.StateCount());
  for (StateId s = 0; s < contract.StateCount(); ++s) {
    if (scc.OnFinalCycle(s)) seeds.Set(s);
  }
  return seeds;
}

bool Permits(const Buchi& contract, const Bitset& contract_events,
             const Buchi& query, const PermissionOptions& options,
             const Bitset* seed_states, PermissionStats* stats) {
  // When recording, the inner searches accumulate into a local struct so the
  // registry flush below sees exactly this check's counts even if the caller
  // reuses one cumulative PermissionStats across many checks (the shard
  // pattern). With obs compiled out or disabled, the caller's pointer is
  // passed through untouched — the paper-faithful path is unchanged.
  PermissionStats* target = stats;
#if CTDB_OBS
  PermissionStats local;
  const bool record = obs::Enabled();
  if (record) target = &local;
#endif
  bool permitted = false;
  switch (options.algorithm) {
    case PermissionAlgorithm::kNestedDfs:
      permitted = PermitsNestedDfs(contract, contract_events, query,
                                   seed_states, options.use_seeds, target);
      break;
    case PermissionAlgorithm::kScc:
      permitted =
          options.early_exit
              ? PermitsSccEarlyExit(contract, contract_events, query, target)
              : PermitsScc(contract, contract_events, query, target);
      break;
  }
#if CTDB_OBS
  if (record) {
    // Permission checks are the system's innermost hot loop (hundreds of
    // nanoseconds each on small automata), so the flush resolves every
    // handle through one static struct (one init-guard check) and the
    // thread's shard once, and skips zero-valued adds.
    struct Handles {
      obs::Counter* checks;
      obs::Counter* nested_dfs;
      obs::Counter* scc;
      obs::Counter* permitted;
      obs::Counter* pairs_visited;
      obs::Counter* cycle_searches;
      obs::Counter* cycle_pairs;
      obs::Histogram* pairs_per_check;
    };
    static const Handles h = [] {
      obs::MetricsRegistry* r = obs::MetricsRegistry::Default();
      return Handles{r->GetCounter("permission.checks"),
                     r->GetCounter("permission.nested_dfs_checks"),
                     r->GetCounter("permission.scc_checks"),
                     r->GetCounter("permission.permitted"),
                     r->GetCounter("permission.pairs_visited"),
                     r->GetCounter("permission.cycle_searches"),
                     r->GetCounter("permission.cycle_pairs"),
                     r->GetHistogram("permission.pairs_per_check")};
    }();
    const size_t shard = obs::ThisThreadShard();
    h.checks->AddAt(shard, 1);
    (options.algorithm == PermissionAlgorithm::kNestedDfs ? h.nested_dfs
                                                          : h.scc)
        ->AddAt(shard, 1);
    if (permitted) h.permitted->AddAt(shard, 1);
    if (local.pairs_visited != 0) {
      h.pairs_visited->AddAt(shard, local.pairs_visited);
    }
    if (local.cycle_searches != 0) {
      h.cycle_searches->AddAt(shard, local.cycle_searches);
    }
    if (local.cycle_pairs != 0) {
      h.cycle_pairs->AddAt(shard, local.cycle_pairs);
    }
    h.pairs_per_check->RecordAt(shard, local.pairs_visited);
    if (stats != nullptr) stats->MergeFrom(local);
  }
#endif
  return permitted;
}

}  // namespace ctdb::core
