// The permission checking algorithm (Sections 3.1, 6.2.2, 6.2.4).
//
// A contract C permits a query q iff the BAs representing them admit a
// *simultaneous lasso path* (Definition 7 / Theorem 4): synchronized lasso
// paths with pointwise-compatible labels, whose cycle passes through a
// query-final pair (the knot) and a contract-final pair.
//
// Two equivalent checkers are provided:
//  * kNestedDfs — the paper's Algorithm 2: an outer depth-first search over
//    reachable product pairs; at every seed (a pair whose query state is
//    final) a memoized inner search looks for a cycle back to the seed
//    containing a contract-final pair. The inner search explores
//    (pair, seen-contract-final) nodes, visiting each at most once per seed —
//    the "simple memoization scheme" of §6.2.2.
//  * kScc — product-graph SCC analysis: permission holds iff some reachable
//    cyclic SCC of the product contains both a contract-final and a
//    query-final pair. Linear in the product; used for cross-validation and
//    as an ablation. By default the product is constructed *on the fly*
//    during the Tarjan DFS and the check returns the moment an accepting
//    cyclic SCC closes — permitted contracts never pay for the unexplored
//    remainder of the product. PermissionOptions::early_exit = false falls
//    back to materializing and classifying the full product.
//
// The seeds optimization (§6.2.4) restricts inner searches to pairs whose
// contract state lies on a contract cycle through a contract-final state.

#pragma once

#include <cstdint>

#include "automata/buchi.h"
#include "util/bitset.h"

namespace ctdb::core {

/// Which permission decision procedure to run.
enum class PermissionAlgorithm : uint8_t {
  kNestedDfs,  ///< Algorithm 2 (paper-faithful)
  kScc,        ///< product SCC emptiness variant
};

/// Knobs for Permits().
struct PermissionOptions {
  PermissionAlgorithm algorithm = PermissionAlgorithm::kNestedDfs;
  /// Apply the §6.2.4 seeds restriction (kNestedDfs only).
  bool use_seeds = true;
  /// kScc only: build the product lazily during the Tarjan DFS and stop on
  /// the first accepting lasso witness (default). When false the full
  /// reachable product is materialized first — the eager ablation baseline.
  /// kNestedDfs always early-exits by construction.
  bool early_exit = true;
};

/// Counters reported by a permission check.
struct PermissionStats {
  uint64_t pairs_visited = 0;    ///< outer-search product pairs
  uint64_t cycle_searches = 0;   ///< inner searches launched (seeds tried)
  uint64_t cycle_pairs = 0;      ///< inner-search node visits
  void MergeFrom(const PermissionStats& other) {
    pairs_visited += other.pairs_visited;
    cycle_searches += other.cycle_searches;
    cycle_pairs += other.cycle_pairs;
  }
};

/// \brief Precomputed per-contract information for the seeds optimization:
/// the set of contract states lying on a cycle through a final state.
/// Computed once at registration time (§6.2.4).
Bitset ComputeSeedStates(const automata::Buchi& contract);

/// \brief Decides whether the contract represented by `contract` (citing
/// exactly `contract_events`) permits the query represented by `query`.
///
/// `seed_states`, if non-null, must be ComputeSeedStates(contract); when null
/// and the algorithm needs it, it is computed on the fly.
bool Permits(const automata::Buchi& contract, const Bitset& contract_events,
             const automata::Buchi& query,
             const PermissionOptions& options = {},
             const Bitset* seed_states = nullptr,
             PermissionStats* stats = nullptr);

}  // namespace ctdb::core
