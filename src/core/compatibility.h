// Label compatibility (Definition 7, point 3): a contract transition label θ
// is compatible with a query transition label τ iff
//   (i)  τ cites only events of the contract's vocabulary, and
//   (ii) θ ∧ τ is satisfiable (no opposite literals).

#pragma once

#include "base/label.h"
#include "util/bitset.h"

namespace ctdb::core {

/// \brief True iff contract label θ and query label τ are compatible with
/// respect to a contract citing exactly `contract_events`.
inline bool Compatible(const Label& contract_label, const Label& query_label,
                       const Bitset& contract_events) {
  return query_label.CitesOnly(contract_events) &&
         contract_label.ConsistentWith(query_label);
}

}  // namespace ctdb::core
