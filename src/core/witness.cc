#include "core/witness.h"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "core/compatibility.h"

namespace ctdb::core {

using automata::Buchi;
using automata::StateId;
using automata::Transition;

namespace {

/// Materialized product graph with one chosen snapshot per edge: the
/// assignment making all positive literals of θ ∧ τ true and everything else
/// false (satisfies the conjunction because labels are conflict-free).
struct Product {
  std::vector<std::pair<StateId, StateId>> nodes;
  struct Edge {
    uint32_t to;
    Snapshot snapshot;
  };
  std::vector<std::vector<Edge>> adj;

  static Product Build(const Buchi& contract, const Bitset& contract_events,
                       const Buchi& query) {
    Product p;
    std::unordered_map<uint64_t, uint32_t> id_of;
    auto key = [](StateId s, StateId q) {
      return (static_cast<uint64_t>(s) << 32) | q;
    };
    id_of.emplace(key(contract.initial(), query.initial()), 0);
    p.nodes.emplace_back(contract.initial(), query.initial());
    p.adj.emplace_back();
    for (uint32_t i = 0; i < p.nodes.size(); ++i) {
      const auto [s, q] = p.nodes[i];
      for (const Transition& theta : contract.Out(s)) {
        for (const Transition& tau : query.Out(q)) {
          if (!Compatible(theta.label, tau.label, contract_events)) continue;
          const uint64_t k = key(theta.to, tau.to);
          auto [it, inserted] =
              id_of.emplace(k, static_cast<uint32_t>(p.nodes.size()));
          if (inserted) {
            p.nodes.emplace_back(theta.to, tau.to);
            p.adj.emplace_back();
          }
          Snapshot snapshot = theta.label.positive();
          snapshot |= tau.label.positive();
          p.adj[i].push_back(Edge{it->second, std::move(snapshot)});
        }
      }
    }
    return p;
  }
};

/// Iterative Tarjan over the product.
struct SccResult {
  std::vector<uint32_t> comp;
  uint32_t count = 0;
};

SccResult ProductScc(const Product& p) {
  const size_t n = p.nodes.size();
  SccResult r;
  r.comp.assign(n, 0);
  constexpr uint32_t kUnvisited = UINT32_MAX;
  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;
  uint32_t next = 0;
  struct Frame {
    uint32_t node;
    uint32_t edge;
  };
  std::vector<Frame> frames;
  for (uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < p.adj[f.node].size()) {
        const uint32_t w = p.adj[f.node][f.edge].to;
        ++f.edge;
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.node] = std::min(lowlink[f.node], index[w]);
        }
        continue;
      }
      const uint32_t v = f.node;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().node] =
            std::min(lowlink[frames.back().node], lowlink[v]);
      }
      if (lowlink[v] == index[v]) {
        const uint32_t c = r.count++;
        while (true) {
          const uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          r.comp[w] = c;
          if (w == v) break;
        }
      }
    }
  }
  return r;
}

/// BFS path `from` → `to` through the product; when `within` is non-null the
/// walk stays inside that component. Returns the edge snapshots along the
/// path (empty when from == to). Requires reachability (callers guarantee
/// it; asserts in debug builds).
std::vector<Snapshot> BfsPath(const Product& p, const SccResult& scc,
                              uint32_t from, uint32_t to,
                              const uint32_t* within) {
  if (from == to) return {};
  std::vector<int64_t> parent(p.nodes.size(), -1);
  std::vector<const Snapshot*> via(p.nodes.size(), nullptr);
  std::queue<uint32_t> queue;
  queue.push(from);
  parent[from] = from;
  while (!queue.empty()) {
    const uint32_t u = queue.front();
    queue.pop();
    for (const Product::Edge& e : p.adj[u]) {
      if (within != nullptr && scc.comp[e.to] != *within) continue;
      if (parent[e.to] != -1) continue;
      parent[e.to] = u;
      via[e.to] = &e.snapshot;
      if (e.to == to) {
        std::vector<Snapshot> path;
        uint32_t cur = to;
        while (cur != from) {
          path.push_back(*via[cur]);
          cur = static_cast<uint32_t>(parent[cur]);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push(e.to);
    }
  }
  return {};  // unreachable under the callers' preconditions
}

/// A (possibly empty-start) cycle through `node` inside its component, as
/// snapshots: first a path node → mid, then mid → node. `mid` may equal
/// `node`, in which case the result is a simple cycle node → node of length
/// ≥ 1 (found via node's in-component successors).
std::vector<Snapshot> CycleThrough(const Product& p, const SccResult& scc,
                                   uint32_t node, uint32_t mid) {
  const uint32_t comp = scc.comp[node];
  std::vector<Snapshot> path;
  if (mid != node) {
    std::vector<Snapshot> there = BfsPath(p, scc, node, mid, &comp);
    std::vector<Snapshot> back = BfsPath(p, scc, mid, node, &comp);
    path = std::move(there);
    path.insert(path.end(), back.begin(), back.end());
    return path;
  }
  // Simple cycle node → node: step to an in-component successor first.
  for (const Product::Edge& e : p.adj[node]) {
    if (scc.comp[e.to] != comp) continue;
    std::vector<Snapshot> back = BfsPath(p, scc, e.to, node, &comp);
    if (e.to == node || !back.empty()) {
      path.push_back(e.snapshot);
      path.insert(path.end(), back.begin(), back.end());
      return path;
    }
  }
  return {};
}

}  // namespace

std::optional<LassoWord> FindWitness(const Buchi& contract,
                                     const Bitset& contract_events,
                                     const Buchi& query) {
  const Product p = Product::Build(contract, contract_events, query);
  const SccResult scc = ProductScc(p);

  // Per component: a contract-final member, a query-final member, and
  // whether the component is cyclic.
  std::vector<int64_t> contract_final(scc.count, -1);
  std::vector<int64_t> query_final(scc.count, -1);
  std::vector<bool> cyclic(scc.count, false);
  for (uint32_t i = 0; i < p.nodes.size(); ++i) {
    const uint32_t c = scc.comp[i];
    if (contract.IsFinal(p.nodes[i].first) && contract_final[c] < 0) {
      contract_final[c] = i;
    }
    if (query.IsFinal(p.nodes[i].second) && query_final[c] < 0) {
      query_final[c] = i;
    }
    for (const Product::Edge& e : p.adj[i]) {
      if (scc.comp[e.to] == c) cyclic[c] = true;
    }
  }

  for (uint32_t i = 0; i < p.nodes.size(); ++i) {
    const uint32_t c = scc.comp[i];
    if (!cyclic[c] || contract_final[c] < 0 || query_final[c] < 0) continue;
    // Anchor the lasso at the component's query-final pair (the knot of
    // Definition 2), route the cycle through the contract-final pair.
    const uint32_t knot = static_cast<uint32_t>(query_final[c]);
    LassoWord word;
    word.prefix = BfsPath(p, scc, 0, knot, nullptr);
    word.cycle = CycleThrough(p, scc, knot,
                              static_cast<uint32_t>(contract_final[c]));
    if (word.cycle.empty()) continue;  // defensive: no usable cycle
    // Normalize snapshot widths for readability.
    size_t width = contract_events.size();
    for (const Snapshot& s : word.prefix) width = std::max(width, s.size());
    for (const Snapshot& s : word.cycle) width = std::max(width, s.size());
    for (Snapshot& s : word.prefix) s.Resize(width);
    for (Snapshot& s : word.cycle) s.Resize(width);
    return word;
  }
  return std::nullopt;
}

}  // namespace ctdb::core
