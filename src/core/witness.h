// Witness extraction: when a contract permits a query, produce a concrete
// allowed sequence of snapshots (a lasso word) that demonstrates it.
//
// Theorem 4's ⇒ direction is constructive: from a simultaneous lasso path,
// picking any truth assignment satisfying θᵢ ∧ τᵢ at every step yields a run
// that the contract allows and that satisfies the query. This module walks
// the product SCC structure to recover such a path and materializes the
// snapshots (events outside the contract's vocabulary stay false — the
// witness lies inside the projection class of Definition 5).

#pragma once

#include <optional>

#include "automata/buchi.h"
#include "base/run.h"
#include "util/bitset.h"

namespace ctdb::core {

/// \brief Finds a witness run for `contract` permitting `query`, or
/// std::nullopt when the contract does not permit the query.
///
/// The returned word satisfies:
///   * the contract BA accepts it (the sequence is allowed), and
///   * the query BA accepts it (the property holds),
/// which tests verify against the independent acceptance checker.
std::optional<LassoWord> FindWitness(const automata::Buchi& contract,
                                     const Bitset& contract_events,
                                     const automata::Buchi& query);

}  // namespace ctdb::core
