#include "translate/degeneralize.h"

#include <unordered_map>
#include <vector>

#include "util/hash.h"

namespace ctdb::translate {

automata::Buchi Degeneralize(const GeneralizedBuchi& gba) {
  using automata::Buchi;
  using automata::StateId;
  using automata::Transition;

  const Buchi& in = gba.automaton;
  const size_t k = gba.acceptance.size();

  if (k == 0) {
    // Every run is accepting: copy the automaton and mark all states final.
    Buchi out;
    out.AddStates(in.StateCount() - 1);
    out.SetInitial(in.initial());
    for (StateId s = 0; s < in.StateCount(); ++s) {
      out.SetFinal(s);
      for (const Transition& t : in.Out(s)) {
        out.AddTransition(s, t.label, t.to);
      }
    }
    return out;
  }

  // BFS over reachable (state, level) pairs.
  Buchi out;
  std::unordered_map<std::pair<uint32_t, uint32_t>, StateId, PairHash> ids;
  std::vector<std::pair<uint32_t, uint32_t>> worklist;

  auto get_id = [&](uint32_t state, uint32_t level) -> StateId {
    const auto key = std::make_pair(state, level);
    auto it = ids.find(key);
    if (it != ids.end()) return it->second;
    const StateId id = ids.empty() ? out.initial() : out.AddState();
    ids.emplace(key, id);
    if (level == k) out.SetFinal(id);
    worklist.push_back(key);
    return id;
  };

  // Level advancement: starting from `base`, climb while the *target* state
  // belongs to the next acceptance set.
  auto advance = [&](uint32_t base, uint32_t target) {
    uint32_t level = base;
    while (level < k && gba.acceptance[level].Test(target)) ++level;
    return level;
  };

  get_id(in.initial(), 0);
  while (!worklist.empty()) {
    const auto [state, level] = worklist.back();
    worklist.pop_back();
    const StateId from = ids.at({state, level});
    const uint32_t base = (level == k) ? 0 : level;
    for (const Transition& t : in.Out(state)) {
      const uint32_t next_level = advance(base, t.to);
      const StateId to = get_id(t.to, next_level);
      out.AddTransition(from, t.label, to);
    }
  }
  return out;
}

}  // namespace ctdb::translate
