// End-to-end LTL → Büchi translation pipeline (the component the paper
// delegates to the external LTL2BA tool [12]; built from scratch here).
//
//   formula → NNF → rewrite simplification → GPVW tableau → degeneralize
//           → dead-state pruning → bisimulation quotient
//
// The result accepts exactly the runs satisfying the formula and its labels
// cite only the formula's events (the assumption of §6.2.1).

#pragma once

#include "automata/buchi.h"
#include "ltl/formula.h"
#include "translate/tableau.h"
#include "util/result.h"

namespace ctdb::translate {

/// Pipeline configuration.
struct TranslateOptions {
  /// Apply ltl::SimplifyNnf rewriting before the tableau.
  bool simplify_formula = true;
  /// Remove unreachable states and states with no accepting continuation.
  bool prune = true;
  /// Collapse bisimilar states (language-preserving, Theorem 8).
  bool reduce = true;
  /// Tableau node budget.
  TableauOptions tableau;
};

/// Per-translation diagnostics.
struct TranslateInfo {
  size_t tableau_states = 0;    ///< states after GPVW (incl. initial)
  size_t degeneralized = 0;     ///< states after the counter construction
  size_t final_states = 0;      ///< states in the returned automaton
  size_t final_transitions = 0; ///< transitions in the returned automaton
};

/// \brief Translates `formula` to an equivalent Büchi automaton.
Result<automata::Buchi> LtlToBuchi(const ltl::Formula* formula,
                                   ltl::FormulaFactory* factory,
                                   const TranslateOptions& options = {},
                                   TranslateInfo* info = nullptr);

/// \brief Normalizes `formula` for the tableau: NNF plus (per `options`)
/// SimplifyNnf rewriting. LtlToBuchi ≡ NnfToBuchi ∘ NormalizeForTableau;
/// the split lets the translation cache (translate/cache.h) key on the
/// normal form without re-running normalization on a hit.
const ltl::Formula* NormalizeForTableau(const ltl::Formula* formula,
                                        ltl::FormulaFactory* factory,
                                        const TranslateOptions& options = {});

/// \brief Runs the tableau-onward pipeline on an already-normalized formula
/// (`nnf` must come from NormalizeForTableau with the same options).
Result<automata::Buchi> NnfToBuchi(const ltl::Formula* nnf,
                                   ltl::FormulaFactory* factory,
                                   const TranslateOptions& options = {},
                                   TranslateInfo* info = nullptr);

}  // namespace ctdb::translate
