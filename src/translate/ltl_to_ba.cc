#include "translate/ltl_to_ba.h"

#include "automata/bisimulation.h"
#include "automata/ops.h"
#include "automata/quotient.h"
#include "ltl/rewriter.h"
#include "translate/degeneralize.h"

namespace ctdb::translate {

Result<automata::Buchi> LtlToBuchi(const ltl::Formula* formula,
                                   ltl::FormulaFactory* factory,
                                   const TranslateOptions& options,
                                   TranslateInfo* info) {
  const ltl::Formula* nnf = ltl::ToNnf(formula, factory);
  if (options.simplify_formula) {
    nnf = ltl::SimplifyNnf(nnf, factory);
  }

  CTDB_ASSIGN_OR_RETURN(GeneralizedBuchi gba,
                        BuildTableau(nnf, factory, options.tableau));
  if (info != nullptr) info->tableau_states = gba.automaton.StateCount();

  automata::Buchi ba = Degeneralize(gba);
  if (info != nullptr) info->degeneralized = ba.StateCount();

  if (options.prune) {
    ba = automata::PruneDeadStates(ba);
  }
  if (options.reduce) {
    const automata::Partition partition = automata::CoarsestBisimulation(ba);
    if (partition.block_count < ba.StateCount()) {
      ba = automata::BuildQuotient(ba, partition);
      if (options.prune) ba = automata::PruneDeadStates(ba);
    }
  }
  ba.DedupTransitions();
  if (info != nullptr) {
    info->final_states = ba.StateCount();
    info->final_transitions = ba.TransitionCount();
  }
  return ba;
}

}  // namespace ctdb::translate
