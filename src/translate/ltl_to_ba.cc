#include "translate/ltl_to_ba.h"

#include "automata/bisimulation.h"
#include "automata/ops.h"
#include "automata/quotient.h"
#include "ltl/rewriter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "translate/degeneralize.h"

namespace ctdb::translate {

const ltl::Formula* NormalizeForTableau(const ltl::Formula* formula,
                                        ltl::FormulaFactory* factory,
                                        const TranslateOptions& options) {
  const ltl::Formula* nnf = ltl::ToNnf(formula, factory);
  if (options.simplify_formula) {
    nnf = ltl::SimplifyNnf(nnf, factory);
  }
  return nnf;
}

Result<automata::Buchi> LtlToBuchi(const ltl::Formula* formula,
                                   ltl::FormulaFactory* factory,
                                   const TranslateOptions& options,
                                   TranslateInfo* info) {
  const ltl::Formula* nnf = NormalizeForTableau(formula, factory, options);
  return NnfToBuchi(nnf, factory, options, info);
}

Result<automata::Buchi> NnfToBuchi(const ltl::Formula* nnf,
                                   ltl::FormulaFactory* factory,
                                   const TranslateOptions& options,
                                   TranslateInfo* info) {
  CTDB_OBS_SPAN(span, "translate");
  CTDB_ASSIGN_OR_RETURN(GeneralizedBuchi gba,
                        BuildTableau(nnf, factory, options.tableau));
  const size_t tableau_states = gba.automaton.StateCount();
  if (info != nullptr) info->tableau_states = tableau_states;

  automata::Buchi ba = Degeneralize(gba);
  const size_t degeneralized = ba.StateCount();
  if (info != nullptr) info->degeneralized = degeneralized;

  if (options.prune) {
    ba = automata::PruneDeadStates(ba);
  }
  if (options.reduce) {
    const automata::Partition partition = automata::CoarsestBisimulation(ba);
    if (partition.block_count < ba.StateCount()) {
      ba = automata::BuildQuotient(ba, partition);
      if (options.prune) ba = automata::PruneDeadStates(ba);
    }
  }
  ba.DedupTransitions();
  if (info != nullptr) {
    info->final_states = ba.StateCount();
    info->final_transitions = ba.TransitionCount();
  }

  // §7.3 cost drivers: tableau size and the degeneralization blow-up (the
  // counter construction multiplies states by the number of acceptance
  // sets), plus what pruning/bisimulation claw back.
  CTDB_OBS_COUNT("translate.count", 1);
  CTDB_OBS_COUNT("translate.tableau_states", tableau_states);
  CTDB_OBS_COUNT("translate.degeneralized_states", degeneralized);
  CTDB_OBS_COUNT("translate.final_states", ba.StateCount());
  CTDB_OBS_HIST("translate.tableau_states_per_formula", tableau_states);
  if (tableau_states > 0) {
    CTDB_OBS_HIST("translate.degeneralization_blowup_pct",
                  degeneralized * 100 / tableau_states);
  }
  CTDB_OBS_SPAN_ATTR(span, "tableau_states", tableau_states);
  CTDB_OBS_SPAN_ATTR(span, "final_states", ba.StateCount());
  return ba;
}

}  // namespace ctdb::translate
