// On-the-fly tableau construction of Gerth, Peled, Vardi & Wolper (GPVW'95):
// from an NNF LTL formula to a generalized Büchi automaton whose transition
// labels are conjunctions of literals — the automaton shape the paper's data
// model requires (Section 2.3).
//
// The GPVW graph's nodes carry (Old, Next) formula sets; the transition-
// labeled automaton adds one fresh initial state, and every edge into a node
// carries that node's literal conjunction. Acceptance is generalized: one set
// per Until subformula (a node belongs to F_{aUb} iff aUb ∉ Old or b ∈ Old).

#pragma once

#include <vector>

#include "automata/buchi.h"
#include "ltl/formula.h"
#include "util/bitset.h"
#include "util/result.h"

namespace ctdb::translate {

/// \brief A Büchi automaton with generalized (multi-set, state-based)
/// acceptance. `automaton.finals()` is unused; `acceptance[i]` is the i-th
/// acceptance set of states, each of which must be visited infinitely often.
struct GeneralizedBuchi {
  automata::Buchi automaton;
  std::vector<Bitset> acceptance;
};

/// Tableau construction limits.
struct TableauOptions {
  /// Abort with ResourceExhausted when the number of registered states
  /// exceeds this bound (worst-case node count is exponential in the formula
  /// size, §3.1).
  size_t max_nodes = 1u << 18;
  /// Abort when the number of processed work nodes (including branches that
  /// merge or die) exceeds this bound; 0 means 64 * max_nodes. Caps runaway
  /// expansions that register few states.
  size_t max_work = 0;
};

/// \brief Runs the GPVW construction on `formula`, which must be in negation
/// normal form (ltl::ToNnf). Returns the generalized BA accepting exactly the
/// runs satisfying the formula; its labels cite only the formula's events.
Result<GeneralizedBuchi> BuildTableau(const ltl::Formula* formula,
                                      ltl::FormulaFactory* factory,
                                      const TableauOptions& options = {});

}  // namespace ctdb::translate
