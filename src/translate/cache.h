// Translation cache: canonical-NNF formula → translated Büchi automaton.
//
// Translation (tableau → degeneralize → prune → quotient) dominates query
// latency for small databases and is pure: the output depends only on the
// normalized formula and the pipeline options. Query workloads repeat
// structure heavily — the same contract templates are queried with the same
// shapes — so a small LRU keyed by the formula's canonical serialization
// converts repeat translations into a hash lookup plus a shared_ptr copy.
//
// Key canonicity: formulas are hash-consed within a factory, so serializing
// the NNF DAG with dense first-visit ids yields identical bytes for
// structurally equal formulas from *different* factories (queries parse into
// call-local factories; see broker/snapshot.h). The DAG walk — not a tree
// walk — keeps the key linear in the DAG size even for formulas whose tree
// expansion is exponential (nested W/R rewrites).
//
// Concurrency: values are immutable automata behind shared_ptr<const Buchi>;
// the cache itself is sharded, each shard a mutex + exact-LRU list. Readers
// on the snapshot path share one cache owned by the ContractDatabase, so a
// formula translated by one query thread is a hit for every other.

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "automata/buchi.h"
#include "ltl/formula.h"
#include "translate/ltl_to_ba.h"
#include "util/result.h"

namespace ctdb::translate {

/// \brief Canonical cache key: byte serialization of the NNF DAG (dense
/// first-visit ids, children before parents) followed by every option that
/// affects the translation result. Equal bytes ⇔ same normalized formula and
/// options, across factories. `nnf` must be the output of
/// NormalizeForTableau under the same `options`.
std::string CanonicalTranslationKey(const ltl::Formula* nnf,
                                    const TranslateOptions& options);

/// Cumulative cache counters (process-lifetime, monotone except `entries`).
struct TranslationCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t entries = 0;   ///< current resident entries
  size_t capacity = 0;  ///< configured maximum entries (0 = disabled)
};

/// \brief Sharded exact-LRU map from canonical translation keys to immutable
/// translated automata. Thread-safe; capacity 0 disables caching (Lookup
/// always misses, Insert is a no-op).
class TranslationCache {
 public:
  /// `capacity` is the total entry budget across shards. Small capacities
  /// (< 64) use a single shard so LRU order is exact and testable; larger
  /// caches spread over 8 shards to keep the mutex off the hot path.
  explicit TranslationCache(size_t capacity);

  TranslationCache(const TranslationCache&) = delete;
  TranslationCache& operator=(const TranslationCache&) = delete;

  /// Returns the cached automaton and refreshes its LRU position, or nullptr.
  std::shared_ptr<const automata::Buchi> Lookup(std::string_view key);

  /// Inserts (or refreshes) `key`, evicting the shard's least recently used
  /// entry when over budget.
  void Insert(std::string_view key,
              std::shared_ptr<const automata::Buchi> value);

  TranslationCacheStats Stats() const;

  size_t capacity() const { return capacity_; }
  bool enabled() const { return capacity_ > 0; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const automata::Buchi> value;
  };
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used. Nodes are stable, so the map's
    /// string_view keys alias Entry::key safely across splices.
    std::list<Entry> lru;
    std::unordered_map<std::string_view, std::list<Entry>::iterator> by_key;
    size_t max_entries = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardOf(std::string_view key);

  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// \brief Cached front-end to LtlToBuchi: normalizes once, keys the cache on
/// the normal form, and runs the tableau-onward pipeline only on a miss.
/// `cache` may be nullptr or disabled (plain translation). On a hit, `info`
/// receives only the final automaton's shape (the construction stages did
/// not run) and `*cache_hit` is set when non-null.
Result<std::shared_ptr<const automata::Buchi>> LtlToBuchiCached(
    const ltl::Formula* formula, ltl::FormulaFactory* factory,
    TranslationCache* cache, const TranslateOptions& options = {},
    TranslateInfo* info = nullptr, bool* cache_hit = nullptr);

}  // namespace ctdb::translate
