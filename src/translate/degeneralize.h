// Degeneralization: generalized (multi-set) Büchi acceptance to plain Büchi
// acceptance via the standard counter construction.

#pragma once

#include "automata/buchi.h"
#include "translate/tableau.h"

namespace ctdb::translate {

/// \brief Converts `gba` into an equivalent plain Büchi automaton.
///
/// With k acceptance sets the result has states (q, level) for level ∈ [0,k];
/// advancing from level m requires entering a state of acceptance set m+1,
/// level k states are final and reset to level 0. With k = 0 every state is
/// final. Only the reachable part of the product is built.
automata::Buchi Degeneralize(const GeneralizedBuchi& gba);

}  // namespace ctdb::translate
