#include "translate/tableau.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <vector>

#include "util/arena.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace ctdb::translate {

using ltl::Formula;
using ltl::FormulaFactory;
using ltl::Op;

namespace {

/// A set of formulas as a sorted (by node id) vector of pointers. Small and
/// cache-friendly; GPVW sets rarely exceed a few dozen entries.
using FormulaSet = std::vector<const Formula*>;

bool SetContains(const FormulaSet& set, const Formula* f) {
  return std::binary_search(
      set.begin(), set.end(), f,
      [](const Formula* a, const Formula* b) { return a->id() < b->id(); });
}

void SetInsert(FormulaSet* set, const Formula* f) {
  auto it = std::lower_bound(
      set->begin(), set->end(), f,
      [](const Formula* a, const Formula* b) { return a->id() < b->id(); });
  if (it == set->end() || *it != f) set->insert(it, f);
}

/// True for literals and constants (no further tableau decomposition).
bool IsBasic(const Formula* f) {
  return f->op() == Op::kTrue || f->op() == Op::kFalse ||
         f->op() == Op::kProp ||
         (f->op() == Op::kNot && f->left()->op() == Op::kProp);
}

/// An unexpanded tableau node being processed.
struct WorkNode {
  /// States (in the result automaton) with an edge into this node. The
  /// special value kInitMark stands for the fresh initial state.
  std::vector<uint32_t> incoming;
  FormulaSet new_set;
  FormulaSet old_set;
  FormulaSet next_set;
};

constexpr uint32_t kInitMark = UINT32_MAX;

/// A registered state's (Old, Next) identity as spans. Registered sets are
/// immutable, so they live as flat arrays in the builder's arena; the probe
/// key used for lookup may point at a WorkNode's vectors instead — hashing
/// and equality only read the pointed-at formulas.
struct StateKey {
  const Formula* const* old_set = nullptr;
  const Formula* const* next_set = nullptr;
  uint32_t old_size = 0;
  uint32_t next_size = 0;
};

uint64_t SpanHash(const Formula* const* set, uint32_t n) {
  uint64_t h = 1469598103934665603ULL;
  for (uint32_t i = 0; i < n; ++i) {
    h ^= set[i]->id();
    h *= 1099511628211ULL;
  }
  return h;
}

bool SpanContains(const Formula* const* set, uint32_t n, const Formula* f) {
  return std::binary_search(
      set, set + n, f,
      [](const Formula* a, const Formula* b) { return a->id() < b->id(); });
}

struct StateKeyHash {
  size_t operator()(const StateKey& k) const {
    return static_cast<size_t>(
        HashCombine(SpanHash(k.old_set, k.old_size),
                    SpanHash(k.next_set, k.next_size)));
  }
};

struct StateKeyEq {
  bool operator()(const StateKey& a, const StateKey& b) const {
    return a.old_size == b.old_size && a.next_size == b.next_size &&
           std::equal(a.old_set, a.old_set + a.old_size, b.old_set) &&
           std::equal(a.next_set, a.next_set + a.next_size, b.next_set);
  }
};

/// Collects every Until subformula of an NNF formula (they index the
/// generalized acceptance sets).
void CollectUntils(const Formula* f, FormulaSet* untils) {
  if (f->op() == Op::kUntil) SetInsert(untils, f);
  if (f->left() != nullptr) CollectUntils(f->left(), untils);
  if (f->right() != nullptr) CollectUntils(f->right(), untils);
}

class TableauBuilder {
 public:
  TableauBuilder(const Formula* formula, FormulaFactory* factory,
                 const TableauOptions& options)
      : formula_(formula), factory_(factory), options_(options) {}

  Result<GeneralizedBuchi> Build() {
    CollectUntils(formula_, &untils_);

    WorkNode root;
    root.incoming.push_back(kInitMark);
    if (formula_->op() != Op::kFalse) {
      root.new_set.push_back(formula_);
    } else {
      // `false` has no consistent expansion: produce the empty automaton.
      GeneralizedBuchi out;
      out.acceptance.assign(untils_.size(), Bitset(1));
      return out;
    }
    queue_.push_back(std::move(root));
    while (!queue_.empty()) {
      WorkNode next = std::move(queue_.back());
      queue_.pop_back();
      CTDB_RETURN_NOT_OK(Expand(std::move(next)));
    }
    return Finish();
  }

 private:
  /// Expands `node` to saturation, registering fully-expanded states and
  /// enqueueing their successors. Uses an explicit stack: the branching rules
  /// (∨, U, R) push two copies.
  Status Expand(WorkNode node) {
    const size_t max_work = options_.max_work != 0
                                ? options_.max_work
                                : options_.max_nodes * 64;
    std::vector<WorkNode> pending;
    pending.push_back(std::move(node));
    while (!pending.empty()) {
      if (++work_done_ > max_work) {
        return Status::ResourceExhausted(
            StringFormat("tableau exceeded %zu work nodes", max_work));
      }
      WorkNode q = std::move(pending.back());
      pending.pop_back();
      if (q.new_set.empty()) {
        CTDB_RETURN_NOT_OK(Register(std::move(q)));
        continue;
      }
      // Prefer non-branching formulas (literals, ∧, X): they populate Old
      // early, which lets the subsumption checks below prune whole branches
      // and surfaces contradictions before any split happens.
      size_t pick = q.new_set.size() - 1;
      for (size_t i = q.new_set.size(); i > 0; --i) {
        const Op op = q.new_set[i - 1]->op();
        if (IsBasic(q.new_set[i - 1]) || op == Op::kAnd || op == Op::kNext) {
          pick = i - 1;
          break;
        }
      }
      const Formula* eta = q.new_set[pick];
      q.new_set.erase(q.new_set.begin() + static_cast<ptrdiff_t>(pick));
      if (SetContains(q.old_set, eta)) {
        pending.push_back(std::move(q));
        continue;
      }
      if (IsBasic(eta)) {
        if (eta->op() == Op::kFalse) continue;  // inconsistent: discard
        if (eta->op() != Op::kTrue) {
          // Contradiction check against Old's literals.
          const Formula* negation = factory_->Not(eta);
          if (SetContains(q.old_set, negation)) continue;
          SetInsert(&q.old_set, eta);
        }
        pending.push_back(std::move(q));
        continue;
      }
      switch (eta->op()) {
        case Op::kAnd: {
          SetInsert(&q.old_set, eta);
          if (!SetContains(q.old_set, eta->left())) {
            q.new_set.push_back(eta->left());
          }
          if (!SetContains(q.old_set, eta->right())) {
            q.new_set.push_back(eta->right());
          }
          pending.push_back(std::move(q));
          break;
        }
        case Op::kNext: {
          SetInsert(&q.old_set, eta);
          SetInsert(&q.next_set, eta->left());
          pending.push_back(std::move(q));
          break;
        }
        case Op::kOr: {
          // Subsumption: if either disjunct already holds in this node, the
          // disjunction holds — the other branch would only build a more
          // constrained node accepting a subset of the same runs.
          if (SetContains(q.old_set, eta->left()) ||
              SetContains(q.old_set, eta->right())) {
            SetInsert(&q.old_set, eta);
            pending.push_back(std::move(q));
            break;
          }
          WorkNode q1 = q;
          SetInsert(&q1.old_set, eta);
          if (!SetContains(q1.old_set, eta->left())) {
            q1.new_set.push_back(eta->left());
          }
          WorkNode q2 = std::move(q);
          SetInsert(&q2.old_set, eta);
          if (!SetContains(q2.old_set, eta->right())) {
            q2.new_set.push_back(eta->right());
          }
          pending.push_back(std::move(q1));
          pending.push_back(std::move(q2));
          break;
        }
        case Op::kUntil: {
          // aUb: (a ∧ X(aUb)) ∨ b. Subsumption: b already in Old fulfills
          // the until with no extra obligation.
          if (SetContains(q.old_set, eta->right())) {
            SetInsert(&q.old_set, eta);
            pending.push_back(std::move(q));
            break;
          }
          WorkNode q1 = q;
          SetInsert(&q1.old_set, eta);
          if (!SetContains(q1.old_set, eta->left())) {
            q1.new_set.push_back(eta->left());
          }
          SetInsert(&q1.next_set, eta);
          WorkNode q2 = std::move(q);
          SetInsert(&q2.old_set, eta);
          if (!SetContains(q2.old_set, eta->right())) {
            q2.new_set.push_back(eta->right());
          }
          pending.push_back(std::move(q1));
          pending.push_back(std::move(q2));
          break;
        }
        case Op::kRelease: {
          // aRb: (b ∧ X(aRb)) ∨ (a ∧ b). Subsumption: a ∧ b already in Old
          // releases the obligation outright.
          if (SetContains(q.old_set, eta->left()) &&
              SetContains(q.old_set, eta->right())) {
            SetInsert(&q.old_set, eta);
            pending.push_back(std::move(q));
            break;
          }
          WorkNode q1 = q;
          SetInsert(&q1.old_set, eta);
          if (!SetContains(q1.old_set, eta->right())) {
            q1.new_set.push_back(eta->right());
          }
          SetInsert(&q1.next_set, eta);
          WorkNode q2 = std::move(q);
          SetInsert(&q2.old_set, eta);
          if (!SetContains(q2.old_set, eta->left())) {
            q2.new_set.push_back(eta->left());
          }
          if (!SetContains(q2.old_set, eta->right())) {
            q2.new_set.push_back(eta->right());
          }
          pending.push_back(std::move(q1));
          pending.push_back(std::move(q2));
          break;
        }
        default:
          return Status::InvalidArgument(
              "tableau input must be in negation normal form (found " +
              std::string(ltl::OpSymbol(eta->op())) + ")");
      }
    }
    return Status::OK();
  }

  /// A fully-expanded node: merge with an existing state with the same
  /// (Old, Next), or mint a new state and enqueue its successor. New states'
  /// formula sets are copied into the builder arena once and shared by the
  /// interning map key and the StateInfo — no per-state vector allocations.
  Status Register(WorkNode q) {
    const StateKey probe{q.old_set.data(), q.next_set.data(),
                         static_cast<uint32_t>(q.old_set.size()),
                         static_cast<uint32_t>(q.next_set.size())};
    auto it = states_.find(probe);
    if (it != states_.end()) {
      MergeIncoming(it->second, q.incoming);
      return Status::OK();
    }
    if (states_.size() >= options_.max_nodes) {
      return Status::ResourceExhausted(StringFormat(
          "tableau exceeded %zu nodes", options_.max_nodes));
    }
    const uint32_t id = static_cast<uint32_t>(state_infos_.size());
    const StateKey key{
        arena_.CopyArray(q.old_set.data(), q.old_set.size()),
        arena_.CopyArray(q.next_set.data(), q.next_set.size()),
        probe.old_size, probe.next_size};
    states_.emplace(key, id);
    state_infos_.push_back(StateInfo{key, std::move(q.incoming)});

    WorkNode succ;
    succ.incoming.push_back(id);
    // The registered Next set becomes New of the successor.
    succ.new_set.assign(key.next_set, key.next_set + key.next_size);
    queue_.push_back(std::move(succ));
    return Status::OK();
  }

  void MergeIncoming(uint32_t state, const std::vector<uint32_t>& incoming) {
    auto& inc = state_infos_[state].incoming;
    for (uint32_t src : incoming) {
      if (std::find(inc.begin(), inc.end(), src) == inc.end()) {
        inc.push_back(src);
      }
    }
  }

  GeneralizedBuchi Finish() {
    GeneralizedBuchi out;
    automata::Buchi& ba = out.automaton;
    // State 0 (made by the constructor) is the fresh initial state; tableau
    // state i maps to automaton state i+1.
    ba.AddStates(state_infos_.size());
    ba.SetInitial(0);

    for (uint32_t i = 0; i < state_infos_.size(); ++i) {
      const StateInfo& info = state_infos_[i];
      Label label = LiteralLabel(info.sets.old_set, info.sets.old_size);
      for (uint32_t src : info.incoming) {
        const automata::StateId from = src == kInitMark ? 0 : src + 1;
        ba.AddTransition(from, label, i + 1);
      }
    }

    out.acceptance.reserve(untils_.size());
    for (const Formula* u : untils_) {
      Bitset f_set(ba.StateCount());
      // The fresh initial state is never on a cycle; exclude it.
      for (uint32_t i = 0; i < state_infos_.size(); ++i) {
        const StateInfo& info = state_infos_[i];
        if (!SpanContains(info.sets.old_set, info.sets.old_size, u) ||
            SpanContains(info.sets.old_set, info.sets.old_size, u->right())) {
          f_set.Set(i + 1);
        }
      }
      out.acceptance.push_back(std::move(f_set));
    }
    return out;
  }

  static Label LiteralLabel(const Formula* const* old_set, uint32_t n) {
    Label label;
    for (uint32_t i = 0; i < n; ++i) {
      const Formula* f = old_set[i];
      if (f->op() == Op::kProp) {
        label.AddPositive(f->prop());
      } else if (f->op() == Op::kNot && f->left()->op() == Op::kProp) {
        label.AddNegative(f->left()->prop());
      }
    }
    return label;
  }

  struct StateInfo {
    StateKey sets;  ///< arena-backed Old/Next spans, shared with states_
    std::vector<uint32_t> incoming;
  };

  const Formula* formula_;
  FormulaFactory* factory_;
  TableauOptions options_;
  FormulaSet untils_;
  /// Arena for registered states' formula-set arrays (see Register). The
  /// 16 KiB blocks keep a typical translation within one or two allocations.
  util::Arena arena_{16 * 1024};
  std::unordered_map<StateKey, uint32_t, StateKeyHash, StateKeyEq> states_;
  std::vector<StateInfo> state_infos_;
  std::vector<WorkNode> queue_;  ///< Fully-expanded states' pending successors.
  size_t work_done_ = 0;
};

}  // namespace

Result<GeneralizedBuchi> BuildTableau(const Formula* formula,
                                      FormulaFactory* factory,
                                      const TableauOptions& options) {
  return TableauBuilder(formula, factory, options).Build();
}

}  // namespace ctdb::translate
