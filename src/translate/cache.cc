#include "translate/cache.h"

#include <cstring>
#include <functional>
#include <utility>

#include "obs/metrics.h"

namespace ctdb::translate {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  char bytes[sizeof(v)];
  std::memcpy(bytes, &v, sizeof(v));
  out->append(bytes, sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  char bytes[sizeof(v)];
  std::memcpy(bytes, &v, sizeof(v));
  out->append(bytes, sizeof(v));
}

}  // namespace

std::string CanonicalTranslationKey(const ltl::Formula* nnf,
                                    const TranslateOptions& options) {
  std::string out;
  // Post-order DFS over the DAG; each node is serialized once, at the moment
  // its dense id is assigned, referencing the (already assigned) child ids.
  // Hash-consing makes shared subterms shared pointers, so the visit order —
  // and therefore the byte string — is a function of formula structure only.
  std::unordered_map<const ltl::Formula*, uint32_t> ids;
  struct Frame {
    const ltl::Formula* f;
    bool expanded;
  };
  std::vector<Frame> stack;
  stack.push_back({nnf, false});
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (ids.count(frame.f) != 0) continue;
    if (!frame.expanded) {
      stack.push_back({frame.f, true});
      if (frame.f->left() != nullptr) stack.push_back({frame.f->left(), false});
      if (frame.f->right() != nullptr) {
        stack.push_back({frame.f->right(), false});
      }
      continue;
    }
    const uint32_t id = static_cast<uint32_t>(ids.size());
    ids.emplace(frame.f, id);
    out.push_back(static_cast<char>(frame.f->op()));
    if (frame.f->op() == ltl::Op::kProp) AppendU32(&out, frame.f->prop());
    if (frame.f->left() != nullptr) AppendU32(&out, ids.at(frame.f->left()));
    if (frame.f->right() != nullptr) AppendU32(&out, ids.at(frame.f->right()));
  }
  AppendU32(&out, ids.at(nnf));
  // Every knob that changes the translation output participates in the key.
  out.push_back(options.simplify_formula ? 1 : 0);
  out.push_back(options.prune ? 1 : 0);
  out.push_back(options.reduce ? 1 : 0);
  AppendU64(&out, options.tableau.max_nodes);
  AppendU64(&out, options.tableau.max_work);
  return out;
}

TranslationCache::TranslationCache(size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) return;
  const size_t shard_count = capacity_ < 64 ? 1 : 8;
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    // Distribute the budget; earlier shards absorb the remainder so the
    // per-shard budgets sum exactly to `capacity`.
    shard->max_entries =
        capacity_ / shard_count + (i < capacity_ % shard_count ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

TranslationCache::Shard& TranslationCache::ShardOf(std::string_view key) {
  return *shards_[std::hash<std::string_view>{}(key) % shards_.size()];
}

std::shared_ptr<const automata::Buchi> TranslationCache::Lookup(
    std::string_view key) {
  if (!enabled()) return nullptr;
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.by_key.find(key);
  if (it == shard.by_key.end()) {
    ++shard.misses;
    CTDB_OBS_COUNT("translate_cache.misses", 1);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  CTDB_OBS_COUNT("translate_cache.hits", 1);
  return it->second->value;
}

void TranslationCache::Insert(std::string_view key,
                              std::shared_ptr<const automata::Buchi> value) {
  if (!enabled()) return;
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.by_key.find(key);
  if (it != shard.by_key.end()) {
    // Raced with another translator of the same formula: keep one value.
    it->second->value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{std::string(key), std::move(value)});
  shard.by_key.emplace(std::string_view(shard.lru.front().key),
                       shard.lru.begin());
  while (shard.lru.size() > shard.max_entries) {
    shard.by_key.erase(std::string_view(shard.lru.back().key));
    shard.lru.pop_back();
    ++shard.evictions;
    CTDB_OBS_COUNT("translate_cache.evictions", 1);
  }
}

TranslationCacheStats TranslationCache::Stats() const {
  TranslationCacheStats stats;
  stats.capacity = capacity_;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.entries += shard->lru.size();
  }
  return stats;
}

Result<std::shared_ptr<const automata::Buchi>> LtlToBuchiCached(
    const ltl::Formula* formula, ltl::FormulaFactory* factory,
    TranslationCache* cache, const TranslateOptions& options,
    TranslateInfo* info, bool* cache_hit) {
  if (cache_hit != nullptr) *cache_hit = false;
  const ltl::Formula* nnf = NormalizeForTableau(formula, factory, options);
  if (cache == nullptr || !cache->enabled()) {
    CTDB_ASSIGN_OR_RETURN(automata::Buchi ba,
                          NnfToBuchi(nnf, factory, options, info));
    return std::make_shared<const automata::Buchi>(std::move(ba));
  }
  const std::string key = CanonicalTranslationKey(nnf, options);
  if (std::shared_ptr<const automata::Buchi> hit = cache->Lookup(key)) {
    if (cache_hit != nullptr) *cache_hit = true;
    if (info != nullptr) {
      info->final_states = hit->StateCount();
      info->final_transitions = hit->TransitionCount();
    }
    return hit;
  }
  CTDB_ASSIGN_OR_RETURN(automata::Buchi ba,
                        NnfToBuchi(nnf, factory, options, info));
  auto shared = std::make_shared<const automata::Buchi>(std::move(ba));
  cache->Insert(key, shared);
  return shared;
}

}  // namespace ctdb::translate
