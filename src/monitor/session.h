// One open event stream: a pinned database snapshot plus the incremental
// stepper of every contract visible at the pin (DESIGN.md §15).
//
// Snapshot isolation. Opening a session captures a DatabaseSnapshot and a
// system-period clock: `as_of` = 0 pins the latest state at open, any other
// value pins the historical contract set visible at that clock (the same
// VisibleAt axis as time-travel queries, DESIGN.md §14). Contracts
// registered, replaced or unregistered after the pin are invisible to the
// session for its whole lifetime — the shared_ptr'd snapshot keeps every
// pinned version (history included) alive.
//
// Alphabet pruning. Each append batch computes the union alphabet of its
// events once; a contract sharing no event with it sees only contract-silent
// instants, so its stepper takes the StepSilent fast path and typically
// skips the whole batch at a fixpoint. The citing-contract sets of the
// prefilter index (index/prefilter.h) justify the alphabet test: a contract
// appears in S(+e) ∪ S(−e) for every event e it cites (expansion E(γ)),
// so cited_events() disjoint from the batch alphabet proves no transition
// label can distinguish the batch from silence.

#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "broker/snapshot.h"
#include "monitor/stepper.h"
#include "monitor/types.h"
#include "util/result.h"

namespace ctdb::monitor {

/// \brief One open stream. Appends on one session are serialized by an
/// internal mutex; different sessions are fully independent.
class StreamSession {
 public:
  /// Pins `snapshot` at `options.as_of` (0 = the snapshot's latest clock)
  /// and builds a stepper per visible contract version. InvalidArgument
  /// when `as_of` is below the snapshot's history retention floor.
  static Result<std::unique_ptr<StreamSession>> Open(
      std::shared_ptr<const broker::DatabaseSnapshot> snapshot,
      const StreamOptions& options);

  /// What Open pinned.
  StreamOpenInfo open_info() const {
    return {clock_, static_cast<uint32_t>(steppers_.size())};
  }

  /// Appends a batch of events, advancing every tracked contract, and
  /// reports the verdict changes since the previous append (sorted by
  /// contract id). The baseline is each contract's verdict on the empty
  /// prefix at open, so deltas carry exactly the changes events caused;
  /// Summary() always has the full current picture.
  StreamAppendResult Append(const EventBatch& events);

  /// Final summary: total events plus every tracked contract's verdict.
  StreamCloseInfo Summary() const;

  uint64_t clock() const { return clock_; }
  size_t tracked() const { return steppers_.size(); }

 private:
  StreamSession(std::shared_ptr<const broker::DatabaseSnapshot> snapshot,
                const StreamOptions& options, uint64_t clock,
                std::vector<const broker::Contract*> contracts);

  /// Keeps every tracked contract version (live or historical) alive.
  std::shared_ptr<const broker::DatabaseSnapshot> snapshot_;
  const StreamOptions options_;
  const uint64_t clock_;

  mutable std::mutex mutex_;
  std::vector<ContractStepper> steppers_;
  /// Verdict last reported per stepper (deltas are changes against this).
  std::vector<StreamVerdict> reported_;
  uint64_t events_ = 0;
};

}  // namespace ctdb::monitor
