// Incremental finite-trace evaluation of one contract automaton over a
// stream (DESIGN.md §15).
//
// A ContractStepper holds the NFA state set reachable on the stream prefix
// read so far — a util bitset over the contract BA's states — and advances
// it one snapshot at a time: evaluate each distinct transition label against
// the snapshot once, then fold every enabled transition out of the current
// set into the next. Verdicts (monitor/types.h) fall out of two precomputed
// masks:
//
//   finals        accepting states — intersecting them means the prefix is
//                 accepted as a finite word (satisfied);
//   live          states from which a seed state (a state on a cycle
//                 through a final state, §6.2.4) is reachable — leaving
//                 them means no infinite extension is accepted (violated).
//
// `violated` takes precedence over `satisfied` when both hold (possible
// only for automata with accepting states outside every accepting cycle)
// and is absorbing: non-live states have only non-live successors, so a
// violated stepper freezes and stops paying for further events.
//
// Contract-silent instants — snapshots sharing no event with the contract's
// vocabulary — enable exactly the labels with no positive literal, the same
// for every such snapshot. StepSilent exploits that: it advances with the
// precomputed silent label set and stops at the first fixpoint, which is
// what lets the session skip whole batches for alphabet-disjoint contracts.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "base/run.h"
#include "broker/contract.h"
#include "monitor/types.h"
#include "util/bitset.h"

namespace ctdb::monitor {

/// \brief The per-contract incremental monitor state.
///
/// Not internally synchronized — the owning session serializes appends.
/// `contract` must outlive the stepper (the session's pinned snapshot
/// guarantees it).
class ContractStepper {
 public:
  explicit ContractStepper(const broker::Contract* contract);

  uint32_t id() const { return contract_->id; }
  const broker::Contract& contract() const { return *contract_; }

  /// Events cited by the contract's specification (the pruning alphabet).
  const Bitset& cited_events() const { return contract_->events; }

  /// Verdict on the prefix read so far.
  StreamVerdict verdict() const { return verdict_; }

  /// True once the verdict can never change again (violated is absorbing).
  bool frozen() const { return frozen_; }

  /// Reachable state set on the current prefix (tests / diagnostics).
  const Bitset& states() const { return current_; }

  /// Advances by one snapshot (event-id bitset over the database
  /// vocabulary). No-op when frozen.
  void Step(const Snapshot& snapshot);

  /// \brief Advances by up to `count` contract-silent instants.
  ///
  /// Semantically identical to `count` Step calls with snapshots disjoint
  /// from cited_events(); stops early once the state set is a fixpoint of
  /// the silent step (every further silent instant is a no-op). Returns the
  /// number of steps actually executed — the caller counts the remainder as
  /// pruned.
  uint64_t StepSilent(uint64_t count);

 private:
  void UpdateVerdict();
  /// One transition-relation application with the given per-label enable
  /// flags; returns true when the state set changed.
  bool Advance(const std::vector<uint8_t>& enabled);

  const broker::Contract* contract_;

  /// Distinct transition labels and, per state, its outgoing transitions as
  /// (index into labels_, target state).
  std::vector<Label> labels_;
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> trans_;

  /// States from which some seed state is reachable (backward closure).
  Bitset live_;

  Bitset current_;  ///< reachable on the prefix read so far
  Bitset next_;     ///< scratch for Advance

  std::vector<uint8_t> enabled_;         ///< per-label scratch
  std::vector<uint8_t> silent_enabled_;  ///< labels with no positive literal

  /// 1 = current_ is a fixpoint of the silent step, 0 = it is not,
  /// -1 = unknown (recomputed lazily by StepSilent).
  int silent_stable_ = -1;

  StreamVerdict verdict_ = StreamVerdict::kUndetermined;
  bool frozen_ = false;
};

}  // namespace ctdb::monitor
