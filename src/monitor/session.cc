#include "monitor/session.h"

#include <utility>

namespace ctdb::monitor {

Result<std::unique_ptr<StreamSession>> StreamSession::Open(
    std::shared_ptr<const broker::DatabaseSnapshot> snapshot,
    const StreamOptions& options) {
  uint64_t clock = options.as_of;
  std::vector<const broker::Contract*> contracts;
  if (clock == 0 || clock >= snapshot->sequence()) {
    // Latest (a clock at or past the snapshot's is clamped, mirroring
    // QueryOptions::as_of).
    clock = snapshot->sequence();
    for (uint32_t id = 0; id < snapshot->slot_count(); ++id) {
      if (const broker::Contract* c = snapshot->contract_or_null(id)) {
        contracts.push_back(c);
      }
    }
  } else {
    if (clock < snapshot->history().floor()) {
      return Status::InvalidArgument(
          "stream as_of " + std::to_string(clock) +
          " is below the history retention floor " +
          std::to_string(snapshot->history().floor()));
    }
    contracts = snapshot->VisibleAt(clock);
  }
  return std::unique_ptr<StreamSession>(new StreamSession(
      std::move(snapshot), options, clock, std::move(contracts)));
}

StreamSession::StreamSession(
    std::shared_ptr<const broker::DatabaseSnapshot> snapshot,
    const StreamOptions& options, uint64_t clock,
    std::vector<const broker::Contract*> contracts)
    : snapshot_(std::move(snapshot)), options_(options), clock_(clock) {
  steppers_.reserve(contracts.size());
  reported_.reserve(contracts.size());
  for (const broker::Contract* c : contracts) {
    steppers_.emplace_back(c);
    reported_.push_back(steppers_.back().verdict());
  }
}

StreamAppendResult StreamSession::Append(const EventBatch& events) {
  std::lock_guard<std::mutex> lock(mutex_);
  StreamAppendResult result;

  // Resolve event names once against the pinned snapshot's vocabulary.
  // Unknown names never enable a transition and stay out of the alphabet —
  // a live trace legitimately carries events no contract cites.
  const Vocabulary& vocab = snapshot_->vocabulary();
  std::vector<Snapshot> batch;
  batch.reserve(events.size());
  Snapshot alphabet(vocab.size());
  for (const std::vector<std::string>& instant : events) {
    Snapshot s(vocab.size());
    for (const std::string& name : instant) {
      if (auto id = vocab.Find(name); id.ok()) s.Set(*id);
    }
    alphabet |= s;
    batch.push_back(std::move(s));
  }

  const uint64_t count = batch.size();
  for (size_t i = 0; i < steppers_.size(); ++i) {
    ContractStepper& stepper = steppers_[i];
    if (stepper.frozen()) {
      // Verdict is permanent; the whole batch is skipped.
      result.pruned += count;
    } else if (options_.prune &&
               alphabet.DisjointWith(stepper.cited_events())) {
      const uint64_t executed = stepper.StepSilent(count);
      result.stepped += executed;
      result.pruned += count - executed;
    } else {
      for (const Snapshot& s : batch) stepper.Step(s);
      result.stepped += count;
    }
    if (stepper.verdict() != reported_[i]) {
      reported_[i] = stepper.verdict();
      result.deltas.push_back({stepper.id(), stepper.verdict()});
    }
  }
  // Steppers are built in ascending contract-id order, so deltas already
  // are; keep that as the documented invariant.
  events_ += count;
  result.events = events_;
  return result;
}

StreamCloseInfo StreamSession::Summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  StreamCloseInfo info;
  info.events = events_;
  info.verdicts.reserve(steppers_.size());
  for (const ContractStepper& stepper : steppers_) {
    switch (stepper.verdict()) {
      case StreamVerdict::kSatisfied:
        ++info.satisfied;
        break;
      case StreamVerdict::kViolated:
        ++info.violated;
        break;
      case StreamVerdict::kUndetermined:
        ++info.undetermined;
        break;
    }
    info.verdicts.push_back({stepper.id(), stepper.verdict()});
  }
  return info;
}

}  // namespace ctdb::monitor
