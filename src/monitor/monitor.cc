#include "monitor/monitor.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace ctdb::monitor {

std::shared_ptr<StreamSession> StreamMonitor::FindLocked(
    std::string_view name) const {
  const auto it = streams_.find(name);
  return it == streams_.end() ? nullptr : it->second;
}

Result<StreamOpenInfo> StreamMonitor::Open(
    std::string name, std::shared_ptr<const broker::DatabaseSnapshot> snapshot,
    const StreamOptions& options) {
  CTDB_OBS_SPAN(span, "monitor.open");
  auto session = StreamSession::Open(std::move(snapshot), options);
  CTDB_RETURN_NOT_OK(session.status());
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] =
      streams_.emplace(std::move(name), std::move(*session));
  if (!inserted) {
    return Status::AlreadyExists("stream '" + it->first + "' is open");
  }
  CTDB_OBS_COUNT("monitor.streams.opened", 1);
  CTDB_OBS_GAUGE_ADD("monitor.streams.open", 1);
  return it->second->open_info();
}

Result<StreamAppendResult> StreamMonitor::Append(std::string_view name,
                                                 const EventBatch& events) {
  std::shared_ptr<StreamSession> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    session = FindLocked(name);
  }
  if (!session) {
    return Status::NotFound("stream '" + std::string(name) + "' is not open");
  }
  CTDB_OBS_SPAN(span, "monitor.append");
  ctdb::Timer timer;
  StreamAppendResult result = session->Append(events);
  CTDB_OBS_HIST("monitor.append_us",
                static_cast<uint64_t>(timer.ElapsedMicros()));
  CTDB_OBS_COUNT("monitor.events", events.size());
  CTDB_OBS_COUNT("monitor.verdicts", result.deltas.size());
  CTDB_OBS_COUNT("monitor.stepped", result.stepped);
  CTDB_OBS_COUNT("monitor.pruned", result.pruned);
  return result;
}

Result<StreamCloseInfo> StreamMonitor::Close(std::string_view name) {
  std::shared_ptr<StreamSession> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = streams_.find(name);
    if (it != streams_.end()) {
      session = std::move(it->second);
      streams_.erase(it);
    }
  }
  if (!session) {
    return Status::NotFound("stream '" + std::string(name) + "' is not open");
  }
  CTDB_OBS_COUNT("monitor.streams.closed", 1);
  CTDB_OBS_GAUGE_ADD("monitor.streams.open", -1);
  return session->Summary();
}

Result<StreamCloseInfo> StreamMonitor::Summary(std::string_view name) const {
  std::shared_ptr<StreamSession> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    session = FindLocked(name);
  }
  if (!session) {
    return Status::NotFound("stream '" + std::string(name) + "' is not open");
  }
  return session->Summary();
}

}  // namespace ctdb::monitor
