// The stream registry: named StreamSessions over one broker's snapshots
// (DESIGN.md §15).
//
// StreamMonitor is the subsystem a broker embeds to serve
// StreamOpen/StreamAppend/StreamClose. It owns the name → session map under
// a small mutex held only for map lookups — appends run on the session's
// own lock, so streams make progress independently of each other and of the
// registry. Streams are ephemeral by design: they are monitoring state, not
// contract state, so they are not WAL-logged and do not survive a restart
// (a reconnecting client re-opens and replays from its own source).
//
// Observability: monitor.streams.opened / monitor.streams.closed /
// monitor.streams.open (gauge), monitor.events, monitor.verdicts (deltas
// emitted), monitor.stepped / monitor.pruned (contract×event step counters)
// and the monitor.append span with per-batch timing.

#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "monitor/session.h"
#include "monitor/types.h"
#include "util/result.h"

namespace ctdb::monitor {

/// \brief Name → open stream map. All members are safe to call
/// concurrently; per-stream appends serialize on the session.
class StreamMonitor {
 public:
  /// Opens stream `name` pinned to `snapshot` (see StreamSession::Open).
  /// AlreadyExists when a stream of that name is open.
  Result<StreamOpenInfo> Open(
      std::string name,
      std::shared_ptr<const broker::DatabaseSnapshot> snapshot,
      const StreamOptions& options = {});

  /// Appends events to stream `name`; NotFound when it is not open.
  Result<StreamAppendResult> Append(std::string_view name,
                                    const EventBatch& events);

  /// Closes stream `name`, returning its final summary; NotFound when it is
  /// not open.
  Result<StreamCloseInfo> Close(std::string_view name);

  /// Summary of an open stream without closing it (tests / tools).
  Result<StreamCloseInfo> Summary(std::string_view name) const;

  size_t open_streams() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return streams_.size();
  }

 private:
  std::shared_ptr<StreamSession> FindLocked(std::string_view name) const;

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<StreamSession>, std::less<>> streams_;
};

}  // namespace ctdb::monitor
