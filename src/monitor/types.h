// Value types of the streaming compliance monitor (DESIGN.md §15).
//
// A stream is a named, ordered sequence of events; each event is the set of
// vocabulary events observed at one instant (a base/run.h Snapshot, carried
// on the wire as a list of event names). Opening a stream pins the contract
// set visible at that moment (snapshot isolation — the lifecycle clock of
// DESIGN.md §14 is the pin), and every appended event advances each tracked
// contract's Büchi automaton under finite-trace acceptance:
//
//   satisfied     the reachable state set intersects the final states — the
//                 prefix read so far is accepted as a finite word;
//   violated      the reachable state set contains no state from which an
//                 accepting cycle is reachable (seed states, §6.2.4) — no
//                 extension of the prefix satisfies the contract. Absorbing.
//   undetermined  neither: the prefix is not accepted yet, but some
//                 extension still could be.
//
// Verdicts are per-prefix; `violated` is permanent (dead states are closed
// under successors), the other two may flip as the stream continues.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ctdb::monitor {

/// Three-valued finite-trace verdict of one contract on one stream prefix.
enum class StreamVerdict : uint8_t {
  kUndetermined = 0,
  kSatisfied = 1,
  kViolated = 2,
};

/// "undetermined" / "satisfied" / "violated".
const char* StreamVerdictName(StreamVerdict v);

/// One event batch: each element is one instant's set of event names.
/// Names unknown to the database vocabulary are legal — a live trace may
/// carry events no contract cites — and simply never enable a transition.
using EventBatch = std::vector<std::vector<std::string>>;

/// Stream-open configuration.
struct StreamOptions {
  /// Pin contract visibility at this system-period clock (DESIGN.md §14).
  /// 0 (the default) pins the latest state at open. A value below the
  /// retention floor is InvalidArgument, exactly like QueryOptions::as_of.
  uint64_t as_of = 0;

  /// Alphabet pruning: skip stepping contracts that share no event with an
  /// appended batch and whose state set is already stable under
  /// contract-silent instants. Off is the ablation baseline; verdicts are
  /// identical either way (held by RunMonitorDifferential).
  bool prune = true;
};

/// What opening a stream pinned.
struct StreamOpenInfo {
  uint64_t clock = 0;    ///< system-period clock the stream is pinned at
  uint32_t tracked = 0;  ///< contract versions visible (and monitored) there
};

/// One verdict change: contract `contract_id` moved to `verdict` at some
/// event of the batch that produced the delta.
struct VerdictDelta {
  uint32_t contract_id = 0;
  StreamVerdict verdict = StreamVerdict::kUndetermined;
  bool operator==(const VerdictDelta&) const = default;
};

/// Outcome of one append: the verdict changes since the previous append
/// (sorted by contract id) plus stepping counters.
struct StreamAppendResult {
  std::vector<VerdictDelta> deltas;
  uint64_t events = 0;   ///< stream length after this append
  uint64_t stepped = 0;  ///< contract×event steps actually executed
  uint64_t pruned = 0;   ///< contract×event steps skipped by pruning
};

/// Final per-stream summary returned by close.
struct StreamCloseInfo {
  uint64_t events = 0;  ///< total events the stream saw
  uint32_t satisfied = 0;
  uint32_t violated = 0;
  uint32_t undetermined = 0;
  /// Final verdict of every tracked contract, sorted by contract id.
  std::vector<VerdictDelta> verdicts;
};

}  // namespace ctdb::monitor
