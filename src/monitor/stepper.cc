#include "monitor/stepper.h"

#include <algorithm>

#include "automata/buchi.h"

namespace ctdb::monitor {

const char* StreamVerdictName(StreamVerdict v) {
  switch (v) {
    case StreamVerdict::kUndetermined:
      return "undetermined";
    case StreamVerdict::kSatisfied:
      return "satisfied";
    case StreamVerdict::kViolated:
      return "violated";
  }
  return "unknown";
}

ContractStepper::ContractStepper(const broker::Contract* contract)
    : contract_(contract) {
  const automata::Buchi& ba = contract->automaton();
  const size_t states = ba.StateCount();

  // Deduplicate labels so each is evaluated once per snapshot no matter how
  // many transitions carry it; pattern automata reuse a handful of labels
  // across most transitions.
  trans_.resize(states);
  for (automata::StateId s = 0; s < states; ++s) {
    for (const automata::Transition& t : ba.Out(s)) {
      uint32_t label_idx = 0;
      for (; label_idx < labels_.size(); ++label_idx) {
        if (labels_[label_idx] == t.label) break;
      }
      if (label_idx == labels_.size()) labels_.push_back(t.label);
      trans_[s].emplace_back(label_idx, t.to);
    }
  }
  enabled_.resize(labels_.size());
  silent_enabled_.resize(labels_.size());
  for (size_t i = 0; i < labels_.size(); ++i) {
    silent_enabled_[i] = labels_[i].positive().None() ? 1 : 0;
  }

  // live_ = backward closure of the seed states: a state is live iff some
  // accepting cycle remains reachable from it. Non-live states have only
  // non-live successors, which is what makes `violated` absorbing.
  live_ = contract->seed_states;
  live_.Resize(states);
  const auto predecessors = ba.BuildReverseAdjacency();
  std::vector<automata::StateId> frontier;
  for (size_t s : live_.Indices()) frontier.push_back(static_cast<automata::StateId>(s));
  while (!frontier.empty()) {
    const automata::StateId s = frontier.back();
    frontier.pop_back();
    for (const auto& [from, idx] : predecessors[s]) {
      (void)idx;
      if (!live_.Test(from)) {
        live_.Set(from);
        frontier.push_back(from);
      }
    }
  }

  current_.Resize(states);
  next_.Resize(states);
  current_.Set(ba.initial());
  UpdateVerdict();
}

void ContractStepper::UpdateVerdict() {
  if (!current_.DisjointWith(live_)) {
    verdict_ = current_.DisjointWith(contract_->automaton().finals())
                   ? StreamVerdict::kUndetermined
                   : StreamVerdict::kSatisfied;
  } else {
    verdict_ = StreamVerdict::kViolated;
    frozen_ = true;
  }
}

bool ContractStepper::Advance(const std::vector<uint8_t>& enabled) {
  next_.ClearAll();
  for (size_t s : current_.Indices()) {
    for (const auto& [label_idx, to] : trans_[s]) {
      if (enabled[label_idx]) next_.Set(to);
    }
  }
  if (next_ == current_) return false;
  std::swap(current_, next_);
  return true;
}

void ContractStepper::Step(const Snapshot& snapshot) {
  if (frozen_) return;
  for (size_t i = 0; i < labels_.size(); ++i) {
    enabled_[i] = Satisfies(snapshot, labels_[i]) ? 1 : 0;
  }
  if (Advance(enabled_)) {
    silent_stable_ = -1;
    UpdateVerdict();
  } else if (enabled_ == silent_enabled_) {
    // A full step that happened to be a silent fixpoint application — note
    // the stability so a later silent batch can still be skipped.
    silent_stable_ = 1;
  }
}

uint64_t ContractStepper::StepSilent(uint64_t count) {
  uint64_t executed = 0;
  while (executed < count && !frozen_ && silent_stable_ != 1) {
    ++executed;
    if (Advance(silent_enabled_)) {
      UpdateVerdict();
    } else {
      silent_stable_ = 1;
    }
  }
  return executed;
}

}  // namespace ctdb::monitor
