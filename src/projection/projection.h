// Projections of contract BAs on literal sets (Section 5.1, Definition 8).

#pragma once

#include "automata/buchi.h"
#include "base/label.h"
#include "base/literal.h"
#include "util/bitset.h"

namespace ctdb::projection {

/// \brief The retained-literal masks of a projection: positive literals
/// survive for events in `pos`, negative literals for events in `neg`.
struct RetainedLiterals {
  Bitset pos;
  Bitset neg;

  /// Both polarities of every event in `events`.
  static RetainedLiterals AllOf(const Bitset& events) {
    return RetainedLiterals{events, events};
  }

  /// Exactly the literals in `key`.
  static RetainedLiterals FromKey(const LiteralKey& key);
};

/// \brief The literals a contract projection must retain to stay equivalent
/// for a query citing `query_labels_literals` (Definition 8: the negations of
/// the query's label literals), intersected with the literals the contract's
/// labels actually use.
///
/// Returned as the set of *events* whose literals must be retained — the
/// store projects per event (both polarities), a sound superset (see §5.2
/// observation 1 and DESIGN.md).
Bitset NeededEvents(const Bitset& query_label_events,
                    const Bitset& contract_label_events);

/// Materializes π_L(ba) (mostly for tests; the store projects on the fly).
automata::Buchi Project(const automata::Buchi& ba,
                        const RetainedLiterals& retained);

}  // namespace ctdb::projection
