#include "projection/store.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <mutex>

#include "automata/quotient.h"
#include "obs/metrics.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace ctdb::projection {

using automata::Buchi;
using automata::CoarsestBisimulation;
using automata::Partition;

namespace {

/// Interns canonical partitions, deduplicating by content (hash prefilter,
/// exact comparison on collision).
class PartitionInterner {
 public:
  explicit PartitionInterner(std::vector<Partition>* partitions)
      : partitions_(partitions) {}

  uint32_t Intern(Partition part) {
    const uint64_t h =
        HashRange(part.block_of.begin(), part.block_of.end());
    auto& bucket = buckets_[h];
    for (uint32_t i : bucket) {
      if ((*partitions_)[i] == part) return i;
    }
    partitions_->push_back(std::move(part));
    const uint32_t id = static_cast<uint32_t>(partitions_->size() - 1);
    bucket.push_back(id);
    return id;
  }

 private:
  std::vector<Partition>* partitions_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets_;
};

}  // namespace

/// The lazy quotient cache, sharded by mask so concurrent queries hitting
/// the same contract rarely contend. A quotient is built while holding its
/// shard's lock, so every quotient is constructed exactly once (concurrent
/// requesters of the same mask block and then read the cached entry).
/// Values are held behind unique_ptr, so references handed out remain valid
/// across later insertions and rehashes.
struct ContractProjections::QuotientCache {
  static constexpr size_t kShards = 8;
  struct Shard {
    std::mutex mutex;
    std::unordered_map<EventMask, std::unique_ptr<const Buchi>> quotients;
  };
  std::array<Shard, kShards> shards;

  Shard& ShardFor(EventMask mask) {
    // Fibonacci scramble: masks are small dense integers, so the low bits
    // alone would pile popcount-adjacent masks into the same shard.
    return shards[(mask * 0x9E3779B97F4A7C15ull) >> 61];
  }
};

ContractProjections::ContractProjections() = default;
ContractProjections::~ContractProjections() = default;
ContractProjections::ContractProjections(ContractProjections&&) noexcept =
    default;
ContractProjections& ContractProjections::operator=(
    ContractProjections&&) noexcept = default;

ContractProjections::EventMask ContractProjections::MaskOf(
    const Bitset& events) const {
  EventMask mask = 0;
  for (size_t i = 0; i < event_list_.size(); ++i) {
    if (events.Test(event_list_[i])) mask |= EventMask{1} << i;
  }
  return mask;
}

Bitset ContractProjections::EventsOf(EventMask mask) const {
  Bitset events;
  for (size_t i = 0; i < event_list_.size(); ++i) {
    if ((mask >> i) & 1) {
      if (event_list_[i] >= events.size()) events.Resize(event_list_[i] + 1);
      events.Set(event_list_[i]);
    }
  }
  return events;
}

ContractProjections ContractProjections::WrapOnly(Buchi ba) {
  ContractProjections store;
  store.ba_ = std::move(ba);
  store.stats_.original_states = store.ba_.StateCount();
  return store;
}

ContractProjections ContractProjections::Precompute(
    Buchi ba, const ProjectionStoreOptions& options, util::ThreadPool* pool) {
  ContractProjections store;
  store.ba_ = std::move(ba);
  store.quotients_ = std::make_unique<QuotientCache>();
  const Buchi& automaton = store.ba_;

  const Bitset cited = automaton.CitedEvents();
  for (size_t e : cited.Indices()) {
    store.event_list_.push_back(static_cast<EventId>(e));
  }
  const size_t m = store.event_list_.size();
  assert(m <= 64 && "contracts citing > 64 events are not supported");
  store.full_mask_ = m == 64 ? ~EventMask{0} : (EventMask{1} << m) - 1;

  store.stats_.cited_events = m;
  store.stats_.original_states = automaton.StateCount();

  const bool enumerate_all = m <= options.max_enumerated_events;
  PartitionInterner interner(&store.partitions_);

  // Base of the lattice: the empty projection (all labels become `true`).
  {
    Bitset none;
    automata::BisimulationOptions bisim;
    bisim.retained_pos = &none;
    bisim.retained_neg = &none;
    Partition base = CoarsestBisimulation(automaton, bisim);
    const uint32_t id = interner.Intern(std::move(base));
    store.partition_of_.emplace(EventMask{0}, id);
    ++store.stats_.subsets_computed;
  }

  // Enumerate masks in popcount order so every mask's parent (mask without
  // its highest bit) is already computed — Theorem 3 makes the parent's
  // partition a valid refinement starting point.
  std::vector<EventMask> masks;
  if (enumerate_all) {
    for (EventMask mask = 1; mask <= store.full_mask_ && store.full_mask_ != 0;
         ++mask) {
      masks.push_back(mask);
    }
  } else {
    // Subsets up to max_subset_size, plus the full set.
    std::vector<EventMask> current{0};
    for (size_t size = 1; size <= options.max_subset_size; ++size) {
      std::vector<EventMask> next;
      for (EventMask base : current) {
        const size_t low =
            base == 0 ? 0 : 64 - static_cast<size_t>(std::countl_zero(base));
        for (size_t i = low; i < m; ++i) {
          next.push_back(base | (EventMask{1} << i));
        }
      }
      masks.insert(masks.end(), next.begin(), next.end());
      current = std::move(next);
    }
    if (store.full_mask_ != 0) masks.push_back(store.full_mask_);
  }
  std::sort(masks.begin(), masks.end(), [](EventMask a, EventMask b) {
    const int pa = std::popcount(a);
    const int pb = std::popcount(b);
    return pa != pb ? pa < pb : a < b;
  });
  masks.erase(std::unique(masks.begin(), masks.end()), masks.end());

  // Computes the partition for one mask. Reads only partitions committed
  // for strictly smaller popcounts (a refinement parent is the mask with
  // bits removed), so all masks of one popcount level are independent and
  // can run concurrently while lower levels are already committed.
  auto compute_mask = [&store, &automaton](EventMask mask) -> Partition {
    // Parent: drop the highest bit; walk down until a computed entry is found
    // (always terminates at the empty mask).
    EventMask parent = mask;
    const Partition* start = nullptr;
    while (true) {
      const int high = 63 - std::countl_zero(parent);
      parent &= ~(EventMask{1} << high);
      auto it = store.partition_of_.find(parent);
      if (it != store.partition_of_.end()) {
        start = &store.partitions_[it->second];
        break;
      }
      if (parent == 0) break;
    }

    const Bitset retained = store.EventsOf(mask);
    automata::BisimulationOptions bisim;
    bisim.retained_pos = &retained;
    bisim.retained_neg = &retained;
    bisim.start = start;
    return CoarsestBisimulation(automaton, bisim);
  };

  // Walk the lattice level by level; commit serially in mask order so the
  // interned partition ids — and thus the whole store — are identical to a
  // fully serial precomputation regardless of the pool.
  size_t level_start = 0;
  while (level_start < masks.size()) {
    size_t level_end = level_start + 1;
    while (level_end < masks.size() &&
           std::popcount(masks[level_end]) == std::popcount(masks[level_start])) {
      ++level_end;
    }
    const size_t count = level_end - level_start;
    std::vector<Partition> computed(count);
    bool parallel_ok = false;
    if (pool != nullptr && count > 1) {
      const Status status =
          pool->ParallelFor(0, count, [&](size_t k) -> Status {
            computed[k] = compute_mask(masks[level_start + k]);
            return Status::OK();
          });
      parallel_ok = status.ok();
    }
    if (!parallel_ok) {
      // Serial path; also the fallback if a parallel body failed (so an
      // out-of-memory style exception surfaces exactly as it would have
      // without a pool).
      for (size_t k = 0; k < count; ++k) {
        computed[k] = compute_mask(masks[level_start + k]);
      }
    }
    for (size_t k = 0; k < count; ++k) {
      const uint32_t id = interner.Intern(std::move(computed[k]));
      store.partition_of_.emplace(masks[level_start + k], id);
      ++store.stats_.subsets_computed;
    }
    level_start = level_end;
  }

  store.stats_.distinct_partitions = store.partitions_.size();
  if (store.full_mask_ == 0) {
    store.stats_.full_partition_blocks = store.partitions_[0].block_count;
  } else {
    store.stats_.full_partition_blocks =
        store.partitions_[store.partition_of_.at(store.full_mask_)]
            .block_count;
  }
  for (const Partition& p : store.partitions_) {
    store.stats_.partition_memory_bytes +=
        p.block_of.capacity() * sizeof(uint32_t);
  }
  CTDB_OBS_COUNT("projection.precomputes", 1);
  CTDB_OBS_COUNT("projection.subsets_computed", store.stats_.subsets_computed);
  CTDB_OBS_HIST("projection.distinct_partitions_per_contract",
                store.stats_.distinct_partitions);
  return store;
}

const Buchi& ContractProjections::ForQueryEvents(
    const Bitset& query_label_events) const {
  if (partitions_.empty()) return ba_;  // not precomputed
  EventMask mask = MaskOf(query_label_events);
  auto entry = partition_of_.find(mask);
  if (entry == partition_of_.end()) {
    // No projection precomputed for this exact set: fall back to the full
    // set (language-preserving minimization) — always present.
    CTDB_OBS_COUNT("projection.fallback_full_set", 1);
    mask = full_mask_;
    entry = partition_of_.find(mask);
    if (entry == partition_of_.end()) return ba_;
  }

  // quotients_ is always allocated when partitions_ is non-empty
  // (Precompute is the only producer of both).
  QuotientCache::Shard& shard = quotients_->ShardFor(mask);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto cached = shard.quotients.find(mask);
  if (cached != shard.quotients.end()) {
    CTDB_OBS_COUNT("projection.quotient_cache_hits", 1);
    return *cached->second;
  }
  CTDB_OBS_COUNT("projection.quotient_cache_misses", 1);

  const Bitset retained = EventsOf(mask);
  auto quotient = std::make_unique<const Buchi>(automata::BuildQuotient(
      ba_, partitions_[entry->second], &retained, &retained));
  CTDB_OBS_HIST("projection.quotient_states", quotient->StateCount());
  const Buchi& ref = *quotient;
  shard.quotients.emplace(mask, std::move(quotient));
  return ref;
}

}  // namespace ctdb::projection
