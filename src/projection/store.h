// The precomputed simplified-BA store (Sections 5.2 and 5.3).
//
// At registration time the store computes, for subsets of the contract's
// cited label events, the coarsest bisimulation partition of the contract BA
// with labels projected onto that subset (both polarities of each retained
// event — a sound superset of the exact literal set Definition 8 asks for,
// see DESIGN.md). Partitions are computed in lattice order (Theorem 3: the
// partition for a superset refines the partition for a subset, so refinement
// can start from the parent's partition instead of from scratch) and
// deduplicated — in practice only a small fraction of subsets yield distinct
// partitions (the paper reports ~5%).
//
// Storage follows §5.2: only the partitions (block lists) are kept; quotient
// automata are materialized lazily at query time and cached. The lazy cache
// is internally synchronized (sharded, built once per key under the shard
// lock), so ForQueryEvents is const and safe to call from concurrent query
// threads sharing one contract — the only mutable state on the read path.

#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "automata/bisimulation.h"
#include "automata/buchi.h"
#include "util/bitset.h"

namespace ctdb::util {
class ThreadPool;
}

namespace ctdb::projection {

/// Precomputation limits (the §5.2 escape hatch for complex contracts).
struct ProjectionStoreOptions {
  /// Enumerate every subset of the contract's cited events when there are at
  /// most this many (2^n subsets).
  size_t max_enumerated_events = 12;
  /// Above that, enumerate only subsets up to this size, plus the full set.
  size_t max_subset_size = 3;
};

/// Precomputation statistics (for the §7.4 report).
struct ProjectionStats {
  size_t cited_events = 0;
  size_t subsets_computed = 0;
  size_t distinct_partitions = 0;
  size_t original_states = 0;
  /// States of the quotient under the full-event-set partition (the
  /// language-preserving minimum the store ever uses).
  size_t full_partition_blocks = 0;
  size_t partition_memory_bytes = 0;
};

/// \brief All precomputed projections of one contract BA.
class ContractProjections {
 public:
  ContractProjections();
  ~ContractProjections();

  /// Move-only: the quotient cache owns synchronization state.
  ContractProjections(ContractProjections&&) noexcept;
  ContractProjections& operator=(ContractProjections&&) noexcept;
  ContractProjections(const ContractProjections&) = delete;
  ContractProjections& operator=(const ContractProjections&) = delete;

  /// Runs the lattice-order precomputation over `ba`. With a non-null
  /// `pool`, the partitions of each lattice level (masks of equal popcount
  /// — mutually independent, since a mask's refinement parents all have
  /// strictly smaller popcount) are computed in parallel on the pool;
  /// results are committed in mask order, so the store is identical to the
  /// serial one.
  static ContractProjections Precompute(
      automata::Buchi ba, const ProjectionStoreOptions& options = {},
      util::ThreadPool* pool = nullptr);

  /// Wraps `ba` with no precomputed projections: ForQueryEvents always
  /// returns the original automaton (used when the optimization is off).
  static ContractProjections WrapOnly(automata::Buchi ba);

  /// \brief The simplified automaton to use for a query whose labels cite
  /// `query_label_events`: the quotient of the smallest precomputed
  /// projection that retains every contract literal the compatibility test
  /// can observe. Lazily built and cached; the cache is internally
  /// synchronized, so concurrent calls are safe and each quotient is built
  /// exactly once. Returned references stay valid for the store's lifetime.
  ///
  /// Always sound: falls back to the full-event-set (language-preserving
  /// minimized) automaton when no smaller projection applies.
  const automata::Buchi& ForQueryEvents(const Bitset& query_label_events) const;

  /// The registered (unprojected) automaton.
  const automata::Buchi& original() const { return ba_; }

  ProjectionStats stats() const { return stats_; }

 private:
  using EventMask = uint64_t;

  /// Sharded mutex-protected lazy cache of quotient automata; defined in
  /// store.cc. Allocated by Precompute (the only path that leaves
  /// partitions_ non-empty, which is what ForQueryEvents gates on).
  struct QuotientCache;

  /// Translates global event ids into a mask over `event_list_`; events
  /// outside the contract are dropped (they cannot affect compatibility with
  /// the contract's labels).
  EventMask MaskOf(const Bitset& events) const;
  Bitset EventsOf(EventMask mask) const;

  automata::Buchi ba_;
  std::vector<EventId> event_list_;  ///< cited label events, ascending
  std::unordered_map<EventMask, uint32_t> partition_of_;  ///< mask → index
  std::vector<automata::Partition> partitions_;           ///< deduplicated
  EventMask full_mask_ = 0;
  std::unique_ptr<QuotientCache> quotients_;
  ProjectionStats stats_;
};

}  // namespace ctdb::projection
