#include "projection/projection.h"

#include "automata/ops.h"

namespace ctdb::projection {

RetainedLiterals RetainedLiterals::FromKey(const LiteralKey& key) {
  RetainedLiterals r;
  for (LiteralId id : key) {
    const EventId e = Literal::EventOf(id);
    Bitset& mask = Literal::IsNegated(id) ? r.neg : r.pos;
    if (e >= mask.size()) mask.Resize(e + 1);
    mask.Set(e);
  }
  return r;
}

Bitset NeededEvents(const Bitset& query_label_events,
                    const Bitset& contract_label_events) {
  Bitset needed = query_label_events;
  needed &= contract_label_events;
  return needed;
}

automata::Buchi Project(const automata::Buchi& ba,
                        const RetainedLiterals& retained) {
  return automata::ProjectLabels(ba, retained.pos, retained.neg);
}

}  // namespace ctdb::projection
