// A reusable work-stealing thread-pool executor.
//
// The broker's parallel workloads (per-candidate permission checks,
// batch registration, projection precompute — all "completely parallel",
// §7.4) used to spawn and join raw std::threads on every call, paying
// thread-startup latency per request. This pool is created once (owned by
// the ContractDatabase) and reused: a fixed set of workers, each with its
// own task deque, popping locally in LIFO order for cache locality and
// stealing from other workers in FIFO order when idle.
//
// Scheduling model:
//  * `Submit` enqueues a fire-and-forget task. Calls from a worker thread
//    push onto that worker's own deque (cheap, steal-able); external calls
//    distribute round-robin across the deques.
//  * `ParallelFor(begin, end, body)` runs `body(i)` for every i in
//    [begin, end) and blocks until all iterations finished. The calling
//    thread participates (it claims iterations from the same atomic
//    counter as the workers), which makes nested ParallelFor calls from
//    inside pool tasks deadlock-free: the innermost caller can always
//    drain its own iteration space even when every worker is busy.
//  * Errors propagate as Status: the first non-OK Status returned by a
//    body — or the first exception it throws, converted to
//    Status::Internal — is returned from ParallelFor, and remaining
//    unclaimed iterations are skipped.
//
// Shutdown is graceful: the destructor lets workers drain every queued
// task before joining them.
//
// Thread-safety: Submit/ParallelFor may be called concurrently from any
// thread, including pool workers.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace ctdb::util {

/// \brief Fixed-size work-stealing executor.
class ThreadPool {
 public:
  /// Starts `threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t threads);

  /// Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return queues_.size(); }

  /// Enqueues a fire-and-forget task.
  void Submit(std::function<void()> task);

  /// Runs `body(i)` for i in [begin, end) on the workers and the calling
  /// thread; returns once every iteration completed (or was skipped after
  /// the first error). Returns the first error Status; exceptions thrown
  /// by `body` are captured as Status::Internal.
  Status ParallelFor(size_t begin, size_t end,
                     const std::function<Status(size_t)>& body);

  /// True when called from one of this pool's worker threads.
  bool InWorkerThread() const;

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t worker);
  /// Pops from `worker`'s own deque (LIFO) or steals from another (FIFO).
  bool PopOrSteal(size_t worker, std::function<void()>* task);
  bool AnyQueued();
  void Enqueue(std::function<void()> task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  /// Guards the sleep/wake protocol. `work_signal_` is bumped under this
  /// mutex after every enqueue, so a worker that saw empty deques can
  /// detect tasks that arrived between its scan and its wait.
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  uint64_t work_signal_ = 0;
  bool stop_ = false;

  std::atomic<size_t> next_queue_{0};  ///< round-robin target for externals
};

}  // namespace ctdb::util
