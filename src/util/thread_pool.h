// A reusable work-stealing thread-pool executor.
//
// The broker's parallel workloads (per-candidate permission checks,
// batch registration, projection precompute — all "completely parallel",
// §7.4) used to spawn and join raw std::threads on every call, paying
// thread-startup latency per request. This pool is created once (owned by
// the ContractDatabase) and reused: a fixed set of workers, each with its
// own task deque, popping locally in LIFO order for cache locality and
// stealing from other workers in FIFO order when idle.
//
// Scheduling model:
//  * `Submit` enqueues a fire-and-forget task. Calls from a worker thread
//    push onto that worker's own deque (cheap, steal-able); external calls
//    distribute round-robin across the deques.
//  * `ParallelFor(begin, end, body)` runs `body(i)` for every i in
//    [begin, end) and blocks until all iterations finished. The calling
//    thread participates (it claims iterations from the same atomic
//    counter as the workers), which makes nested ParallelFor calls from
//    inside pool tasks deadlock-free: the innermost caller can always
//    drain its own iteration space even when every worker is busy.
//  * Errors propagate as Status: the first non-OK Status returned by a
//    body — or the first exception it throws, converted to
//    Status::Internal — is returned from ParallelFor, and remaining
//    unclaimed iterations are skipped.
//
// Shutdown is graceful: the destructor lets workers drain every queued
// task before joining them.
//
// Growth semantics: the pool can grow *in place*, up to a capacity fixed at
// construction (default: max(initial workers, hardware concurrency)). Grow
// starts additional workers on the pre-allocated deque slots and never
// replaces the pool, so a warm pool — its OS threads and any pointer callers
// hold to it — survives a request for more concurrency. Requests beyond the
// capacity are clamped: ParallelFor stays correct with fewer workers than
// requested shards because every participant (workers and the calling
// thread) claims iterations from one shared counter; the clamp only reduces
// parallelism, never drops work. The pool never shrinks.
//
// Thread-safety: Submit/ParallelFor/Grow may be called concurrently from any
// thread, including pool workers.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace ctdb::util {

/// \brief Work-stealing executor that can grow in place (see header).
class ThreadPool {
 public:
  /// Starts `threads` workers (clamped to at least 1). `max_threads` fixes
  /// the growth capacity; 0 picks max(threads, hardware concurrency).
  explicit ThreadPool(size_t threads, size_t max_threads = 0);

  /// Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Currently running workers.
  size_t thread_count() const {
    return active_.load(std::memory_order_acquire);
  }

  /// Fixed growth ceiling (see header).
  size_t capacity() const { return queues_.size(); }

  /// Grows to at least `threads` workers in place, clamped to capacity();
  /// never shrinks. Returns the worker count after growing. Safe to call
  /// concurrently with Submit/ParallelFor and with other Grow calls.
  size_t Grow(size_t threads);

  /// Enqueues a fire-and-forget task.
  void Submit(std::function<void()> task);

  /// Runs `body(i)` for i in [begin, end) on the workers and the calling
  /// thread; returns once every iteration completed (or was skipped after
  /// the first error). Returns the first error Status; exceptions thrown
  /// by `body` are captured as Status::Internal.
  Status ParallelFor(size_t begin, size_t end,
                     const std::function<Status(size_t)>& body);

  /// True when called from one of this pool's worker threads.
  bool InWorkerThread() const;

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t worker);
  /// Pops from `worker`'s own deque (LIFO) or steals from another (FIFO).
  bool PopOrSteal(size_t worker, std::function<void()>* task);
  bool AnyQueued();
  void Enqueue(std::function<void()> task);

  /// Sized to capacity() at construction and never resized afterwards, so
  /// workers and enqueuers can index it without synchronization; only the
  /// first `active_` slots ever receive tasks.
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<size_t> active_{0};
  std::mutex grow_mutex_;  ///< serializes Grow (workers_ appends)

  /// Guards the sleep/wake protocol. `work_signal_` is bumped under this
  /// mutex after every enqueue, so a worker that saw empty deques can
  /// detect tasks that arrived between its scan and its wait.
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  uint64_t work_signal_ = 0;
  bool stop_ = false;

  std::atomic<size_t> next_queue_{0};  ///< round-robin target for externals
};

}  // namespace ctdb::util
