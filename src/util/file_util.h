// Filesystem helpers for the durability layer (wal/, broker/persistence):
// whole-file reads, crash-safe atomic writes, and directory fsyncs.
//
// Crash-safety convention (shared by SaveDatabaseToFile and WAL
// checkpoints): a "published" file is produced by writing `<path>.tmp`,
// fsyncing it, renaming it over `path`, and fsyncing the parent directory —
// so at every instant `path` either does not exist or holds a complete old
// or new image, never a torn one. POSIX-only (the project targets linux;
// see CMakeLists).

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace ctdb::util {

/// Reads the whole file into a string. NotFound when the file is absent.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `<path>.tmp`, fsyncs, atomically renames it over
/// `path`, then fsyncs the parent directory. On any error the previous
/// `path` (if it existed) is untouched; a stale `<path>.tmp` may remain and
/// is safe to delete or overwrite.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// fsyncs the directory itself, making previously created/renamed/deleted
/// entries in it durable.
Status SyncDir(const std::string& dir);

/// Creates the directory if it does not exist (single level). OK when it
/// already exists.
Status CreateDirIfMissing(const std::string& dir);

/// Names (not paths) of the directory's entries, excluding "." and "..".
Result<std::vector<std::string>> ListDir(const std::string& dir);

/// Deletes the file. OK when it is already absent.
Status RemoveFileIfExists(const std::string& path);

}  // namespace ctdb::util
