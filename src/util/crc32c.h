// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding every write-ahead-log frame (wal/record.h). Chosen over
// plain CRC32 for its better burst-error detection and because it is the
// checksum of record in comparable storage engines (LevelDB/RocksDB logs,
// iSCSI, ext4 metadata), which keeps our on-disk framing conventional.
//
// Software slicing-by-4 implementation: four 256-entry tables generated at
// first use, ~1 byte/cycle — far faster than the WAL's fsync budget, so a
// hardware (SSE4.2) path is not worth the dispatch complexity here.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ctdb::util {

/// CRC32C of `data`, optionally extending a running crc (pass the previous
/// return value to checksum data split across buffers).
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

}  // namespace ctdb::util
