// Status: error propagation without exceptions across library boundaries.
//
// Follows the Arrow/RocksDB idiom: every fallible public API returns a
// `Status` (or a `Result<T>`, see result.h) instead of throwing. A Status is
// cheap to copy when OK (single pointer-sized enum); error states carry a
// message.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>

namespace ctdb {

/// \brief Machine-readable classification of an error.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller supplied a malformed input (e.g. parse error).
  kNotFound = 2,          ///< A requested entity does not exist.
  kAlreadyExists = 3,     ///< Insert collided with an existing entity.
  kOutOfRange = 4,        ///< An index or size exceeded a configured limit.
  kResourceExhausted = 5, ///< A cap (node budget, DNF size, ...) was hit.
  kInternal = 6,          ///< Invariant violation: indicates a bug in ctdb.
  kUnimplemented = 7,     ///< Feature intentionally not (yet) supported.
  kCorruption = 8,        ///< Stored data failed validation (CRC, framing, ...).
  kUnavailable = 9,       ///< Service overloaded or shutting down; retry later.
};

/// \brief Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: OK, or an error code + message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message);

  /// \name Factory helpers, one per error code.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// @}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }

  /// Error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace ctdb

/// Propagates a non-OK Status to the caller.
#define CTDB_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::ctdb::Status _ctdb_status = (expr);        \
    if (!_ctdb_status.ok()) return _ctdb_status; \
  } while (false)
