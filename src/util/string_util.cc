#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace ctdb {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StringFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(size_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  double v = static_cast<double>(bytes);
  size_t u = 0;
  while (v >= 1024.0 && u + 1 < sizeof(units) / sizeof(units[0])) {
    v /= 1024.0;
    ++u;
  }
  return StringFormat("%.1f %s", v, units[u]);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace ctdb
