// Bump-pointer arena for hot-path construction nodes (formula interning,
// tableau state sets). The translate→check path allocates many small,
// same-lifetime objects per query; an arena turns each into a pointer bump
// and frees them all at once when the owning builder is destroyed, cutting
// allocator churn on the translation-cache miss path.
//
// Objects placed in the arena must be trivially destructible: the arena
// releases raw memory only and never runs destructors (enforced by a
// static_assert in New/AllocateArray).

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace ctdb::util {

/// \brief A growable bump allocator. Not thread-safe; one arena per builder.
class Arena {
 public:
  /// `block_bytes` is the size of each backing block; allocations larger
  /// than a block get a dedicated block of exactly their size.
  explicit Arena(size_t block_bytes = kDefaultBlockBytes);
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&& other) noexcept;
  Arena& operator=(Arena&& other) noexcept;
  ~Arena() = default;

  static constexpr size_t kDefaultBlockBytes = 4096;

  /// Returns `bytes` bytes aligned to `align` (a power of two ≤ alignof
  /// max_align_t is always honored; larger powers of two also work because
  /// alignment is applied to the bump offset of a max-aligned block).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Constructs a T in the arena. T must be trivially destructible — the
  /// arena never runs destructors.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never destroys; T must be trivially destructible");
    return new (Allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  /// Uninitialized storage for `n` Ts (n == 0 returns a valid unique pointer
  /// region of zero length). Same trivial-destructibility contract as New.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never destroys; T must be trivially destructible");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Copies [data, data + n) into the arena and returns the copy.
  template <typename T>
  T* CopyArray(const T* data, size_t n) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "CopyArray memcpy-copies; T must be trivially copyable");
    T* out = AllocateArray<T>(n);
    if (n != 0) std::memcpy(out, data, n * sizeof(T));
    return out;
  }

  /// Discards every allocation but retains the first block for reuse, so a
  /// builder processing many items pays the block allocations only once.
  void Reset();

  /// Total bytes handed out since construction / last Reset.
  size_t BytesAllocated() const { return bytes_allocated_; }
  /// Backing blocks currently held (diagnostics; ≥ 1 after first use).
  size_t BlockCount() const { return blocks_.size(); }
  /// Total bytes of backing memory held (capacity, not usage).
  size_t BytesReserved() const { return bytes_reserved_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
  };

  /// Appends a block of at least `min_bytes` and makes it current.
  void AddBlock(size_t min_bytes);

  size_t block_bytes_;
  std::vector<Block> blocks_;
  size_t current_ = 0;  ///< index of the block being bumped
  size_t offset_ = 0;   ///< bump offset within blocks_[current_]
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace ctdb::util
