// Streaming statistics accumulator (Welford) used for the Table 2 / Figure 5 /
// Figure 6 reports.

#pragma once

#include <cstddef>
#include <string>

namespace ctdb {

/// \brief Accumulates a stream of doubles and reports count/mean/stddev/min/max
/// in a numerically stable way (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const;
  /// Population variance helper used by stddev().
  double variance() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// "n=<count> mean=<mean> sd=<sd> min=<min> max=<max>".
  std::string ToString() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ctdb
