// Small hashing helpers shared across modules.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace ctdb {

/// \brief Mixes `v` into seed `h` (boost::hash_combine flavor, 64-bit).
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  v *= 0x9e3779b97f4a7c15ULL;
  v ^= v >> 32;
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// \brief FNV-1a over a sequence of integral values.
template <typename It>
uint64_t HashRange(It begin, It end) {
  uint64_t h = 1469598103934665603ULL;
  for (It it = begin; it != end; ++it) {
    h ^= static_cast<uint64_t>(*it);
    h *= 1099511628211ULL;
  }
  return h;
}

/// \brief std::hash adapter for pair<uint32_t, uint32_t> keys (product-state
/// pairs in the permission checker).
struct PairHash {
  size_t operator()(const std::pair<uint32_t, uint32_t>& p) const {
    const uint64_t key = (static_cast<uint64_t>(p.first) << 32) | p.second;
    // Fibonacci hashing of the packed key.
    return static_cast<size_t>(key * 0x9e3779b97f4a7c15ULL);
  }
};

/// \brief std::hash adapter for vector<uint32_t> keys (literal-set index
/// keys).
struct U32VectorHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    return static_cast<size_t>(HashRange(v.begin(), v.end()));
  }
};

/// \brief std::hash adapter for vector<uint64_t> keys (word-packed partition
/// refinement signatures): FNV-1a consumed one 64-bit word at a time.
struct U64VectorHash {
  size_t operator()(const std::vector<uint64_t>& v) const {
    return static_cast<size_t>(HashRange(v.begin(), v.end()));
  }
};

}  // namespace ctdb
