// Deterministic pseudo-random number generation (xoshiro256**).
//
// The workload generator and all property tests must be reproducible from a
// seed, so ctdb does not use std::mt19937 (whose distributions are not
// portable across standard libraries) but its own generator + distributions.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ctdb {

/// \brief xoshiro256** PRNG with splitmix64 seeding.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams on every platform.
  explicit Rng(uint64_t seed = 0x5eed'c7db'2011ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling (unbiased).
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return UniformDouble() < p; }

  /// Index sampled from non-negative `weights` proportionally; the weights
  /// need not sum to one. Returns weights.size()-1 on all-zero input.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Forks an independent stream (for parallel generation): deterministic
  /// function of the current state and `stream_id`.
  Rng Fork(uint64_t stream_id) const;

 private:
  uint64_t state_[4];
};

}  // namespace ctdb
