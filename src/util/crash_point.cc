#include "util/crash_point.h"

#include <atomic>

namespace ctdb::util {

namespace {
std::atomic<CrashPointHook> g_crash_hook{nullptr};
}  // namespace

void SetCrashPointHook(CrashPointHook hook) {
  g_crash_hook.store(hook, std::memory_order_release);
}

void CrashPoint(const char* site) {
  if (CrashPointHook hook = g_crash_hook.load(std::memory_order_acquire)) {
    hook(site);
  }
}

}  // namespace ctdb::util
