#include "util/status.h"

namespace ctdb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message)
    : code_(code), message_(std::move(message)) {}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace ctdb
