#include "util/arena.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

namespace ctdb::util {

Arena::Arena(size_t block_bytes)
    : block_bytes_(std::max<size_t>(block_bytes, 64)) {}

Arena::Arena(Arena&& other) noexcept
    : block_bytes_(other.block_bytes_),
      blocks_(std::move(other.blocks_)),
      current_(other.current_),
      offset_(other.offset_),
      bytes_allocated_(other.bytes_allocated_),
      bytes_reserved_(other.bytes_reserved_) {
  other.blocks_.clear();
  other.current_ = 0;
  other.offset_ = 0;
  other.bytes_allocated_ = 0;
  other.bytes_reserved_ = 0;
}

Arena& Arena::operator=(Arena&& other) noexcept {
  if (this != &other) {
    block_bytes_ = other.block_bytes_;
    blocks_ = std::move(other.blocks_);
    current_ = other.current_;
    offset_ = other.offset_;
    bytes_allocated_ = other.bytes_allocated_;
    bytes_reserved_ = other.bytes_reserved_;
    other.blocks_.clear();
    other.current_ = 0;
    other.offset_ = 0;
    other.bytes_allocated_ = 0;
    other.bytes_reserved_ = 0;
  }
  return *this;
}

void Arena::AddBlock(size_t min_bytes) {
  Block block;
  block.size = std::max(block_bytes_, min_bytes);
  block.data = std::make_unique<std::byte[]>(block.size);
  bytes_reserved_ += block.size;
  blocks_.push_back(std::move(block));
  current_ = blocks_.size() - 1;
  offset_ = 0;
}

void* Arena::Allocate(size_t bytes, size_t align) {
  assert(align != 0 && (align & (align - 1)) == 0 && "align: power of two");
  if (bytes == 0) bytes = 1;  // distinct non-null pointers for empty requests
  if (blocks_.empty()) AddBlock(bytes + align);
  // Alignment is computed on the actual address, not the block offset:
  // new[] storage only guarantees max_align_t alignment, so for larger
  // `align` the block base itself may be misaligned.
  auto base = reinterpret_cast<uintptr_t>(blocks_[current_].data.get());
  size_t aligned = ((base + offset_ + align - 1) & ~(align - 1)) - base;
  if (aligned + bytes > blocks_[current_].size) {
    AddBlock(bytes + align);
    base = reinterpret_cast<uintptr_t>(blocks_[current_].data.get());
    aligned = ((base + offset_ + align - 1) & ~(align - 1)) - base;
  }
  void* out = blocks_[current_].data.get() + aligned;
  offset_ = aligned + bytes;
  bytes_allocated_ += bytes;
  return out;
}

void Arena::Reset() {
  if (blocks_.size() > 1) {
    // Keep the largest block (usually the most recently grown one) so steady
    // state settles on a single reused allocation.
    auto largest = std::max_element(
        blocks_.begin(), blocks_.end(),
        [](const Block& a, const Block& b) { return a.size < b.size; });
    Block keep = std::move(*largest);
    blocks_.clear();
    blocks_.push_back(std::move(keep));
  }
  current_ = 0;
  offset_ = 0;
  bytes_allocated_ = 0;
  bytes_reserved_ = blocks_.empty() ? 0 : blocks_[0].size;
}

}  // namespace ctdb::util
