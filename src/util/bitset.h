// Dynamic bitset used for contract-id sets (prefilter index), event sets and
// state sets. Sized at runtime; word-parallel boolean algebra.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ctdb {

/// \brief A fixed-capacity (chosen at construction) bitset with set-algebra
/// operations.
///
/// Unlike std::bitset the capacity is a runtime value; unlike
/// std::vector<bool> the representation supports word-at-a-time union,
/// intersection, difference and population counts, which the prefilter index
/// evaluation relies on.
class Bitset {
 public:
  /// Creates an empty bitset with capacity 0.
  Bitset() = default;

  /// Creates a bitset able to hold bits [0, size); all bits clear.
  explicit Bitset(size_t size);

  /// Creates a bitset with all bits in [0, size) set.
  static Bitset AllSet(size_t size);

  /// Number of addressable bits.
  size_t size() const { return size_; }

  /// Grows capacity to at least `size` bits (new bits clear). Never shrinks.
  void Resize(size_t size);

  void Set(size_t i);
  void Clear(size_t i);
  bool Test(size_t i) const;

  /// Sets every bit in [0, size).
  void SetAll();
  /// Clears every bit.
  void ClearAll();

  /// Number of set bits.
  size_t Count() const;
  /// True iff no bit is set.
  bool None() const;
  /// True iff at least one bit is set.
  bool Any() const { return !None(); }

  /// Index of the lowest set bit at or after `from`, or npos if none.
  size_t FindNext(size_t from) const;
  static constexpr size_t npos = static_cast<size_t>(-1);

  /// \name In-place set algebra. Operands may differ in size; the receiver is
  /// grown as needed (union/xor) or truncated logically (intersection treats
  /// missing bits as 0).
  /// @{
  Bitset& operator|=(const Bitset& other);
  Bitset& operator&=(const Bitset& other);
  Bitset& operator^=(const Bitset& other);
  /// Removes from this set every bit present in `other`.
  Bitset& Subtract(const Bitset& other);
  /// @}

  friend Bitset operator|(Bitset lhs, const Bitset& rhs) { return lhs |= rhs; }
  friend Bitset operator&(Bitset lhs, const Bitset& rhs) { return lhs &= rhs; }

  /// True iff this and `other` share no set bit.
  bool DisjointWith(const Bitset& other) const;
  /// True iff every set bit of this is also set in `other`.
  bool IsSubsetOf(const Bitset& other) const;

  bool operator==(const Bitset& other) const;
  bool operator!=(const Bitset& other) const { return !(*this == other); }

  /// Indices of set bits, ascending.
  std::vector<size_t> ToVector() const;

  /// e.g. "{1, 5, 9}".
  std::string ToString() const;

  /// FNV-style hash over the significant words.
  uint64_t Hash() const;

  /// Approximate heap footprint in bytes (for index-size reporting).
  size_t MemoryUsage() const { return words_.capacity() * sizeof(uint64_t); }

  /// Iterates over set bits: `for (size_t i : bits.Indices())`.
  class IndexRange {
   public:
    class Iterator {
     public:
      Iterator(const Bitset* bs, size_t pos) : bs_(bs), pos_(pos) {}
      size_t operator*() const { return pos_; }
      Iterator& operator++() {
        pos_ = (pos_ == npos) ? npos : bs_->FindNext(pos_ + 1);
        return *this;
      }
      bool operator!=(const Iterator& other) const { return pos_ != other.pos_; }

     private:
      const Bitset* bs_;
      size_t pos_;
    };
    explicit IndexRange(const Bitset* bs) : bs_(bs) {}
    Iterator begin() const { return Iterator(bs_, bs_->FindNext(0)); }
    Iterator end() const { return Iterator(bs_, npos); }

   private:
    const Bitset* bs_;
  };
  IndexRange Indices() const { return IndexRange(this); }

 private:
  static constexpr size_t kWordBits = 64;
  static size_t WordCount(size_t bits) { return (bits + kWordBits - 1) / kWordBits; }
  /// Clears bits at positions >= size_ in the last word.
  void TrimTail();

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace ctdb
