#include "util/crc32c.h"

#include <array>

namespace ctdb::util {

namespace {

// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

struct Tables {
  uint32_t t[4][256];
};

Tables BuildTables() {
  Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    tables.t[1][i] = (tables.t[0][i] >> 8) ^ tables.t[0][tables.t[0][i] & 0xFF];
    tables.t[2][i] = (tables.t[1][i] >> 8) ^ tables.t[0][tables.t[1][i] & 0xFF];
    tables.t[3][i] = (tables.t[2][i] >> 8) ^ tables.t[0][tables.t[2][i] & 0xFF];
  }
  return tables;
}

const Tables& GetTables() {
  static const Tables tables = BuildTables();
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const Tables& tables = GetTables();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  // Slicing-by-4 over aligned-length middle; head/tail byte-at-a-time.
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tables.t[3][crc & 0xFF] ^ tables.t[2][(crc >> 8) & 0xFF] ^
          tables.t[1][(crc >> 16) & 0xFF] ^ tables.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tables.t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

}  // namespace ctdb::util
