// Crash-point fault injection for the durability subsystem (testing only).
//
// Durability code calls CrashPoint("<site>") immediately after every
// state-changing filesystem step (segment write, fsync, checkpoint temp
// write, atomic rename, segment deletion) and before every acknowledgement.
// Tests install a hook that `_exit`s the process at the k-th hit
// (testing/crash.h), turning each site into a real kill point for the
// crash-recovery property test; in production the hook is null and the call
// costs one predicted-not-taken atomic load.

#pragma once

namespace ctdb::util {

using CrashPointHook = void (*)(const char* site);

/// Installs (or with nullptr removes) the process-wide hook. Install before
/// opening the database under test — not synchronized against concurrent
/// durability traffic.
void SetCrashPointHook(CrashPointHook hook);

void CrashPoint(const char* site);

}  // namespace ctdb::util
