// Wall-clock timing for the benchmark harness and broker statistics.

#pragma once

#include <chrono>
#include <cstdint>

namespace ctdb {

/// \brief Monotonic stopwatch; starts running at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ctdb
