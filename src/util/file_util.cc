#include "util/file_util.h"

#include <dirent.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/crash_point.h"

namespace ctdb::util {

namespace {

std::string Errno(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

/// Writes all of `data` to `fd`, retrying partial writes and EINTR.
Status WriteAll(int fd, std::string_view data, const std::string& path) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("write", path));
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::Internal(Errno("open", path));
  }
  std::string out;
  char buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::Internal(Errno("read", path));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::Internal(Errno("open", tmp));
  Status status = WriteAll(fd, contents, tmp);
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::Internal(Errno("fsync", tmp));
  }
  if (::close(fd) != 0 && status.ok()) {
    status = Status::Internal(Errno("close", tmp));
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  CrashPoint("file.atomic.after_tmp");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status rename_status = Status::Internal(Errno("rename", tmp));
    ::unlink(tmp.c_str());
    return rename_status;
  }
  CrashPoint("file.atomic.after_rename");
  return SyncDir(ParentDir(path));
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Status::Internal(Errno("open dir", dir));
  Status status;
  if (::fsync(fd) != 0) status = Status::Internal(Errno("fsync dir", dir));
  ::close(fd);
  return status;
}

Status CreateDirIfMissing(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::Internal(Errno("mkdir", dir));
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return Status::NotFound("no such directory: " + dir);
    return Status::Internal(Errno("opendir", dir));
  }
  std::vector<std::string> names;
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(d);
  return names;
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) == 0 || errno == ENOENT) return Status::OK();
  return Status::Internal(Errno("unlink", path));
}

}  // namespace ctdb::util
