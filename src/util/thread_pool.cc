#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "obs/metrics.h"
#include "util/timer.h"

namespace ctdb::util {

namespace {

/// Identifies the pool (and worker slot) the current thread belongs to, so
/// Submit can push to the local deque and ParallelFor callers can be told
/// apart from externals.
thread_local ThreadPool* tls_pool = nullptr;
thread_local size_t tls_worker = 0;

}  // namespace

ThreadPool::ThreadPool(size_t threads, size_t max_threads) {
  const size_t n = threads == 0 ? 1 : threads;
  const size_t hw = std::thread::hardware_concurrency();
  const size_t cap =
      max_threads == 0 ? std::max(n, hw == 0 ? n : hw) : std::max(n, max_threads);
  queues_.reserve(cap);
  for (size_t i = 0; i < cap; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(cap);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this, i);
  }
  active_.store(n, std::memory_order_release);
}

size_t ThreadPool::Grow(size_t threads) {
  std::lock_guard<std::mutex> lock(grow_mutex_);
  const size_t target = std::min(threads, queues_.size());
  // workers_ only ever grows, and only under grow_mutex_; the destructor
  // runs exclusively.
  for (size_t i = workers_.size(); i < target; ++i) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this, i);
  }
  if (target > active_.load(std::memory_order_relaxed)) {
    active_.store(target, std::memory_order_release);
  }
  return active_.load(std::memory_order_relaxed);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::InWorkerThread() const { return tls_pool == this; }

void ThreadPool::Enqueue(std::function<void()> task) {
  // External tasks round-robin across the *running* workers' deques only;
  // slots beyond active_ have no worker popping locally (they would rely on
  // steals alone).
  const size_t active = std::max<size_t>(1, thread_count());
  WorkerQueue& queue =
      InWorkerThread()
          ? *queues_[tls_worker]
          : *queues_[next_queue_.fetch_add(1, std::memory_order_relaxed) %
                     active];
  {
    std::lock_guard<std::mutex> lock(queue.mutex);
    queue.tasks.push_back(std::move(task));
  }
  CTDB_OBS_COUNT("threadpool.tasks_submitted", 1);
  CTDB_OBS_GAUGE_ADD("threadpool.queue_depth", 1);
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    ++work_signal_;
  }
  idle_cv_.notify_all();
}

void ThreadPool::Submit(std::function<void()> task) {
  Enqueue(std::move(task));
}

bool ThreadPool::PopOrSteal(size_t worker, std::function<void()>* task) {
  WorkerQueue& own = *queues_[worker];
  {
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.back());
      own.tasks.pop_back();
      CTDB_OBS_GAUGE_ADD("threadpool.queue_depth", -1);
      return true;
    }
  }
  for (size_t k = 1; k < queues_.size(); ++k) {
    WorkerQueue& victim = *queues_[(worker + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      CTDB_OBS_GAUGE_ADD("threadpool.queue_depth", -1);
      CTDB_OBS_COUNT("threadpool.steals", 1);
      return true;
    }
  }
  return false;
}

bool ThreadPool::AnyQueued() {
  for (auto& queue : queues_) {
    std::lock_guard<std::mutex> lock(queue->mutex);
    if (!queue->tasks.empty()) return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t worker) {
  tls_pool = this;
  tls_worker = worker;
  while (true) {
    // Snapshot the signal *before* scanning the deques: any task enqueued
    // after this point bumps the signal, so the wait below cannot miss it.
    uint64_t seen;
    {
      std::lock_guard<std::mutex> lock(idle_mutex_);
      seen = work_signal_;
    }
    std::function<void()> task;
    if (PopOrSteal(worker, &task)) {
#if CTDB_OBS
      if (obs::Enabled()) {
        const Timer timer;
        task();
        CTDB_OBS_HIST("threadpool.task_latency_us",
                      static_cast<uint64_t>(timer.ElapsedMicros()));
        continue;
      }
#endif
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mutex_);
    if (stop_) {
      if (!AnyQueued()) break;  // graceful shutdown: drain first
      continue;
    }
    if (work_signal_ != seen) continue;  // raced with an enqueue: rescan
    idle_cv_.wait(lock,
                  [&] { return stop_ || work_signal_ != seen; });
  }
}

Status ThreadPool::ParallelFor(size_t begin, size_t end,
                               const std::function<Status(size_t)>& body) {
  if (begin >= end) return Status::OK();
  const size_t n = end - begin;

  // Shared iteration state. Helpers hold a shared_ptr so ParallelFor can
  // return as soon as every *iteration* is done, without waiting for
  // helper tasks that never got scheduled (they run later as no-ops).
  struct State {
    size_t begin;
    size_t n;
    const std::function<Status(size_t)>* body;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::atomic<bool> failed{false};
    std::mutex mutex;
    std::condition_variable all_done;
    Status first_error;

    void Run() {
      size_t i;
      while ((i = next.fetch_add(1, std::memory_order_relaxed)) < n) {
        if (!failed.load(std::memory_order_acquire)) {
          Status status;
          try {
            status = (*body)(begin + i);
          } catch (const std::exception& e) {
            status = Status::Internal(std::string("ParallelFor body threw: ") +
                                      e.what());
          } catch (...) {
            status = Status::Internal("ParallelFor body threw a non-standard "
                                      "exception");
          }
          if (!status.ok()) {
            std::lock_guard<std::mutex> lock(mutex);
            if (first_error.ok()) first_error = std::move(status);
            failed.store(true, std::memory_order_release);
          }
        }
        if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
          std::lock_guard<std::mutex> lock(mutex);
          all_done.notify_all();
        }
      }
    }
  };
  auto state = std::make_shared<State>();
  state->begin = begin;
  state->n = n;
  state->body = &body;

  const size_t helpers = std::min(thread_count(), n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Enqueue([state] { state->Run(); });
  }
  state->Run();  // the caller participates — see header for why

  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == n;
  });
  return state->first_error;
}

}  // namespace ctdb::util
