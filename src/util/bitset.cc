#include "util/bitset.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace ctdb {

Bitset::Bitset(size_t size) : size_(size), words_(WordCount(size), 0) {}

Bitset Bitset::AllSet(size_t size) {
  Bitset b(size);
  b.SetAll();
  return b;
}

void Bitset::Resize(size_t size) {
  if (size <= size_) return;
  size_ = size;
  words_.resize(WordCount(size), 0);
}

void Bitset::Set(size_t i) {
  assert(i < size_);
  words_[i / kWordBits] |= uint64_t{1} << (i % kWordBits);
}

void Bitset::Clear(size_t i) {
  assert(i < size_);
  words_[i / kWordBits] &= ~(uint64_t{1} << (i % kWordBits));
}

bool Bitset::Test(size_t i) const {
  if (i >= size_) return false;
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1;
}

void Bitset::SetAll() {
  std::fill(words_.begin(), words_.end(), ~uint64_t{0});
  TrimTail();
}

void Bitset::ClearAll() { std::fill(words_.begin(), words_.end(), 0); }

void Bitset::TrimTail() {
  const size_t rem = size_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << rem) - 1;
  }
}

size_t Bitset::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

bool Bitset::None() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

size_t Bitset::FindNext(size_t from) const {
  if (from >= size_) return npos;
  size_t wi = from / kWordBits;
  uint64_t w = words_[wi] & (~uint64_t{0} << (from % kWordBits));
  while (true) {
    if (w != 0) {
      const size_t bit = wi * kWordBits +
                         static_cast<size_t>(std::countr_zero(w));
      return bit < size_ ? bit : npos;
    }
    if (++wi >= words_.size()) return npos;
    w = words_[wi];
  }
}

Bitset& Bitset::operator|=(const Bitset& other) {
  Resize(other.size_);
  for (size_t i = 0; i < other.words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

Bitset& Bitset::operator&=(const Bitset& other) {
  const size_t common = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < common; ++i) words_[i] &= other.words_[i];
  for (size_t i = common; i < words_.size(); ++i) words_[i] = 0;
  return *this;
}

Bitset& Bitset::operator^=(const Bitset& other) {
  Resize(other.size_);
  for (size_t i = 0; i < other.words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

Bitset& Bitset::Subtract(const Bitset& other) {
  const size_t common = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < common; ++i) words_[i] &= ~other.words_[i];
  return *this;
}

bool Bitset::DisjointWith(const Bitset& other) const {
  const size_t common = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < common; ++i) {
    if ((words_[i] & other.words_[i]) != 0) return false;
  }
  return true;
}

bool Bitset::IsSubsetOf(const Bitset& other) const {
  for (size_t i = 0; i < words_.size(); ++i) {
    const uint64_t theirs = i < other.words_.size() ? other.words_[i] : 0;
    if ((words_[i] & ~theirs) != 0) return false;
  }
  return true;
}

bool Bitset::operator==(const Bitset& other) const {
  const size_t common = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < common; ++i) {
    if (words_[i] != other.words_[i]) return false;
  }
  for (size_t i = common; i < words_.size(); ++i) {
    if (words_[i] != 0) return false;
  }
  for (size_t i = common; i < other.words_.size(); ++i) {
    if (other.words_[i] != 0) return false;
  }
  return true;
}

std::vector<size_t> Bitset::ToVector() const {
  std::vector<size_t> out;
  for (size_t i : Indices()) out.push_back(i);
  return out;
}

std::string Bitset::ToString() const {
  std::string out = "{";
  bool first = true;
  for (size_t i : Indices()) {
    if (!first) out += ", ";
    out += std::to_string(i);
    first = false;
  }
  out += "}";
  return out;
}

uint64_t Bitset::Hash() const {
  uint64_t h = 1469598103934665603ULL;
  // Skip trailing zero words so equal sets of different capacity hash alike.
  size_t last = words_.size();
  while (last > 0 && words_[last - 1] == 0) --last;
  for (size_t i = 0; i < last; ++i) {
    h ^= words_[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace ctdb
