#include "util/rng.h"

#include <bit>
#include <cassert>

namespace ctdb {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (uint64_t& w : state_) w = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection to remove modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  while (true) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0) return weights.size() - 1;
  double x = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork(uint64_t stream_id) const {
  uint64_t mix = state_[0];
  mix = (mix ^ stream_id) * 0x9e3779b97f4a7c15ULL;
  return Rng(mix ^ state_[3]);
}

}  // namespace ctdb
