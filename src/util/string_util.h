// Small string helpers shared by the parser, serializers and bench reporters.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ctdb {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;

/// Renders a byte count as "12.3 KiB" / "4.5 MiB" etc.
std::string HumanBytes(size_t bytes);

/// Escapes `s` for embedding in a JSON string literal (quotes, backslashes,
/// control characters).
std::string JsonEscape(std::string_view s);

}  // namespace ctdb
