// Result<T>: a value or a Status, in the style of arrow::Result.

#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace ctdb {

/// \brief Holds either a successfully computed `T` or the `Status` explaining
/// why it could not be computed.
///
/// Accessing the value of an error Result is a programming error (checked by
/// assertion in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(repr_).ok() && "Result built from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK() when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` on error.
  T ValueOr(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace ctdb

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define CTDB_ASSIGN_OR_RETURN(lhs, rexpr)             \
  CTDB_ASSIGN_OR_RETURN_IMPL_(                        \
      CTDB_CONCAT_(_ctdb_result_, __COUNTER__), lhs, rexpr)

#define CTDB_CONCAT_INNER_(x, y) x##y
#define CTDB_CONCAT_(x, y) CTDB_CONCAT_INNER_(x, y)
#define CTDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()
