// Lock-free-on-the-hot-path metrics: monotonic counters, gauges, and
// histograms with fixed exponential buckets, collected in a process-wide
// registry and aggregated on scrape.
//
// Hot-path design: every metric keeps kShards cacheline-padded atomic slots;
// a thread picks its slot from a thread-local id assigned on first use, so
// concurrent writers on different threads touch different cachelines and a
// single-threaded writer always hits the same warm line. Writes are relaxed
// fetch_adds — no locks, no CAS (except the histogram min/max, a rarely-
// looping compare_exchange). Scrapes sum the shards; a scrape running
// concurrently with writers sees a consistent-enough snapshot (each shard
// value is atomic; totals may lag in-flight increments, never lose them).
//
// Registration (GetCounter/GetGauge/GetHistogram) takes a mutex but is meant
// to run once per site: instrumentation caches the returned handle in a
// static local (see the CTDB_OBS_* macros below). Handles stay valid for the
// registry's lifetime — metrics are never deleted.
//
// The CTDB_OBS compile-time switch (CMake option) removes every macro
// expansion; the obs::Enabled() runtime flag (see obs.h) short-circuits the
// rest. Both default to on.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.h"

namespace ctdb::obs {

/// Number of per-metric shards (power of two). Threads map onto shards by a
/// monotonically assigned thread id, so up to kShards writers never contend.
inline constexpr size_t kShards = 16;

/// The shard slot of the calling thread (stable for the thread's lifetime).
size_t ThisThreadShard();

namespace internal {
struct alignas(64) ShardCell {
  std::atomic<uint64_t> value{0};
};
}  // namespace internal

/// \brief Monotonic counter.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    AddAt(ThisThreadShard(), delta);
  }
  /// Shard-hoisted variant for sites that update several metrics per call:
  /// resolve ThisThreadShard() once and pass it to each update.
  void AddAt(size_t shard, uint64_t delta) {
    shards_[shard].value.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Sum over shards (scrape path).
  uint64_t Value() const;

 private:
  internal::ShardCell shards_[kShards];
};

/// \brief Up/down gauge (e.g. queue depth). Stored as a sharded sum of
/// signed deltas, so concurrent Add/Sub never lose updates.
class Gauge {
 public:
  void Add(int64_t delta = 1) {
    shards_[ThisThreadShard()].value.fetch_add(static_cast<uint64_t>(delta),
                                               std::memory_order_relaxed);
  }
  void Sub(int64_t delta = 1) { Add(-delta); }
  int64_t Value() const;

 private:
  internal::ShardCell shards_[kShards];
};

/// Number of histogram buckets: bucket 0 counts the value 0, bucket i
/// (1 ≤ i ≤ 64) counts values in [2^(i-1), 2^i).
inline constexpr size_t kHistogramBuckets = 65;

/// Aggregated view of one histogram (also the mergeable unit the sharded
/// representation reduces to — Merge is associative and commutative).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< meaningful only when count > 0
  uint64_t max = 0;
  uint64_t buckets[kHistogramBuckets] = {};

  void Merge(const HistogramSnapshot& other);
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper-bound estimate of the q-quantile (0 < q ≤ 1) from the bucket
  /// upper edges; exact for values that are powers of two.
  uint64_t PercentileUpperBound(double q) const;
};

/// \brief Fixed-exponential-bucket histogram of uint64 samples (typically
/// microsecond durations or per-operation sizes).
class Histogram {
 public:
  /// Bucket that `value` lands in: 0 for 0, otherwise bit_width(value).
  static size_t BucketIndex(uint64_t value);
  /// Smallest value of bucket `index` (inclusive).
  static uint64_t BucketLowerBound(size_t index);
  /// Largest value of bucket `index` (inclusive).
  static uint64_t BucketUpperBound(size_t index);

  void Record(uint64_t value);
  /// Shard-hoisted variant of Record (see Counter::AddAt).
  void RecordAt(size_t shard, uint64_t value);
  HistogramSnapshot Snapshot() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{~uint64_t{0}};
    std::atomic<uint64_t> max{0};
    std::atomic<uint64_t> buckets[kHistogramBuckets] = {};
  };
  Shard shards_[kShards];
};

/// One registry scrape: every metric's aggregated value at a point in time.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramEntry {
    std::string name;
    HistogramSnapshot hist;
  };
  std::vector<CounterEntry> counters;     ///< sorted by name
  std::vector<GaugeEntry> gauges;         ///< sorted by name
  std::vector<HistogramEntry> histograms; ///< sorted by name

  /// Value of the named counter, 0 when absent.
  uint64_t CounterValue(std::string_view name) const;
  int64_t GaugeValue(std::string_view name) const;
  /// Null when absent.
  const HistogramSnapshot* FindHistogram(std::string_view name) const;

  /// Human-readable multi-line dump (one metric per line).
  std::string ToString() const;
  /// Single JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}
  /// with histogram buckets keyed by their inclusive upper bound.
  std::string ToJson() const;
};

/// \brief Named-metric registry. Get* calls are get-or-create and return
/// handles that remain valid for the registry's lifetime.
class MetricsRegistry {
 public:
  /// The process-wide registry every CTDB_OBS_* macro records into.
  static MetricsRegistry* Default();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace ctdb::obs

// Instrumentation macros. Each site resolves its metric once (static local
// handle) and then pays one Enabled() load + one relaxed atomic op per hit.
// With the CMake option CTDB_OBS=OFF they vanish entirely.
#if CTDB_OBS

#define CTDB_OBS_COUNT(name, delta)                                      \
  do {                                                                   \
    if (::ctdb::obs::Enabled()) {                                        \
      static ::ctdb::obs::Counter* ctdb_obs_c =                          \
          ::ctdb::obs::MetricsRegistry::Default()->GetCounter(name);     \
      ctdb_obs_c->Add(static_cast<uint64_t>(delta));                     \
    }                                                                    \
  } while (0)

#define CTDB_OBS_GAUGE_ADD(name, delta)                                  \
  do {                                                                   \
    if (::ctdb::obs::Enabled()) {                                        \
      static ::ctdb::obs::Gauge* ctdb_obs_g =                            \
          ::ctdb::obs::MetricsRegistry::Default()->GetGauge(name);       \
      ctdb_obs_g->Add(static_cast<int64_t>(delta));                      \
    }                                                                    \
  } while (0)

#define CTDB_OBS_HIST(name, value)                                       \
  do {                                                                   \
    if (::ctdb::obs::Enabled()) {                                        \
      static ::ctdb::obs::Histogram* ctdb_obs_h =                        \
          ::ctdb::obs::MetricsRegistry::Default()->GetHistogram(name);   \
      ctdb_obs_h->Record(static_cast<uint64_t>(value));                  \
    }                                                                    \
  } while (0)

#else  // !CTDB_OBS

#define CTDB_OBS_COUNT(name, delta) \
  do {                              \
  } while (0)
#define CTDB_OBS_GAUGE_ADD(name, delta) \
  do {                                  \
  } while (0)
#define CTDB_OBS_HIST(name, value) \
  do {                             \
  } while (0)

#endif  // CTDB_OBS
