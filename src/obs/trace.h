// Structured per-query tracing: RAII TraceSpan objects with parent/child
// nesting, exported through a pluggable TraceSink as JSON-lines.
//
// A span covers one pipeline phase (e.g. "query" > "query.translate" >
// "query.permission"). Nesting is tracked with a thread-local span stack, so
// spans opened on the same thread form a tree; work handed to pool workers
// starts new roots (the events still interleave in the same sink). Because
// spans emit on destruction, a child's event always precedes its parent's —
// consumers reconstruct the tree from (id, parent) pairs.
//
// Every span also records how many direct children it opened. That makes the
// stream self-checking: ValidateTrace() cross-counts emitted events against
// the declared child counts, so a span silently lost between producer and
// sink is detected (the fault-injection test drops one on purpose to prove
// the check is live).
//
// Cost model: with no sink installed a TraceSpan is two loads and a null
// check; the sink pointer is captured at construction so install/uninstall
// races only affect span boundaries, never pair a start with a missing end.

#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace ctdb::obs {

/// One completed span.
struct TraceEvent {
  std::string name;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 = root span
  uint64_t children = 0;   ///< direct child spans opened (same thread)
  uint64_t thread = 0;     ///< small per-thread id (see ThisThreadShard)
  uint64_t start_us = 0;   ///< steady-clock µs since process trace epoch
  uint64_t duration_us = 0;
  std::vector<std::pair<std::string, uint64_t>> attrs;  ///< numeric attrs
};

/// Where completed spans go. Emit() may be called concurrently from any
/// thread; implementations synchronize internally.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Emit(const TraceEvent& event) = 0;
};

/// Installs the process-wide sink (nullptr disables tracing). Spans capture
/// the sink at construction, so swapping sinks mid-span is safe.
void SetTraceSink(TraceSink* sink);
TraceSink* GetTraceSink();

/// `event` as one JSON object (no trailing newline):
/// {"name":...,"id":...,"parent":...,"thread":...,"start_us":...,
///  "dur_us":...,"children":...,"attrs":{...}}
std::string FormatTraceEvent(const TraceEvent& event);

/// \brief Writes one JSON object per line to `out`, mutex-serialized.
class JsonLinesSink : public TraceSink {
 public:
  explicit JsonLinesSink(std::ostream* out) : out_(out) {}
  void Emit(const TraceEvent& event) override;

 private:
  std::mutex mutex_;
  std::ostream* out_;
};

/// \brief Collects events in memory (tests, snapshot-style consumers).
class VectorSink : public TraceSink {
 public:
  void Emit(const TraceEvent& event) override;
  /// Copies the events accumulated so far.
  std::vector<TraceEvent> Events() const;
  void Clear();

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// \brief Consistency check over a completed trace: unique span ids, every
/// referenced parent present, and every span's declared child count equal to
/// the number of events naming it as parent. Returns human-readable
/// descriptions of each violation (empty = consistent).
std::vector<std::string> ValidateTrace(const std::vector<TraceEvent>& events);

/// \brief RAII span. Opens at construction (capturing the current sink and
/// the enclosing span on this thread), emits on destruction.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric attribute (no-op when tracing is off).
  void AddAttr(const char* key, uint64_t value);

  /// True when this span will emit (a sink was installed at construction).
  bool active() const { return sink_ != nullptr; }

 private:
  TraceSink* sink_;
  TraceSpan* parent_ = nullptr;
  TraceEvent event_;
};

}  // namespace ctdb::obs

#if CTDB_OBS
/// Declares a live span named `var` covering the rest of the scope.
#define CTDB_OBS_SPAN(var, name) ::ctdb::obs::TraceSpan var(name)
#define CTDB_OBS_SPAN_ATTR(var, key, value) \
  var.AddAttr(key, static_cast<uint64_t>(value))
#else
#define CTDB_OBS_SPAN(var, name)
#define CTDB_OBS_SPAN_ATTR(var, key, value) \
  do {                                      \
  } while (0)
#endif
