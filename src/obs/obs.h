// Runtime control for the observability subsystem (metrics + tracing).
//
// Two independent switches keep the paper-faithful serial path fast:
//  * Compile time: the CTDB_OBS macro (CMake option of the same name,
//    default ON). With -DCTDB_OBS=OFF every instrumentation macro expands to
//    nothing and the hot paths are byte-identical to an uninstrumented build.
//  * Run time: Enabled() — a relaxed atomic flag consulted by every
//    instrumentation site before touching the registry. Initialized from the
//    CTDB_OBS environment variable ("0"/"off"/"false" disable; anything else,
//    or unset, enables), overridable with SetEnabled(). When disabled, the
//    only residual cost per site is the flag load and a predictable branch.
//
// Tracing is gated separately by the installed TraceSink (see trace.h): a
// null sink makes TraceSpan construction a couple of loads and stores.

#pragma once

namespace ctdb::obs {

class TraceSink;

/// Runtime observability configuration, applied with Configure(). The
/// broker exposes this on DatabaseOptions so a deployment can switch the
/// whole pipeline's instrumentation with one flag.
struct ObsOptions {
  /// Record counters/gauges/histograms into the process-wide registry.
  bool metrics = true;
  /// Where TraceSpan events go; nullptr disables tracing entirely.
  TraceSink* trace_sink = nullptr;
};

/// True when metric recording is on (relaxed load; safe from any thread).
bool Enabled();

/// Turns metric recording on or off at runtime.
void SetEnabled(bool enabled);

/// Applies `options`: SetEnabled(options.metrics) + SetTraceSink(sink).
void Configure(const ObsOptions& options);

}  // namespace ctdb::obs
