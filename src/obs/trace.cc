#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <unordered_map>

#include "obs/metrics.h"
#include "util/string_util.h"

namespace ctdb::obs {

namespace {

std::atomic<TraceSink*> g_sink{nullptr};
std::atomic<uint64_t> g_next_span_id{1};

thread_local TraceSpan* tls_current_span = nullptr;

/// Microseconds since the first trace event of the process (steady clock —
/// differences are meaningful, absolute values are not).
uint64_t NowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            epoch)
          .count());
}

}  // namespace

void SetTraceSink(TraceSink* sink) {
  g_sink.store(sink, std::memory_order_release);
}

TraceSink* GetTraceSink() { return g_sink.load(std::memory_order_acquire); }

void Configure(const ObsOptions& options) {
  SetEnabled(options.metrics);
  SetTraceSink(options.trace_sink);
}

TraceSpan::TraceSpan(const char* name) : sink_(GetTraceSink()) {
  if (sink_ == nullptr) return;
  event_.name = name;
  event_.span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  event_.thread = ThisThreadShard();
  parent_ = tls_current_span;
  if (parent_ != nullptr && parent_->sink_ != nullptr) {
    event_.parent_id = parent_->event_.span_id;
    ++parent_->event_.children;
  }
  tls_current_span = this;
  event_.start_us = NowMicros();
}

TraceSpan::~TraceSpan() {
  if (sink_ == nullptr) return;
  event_.duration_us = NowMicros() - event_.start_us;
  tls_current_span = parent_;
  sink_->Emit(event_);
}

void TraceSpan::AddAttr(const char* key, uint64_t value) {
  if (sink_ == nullptr) return;
  event_.attrs.emplace_back(key, value);
}

std::string FormatTraceEvent(const TraceEvent& event) {
  std::string out = StringFormat(
      "{\"name\":\"%s\",\"id\":%llu,\"parent\":%llu,\"thread\":%llu,"
      "\"start_us\":%llu,\"dur_us\":%llu,\"children\":%llu,\"attrs\":{",
      JsonEscape(event.name).c_str(),
      static_cast<unsigned long long>(event.span_id),
      static_cast<unsigned long long>(event.parent_id),
      static_cast<unsigned long long>(event.thread),
      static_cast<unsigned long long>(event.start_us),
      static_cast<unsigned long long>(event.duration_us),
      static_cast<unsigned long long>(event.children));
  bool first = true;
  for (const auto& [key, value] : event.attrs) {
    out += StringFormat("%s\"%s\":%llu", first ? "" : ",",
                        JsonEscape(key).c_str(),
                        static_cast<unsigned long long>(value));
    first = false;
  }
  out += "}}";
  return out;
}

void JsonLinesSink::Emit(const TraceEvent& event) {
  const std::string line = FormatTraceEvent(event);
  std::lock_guard<std::mutex> lock(mutex_);
  (*out_) << line << '\n';
}

void VectorSink::Emit(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(event);
}

std::vector<TraceEvent> VectorSink::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void VectorSink::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

std::vector<std::string> ValidateTrace(const std::vector<TraceEvent>& events) {
  std::vector<std::string> errors;
  std::unordered_map<uint64_t, const TraceEvent*> by_id;
  by_id.reserve(events.size());
  for (const TraceEvent& event : events) {
    if (event.span_id == 0) {
      errors.push_back("span '" + event.name + "' has id 0");
      continue;
    }
    if (!by_id.emplace(event.span_id, &event).second) {
      errors.push_back(StringFormat("duplicate span id %llu ('%s')",
                                    static_cast<unsigned long long>(
                                        event.span_id),
                                    event.name.c_str()));
    }
  }
  std::unordered_map<uint64_t, uint64_t> observed_children;
  for (const TraceEvent& event : events) {
    if (event.parent_id == 0) continue;
    if (by_id.find(event.parent_id) == by_id.end()) {
      errors.push_back(StringFormat(
          "span '%s' (id %llu) references missing parent %llu",
          event.name.c_str(), static_cast<unsigned long long>(event.span_id),
          static_cast<unsigned long long>(event.parent_id)));
      continue;
    }
    ++observed_children[event.parent_id];
  }
  for (const TraceEvent& event : events) {
    const uint64_t observed = observed_children.count(event.span_id) > 0
                                  ? observed_children[event.span_id]
                                  : 0;
    if (observed != event.children) {
      errors.push_back(StringFormat(
          "span '%s' (id %llu) declared %llu children but %llu were emitted",
          event.name.c_str(), static_cast<unsigned long long>(event.span_id),
          static_cast<unsigned long long>(event.children),
          static_cast<unsigned long long>(observed)));
    }
  }
  return errors;
}

}  // namespace ctdb::obs
