#include "obs/metrics.h"

#include <bit>
#include <cstdlib>
#include <string>

#include "util/string_util.h"

namespace ctdb::obs {

namespace {

std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("CTDB_OBS");
  if (env == nullptr) return true;
  const std::string v(env);
  return !(v == "0" || v == "off" || v == "false" || v == "OFF");
}()};

std::atomic<size_t> g_next_thread_id{0};

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

size_t ThisThreadShard() {
  thread_local const size_t shard =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const internal::ShardCell& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t Gauge::Value() const {
  uint64_t total = 0;
  for (const internal::ShardCell& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return static_cast<int64_t>(total);
}

size_t Histogram::BucketIndex(uint64_t value) {
  return static_cast<size_t>(std::bit_width(value));
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  if (index == 0) return 0;
  return uint64_t{1} << (index - 1);
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index == 0) return 0;
  if (index >= 64) return ~uint64_t{0};
  return (uint64_t{1} << index) - 1;
}

void Histogram::Record(uint64_t value) {
  RecordAt(ThisThreadShard(), value);
}

void Histogram::RecordAt(size_t shard_index, uint64_t value) {
  Shard& shard = shards_[shard_index];
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  uint64_t seen = shard.min.load(std::memory_order_relaxed);
  while (value < seen &&
         !shard.min.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
  }
  seen = shard.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !shard.max.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (const Shard& shard : shards_) {
    HistogramSnapshot part;
    part.count = shard.count.load(std::memory_order_relaxed);
    if (part.count == 0) continue;
    part.sum = shard.sum.load(std::memory_order_relaxed);
    part.min = shard.min.load(std::memory_order_relaxed);
    part.max = shard.max.load(std::memory_order_relaxed);
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      part.buckets[b] = shard.buckets[b].load(std::memory_order_relaxed);
    }
    snap.Merge(part);
  }
  return snap;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    buckets[b] += other.buckets[b];
  }
}

uint64_t HistogramSnapshot::PercentileUpperBound(double q) const {
  if (count == 0) return 0;
  const double target = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (static_cast<double>(seen) >= target) {
      return std::min(Histogram::BucketUpperBound(b), max);
    }
  }
  return max;
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.push_back({name, histogram->Snapshot()});
  }
  return snap;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const CounterEntry& entry : counters) {
    if (entry.name == name) return entry.value;
  }
  return 0;
}

int64_t MetricsSnapshot::GaugeValue(std::string_view name) const {
  for (const GaugeEntry& entry : gauges) {
    if (entry.name == name) return entry.value;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramEntry& entry : histograms) {
    if (entry.name == name) return &entry.hist;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToString() const {
  std::string out;
  for (const CounterEntry& entry : counters) {
    out += StringFormat("counter %-42s %llu\n", entry.name.c_str(),
                        static_cast<unsigned long long>(entry.value));
  }
  for (const GaugeEntry& entry : gauges) {
    out += StringFormat("gauge   %-42s %lld\n", entry.name.c_str(),
                        static_cast<long long>(entry.value));
  }
  for (const HistogramEntry& entry : histograms) {
    const HistogramSnapshot& h = entry.hist;
    out += StringFormat(
        "hist    %-42s n=%llu mean=%.1f min=%llu max=%llu p50<=%llu "
        "p99<=%llu\n",
        entry.name.c_str(), static_cast<unsigned long long>(h.count), h.mean(),
        static_cast<unsigned long long>(h.count == 0 ? 0 : h.min),
        static_cast<unsigned long long>(h.max),
        static_cast<unsigned long long>(h.PercentileUpperBound(0.50)),
        static_cast<unsigned long long>(h.PercentileUpperBound(0.99)));
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const CounterEntry& entry : counters) {
    out += StringFormat("%s\"%s\":%llu", first ? "" : ",",
                        JsonEscape(entry.name).c_str(),
                        static_cast<unsigned long long>(entry.value));
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeEntry& entry : gauges) {
    out += StringFormat("%s\"%s\":%lld", first ? "" : ",",
                        JsonEscape(entry.name).c_str(),
                        static_cast<long long>(entry.value));
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramEntry& entry : histograms) {
    const HistogramSnapshot& h = entry.hist;
    out += StringFormat(
        "%s\"%s\":{\"count\":%llu,\"sum\":%llu,\"min\":%llu,\"max\":%llu,"
        "\"buckets\":{",
        first ? "" : ",", JsonEscape(entry.name).c_str(),
        static_cast<unsigned long long>(h.count),
        static_cast<unsigned long long>(h.sum),
        static_cast<unsigned long long>(h.count == 0 ? 0 : h.min),
        static_cast<unsigned long long>(h.max));
    bool first_bucket = true;
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      out += StringFormat(
          "%s\"%llu\":%llu", first_bucket ? "" : ",",
          static_cast<unsigned long long>(Histogram::BucketUpperBound(b)),
          static_cast<unsigned long long>(h.buckets[b]));
      first_bucket = false;
    }
    out += "}}";
    first = false;
  }
  out += "}}";
  return out;
}

}  // namespace ctdb::obs
