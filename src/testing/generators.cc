#include "testing/generators.h"

namespace ctdb::testing {

const ltl::Formula* RandomFormula(Rng* rng, ltl::FormulaFactory* fac,
                                  size_t num_events, int depth) {
  using ltl::Op;
  if (depth <= 0) {
    const uint64_t pick = rng->Uniform(num_events + 2);
    if (pick == num_events) return fac->True();
    if (pick == num_events + 1) return fac->False();
    return fac->Prop(static_cast<EventId>(pick));
  }
  static constexpr Op kOps[] = {
      Op::kNot,      Op::kAnd,     Op::kOr,       Op::kImplies,
      Op::kIff,      Op::kNext,    Op::kFinally,  Op::kGlobally,
      Op::kUntil,    Op::kWeakUntil, Op::kRelease, Op::kBefore,
  };
  const Op op = kOps[rng->Uniform(sizeof(kOps) / sizeof(kOps[0]))];
  const ltl::Formula* left =
      RandomFormula(rng, fac, num_events, depth - 1 - static_cast<int>(rng->Uniform(2)));
  if (ltl::IsUnary(op)) return fac->Make(op, left, nullptr);
  const ltl::Formula* right =
      RandomFormula(rng, fac, num_events, depth - 1 - static_cast<int>(rng->Uniform(2)));
  return fac->Make(op, left, right);
}

Snapshot RandomSnapshot(Rng* rng, size_t num_events) {
  Snapshot s(num_events);
  for (size_t e = 0; e < num_events; ++e) {
    if (rng->Chance(0.4)) s.Set(e);
  }
  return s;
}

LassoWord RandomWord(Rng* rng, size_t num_events, size_t max_prefix,
                     size_t max_cycle) {
  LassoWord w;
  const size_t prefix = rng->Uniform(max_prefix + 1);
  const size_t cycle = 1 + rng->Uniform(max_cycle);
  for (size_t i = 0; i < prefix; ++i) {
    w.prefix.push_back(RandomSnapshot(rng, num_events));
  }
  for (size_t i = 0; i < cycle; ++i) {
    w.cycle.push_back(RandomSnapshot(rng, num_events));
  }
  return w;
}

Vocabulary TestVocabulary(size_t n) {
  std::vector<std::string> names;
  for (size_t i = 0; i < n; ++i) names.push_back("e" + std::to_string(i));
  return Vocabulary(names);
}

}  // namespace ctdb::testing
