#include "testing/metamorphic.h"

#include <unordered_map>

#include "ltl/rewriter.h"

namespace ctdb::testing {

namespace {

using ltl::Formula;
using ltl::FormulaFactory;
using ltl::Op;

using NodeFn = const Formula* (*)(Op, const Formula*, const Formula*,
                                  FormulaFactory*);

/// Rebuilds `f` bottom-up, letting `node` decide how each rebuilt operator
/// node is constructed. Memoized so shared DAG nodes are visited once.
const Formula* MapFormula(
    const Formula* f, FormulaFactory* fac, NodeFn node,
    std::unordered_map<const Formula*, const Formula*>* memo) {
  auto it = memo->find(f);
  if (it != memo->end()) return it->second;
  const Formula* result;
  switch (f->op()) {
    case Op::kTrue:
      result = fac->True();
      break;
    case Op::kFalse:
      result = fac->False();
      break;
    case Op::kProp:
      result = fac->Prop(f->prop());
      break;
    default: {
      const Formula* l = MapFormula(f->left(), fac, node, memo);
      const Formula* r =
          f->right() ? MapFormula(f->right(), fac, node, memo) : nullptr;
      result = node(f->op(), l, r, fac);
      break;
    }
  }
  memo->emplace(f, result);
  return result;
}

const Formula* Map(const Formula* f, FormulaFactory* fac, NodeFn node) {
  std::unordered_map<const Formula*, const Formula*> memo;
  return MapFormula(f, fac, node, &memo);
}

const Formula* Rebuild(Op op, const Formula* l, const Formula* r,
                       FormulaFactory* fac) {
  return fac->Make(op, l, r);
}

const Formula* ApplyNnf(const Formula* f, FormulaFactory* fac) {
  return ltl::Normalize(f, fac);
}

const Formula* ApplyExpandBefore(const Formula* f, FormulaFactory* fac) {
  return Map(f, fac,
             [](Op op, const Formula* l, const Formula* r,
                FormulaFactory* fac) -> const Formula* {
               if (op == Op::kBefore) {
                 return fac->Not(fac->Until(fac->Not(l), r));
               }
               return Rebuild(op, l, r, fac);
             });
}

const Formula* ApplyExpandDerived(const Formula* f, FormulaFactory* fac) {
  return Map(f, fac,
             [](Op op, const Formula* l, const Formula* r,
                FormulaFactory* fac) -> const Formula* {
               switch (op) {
                 case Op::kFinally:
                   return fac->Until(fac->True(), l);
                 case Op::kGlobally:
                   return fac->Release(fac->False(), l);
                 case Op::kWeakUntil:
                   return fac->Or(fac->Until(l, r), fac->Globally(l));
                 default:
                   return Rebuild(op, l, r, fac);
               }
             });
}

const Formula* ApplyExpandBool(const Formula* f, FormulaFactory* fac) {
  return Map(f, fac,
             [](Op op, const Formula* l, const Formula* r,
                FormulaFactory* fac) -> const Formula* {
               switch (op) {
                 case Op::kImplies:
                   return fac->Or(fac->Not(l), r);
                 case Op::kIff:
                   return fac->Or(fac->And(l, r),
                                  fac->And(fac->Not(l), fac->Not(r)));
                 default:
                   return Rebuild(op, l, r, fac);
               }
             });
}

const Formula* ApplyUntilDual(const Formula* f, FormulaFactory* fac) {
  return Map(f, fac,
             [](Op op, const Formula* l, const Formula* r,
                FormulaFactory* fac) -> const Formula* {
               switch (op) {
                 case Op::kUntil:
                   return fac->Not(fac->Release(fac->Not(l), fac->Not(r)));
                 case Op::kRelease:
                   return fac->Not(fac->Until(fac->Not(l), fac->Not(r)));
                 default:
                   return Rebuild(op, l, r, fac);
               }
             });
}

const Formula* ApplyNegNnfNeg(const Formula* f, FormulaFactory* fac) {
  return fac->Not(ltl::ToNnf(fac->Not(f), fac));
}

}  // namespace

const std::vector<MetamorphicTransform>& EquivalenceTransforms() {
  static const std::vector<MetamorphicTransform> kTransforms = {
      {"nnf", ApplyNnf},
      {"expand-before", ApplyExpandBefore},
      {"expand-derived", ApplyExpandDerived},
      {"expand-bool", ApplyExpandBool},
      {"until-dual", ApplyUntilDual},
      {"neg-nnf-neg", ApplyNegNnfNeg},
  };
  return kTransforms;
}

const Formula* BrokenSwapFinallyGlobally(const Formula* f,
                                         FormulaFactory* fac) {
  return Map(f, fac,
             [](Op op, const Formula* l, const Formula* r,
                FormulaFactory* fac) -> const Formula* {
               if (op == Op::kFinally) return fac->Globally(l);
               if (op == Op::kGlobally) return fac->Finally(l);
               return Rebuild(op, l, r, fac);
             });
}

}  // namespace ctdb::testing
