// A naive reference implementation of the permission check, deliberately
// independent of core/permission.cc: it *materializes* the compatibility
// product of Definition 7 as an explicit Büchi automaton (degeneralizing the
// two acceptance sets — query-final pairs and contract-final pairs — with
// the standard two-layer counter) and decides permission by
// automata::IsEmptyLanguage. Quadratic in states and never used in
// production; exists so the optimized checkers have something slow and
// obviously-correct to disagree with.

#pragma once

#include "automata/buchi.h"
#include "util/bitset.h"

namespace ctdb::testing {

/// \brief The reachable compatibility product contract × query × {0,1}.
///
/// Layer 0 waits for a query-final pair, layer 1 for a contract-final pair;
/// accepting states are layer-0 sources whose query state is final, so the
/// product has an accepting cycle iff some product cycle visits both a
/// query-final and a contract-final pair — exactly the simultaneous lasso of
/// Theorem 4.
automata::Buchi PermissionProduct(const automata::Buchi& contract,
                                  const Bitset& contract_events,
                                  const automata::Buchi& query);

/// Definition 7 permission via product emptiness. Must agree with
/// core::Permits on every input.
bool ReferencePermits(const automata::Buchi& contract,
                      const Bitset& contract_events,
                      const automata::Buchi& query);

}  // namespace ctdb::testing
