// A throwaway directory for tests that exercise real file I/O (WAL
// segments, checkpoints, crash recovery). Created under TMPDIR (default
// /tmp) and recursively removed on destruction.

#pragma once

#include <string>

namespace ctdb::testing {

class TempDir {
 public:
  /// Creates `${TMPDIR:-/tmp}/ctdb_<tag>_XXXXXX`. Aborts if mkdtemp fails —
  /// a test cannot do anything sensible without its directory.
  explicit TempDir(const std::string& tag);
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }
  /// `path()/name` — convenience for building file paths.
  std::string file(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

/// Recursively deletes `path` (best effort; used by ~TempDir).
void RemoveTree(const std::string& path);

}  // namespace ctdb::testing
