#include "testing/differential.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "automata/word.h"
#include "broker/persistence.h"
#include "core/permission.h"
#include "ltl/evaluator.h"
#include "ltl/parser.h"
#include "monitor/session.h"
#include "testing/generators.h"
#include "testing/metamorphic.h"
#include "testing/reference.h"
#include "testing/universe.h"
#include "translate/ltl_to_ba.h"
#include "util/string_util.h"
#include "workload/events.h"
#include "workload/generator.h"

namespace ctdb::testing {

namespace {

/// A contract id that no database in a diff run can contain; injecting it
/// into an answer is guaranteed to be a detectable corruption.
constexpr uint32_t kPhantomMatch = 1u << 30;

std::vector<uint32_t> Sorted(std::vector<uint32_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

std::string RenderMatches(const std::vector<uint32_t>& m) {
  std::string out = "{";
  for (size_t i = 0; i < m.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(m[i]);
  }
  return out + "}";
}

/// Collects the state of one RunDifferential iteration.
class Iteration {
 public:
  Iteration(uint64_t seed, const DiffOptions& options, DiffReport* report)
      : seed_(seed), options_(options), report_(report) {}

  void Run();

 private:
  void Report(const char* oracle, std::string detail) {
    report_->mismatches.push_back(DiffMismatch{seed_, oracle, std::move(detail)});
  }

  /// One comparison of two match vectors; returns true when they agree.
  bool CompareMatches(const char* oracle, const std::string& query,
                      const std::vector<uint32_t>& expected,
                      const std::vector<uint32_t>& actual) {
    ++report_->checks;
    if (Sorted(expected) == Sorted(actual)) return true;
    Report(oracle, "query '" + query + "': expected " +
                       RenderMatches(Sorted(expected)) + " got " +
                       RenderMatches(Sorted(actual)));
    return false;
  }

  void CheckUnindexed();
  void CheckBatch();
  void CheckThreaded();
  void CheckPersistence();
  void CheckReference();
  void CheckMetamorphic();
  void CheckTranslationSubstrate();

  uint64_t seed_;
  const DiffOptions& options_;
  DiffReport* report_;

  std::unique_ptr<broker::ContractDatabase> db_;
  std::vector<std::string> queries_;
  std::vector<std::vector<uint32_t>> baseline_;  ///< serial indexed matches
};

void Iteration::Run() {
  RandomDatabaseSpec spec;
  spec.contracts = options_.contracts;
  spec.contract_patterns = options_.contract_patterns;
  spec.vocabulary_size = options_.vocabulary_size;
  auto db = RandomDatabase(spec, seed_);
  if (!db.ok()) {
    Report("generator", "RandomDatabase failed: " + db.status().ToString());
    return;
  }
  db_ = std::move(*db);
  auto queries = RandomQueries(db_.get(), options_.query_patterns,
                               options_.queries, seed_ ^ 0x51C0FFEEULL,
                               options_.vocabulary_size);
  if (!queries.ok()) {
    Report("generator", "RandomQueries failed: " + queries.status().ToString());
    return;
  }
  queries_ = std::move(*queries);

  // Serial, fully indexed baseline every other configuration must match.
  for (const std::string& q : queries_) {
    auto r = db_->Query(q);
    if (!r.ok()) {
      Report("pipeline", "baseline Query('" + q + "') failed: " +
                             r.status().ToString());
      return;
    }
    baseline_.push_back(std::move(r->matches));
  }

  CheckUnindexed();
  CheckBatch();
  CheckThreaded();
  CheckPersistence();
  CheckReference();
  CheckMetamorphic();
  CheckTranslationSubstrate();
}

void Iteration::CheckUnindexed() {
  broker::QueryOptions unindexed;
  unindexed.use_prefilter = false;
  unindexed.use_projections = false;
  unindexed.permission.use_seeds = false;
  for (size_t i = 0; i < queries_.size(); ++i) {
    auto r = db_->Query(queries_[i], unindexed);
    if (!r.ok()) {
      Report("indexed-vs-unindexed", "unindexed Query failed: " +
                                         r.status().ToString());
      return;
    }
    if (options_.faults.corrupt_unindexed) r->matches.push_back(kPhantomMatch);
    if (!CompareMatches("indexed-vs-unindexed", queries_[i], baseline_[i],
                        r->matches)) {
      return;
    }
  }
}

void Iteration::CheckBatch() {
  auto batch = db_->QueryBatch(queries_);
  if (!batch.ok()) {
    Report("batch-vs-serial", "QueryBatch failed: " + batch.status().ToString());
    return;
  }
  if (options_.faults.corrupt_batch && !batch->empty()) {
    (*batch)[0].matches.push_back(kPhantomMatch);
  }
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (!CompareMatches("batch-vs-serial", queries_[i], baseline_[i],
                        (*batch)[i].matches)) {
      return;
    }
  }
}

void Iteration::CheckThreaded() {
  broker::QueryOptions threaded;
  threaded.threads = options_.threads;
  for (size_t i = 0; i < queries_.size(); ++i) {
    auto r = db_->Query(queries_[i], threaded);
    if (!r.ok()) {
      Report("threaded-vs-serial", "threaded Query failed: " +
                                       r.status().ToString());
      return;
    }
    if (options_.faults.corrupt_threaded) r->matches.push_back(kPhantomMatch);
    if (!CompareMatches("threaded-vs-serial", queries_[i], baseline_[i],
                        r->matches)) {
      return;
    }
  }
}

void Iteration::CheckPersistence() {
  std::stringstream stream;
  Status save = broker::SaveDatabase(*db_, &stream);
  if (!save.ok()) {
    Report("persistence-roundtrip", "save failed: " + save.ToString());
    return;
  }
  auto reloaded = broker::LoadDatabase(stream);
  if (!reloaded.ok()) {
    Report("persistence-roundtrip",
           "load failed: " + reloaded.status().ToString());
    return;
  }
  ++report_->checks;
  if ((*reloaded)->size() != db_->size()) {
    Report("persistence-roundtrip",
           StringFormat("size changed across roundtrip: %zu -> %zu",
                        db_->size(), (*reloaded)->size()));
    return;
  }
  for (size_t i = 0; i < queries_.size(); ++i) {
    auto r = (*reloaded)->Query(queries_[i]);
    if (!r.ok()) {
      Report("persistence-roundtrip", "reloaded Query failed: " +
                                          r.status().ToString());
      return;
    }
    if (options_.faults.corrupt_reloaded) r->matches.push_back(kPhantomMatch);
    if (!CompareMatches("persistence-roundtrip", queries_[i], baseline_[i],
                        r->matches)) {
      return;
    }
  }
}

void Iteration::CheckReference() {
  for (size_t i = 0; i < queries_.size(); ++i) {
    auto qf = ltl::Parse(queries_[i], db_->factory(), db_->vocabulary(),
                         {.require_known_events = true});
    if (!qf.ok()) {
      Report("reference-permission",
             "query reparse failed: " + qf.status().ToString());
      return;
    }
    auto qba = translate::LtlToBuchi(*qf, db_->factory(),
                                     db_->options().translate);
    if (!qba.ok()) {
      Report("reference-permission",
             "query translation failed: " + qba.status().ToString());
      return;
    }
    std::vector<uint32_t> reference_matches;
    for (uint32_t id = 0; id < db_->size(); ++id) {
      const broker::Contract& c = db_->contract(id);
      ++report_->checks;
      bool expected = ReferencePermits(c.automaton(), c.events, *qba);
      if (options_.faults.flip_reference && id == 0 && i == 0) {
        expected = !expected;
      }
      const bool actual = core::Permits(c.automaton(), c.events, *qba, {},
                                        &c.seed_states);
      if (expected != actual) {
        Report("reference-permission",
               StringFormat("contract %u, query '%s': reference=%d core=%d",
                            id, queries_[i].c_str(), expected ? 1 : 0,
                            actual ? 1 : 0));
        return;
      }
      if (expected) reference_matches.push_back(id);
    }
    // The full pipeline's answer must equal the naive per-contract sweep.
    if (!CompareMatches("reference-permission", queries_[i], reference_matches,
                        baseline_[i])) {
      return;
    }
  }
}

void Iteration::CheckMetamorphic() {
  std::vector<MetamorphicTransform> transforms = EquivalenceTransforms();
  if (options_.faults.break_metamorphic) {
    transforms.push_back({"broken-fg-swap", BrokenSwapFinallyGlobally});
  }
  Rng rng(seed_ ^ 0x3E7Au);
  for (size_t i = 0; i < queries_.size(); ++i) {
    auto qf = ltl::Parse(queries_[i], db_->factory(), db_->vocabulary(),
                         {.require_known_events = true});
    if (!qf.ok()) {
      Report("metamorphic", "query reparse failed: " + qf.status().ToString());
      return;
    }
    Bitset query_events;
    (*qf)->CollectEvents(&query_events);
    for (const MetamorphicTransform& t : transforms) {
      const ltl::Formula* tf = t.apply(*qf, db_->factory());
      // Semantic probe: equivalent formulas agree on every word.
      for (size_t w = 0; w < options_.words_per_formula; ++w) {
        const LassoWord word =
            RandomWord(&rng, db_->vocabulary()->size(), 3, 3);
        ++report_->checks;
        if (ltl::Evaluate(*qf, word) != ltl::Evaluate(tf, word)) {
          Report("metamorphic",
                 "transform '" + std::string(t.name) + "' changed the verdict"
                 " of '" + queries_[i] + "' on " +
                 word.ToString(*db_->vocabulary()));
          return;
        }
      }
      // Pipeline probe: match sets agree on contracts citing every query
      // event (for other contracts Definition 1(b) makes permission depend
      // on the cited-event set, which transforms may legitimately shrink).
      auto r = db_->QueryFormula(tf);
      if (!r.ok()) {
        Report("metamorphic", "transformed query failed: " +
                                  r.status().ToString());
        return;
      }
      for (uint32_t id = 0; id < db_->size(); ++id) {
        if (!query_events.IsSubsetOf(db_->contract(id).events)) continue;
        ++report_->checks;
        const bool base = std::count(baseline_[i].begin(), baseline_[i].end(),
                                     id) > 0;
        const bool got = std::count(r->matches.begin(), r->matches.end(),
                                    id) > 0;
        if (base != got) {
          Report("metamorphic",
                 StringFormat("transform '%s' flipped contract %u on '%s'",
                              t.name, id, queries_[i].c_str()));
          return;
        }
      }
    }
  }
}

/// Self-contained translation-layer oracles over a tiny private vocabulary:
/// print/parse round-trip and evaluator-vs-automaton agreement.
void Iteration::CheckTranslationSubstrate() {
  const size_t kEvents = 3;
  Vocabulary vocab = TestVocabulary(kEvents);
  ltl::FormulaFactory fac;
  Rng rng(seed_ ^ 0x7AB1EAUL);
  for (int trial = 0; trial < 3; ++trial) {
    const ltl::Formula* f = RandomFormula(&rng, &fac, kEvents, 3);
    const std::string printed = f->ToString(vocab);
    auto reparsed = ltl::Parse(printed, &fac, &vocab);
    ++report_->checks;
    if (!reparsed.ok() || *reparsed != f) {
      Report("print-parse-roundtrip",
             "'" + printed + "' did not round-trip: " +
                 (reparsed.ok() ? (*reparsed)->ToString(vocab)
                                : reparsed.status().ToString()));
      return;
    }
    auto ba = translate::LtlToBuchi(f, &fac);
    if (!ba.ok()) {
      Report("evaluator-vs-automaton",
             "translation failed for '" + printed + "': " +
                 ba.status().ToString());
      return;
    }
    for (size_t w = 0; w < options_.words_per_formula; ++w) {
      const LassoWord word = RandomWord(&rng, kEvents, 3, 3);
      ++report_->checks;
      if (ltl::Evaluate(f, word) != automata::AcceptsWord(*ba, word)) {
        Report("evaluator-vs-automaton",
               "'" + printed + "' disagrees on " + word.ToString(vocab));
        return;
      }
    }
  }
}

/// One RunLifecycleDifferential iteration: evolve, record, probe.
class LifecycleIteration {
 public:
  LifecycleIteration(uint64_t seed, const LifecycleDiffOptions& options,
                     DiffReport* report)
      : seed_(seed), options_(options), report_(report) {}

  void Run();

 private:
  /// One live contract in the model: enough to re-register it verbatim.
  struct ModelEntry {
    uint32_t id = 0;
    std::string name;
    std::string ltl;
  };

  void Report(const char* oracle, std::string detail) {
    report_->mismatches.push_back(
        DiffMismatch{seed_, oracle, std::move(detail)});
  }

  bool ProbeTick(uint64_t tick, const std::vector<ModelEntry>& model,
                 const broker::ContractDatabase& reloaded);

  uint64_t seed_;
  const LifecycleDiffOptions& options_;
  DiffReport* report_;

  std::unique_ptr<broker::ContractDatabase> db_;
  std::vector<std::string> queries_;
};

void LifecycleIteration::Run() {
  db_ = std::make_unique<broker::ContractDatabase>();
  workload::GeneratorOptions gen_options;
  gen_options.vocabulary_size = options_.vocabulary_size;
  gen_options.properties = options_.contract_patterns;
  workload::SpecGenerator generator(gen_options, seed_, db_->vocabulary(),
                                    db_->factory());
  Rng rng(seed_ ^ 0x11FEC7C1Eu);  // lifecycle stream choices

  std::vector<ModelEntry> live;  // ascending by id (ids are never reused)
  std::vector<std::pair<uint64_t, std::vector<ModelEntry>>> timeline;
  size_t names = 0;

  for (size_t m = 0; m < options_.mutations; ++m) {
    const uint64_t dice = rng.Uniform(4);
    if (live.empty() || dice < 2) {
      auto gen = generator.Next();
      if (!gen.ok()) {
        Report("generator", "spec draw failed: " + gen.status().ToString());
        return;
      }
      const std::string name = "c" + std::to_string(names++);
      auto id = db_->Register(name, gen->text);
      if (!id.ok()) {
        Report("lifecycle", "Register failed: " + id.status().ToString());
        return;
      }
      live.push_back(ModelEntry{*id, name, gen->text});
    } else if (dice == 2) {
      const size_t pick = static_cast<size_t>(rng.Uniform(live.size()));
      auto at = db_->Unregister(live[pick].id);
      if (!at.ok()) {
        Report("lifecycle", "Unregister failed: " + at.status().ToString());
        return;
      }
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    } else {
      const size_t pick = static_cast<size_t>(rng.Uniform(live.size()));
      auto gen = generator.Next();
      if (!gen.ok()) {
        Report("generator", "spec draw failed: " + gen.status().ToString());
        return;
      }
      auto at = db_->Replace(live[pick].id, gen->text);
      if (!at.ok()) {
        Report("lifecycle", "Replace failed: " + at.status().ToString());
        return;
      }
      live[pick].ltl = gen->text;
    }
    timeline.emplace_back(db_->last_sequence(), live);
  }

  auto queries = RandomQueries(db_.get(), options_.query_patterns,
                               options_.queries, seed_ ^ 0x51C0FFEEULL,
                               options_.vocabulary_size);
  if (!queries.ok()) {
    Report("generator", "RandomQueries failed: " + queries.status().ToString());
    return;
  }
  queries_ = std::move(*queries);

  // The evolved database — holes, history and all — must round-trip
  // through persistence with every sampled time-travel answer intact.
  std::stringstream stream;
  Status save = broker::SaveDatabase(*db_, &stream);
  if (!save.ok()) {
    Report("lifecycle-persist", "save failed: " + save.ToString());
    return;
  }
  auto reloaded = broker::LoadDatabase(stream);
  if (!reloaded.ok()) {
    Report("lifecycle-persist",
           "load failed: " + reloaded.status().ToString());
    return;
  }

  // Probe evenly spaced ticks, always including the final state (where
  // as_of == clock exercises the latest-path clamp).
  const size_t n = timeline.size();
  const size_t samples = std::min(options_.sample_ticks, n);
  for (size_t j = 0; j < samples; ++j) {
    const size_t at = (samples == 1) ? n - 1 : j * (n - 1) / (samples - 1);
    if (!ProbeTick(timeline[at].first, timeline[at].second, **reloaded)) {
      return;
    }
  }
}

bool LifecycleIteration::ProbeTick(uint64_t tick,
                                   const std::vector<ModelEntry>& model,
                                   const broker::ContractDatabase& reloaded) {
  // Fresh database holding exactly the prefix's live set. The full
  // vocabulary is interned first so query texts parse identically (events
  // cited only by dead contracts stay known, as they do in the evolved db).
  broker::ContractDatabase fresh;
  for (const std::string& name : db_->vocabulary()->names()) {
    auto interned = fresh.InternEvent(name);
    if (!interned.ok()) {
      Report("as-of-vs-prefix",
             "intern failed: " + interned.status().ToString());
      return false;
    }
  }
  for (const ModelEntry& entry : model) {
    auto id = fresh.Register(entry.name, entry.ltl);
    if (!id.ok()) {
      Report("as-of-vs-prefix",
             "prefix Register failed: " + id.status().ToString());
      return false;
    }
  }

  for (const std::string& q : queries_) {
    broker::QueryOptions as_of;
    as_of.as_of = tick;
    as_of.collect_witnesses = true;
    auto r = db_->Query(q, as_of);
    if (!r.ok()) {
      Report("as-of-vs-prefix", "QueryAsOf failed: " + r.status().ToString());
      return false;
    }
    auto f = fresh.Query(q);
    if (!f.ok()) {
      Report("as-of-vs-prefix",
             "prefix Query failed: " + f.status().ToString());
      return false;
    }
    // The fresh database assigned dense ids in model order; map back.
    std::vector<uint32_t> expected;
    expected.reserve(f->matches.size());
    for (uint32_t dense : f->matches) expected.push_back(model[dense].id);
    ++report_->checks;
    if (Sorted(expected) != Sorted(r->matches)) {
      Report("as-of-vs-prefix",
             StringFormat("tick %llu query '%s': expected %s got %s",
                          static_cast<unsigned long long>(tick), q.c_str(),
                          RenderMatches(Sorted(expected)).c_str(),
                          RenderMatches(Sorted(r->matches)).c_str()));
      return false;
    }

    // Witnesses: one per match, each satisfying the query formula.
    ++report_->checks;
    if (r->witnesses.size() != r->matches.size()) {
      Report("as-of-witnesses",
             StringFormat("tick %llu query '%s': %zu matches, %zu witnesses",
                          static_cast<unsigned long long>(tick), q.c_str(),
                          r->matches.size(), r->witnesses.size()));
      return false;
    }
    auto qf = ltl::Parse(q, db_->factory(), db_->vocabulary(),
                         {.require_known_events = true});
    if (!qf.ok()) {
      Report("as-of-witnesses",
             "query reparse failed: " + qf.status().ToString());
      return false;
    }
    for (size_t w = 0; w < r->witnesses.size(); ++w) {
      ++report_->checks;
      if (!ltl::Evaluate(*qf, r->witnesses[w])) {
        Report("as-of-witnesses",
               StringFormat("tick %llu query '%s': witness for contract %u "
                            "does not satisfy the query",
                            static_cast<unsigned long long>(tick), q.c_str(),
                            r->matches[w]));
        return false;
      }
    }

    // The reloaded database must time-travel identically.
    broker::QueryOptions reload_as_of;
    reload_as_of.as_of = tick;
    auto rr = reloaded.Query(q, reload_as_of);
    if (!rr.ok()) {
      Report("lifecycle-persist",
             "reloaded QueryAsOf failed: " + rr.status().ToString());
      return false;
    }
    ++report_->checks;
    if (Sorted(rr->matches) != Sorted(r->matches)) {
      Report("lifecycle-persist",
             StringFormat("tick %llu query '%s': reloaded %s vs live %s",
                          static_cast<unsigned long long>(tick), q.c_str(),
                          RenderMatches(Sorted(rr->matches)).c_str(),
                          RenderMatches(Sorted(r->matches)).c_str()));
      return false;
    }
  }
  return true;
}

/// Independent re-implementation of finite-trace stepping for the monitor
/// differential: std::set state sets, a per-event scan of every transition
/// label, and a forward fixpoint for the live marking — deliberately sharing
/// no code (bitsets, label dedup, reverse adjacency, freezing, pruning) with
/// monitor::ContractStepper.
class NaiveStepper {
 public:
  explicit NaiveStepper(const broker::Contract* contract)
      : contract_(contract) {
    const automata::Buchi& ba = contract->automaton();
    live_.assign(ba.StateCount(), false);
    for (size_t s : contract->seed_states.Indices()) live_[s] = true;
    bool changed = true;
    while (changed) {
      changed = false;
      for (automata::StateId s = 0; s < ba.StateCount(); ++s) {
        if (live_[s]) continue;
        for (const automata::Transition& t : ba.Out(s)) {
          if (live_[t.to]) {
            live_[s] = true;
            changed = true;
            break;
          }
        }
      }
    }
    reach_.insert(ba.initial());
  }

  void Step(const Snapshot& snapshot) {
    const automata::Buchi& ba = contract_->automaton();
    std::set<automata::StateId> next;
    for (automata::StateId s : reach_) {
      for (const automata::Transition& t : ba.Out(s)) {
        if (Satisfies(snapshot, t.label)) next.insert(t.to);
      }
    }
    reach_ = std::move(next);
  }

  monitor::StreamVerdict Verdict() const {
    const automata::Buchi& ba = contract_->automaton();
    bool any_live = false, any_final = false;
    for (automata::StateId s : reach_) {
      if (live_[s]) any_live = true;
      if (ba.finals().Test(s)) any_final = true;
    }
    if (!any_live) return monitor::StreamVerdict::kViolated;
    return any_final ? monitor::StreamVerdict::kSatisfied
                     : monitor::StreamVerdict::kUndetermined;
  }

 private:
  const broker::Contract* contract_;
  std::set<automata::StateId> reach_;
  std::vector<bool> live_;
};

std::string RenderVerdicts(const std::vector<monitor::VerdictDelta>& v) {
  std::string out = "{";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(v[i].contract_id);
    out += ":";
    out += monitor::StreamVerdictName(v[i].verdict);
  }
  return out + "}";
}

/// One RunMonitorDifferential iteration: one universe, one trace, five
/// oracles.
class MonitorIteration {
 public:
  MonitorIteration(uint64_t seed, const MonitorDiffOptions& options,
                   DiffReport* report)
      : seed_(seed), options_(options), report_(report) {}

  void Run();

 private:
  void Report(const char* oracle, std::string detail) {
    report_->mismatches.push_back(
        DiffMismatch{seed_, oracle, std::move(detail)});
  }

  bool CompareVerdicts(const char* oracle, const char* when,
                       const std::vector<monitor::VerdictDelta>& expected,
                       const std::vector<monitor::VerdictDelta>& actual) {
    ++report_->checks;
    if (expected == actual) return true;
    Report(oracle, StringFormat("%s: expected %s got %s", when,
                                RenderVerdicts(expected).c_str(),
                                RenderVerdicts(actual).c_str()));
    return false;
  }

  bool CheckViolatedSoundness(
      const std::vector<monitor::VerdictDelta>& verdicts,
      const std::vector<Snapshot>& trace, Rng* rng);

  uint64_t seed_;
  const MonitorDiffOptions& options_;
  DiffReport* report_;

  std::unique_ptr<broker::ContractDatabase> db_;
};

void MonitorIteration::Run() {
  db_ = std::make_unique<broker::ContractDatabase>();
  workload::GeneratorOptions gen_options;
  gen_options.vocabulary_size = options_.vocabulary_size;
  gen_options.properties = options_.contract_patterns;
  workload::EventSpecGenerator generator(gen_options, seed_,
                                         db_->vocabulary(), db_->factory());
  for (size_t c = 0; c < options_.contracts; ++c) {
    auto gen = generator.Next();
    if (!gen.ok()) {
      Report("generator", "event spec draw failed: " + gen.status().ToString());
      return;
    }
    auto id = db_->Register("c" + std::to_string(c), gen->text);
    if (!id.ok()) {
      Report("generator", "Register failed: " + id.status().ToString());
      return;
    }
  }

  const auto snapshot = db_->Snapshot();
  auto open = [&](bool prune) {
    monitor::StreamOptions stream_options;
    stream_options.prune = prune;
    return monitor::StreamSession::Open(snapshot, stream_options);
  };
  auto batched = open(true);
  auto single = open(true);
  auto noprune = open(false);
  if (!batched.ok() || !single.ok() || !noprune.ok()) {
    Report("monitor", "StreamSession::Open failed: " +
                          batched.status().ToString());
    return;
  }

  // Naive side, one per tracked contract in the same (ascending id) order.
  std::vector<NaiveStepper> naive;
  for (uint32_t id = 0; id < snapshot->slot_count(); ++id) {
    if (const broker::Contract* c = snapshot->contract_or_null(id)) {
      naive.emplace_back(c);
    }
  }

  // Running verdict map the deltas are applied to (delta-vs-summary).
  std::vector<monitor::VerdictDelta> applied =
      (*batched)->Summary().verdicts;

  workload::TraceOptions matched_options;
  matched_options.vocabulary_size = options_.vocabulary_size;
  workload::TraceOptions mismatched_options = matched_options;
  mismatched_options.prefix = "q";  // cited by no contract: pruning path
  workload::TraceGenerator matched(matched_options, seed_ ^ 0x7ACEDULL);
  workload::TraceGenerator mismatched(mismatched_options,
                                      seed_ ^ 0x0FFBEA7ULL);
  Rng lasso_rng(seed_ ^ 0x1A550ULL);

  std::vector<Snapshot> trace;  // resolved instants for the lasso probe
  bool flip_pending = options_.flip_naive;
  for (size_t b = 0; b < options_.batches; ++b) {
    const monitor::EventBatch batch = (b % 2 == 0 ? matched : mismatched)
                                          .NextBatch(options_.batch_events);
    const monitor::StreamAppendResult result = (*batched)->Append(batch);
    for (const std::vector<std::string>& instant : batch) {
      (*single)->Append({instant});
    }
    (*noprune)->Append(batch);

    const Vocabulary& vocab = snapshot->vocabulary();
    for (const std::vector<std::string>& instant : batch) {
      Snapshot s(vocab.size());
      for (const std::string& name : instant) {
        if (auto id = vocab.Find(name); id.ok()) s.Set(*id);
      }
      for (NaiveStepper& stepper : naive) stepper.Step(s);
      trace.push_back(std::move(s));
    }

    const monitor::StreamCloseInfo summary = (*batched)->Summary();
    std::vector<monitor::VerdictDelta> expected = summary.verdicts;
    for (size_t i = 0; i < naive.size(); ++i) {
      expected[i].verdict = naive[i].Verdict();
    }
    if (flip_pending && !expected.empty()) {
      flip_pending = false;
      auto& v = expected[0].verdict;
      v = v == monitor::StreamVerdict::kViolated
              ? monitor::StreamVerdict::kSatisfied
              : monitor::StreamVerdict::kViolated;
    }
    const std::string when = StringFormat("batch %zu", b);
    if (!CompareVerdicts("incremental-vs-naive", when.c_str(), expected,
                         summary.verdicts)) {
      return;
    }

    for (const monitor::VerdictDelta& delta : result.deltas) {
      for (monitor::VerdictDelta& entry : applied) {
        if (entry.contract_id == delta.contract_id) {
          entry.verdict = delta.verdict;
          break;
        }
      }
    }
    if (!CompareVerdicts("delta-vs-summary", when.c_str(), applied,
                         summary.verdicts)) {
      return;
    }
  }

  const monitor::StreamCloseInfo final_summary = (*batched)->Summary();
  if (!CompareVerdicts("batch-vs-single", "final", final_summary.verdicts,
                       (*single)->Summary().verdicts)) {
    return;
  }
  if (!CompareVerdicts("prune-vs-noprune", "final", final_summary.verdicts,
                       (*noprune)->Summary().verdicts)) {
    return;
  }
  CheckViolatedSoundness(final_summary.verdicts, trace, &lasso_rng);
}

bool MonitorIteration::CheckViolatedSoundness(
    const std::vector<monitor::VerdictDelta>& verdicts,
    const std::vector<Snapshot>& trace, Rng* rng) {
  const auto snapshot = db_->Snapshot();
  const size_t vocab_size = snapshot->vocabulary().size();
  for (const monitor::VerdictDelta& v : verdicts) {
    if (v.verdict != monitor::StreamVerdict::kViolated) continue;
    const broker::Contract* contract =
        snapshot->contract_or_null(v.contract_id);
    if (contract == nullptr) continue;
    ltl::FormulaFactory factory;
    auto formula = ltl::Parse(contract->ltl_text, &factory,
                              snapshot->vocabulary());
    if (!formula.ok()) {
      Report("violated-soundness", "reparse failed: " +
                                       formula.status().ToString());
      return false;
    }
    for (size_t probe = 0; probe < options_.lassos_per_violation; ++probe) {
      LassoWord word;
      word.prefix = trace;
      const size_t extra = rng->Uniform(3);
      for (size_t i = 0; i < extra; ++i) {
        word.prefix.push_back(RandomSnapshot(rng, vocab_size));
      }
      const size_t cycle = 1 + rng->Uniform(3);
      for (size_t i = 0; i < cycle; ++i) {
        word.cycle.push_back(RandomSnapshot(rng, vocab_size));
      }
      ++report_->checks;
      if (ltl::Evaluate(*formula, word)) {
        Report("violated-soundness",
               StringFormat("contract %u is violated on the trace but its "
                            "formula holds on a lasso extension (probe %zu)",
                            v.contract_id, probe));
        return false;
      }
    }
  }
  return true;
}

}  // namespace

DiffReport RunDifferential(const DiffOptions& options) {
  DiffReport report;
  for (size_t i = 0; i < options.iters; ++i) {
    if (report.mismatches.size() >= options.max_mismatches) break;
    Iteration iteration(options.seed + i, options, &report);
    iteration.Run();
    ++report.iterations;
  }
  return report;
}

DiffReport RunLifecycleDifferential(const LifecycleDiffOptions& options) {
  DiffReport report;
  for (size_t i = 0; i < options.iters; ++i) {
    if (report.mismatches.size() >= options.max_mismatches) break;
    LifecycleIteration iteration(options.seed + i, options, &report);
    iteration.Run();
    ++report.iterations;
  }
  return report;
}

DiffReport RunMonitorDifferential(const MonitorDiffOptions& options) {
  DiffReport report;
  for (size_t i = 0; i < options.iters; ++i) {
    if (report.mismatches.size() >= options.max_mismatches) break;
    MonitorIteration iteration(options.seed + i, options, &report);
    iteration.Run();
    ++report.iterations;
  }
  return report;
}

std::string FormatMismatch(const DiffMismatch& m) {
  return StringFormat(
      "oracle=%s seed=%llu: %s (reproduce: ctdb_diff_fuzz --iters=1 "
      "--seed=%llu)",
      m.oracle.c_str(), static_cast<unsigned long long>(m.seed),
      m.detail.c_str(), static_cast<unsigned long long>(m.seed));
}

}  // namespace ctdb::testing
