// Metamorphic LTL transforms: syntactic rewrites that provably preserve the
// language of a formula, so every downstream verdict — evaluator truth on a
// word, BA emptiness, permission answers, query match sets — must be
// invariant under them. Each transform takes a different identity than the
// rewriter's own normalization, so a bug in either side surfaces as a
// verdict change.

#pragma once

#include <vector>

#include "ltl/formula.h"

namespace ctdb::testing {

/// A named language-preserving rewrite.
struct MetamorphicTransform {
  const char* name;
  const ltl::Formula* (*apply)(const ltl::Formula*, ltl::FormulaFactory*);
};

/// The transform catalogue:
///  - "nnf"            ToNnf + SimplifyNnf (the production rewriter path)
///  - "expand-before"  pBq → ¬(¬p U q)           (the paper's definition)
///  - "expand-derived" Fp → true U p, Gp → false R p, pWq → (pUq) ∨ Gp
///  - "expand-bool"    p→q ⇒ ¬p∨q,  p↔q ⇒ (p∧q)∨(¬p∧¬q)
///  - "until-dual"     pUq → ¬(¬p R ¬q), pRq → ¬(¬p U ¬q)
///  - "neg-nnf-neg"    f → ¬ToNnf(¬f)            (negation duality twice)
const std::vector<MetamorphicTransform>& EquivalenceTransforms();

/// A deliberately WRONG transform (swaps F and G) used to prove the
/// metamorphic oracle detects non-equivalent rewrites. Identity on formulas
/// without F/G.
const ltl::Formula* BrokenSwapFinallyGlobally(const ltl::Formula* f,
                                              ltl::FormulaFactory* factory);

}  // namespace ctdb::testing
