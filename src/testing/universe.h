// Random contract databases and query workloads (Dwyer-pattern
// conjunctions, §7.2) shared by the benchmarks and the differential fuzzer.
// Thin Status-returning wrappers over workload::SpecGenerator so every
// harness builds identical universes from the same seed.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "broker/database.h"
#include "util/result.h"

namespace ctdb::testing {

/// Shape of a RandomDatabase universe.
struct RandomDatabaseSpec {
  size_t contracts = 8;
  /// Dwyer-pattern properties conjoined per contract (Table 2's 5/6/7 for
  /// the paper's datasets; smaller for fuzzing).
  size_t contract_patterns = 2;
  /// Events p1..pN shared by contracts and queries (§7.2 uses 20).
  size_t vocabulary_size = 20;
  broker::DatabaseOptions database;
};

/// Fills a fresh database with contracts "c0".."c{n-1}" drawn reproducibly
/// from `seed`. Equal (spec, seed) yield byte-identical databases.
Result<std::unique_ptr<broker::ContractDatabase>> RandomDatabase(
    const RandomDatabaseSpec& spec, uint64_t seed);

/// Draws `count` query texts of `patterns` conjoined properties against
/// `db`'s vocabulary.
Result<std::vector<std::string>> RandomQueries(broker::ContractDatabase* db,
                                               size_t patterns, size_t count,
                                               uint64_t seed,
                                               size_t vocabulary_size = 20);

}  // namespace ctdb::testing
