// Seed-reproducible random generators shared by property tests, benchmarks
// and the differential fuzzer (tools/fuzz). Formerly copy-pasted test
// helpers; now one library so every harness draws from the same
// distributions and a printed seed reproduces an input anywhere.

#pragma once

#include <string>
#include <vector>

#include "base/run.h"
#include "base/vocabulary.h"
#include "ltl/formula.h"
#include "util/rng.h"

namespace ctdb::testing {

/// Draws a random LTL formula over events [0, num_events) of the given node
/// depth, covering every operator (including derived ones).
const ltl::Formula* RandomFormula(Rng* rng, ltl::FormulaFactory* fac,
                                  size_t num_events, int depth);

/// Draws a random snapshot over `num_events` events.
Snapshot RandomSnapshot(Rng* rng, size_t num_events);

/// Draws a random lasso word u·vʷ with the given maximum lengths
/// (|v| ≥ 1 always).
LassoWord RandomWord(Rng* rng, size_t num_events, size_t max_prefix,
                     size_t max_cycle);

/// A vocabulary "e0".."e{n-1}" for rendering diagnostics.
Vocabulary TestVocabulary(size_t n);

}  // namespace ctdb::testing
