#include "testing/crash.h"

#include <unistd.h>

#include <mutex>

#include "util/crash_point.h"

namespace ctdb::testing {

namespace {

// The production hook is a bare function pointer, so the harness state is
// file-scope. A mutex serializes hits: sites fire from the caller's thread
// and from the WAL writer thread.
std::mutex g_mutex;
std::vector<std::string>* g_record = nullptr;
bool g_armed = false;
std::string g_armed_site;
uint64_t g_remaining = 0;

void Hook(const char* site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_record != nullptr) g_record->push_back(site);
  if (g_armed && (g_armed_site.empty() || g_armed_site == site)) {
    if (--g_remaining == 0) ::_exit(kCrashExitCode);
  }
}

}  // namespace

void RecordCrashPoints(std::vector<std::string>* sites) {
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    g_record = sites;
    g_armed = false;
  }
  util::SetCrashPointHook(&Hook);
}

void ArmCrashPoint(std::string site, uint64_t hit) {
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    g_record = nullptr;
    g_armed = true;
    g_armed_site = std::move(site);
    g_remaining = hit == 0 ? 1 : hit;
  }
  util::SetCrashPointHook(&Hook);
}

void StopCrashPoints() {
  util::SetCrashPointHook(nullptr);
  std::lock_guard<std::mutex> lock(g_mutex);
  g_record = nullptr;
  g_armed = false;
}

}  // namespace ctdb::testing
