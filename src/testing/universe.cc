#include "testing/universe.h"

#include "workload/generator.h"

namespace ctdb::testing {

Result<std::unique_ptr<broker::ContractDatabase>> RandomDatabase(
    const RandomDatabaseSpec& spec, uint64_t seed) {
  auto db = std::make_unique<broker::ContractDatabase>(spec.database);
  workload::GeneratorOptions gen_options;
  gen_options.vocabulary_size = spec.vocabulary_size;
  gen_options.properties = spec.contract_patterns;
  workload::SpecGenerator generator(gen_options, seed, db->vocabulary(),
                                    db->factory());
  for (size_t i = 0; i < spec.contracts; ++i) {
    CTDB_ASSIGN_OR_RETURN(workload::GeneratedSpec gen, generator.Next());
    CTDB_RETURN_NOT_OK(db->RegisterFormula("c" + std::to_string(i),
                                           gen.formula, gen.text)
                           .status());
  }
  return db;
}

Result<std::vector<std::string>> RandomQueries(broker::ContractDatabase* db,
                                               size_t patterns, size_t count,
                                               uint64_t seed,
                                               size_t vocabulary_size) {
  workload::GeneratorOptions options;
  options.vocabulary_size = vocabulary_size;
  options.properties = patterns;
  workload::SpecGenerator generator(options, seed, db->vocabulary(),
                                    db->factory());
  std::vector<std::string> queries;
  for (size_t i = 0; i < count; ++i) {
    CTDB_ASSIGN_OR_RETURN(workload::GeneratedSpec gen, generator.Next());
    queries.push_back(gen.text);
  }
  return queries;
}

}  // namespace ctdb::testing
