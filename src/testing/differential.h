// The differential-testing engine behind tools/fuzz's ctdb_diff_fuzz and the
// injected-bug test suite. Each iteration builds a random contract database
// and query workload from one seed and cross-checks the composed pipeline
// (parse → rewrite → translate → index → permission → persistence) through
// independent oracles:
//
//   indexed-vs-unindexed   prefilter + projections vs. the §3 full scan
//   batch-vs-serial        QueryBatch vs. one Query per text
//   threaded-vs-serial     threads=N vs. threads=1
//   persistence-roundtrip  save → load → identical answers
//   reference-permission   core::Permits vs. testing::ReferencePermits
//   metamorphic            EquivalenceTransforms preserve verdicts
//   print-parse-roundtrip  Parse(ToString(f)) is f (hash-consed identity)
//   evaluator-vs-automaton Evaluate(f, w) ⇔ BA(f) accepts w
//
// Every mismatch carries the iteration seed; `ctdb_diff_fuzz --iters=1
// --seed=<seed>` reproduces it. FaultInjection deliberately corrupts one
// side of a chosen oracle so tests can prove the oracle detects real faults.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ctdb::testing {

/// Testing-the-tester hooks: each flag corrupts one side of one oracle, so a
/// clean engine must report a mismatch for it (and only it).
struct FaultInjection {
  bool corrupt_unindexed = false;   ///< phantom match in the full-scan answer
  bool corrupt_batch = false;       ///< phantom match in a QueryBatch answer
  bool corrupt_threaded = false;    ///< phantom match in the threads>1 answer
  bool corrupt_reloaded = false;    ///< phantom match after save/load
  bool flip_reference = false;      ///< negate one ReferencePermits verdict
  bool break_metamorphic = false;   ///< add the F/G-swapping "transform"

  bool Any() const {
    return corrupt_unindexed || corrupt_batch || corrupt_threaded ||
           corrupt_reloaded || flip_reference || break_metamorphic;
  }
};

/// Engine configuration. Defaults produce small, dense universes where most
/// oracles fire on every iteration yet one iteration stays well under 100ms.
struct DiffOptions {
  uint64_t seed = 1;
  size_t iters = 100;
  /// Universe shape (iteration i uses seed `seed + i`).
  size_t contracts = 5;
  size_t contract_patterns = 2;
  size_t queries = 3;
  size_t query_patterns = 1;
  size_t vocabulary_size = 8;
  /// Concurrency of the parallel side of threaded-vs-serial.
  size_t threads = 3;
  /// Random-word probes per formula for the metamorphic/evaluator oracles.
  size_t words_per_formula = 6;
  /// Stop after this many mismatches.
  size_t max_mismatches = 8;
  FaultInjection faults;
};

/// One detected disagreement.
struct DiffMismatch {
  uint64_t seed = 0;      ///< iteration seed (reproduces with --iters=1)
  std::string oracle;     ///< which cross-check fired
  std::string detail;
};

/// Outcome of a RunDifferential sweep.
struct DiffReport {
  size_t iterations = 0;
  size_t checks = 0;  ///< individual comparisons performed
  std::vector<DiffMismatch> mismatches;
  bool ok() const { return mismatches.empty(); }
};

/// Runs `options.iters` seeded iterations of every oracle.
DiffReport RunDifferential(const DiffOptions& options);

/// Configuration of the lifecycle / time-travel differential
/// (RunLifecycleDifferential).
struct LifecycleDiffOptions {
  uint64_t seed = 1;
  size_t iters = 50;
  /// Mutations per iteration: a random Register / Unregister / Replace mix
  /// (registration-heavy so the live set keeps material to retire).
  size_t mutations = 24;
  size_t contract_patterns = 2;
  size_t queries = 3;
  size_t query_patterns = 1;
  size_t vocabulary_size = 8;
  /// Clock ticks probed per iteration (evenly spaced, always including the
  /// final state); each probed tick rebuilds a fresh prefix database.
  size_t sample_ticks = 6;
  size_t max_mismatches = 8;
};

/// \brief Cross-checks time travel against re-execution.
///
/// Each iteration evolves one database through a random lifecycle stream,
/// recording the exact live set (id, name, ltl) after every mutation. For
/// sampled ticks s it then checks, per query:
///
///   as-of-vs-prefix     QueryAsOf(s) == a fresh database registered with
///                       exactly the contracts live at s (ids re-mapped
///                       through the model)
///   as-of-witnesses     every as-of match carries a witness satisfying
///                       the query formula
///   lifecycle-persist   save → load of the evolved database preserves
///                       every sampled QueryAsOf answer
DiffReport RunLifecycleDifferential(const LifecycleDiffOptions& options);

/// Configuration of the streaming-monitor differential
/// (RunMonitorDifferential).
struct MonitorDiffOptions {
  uint64_t seed = 1;
  size_t iters = 50;
  /// Universe shape: event-pattern contracts (workload/events.h) over a
  /// shared vocabulary.
  size_t contracts = 4;
  size_t contract_patterns = 1;
  size_t vocabulary_size = 8;
  /// Stream shape per iteration. Batches alternate between the contracts'
  /// vocabulary and a disjoint one, so both the stepping and the
  /// alphabet-pruning paths run every iteration.
  size_t batches = 4;
  size_t batch_events = 6;
  /// Random lasso extensions probed per violated contract.
  size_t lassos_per_violation = 3;
  size_t max_mismatches = 8;
  /// Fault injection: negate one naive verdict per iteration, proving the
  /// incremental-vs-naive oracle detects real faults.
  bool flip_naive = false;
};

/// \brief Cross-checks the streaming monitor against independent oracles.
///
/// Each iteration registers random event-pattern contracts, opens monitor
/// sessions on one snapshot and drives them with one random trace:
///
///   incremental-vs-naive  after every batch, each contract's stepper
///                         verdict equals a naive recomputation (std::set
///                         state sets, per-event label scan, fixpoint live
///                         marking — no bitsets, no dedup, no pruning)
///   delta-vs-summary      applying each append's deltas to the previous
///                         verdict map reproduces the session summary
///   batch-vs-single       appending the trace one instant at a time ends
///                         in the same summary as batched appends
///   prune-vs-noprune      StreamOptions::prune only skips work: verdicts
///                         are identical with pruning disabled
///   violated-soundness    a violated contract's formula evaluates false
///                         (ltl::Evaluate) on random lasso extensions of
///                         the observed trace — "no extension satisfies"
DiffReport RunMonitorDifferential(const MonitorDiffOptions& options);

/// "oracle=<o> seed=<s>: <detail> (reproduce: ctdb_diff_fuzz ...)".
std::string FormatMismatch(const DiffMismatch& m);

}  // namespace ctdb::testing
