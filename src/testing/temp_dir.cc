#include "testing/temp_dir.h"

#include <dirent.h>
#include <stdlib.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

namespace ctdb::testing {

TempDir::TempDir(const std::string& tag) {
  const char* base = ::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") + "/ctdb_" +
                     tag + "_XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) {
    std::perror("mkdtemp");
    std::abort();
  }
  path_ = tmpl;
}

TempDir::~TempDir() {
  if (!path_.empty()) RemoveTree(path_);
}

void RemoveTree(const std::string& path) {
  DIR* d = ::opendir(path.c_str());
  if (d != nullptr) {
    while (const dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      const std::string child = path + "/" + name;
      struct stat st {};
      if (::lstat(child.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        RemoveTree(child);
      } else {
        ::unlink(child.c_str());
      }
    }
    ::closedir(d);
  }
  ::rmdir(path.c_str());
}

}  // namespace ctdb::testing
