// Crash-point test harness on top of util/crash_point.h.
//
// Production code calls `util::CrashPoint("site")` at the instants where a
// crash is interesting (after a write but before its fsync, after a rename
// but before the directory sync, ...). Tests drive those sites in two modes:
//
//  1. Record: `RecordCrashPoints(&sites)` collects every site hit during a
//     scenario, so a property test can enumerate the crash schedule it is
//     about to explore.
//  2. Kill: `ArmCrashPoint(site, n)` makes the n-th hit of `site` terminate
//     the process immediately with `_exit(kCrashExitCode)` — no destructors,
//     no buffer flushes, exactly like a kill -9 at that instant. Tests
//     `fork()` first and assert on the child's exit status.
//
// Both modes are process-global (the production hook is a single function
// pointer); tests using them must not run crash scenarios concurrently.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ctdb::testing {

/// Exit code of a process killed by an armed crash point; distinguishable
/// from asserts, signals and clean exits in the parent's waitpid status.
inline constexpr int kCrashExitCode = 42;

/// Installs a hook that appends every crash-point site name hit from now on
/// to `*sites` (thread-safe). `sites` must outlive the recording; stop with
/// StopCrashPoints().
void RecordCrashPoints(std::vector<std::string>* sites);

/// Installs a hook that calls `_exit(kCrashExitCode)` on the `hit`-th time
/// (1-based) the site named `site` is reached. An empty `site` matches every
/// site, so (``""``, k) kills at the k-th crash point hit overall.
void ArmCrashPoint(std::string site, uint64_t hit = 1);

/// Uninstalls any recording or armed hook.
void StopCrashPoints();

}  // namespace ctdb::testing
