#include "testing/reference.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "automata/ops.h"
#include "core/compatibility.h"

namespace ctdb::testing {

namespace {

/// (contract state, query state, layer) packed for the discovery map.
uint64_t Key(automata::StateId c, automata::StateId q, uint32_t layer) {
  return (static_cast<uint64_t>(layer) << 63) |
         (static_cast<uint64_t>(c) << 32) | q;
}

}  // namespace

automata::Buchi PermissionProduct(const automata::Buchi& contract,
                                  const Bitset& contract_events,
                                  const automata::Buchi& query) {
  automata::Buchi product;  // starts with one state: the initial
  struct Pair {
    automata::StateId c, q;
    uint32_t layer;
  };
  std::unordered_map<uint64_t, automata::StateId> ids;
  std::vector<Pair> worklist;

  const Pair init{contract.initial(), query.initial(), 0};
  ids.emplace(Key(init.c, init.q, init.layer), product.initial());
  worklist.push_back(init);

  auto intern = [&](automata::StateId c, automata::StateId q,
                    uint32_t layer) -> automata::StateId {
    auto [it, inserted] = ids.emplace(Key(c, q, layer), 0);
    if (inserted) {
      it->second = product.AddState();
      worklist.push_back(Pair{c, q, layer});
    }
    return it->second;
  };

  while (!worklist.empty()) {
    const Pair p = worklist.back();
    worklist.pop_back();
    const automata::StateId from = ids.at(Key(p.c, p.q, p.layer));
    if (p.layer == 0 && query.IsFinal(p.q)) product.SetFinal(from);
    // Layer switching depends on the *source* pair: layer 0 advances after
    // leaving a query-final pair, layer 1 returns after a contract-final one.
    uint32_t next_layer = p.layer;
    if (p.layer == 0 && query.IsFinal(p.q)) next_layer = 1;
    if (p.layer == 1 && contract.IsFinal(p.c)) next_layer = 0;
    for (const automata::Transition& ct : contract.Out(p.c)) {
      for (const automata::Transition& qt : query.Out(p.q)) {
        if (!core::Compatible(ct.label, qt.label, contract_events)) continue;
        const automata::StateId to = intern(ct.to, qt.to, next_layer);
        product.AddTransition(from, ct.label.ConjunctionWith(qt.label), to);
      }
    }
  }
  return product;
}

bool ReferencePermits(const automata::Buchi& contract,
                      const Bitset& contract_events,
                      const automata::Buchi& query) {
  return !automata::IsEmptyLanguage(
      PermissionProduct(contract, contract_events, query));
}

}  // namespace ctdb::testing
