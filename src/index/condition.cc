#include "index/condition.h"

#include <algorithm>

namespace ctdb::index {

Condition Condition::Leaf(Label label) {
  if (label.IsTrue()) return True();
  Condition c(Kind::kLeaf);
  c.label_ = std::move(label);
  return c;
}

Condition Condition::And(std::vector<Condition> children) {
  std::vector<Condition> flat;
  for (Condition& child : children) {
    switch (child.kind_) {
      case Kind::kFalse:
        return False();
      case Kind::kTrue:
        break;  // drop
      case Kind::kAnd:
        for (Condition& grand : child.children_) {
          flat.push_back(std::move(grand));
        }
        break;
      default:
        flat.push_back(std::move(child));
        break;
    }
  }
  // Deduplicate identical children.
  std::vector<Condition> unique;
  for (Condition& c : flat) {
    bool dup = false;
    for (const Condition& u : unique) {
      if (u == c) {
        dup = true;
        break;
      }
    }
    if (!dup) unique.push_back(std::move(c));
  }
  if (unique.empty()) return True();
  if (unique.size() == 1) return std::move(unique[0]);
  Condition c(Kind::kAnd);
  c.children_ = std::move(unique);
  return c;
}

Condition Condition::Or(std::vector<Condition> children) {
  std::vector<Condition> flat;
  for (Condition& child : children) {
    switch (child.kind_) {
      case Kind::kTrue:
        return True();
      case Kind::kFalse:
        break;  // drop
      case Kind::kOr:
        for (Condition& grand : child.children_) {
          flat.push_back(std::move(grand));
        }
        break;
      default:
        flat.push_back(std::move(child));
        break;
    }
  }
  std::vector<Condition> unique;
  for (Condition& c : flat) {
    bool dup = false;
    for (const Condition& u : unique) {
      if (u == c) {
        dup = true;
        break;
      }
    }
    if (!dup) unique.push_back(std::move(c));
  }
  if (unique.empty()) return False();
  if (unique.size() == 1) return std::move(unique[0]);
  Condition c(Kind::kOr);
  c.children_ = std::move(unique);
  return c;
}

Bitset Condition::Evaluate(const PrefilterIndex& index) const {
  switch (kind_) {
    case Kind::kTrue:
      return index.universe();
    case Kind::kFalse:
      return Bitset(index.universe().size());
    case Kind::kLeaf: {
      Bitset result = index.Lookup(label_);
      result.Resize(index.universe().size());
      return result;
    }
    case Kind::kAnd: {
      // Leaf children combine via the index's word-parallel AND-into kernel:
      // one pass over the accumulator per leaf, no per-leaf Bitset
      // materialization. Non-leaf children still evaluate recursively.
      Bitset result = index.universe();
      for (const Condition& child : children_) {
        if (child.kind_ == Kind::kLeaf) {
          index.LookupAndInto(child.label_, &result);
        } else {
          result &= child.Evaluate(index);
        }
        if (result.None()) break;
      }
      return result;
    }
    case Kind::kOr: {
      Bitset result(index.universe().size());
      for (const Condition& child : children_) {
        if (child.kind_ == Kind::kLeaf) {
          index.LookupOrInto(child.label_, &result);
        } else {
          result |= child.Evaluate(index);
        }
      }
      result.Resize(index.universe().size());
      return result;
    }
  }
  return index.universe();
}

size_t Condition::Size() const {
  size_t n = 1;
  for (const Condition& child : children_) n += child.Size();
  return n;
}

std::string Condition::ToString(const Vocabulary& vocab) const {
  switch (kind_) {
    case Kind::kTrue:
      return "TRUE";
    case Kind::kFalse:
      return "FALSE";
    case Kind::kLeaf:
      return "S(" + label_.ToString(vocab) + ")";
    case Kind::kAnd:
    case Kind::kOr: {
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += kind_ == Kind::kAnd ? " & " : " | ";
        out += children_[i].ToString(vocab);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

bool Condition::operator==(const Condition& other) const {
  if (kind_ != other.kind_) return false;
  if (kind_ == Kind::kLeaf) return label_ == other.label_;
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!(children_[i] == other.children_[i])) return false;
  }
  return true;
}

}  // namespace ctdb::index
