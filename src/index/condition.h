// Pruning conditions (Section 4.1): monotone ∧/∨ expressions over S(λ)
// lookups, evaluated against the prefilter index to produce a candidate
// contract set.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "base/label.h"
#include "index/prefilter.h"
#include "util/bitset.h"

namespace ctdb::index {

/// \brief A monotone condition tree. Leaves are query-BA labels (evaluated as
/// S(λ)); `true` evaluates to the universe and `false` to the empty set.
class Condition {
 public:
  enum class Kind : uint8_t { kTrue, kFalse, kLeaf, kAnd, kOr };

  /// Default-constructs as TRUE (the neutral, prune-nothing condition).
  Condition() : kind_(Kind::kTrue) {}

  static Condition True() { return Condition(Kind::kTrue); }
  static Condition False() { return Condition(Kind::kFalse); }
  static Condition Leaf(Label label);

  /// Conjunction with simplification: false absorbs, true drops out, children
  /// are deduplicated, nested ANDs are flattened.
  static Condition And(std::vector<Condition> children);
  /// Disjunction, dual simplifications.
  static Condition Or(std::vector<Condition> children);

  Kind kind() const { return kind_; }
  const Label& label() const { return label_; }
  const std::vector<Condition>& children() const { return children_; }

  /// Evaluates against `index`: the resulting contract set is guaranteed to
  /// contain every contract satisfying the condition (monotonicity makes the
  /// S'() over-approximation sound, §4.2).
  Bitset Evaluate(const PrefilterIndex& index) const;

  /// Number of nodes in the tree.
  size_t Size() const;

  /// e.g. "((S(miss) & S(changeApproved)) | S(flightCanceled))".
  std::string ToString(const Vocabulary& vocab) const;

  bool operator==(const Condition& other) const;

 private:
  explicit Condition(Kind kind) : kind_(kind) {}

  Kind kind_;
  Label label_;
  std::vector<Condition> children_;
};

}  // namespace ctdb::index
