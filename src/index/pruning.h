// Pruning-condition extraction from a query BA (Section 4.1, Algorithm 1).
//
// For every final state t that can knot a lasso (i.e. t lies in a cyclic
// SCC), the lasso pruning condition is
//     cycle_condition(t) ∧ path_condition(t)
// and the query's condition is the disjunction over all such t. A query with
// no knottable final state yields FALSE (its language is empty, so no
// contract can permit it).
//
// Two implementations are provided for each half, selectable for the
// §4.1.1 comparison ("the approximation has nearly the same number of false
// positives as the complete pruning conditions"):
//
// path_condition —
//   * kCondensation (default): memoized traversal of the SCC condensation.
//     Intra-SCC labels are never *necessary* (any entry point may be used —
//     the generalization of the paper's "self-loops are not strictly
//     necessary" argument), so the computation is linear on a DAG.
//   * kMemoizedStatePaths: the paper's Algorithm 1 function
//     compute_path_from_init with the memoization scheme it describes:
//     per-state conditions, recursion cycles cut by substituting TRUE
//     (which only weakens the condition — sound).
//
// cycle_condition —
//   * kIncomingApprox (default): the paper's implemented approximation —
//     disjunction of the labels on t's incoming transitions from inside its
//     SCC (Algorithm 1, cycle_condition).
//   * kBoundedCycles: the "complete" variant — disjunction over simple
//     cycles through t (the conjunction of each cycle's labels), enumerated
//     by bounded DFS; falls back to the approximation when the bounds are
//     hit (sound).
//
// Whatever the modes, conditions are necessary for permission: every
// contract permitting the query evaluates inside the candidate set. If a
// condition tree grows past the size cap it degrades to TRUE, which prunes
// nothing and preserves soundness.

#pragma once

#include "automata/buchi.h"
#include "index/condition.h"

namespace ctdb::index {

/// How path conditions (init → knot) are computed.
enum class PathConditionMode : uint8_t {
  kCondensation,
  kMemoizedStatePaths,
};

/// How cycle conditions (through the knot) are computed.
enum class CycleConditionMode : uint8_t {
  kIncomingApprox,
  kBoundedCycles,
};

/// Extraction limits and mode selection.
struct PruningOptions {
  PathConditionMode path_mode = PathConditionMode::kCondensation;
  CycleConditionMode cycle_mode = CycleConditionMode::kIncomingApprox;
  /// Conditions larger than this many nodes collapse to TRUE.
  size_t max_condition_size = 4096;
  /// kBoundedCycles limits: maximum simple-cycle length explored and maximum
  /// number of cycles collected per knot before falling back.
  size_t max_cycle_length = 12;
  size_t max_cycles_per_knot = 64;
};

/// \brief Computes the pruning condition of `query` (Algorithm 1).
Condition ExtractPruningCondition(const automata::Buchi& query,
                                  const PruningOptions& options = {});

}  // namespace ctdb::index
