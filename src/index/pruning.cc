#include "index/pruning.h"

#include <vector>

#include "automata/ops.h"
#include "automata/scc.h"
#include "obs/metrics.h"

namespace ctdb::index {

using automata::Buchi;
using automata::SccInfo;
using automata::StateId;
using automata::Transition;

namespace {

/// Memoized per-SCC path conditions over the condensation DAG
/// (PathConditionMode::kCondensation).
class CondensationPaths {
 public:
  CondensationPaths(const Buchi& query, const SccInfo& scc,
                    const PruningOptions& options)
      : options_(options) {
    cache_.resize(scc.count);
    computed_.resize(scc.count, false);
    incoming_.resize(scc.count);
    for (StateId s = 0; s < query.StateCount(); ++s) {
      const uint32_t from_comp = scc.component[s];
      for (const Transition& t : query.Out(s)) {
        const uint32_t to_comp = scc.component[t.to];
        if (from_comp != to_comp) {
          incoming_[to_comp].push_back({from_comp, &t.label});
        }
      }
    }
    init_comp_ = scc.component[query.initial()];
  }

  /// Necessary condition for reaching component `comp` from the initial
  /// state. Tarjan's numbering is reverse-topological, so predecessors have
  /// larger component ids and the recursion is well-founded on the DAG.
  const Condition& For(uint32_t comp) {
    if (computed_[comp]) return cache_[comp];
    computed_[comp] = true;
    if (comp == init_comp_) {
      cache_[comp] = Condition::True();
      return cache_[comp];
    }
    std::vector<Condition> disjuncts;
    for (const auto& [from_comp, label] : incoming_[comp]) {
      const Condition& upstream = For(from_comp);
      Condition conj = Condition::And({upstream, Condition::Leaf(*label)});
      if (conj.Size() > options_.max_condition_size) {
        conj = Condition::True();
      }
      disjuncts.push_back(std::move(conj));
    }
    Condition result = Condition::Or(std::move(disjuncts));
    if (result.Size() > options_.max_condition_size) {
      result = Condition::True();
    }
    cache_[comp] = std::move(result);
    return cache_[comp];
  }

 private:
  struct Edge {
    uint32_t from_comp;
    const Label* label;
  };
  PruningOptions options_;
  std::vector<std::vector<Edge>> incoming_;
  std::vector<Condition> cache_;
  std::vector<bool> computed_;
  uint32_t init_comp_ = 0;
};

/// Algorithm 1's compute_path_from_init with its memoization scheme
/// (PathConditionMode::kMemoizedStatePaths). Recursion cycles substitute
/// TRUE for the in-progress state: the affected disjunct loses conjuncts,
/// which only *weakens* the condition — a sound over-approximation, and the
/// price of the linear-time memoization the paper describes.
class StatePaths {
 public:
  StatePaths(const Buchi& query, const PruningOptions& options)
      : query_(query), options_(options) {
    cache_.resize(query.StateCount());
    state_.resize(query.StateCount(), State::kUnvisited);
    incoming_ = query.BuildReverseAdjacency();
  }

  const Condition& For(StateId s) {
    if (state_[s] == State::kDone) return cache_[s];
    if (state_[s] == State::kInProgress) {
      // current_path cut: contribute no constraint.
      static const Condition kTrue = Condition::True();
      return kTrue;
    }
    state_[s] = State::kInProgress;
    Condition result;
    if (s == query_.initial()) {
      result = Condition::True();
    } else {
      std::vector<Condition> disjuncts;
      for (const auto& [pred, edge_index] : incoming_[s]) {
        const Label& label = query_.Out(pred)[edge_index].label;
        Condition conj = Condition::And({For(pred), Condition::Leaf(label)});
        if (conj.Size() > options_.max_condition_size) {
          conj = Condition::True();
        }
        disjuncts.push_back(std::move(conj));
      }
      result = Condition::Or(std::move(disjuncts));
      if (result.Size() > options_.max_condition_size) {
        result = Condition::True();
      }
    }
    cache_[s] = std::move(result);
    state_[s] = State::kDone;
    return cache_[s];
  }

 private:
  enum class State : uint8_t { kUnvisited, kInProgress, kDone };
  const Buchi& query_;
  PruningOptions options_;
  std::vector<Condition> cache_;
  std::vector<State> state_;
  std::vector<std::vector<std::pair<StateId, uint32_t>>> incoming_;
};

/// cycle_condition(t) in the paper's implemented approximation: disjunction
/// of the labels on t's incoming transitions from inside its SCC.
Condition IncomingCycleCondition(
    const std::vector<std::vector<const Label*>>& in_scc_incoming,
    StateId t) {
  std::vector<Condition> labels;
  for (const Label* label : in_scc_incoming[t]) {
    labels.push_back(Condition::Leaf(*label));
  }
  return Condition::Or(std::move(labels));
}

/// The complete variant: disjunction over simple cycles through `t` of the
/// conjunction of their labels, found by bounded DFS inside t's SCC. Returns
/// false (and leaves `out` untouched) when a bound was hit.
bool BoundedCycleCondition(const Buchi& query, const SccInfo& scc, StateId t,
                           const PruningOptions& options, Condition* out) {
  const uint32_t comp = scc.component[t];

  // Completeness guard: a *necessary* condition must cover every simple
  // cycle through t. All simple cycles have length ≤ |SCC|, so enumeration
  // is complete exactly when the SCC fits the length bound; otherwise fall
  // back to the sound approximation.
  size_t comp_size = 0;
  for (StateId s = 0; s < query.StateCount(); ++s) {
    if (scc.component[s] == comp) ++comp_size;
  }
  if (comp_size > options.max_cycle_length) return false;

  std::vector<Condition> cycles;

  // DFS over simple paths starting at t, restricted to t's SCC.
  struct Frame {
    StateId state;
    uint32_t edge;
  };
  std::vector<Frame> stack;
  std::vector<const Label*> labels_on_path;
  std::vector<bool> on_path(query.StateCount(), false);
  stack.push_back({t, 0});
  size_t steps = 0;
  while (!stack.empty()) {
    if (++steps > 200000) return false;  // runaway safety bound
    Frame& f = stack.back();
    const auto& out_edges = query.Out(f.state);
    if (f.edge >= out_edges.size()) {
      on_path[f.state] = false;
      stack.pop_back();
      if (!labels_on_path.empty()) labels_on_path.pop_back();
      continue;
    }
    const Transition& tr = out_edges[f.edge];
    ++f.edge;
    if (scc.component[tr.to] != comp) continue;
    if (tr.to == t) {
      // Completed a simple cycle through t.
      std::vector<Condition> conj;
      for (const Label* l : labels_on_path) conj.push_back(Condition::Leaf(*l));
      conj.push_back(Condition::Leaf(tr.label));
      cycles.push_back(Condition::And(std::move(conj)));
      if (cycles.size() > options.max_cycles_per_knot) return false;
      continue;
    }
    if (on_path[tr.to]) continue;  // keep the path simple
    on_path[tr.to] = true;
    labels_on_path.push_back(&tr.label);
    stack.push_back({tr.to, 0});
  }
  Condition result = Condition::Or(std::move(cycles));
  if (result.Size() > options.max_condition_size) return false;
  *out = std::move(result);
  return true;
}

}  // namespace

Condition ExtractPruningCondition(const Buchi& query,
                                  const PruningOptions& options) {
  const Bitset reachable = automata::ReachableStates(query);
  const SccInfo scc = automata::ComputeScc(query);

  CondensationPaths condensation(query, scc, options);
  StatePaths state_paths(query, options);

  // Per state: incoming transitions from inside its SCC.
  std::vector<std::vector<const Label*>> in_scc_incoming(query.StateCount());
  for (StateId s = 0; s < query.StateCount(); ++s) {
    for (const Transition& t : query.Out(s)) {
      if (scc.component[s] == scc.component[t.to]) {
        in_scc_incoming[t.to].push_back(&t.label);
      }
    }
  }

  std::vector<Condition> lasso_conditions;
  for (size_t st : query.finals().Indices()) {
    const StateId t = static_cast<StateId>(st);
    if (!reachable.Test(t)) continue;
    const uint32_t comp = scc.component[t];
    if (!scc.cyclic[comp]) continue;  // no lasso can knot here

    Condition cycle;
    bool have_cycle = false;
    if (options.cycle_mode == CycleConditionMode::kBoundedCycles) {
      have_cycle = BoundedCycleCondition(query, scc, t, options, &cycle);
    }
    if (!have_cycle) {
      cycle = IncomingCycleCondition(in_scc_incoming, t);
    }

    const Condition& path =
        options.path_mode == PathConditionMode::kMemoizedStatePaths
            ? state_paths.For(t)
            : condensation.For(comp);

    Condition lasso = Condition::And({std::move(cycle), path});
    if (lasso.Size() > options.max_condition_size) lasso = Condition::True();
    lasso_conditions.push_back(std::move(lasso));
  }
  Condition result = Condition::Or(std::move(lasso_conditions));
  if (result.Size() > options.max_condition_size) {
    CTDB_OBS_COUNT("prefilter.condition_overflow", 1);
    return Condition::True();
  }
  CTDB_OBS_COUNT("prefilter.conditions_extracted", 1);
  CTDB_OBS_HIST("prefilter.condition_size", result.Size());
  return result;
}

}  // namespace ctdb::index
