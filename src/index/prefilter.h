// The prefiltering index data structure (Section 4.2).
//
// Conceptually the paper's structure is a TRIE relaxed to a DAG: nodes are
// labeled with literal sets of size ≤ k, and each node holds the set of
// contracts having a transition label γ whose expansion E(γ) contains the
// node's literals. Navigating the DAG to the node labeled with the literals
// of a query label λ yields S(λ) in time linear in |λ|. This implementation
// realizes the same abstract map with canonical sorted-literal keys in a hash
// table — node identity and lookup cost are identical, without materializing
// DAG edges.
//
// For |λ| > k (the depth cap that prevents the exponential blow-up discussed
// in §4.2), S'(λ) is returned instead: the intersection of S(l) over the
// k-subsets l ⊆ λ. Each S(l) ⊇ S(λ), so S'(λ) ⊇ S(λ) — a sound
// over-approximation (and tighter than the paper's "any one subset").

#pragma once

#include <cstdint>
#include <unordered_map>

#include "automata/buchi.h"
#include "base/label.h"
#include "util/bitset.h"
#include "util/hash.h"

namespace ctdb::index {

/// Index configuration.
struct PrefilterOptions {
  /// Maximum node-label size k (number of literals). The paper's Figure 3
  /// shows two levels; 2 is the default.
  size_t max_depth = 2;
};

/// Build/size statistics (§7.4 "Index building and size").
struct PrefilterStats {
  size_t node_count = 0;
  size_t contract_count = 0;
  size_t memory_bytes = 0;
};

/// \brief The S(λ) index: literal sets → contract-id sets.
class PrefilterIndex {
 public:
  explicit PrefilterIndex(const PrefilterOptions& options = {});

  /// Registers contract `contract_id`: for every distinct transition label γ
  /// of `ba`, inserts every satisfiable subset (of size ≤ k) of the expansion
  /// E(γ) taken w.r.t. `contract_events` (the events cited by the contract).
  void Insert(uint32_t contract_id, const automata::Buchi& ba,
              const Bitset& contract_events);

  /// S(λ) for |λ| ≤ k, S'(λ) (superset, see header comment) otherwise.
  /// The empty label (`true`) maps to the universe.
  Bitset Lookup(const Label& query_label) const;

  /// Set of all registered contract ids.
  const Bitset& universe() const { return universe_; }

  /// Number of contracts inserted.
  size_t contract_count() const { return contract_count_; }

  PrefilterStats Stats() const;

 private:
  void InsertSubsets(uint32_t contract_id, const LiteralKey& expansion);
  const Bitset* FindNode(const LiteralKey& key) const;

  PrefilterOptions options_;
  std::unordered_map<LiteralKey, Bitset, U32VectorHash> nodes_;
  Bitset universe_;
  size_t contract_count_ = 0;
};

}  // namespace ctdb::index
