// The prefiltering index data structure (Section 4.2).
//
// Conceptually the paper's structure is a TRIE relaxed to a DAG: nodes are
// labeled with literal sets of size ≤ k, and each node holds the set of
// contracts having a transition label γ whose expansion E(γ) contains the
// node's literals. Navigating the DAG to the node labeled with the literals
// of a query label λ yields S(λ) in time linear in |λ|. This implementation
// realizes the same abstract map with canonical sorted-literal keys in a hash
// table — node identity and lookup cost are identical, without materializing
// DAG edges.
//
// For |λ| > k (the depth cap that prevents the exponential blow-up discussed
// in §4.2), S'(λ) is returned instead: the intersection of S(l) over the
// k-subsets l ⊆ λ. Each S(l) ⊇ S(λ), so S'(λ) ⊇ S(λ) — a sound
// over-approximation (and tighter than the paper's "any one subset").
//
// Storage is sharded by key hash, with shards (and the contract bitsets
// inside them) held behind shared pointers: copying an index is O(shards)
// pointer copies plus one universe bitset, and Insert clones only the shards
// and bitsets the new contract actually touches (copy-on-write). That makes
// the index a cheap value type — the broker publishes one frozen copy per
// database snapshot while registration keeps appending to its own — with
// registration cost amortized because untouched shards stay structurally
// shared. A frozen copy is immutable and safe for concurrent Lookup; Insert
// itself is writer-side (callers serialize writers, as ContractDatabase
// does).

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "automata/buchi.h"
#include "base/label.h"
#include "util/bitset.h"
#include "util/hash.h"

namespace ctdb::index {

/// Index configuration.
struct PrefilterOptions {
  /// Maximum node-label size k (number of literals). The paper's Figure 3
  /// shows two levels; 2 is the default.
  size_t max_depth = 2;
};

/// Build/size statistics (§7.4 "Index building and size").
struct PrefilterStats {
  size_t node_count = 0;
  size_t contract_count = 0;
  size_t memory_bytes = 0;
};

/// \brief The S(λ) index: literal sets → contract-id sets.
class PrefilterIndex {
 public:
  explicit PrefilterIndex(const PrefilterOptions& options = {});

  /// Copies are cheap structural shares (see header): the copy and the
  /// source diverge only on shards a later Insert touches.
  PrefilterIndex(const PrefilterIndex&) = default;
  PrefilterIndex& operator=(const PrefilterIndex&) = default;
  PrefilterIndex(PrefilterIndex&&) = default;
  PrefilterIndex& operator=(PrefilterIndex&&) = default;

  /// Registers contract `contract_id`: for every distinct transition label γ
  /// of `ba`, inserts every satisfiable subset (of size ≤ k) of the expansion
  /// E(γ) taken w.r.t. `contract_events` (the events cited by the contract).
  /// Writer-side: clones any structurally shared shard before mutating it.
  void Insert(uint32_t contract_id, const automata::Buchi& ba,
              const Bitset& contract_events);

  /// Unregisters contract `contract_id`: clears its bit from every node a
  /// matching Insert set (same BA, same contract events — the caller keeps
  /// the registered automaton around for exactly this), erasing nodes whose
  /// contract sets empty out. Idempotent per node: distinct labels sharing
  /// subsets just re-clear a cleared bit. Writer-side, copy-on-write like
  /// Insert, so published snapshot copies keep the contract.
  void Remove(uint32_t contract_id, const automata::Buchi& ba,
              const Bitset& contract_events);

  /// S(λ) for |λ| ≤ k, S'(λ) (superset, see header comment) otherwise.
  /// The empty label (`true`) maps to the universe. Safe to call
  /// concurrently on a frozen copy.
  Bitset Lookup(const Label& query_label) const;

  /// \name Word-parallel combine variants for the condition evaluator
  /// (index/condition.h): compute S(λ) and AND/OR it into `*acc` directly
  /// from the stored node bitsets — 64 contracts per instruction, no
  /// intermediate copy on the exact-node path (|λ| ≤ k). `acc` must already
  /// be sized to the universe. Concurrency contract matches Lookup.
  /// @{
  void LookupAndInto(const Label& query_label, Bitset* acc) const;
  void LookupOrInto(const Label& query_label, Bitset* acc) const;
  /// @}

  /// Set of all registered contract ids.
  const Bitset& universe() const { return universe_; }

  /// Number of contracts inserted.
  size_t contract_count() const { return contract_count_; }

  PrefilterStats Stats() const;

 private:
  /// Hash-sharding granularity: fine enough that a single contract's
  /// subset keys leave most shards untouched (structural sharing), coarse
  /// enough that a copy is a handful of pointer copies.
  static constexpr size_t kShardCount = 64;

  struct Shard {
    /// Values are shared with older copies of the index until a write
    /// clones them, so lookups must treat them as immutable.
    std::unordered_map<LiteralKey, std::shared_ptr<Bitset>, U32VectorHash>
        nodes;
  };

  static size_t ShardOf(const LiteralKey& key) {
    return U32VectorHash{}(key) % kShardCount;
  }
  /// Returns shard `index` for writing, cloning it first if shared.
  Shard* MutableShard(size_t index);
  void InsertSubsets(uint32_t contract_id, const LiteralKey& expansion);
  void RemoveSubsets(uint32_t contract_id, const LiteralKey& expansion);
  const Bitset* FindNode(const LiteralKey& key) const;

  /// Invokes `fn(FindNode(l))` for every k-combination l of `key` (requires
  /// |key| > k); stops early when `fn` returns false. Shared driver for the
  /// S'(λ) over-approximation paths of Lookup / LookupAndInto.
  template <typename Fn>
  void ForEachSubsetNode(const LiteralKey& key, Fn fn) const {
    const size_t k = options_.max_depth;
    const size_t n = key.size();
    std::vector<size_t> comb(k);
    for (size_t i = 0; i < k; ++i) comb[i] = i;
    LiteralKey sub(k);
    while (true) {
      for (size_t i = 0; i < k; ++i) sub[i] = key[comb[i]];
      if (!fn(FindNode(sub))) return;
      // Advance `comb` to the next k-combination of [0, n); done when none.
      bool advanced = false;
      size_t i = k;
      while (i > 0) {
        --i;
        if (comb[i] != i + n - k) {
          ++comb[i];
          for (size_t j = i + 1; j < k; ++j) comb[j] = comb[j - 1] + 1;
          advanced = true;
          break;
        }
      }
      if (!advanced) return;
    }
  }

  PrefilterOptions options_;
  std::array<std::shared_ptr<Shard>, kShardCount> shards_;  ///< never null
  Bitset universe_;
  size_t contract_count_ = 0;
};

}  // namespace ctdb::index
