#include "index/prefilter.h"

#include <algorithm>

#include "base/literal.h"
#include "obs/metrics.h"

namespace ctdb::index {

PrefilterIndex::PrefilterIndex(const PrefilterOptions& options)
    : options_(options) {
  for (auto& shard : shards_) shard = std::make_shared<Shard>();
}

PrefilterIndex::Shard* PrefilterIndex::MutableShard(size_t index) {
  std::shared_ptr<Shard>& slot = shards_[index];
  if (slot.use_count() != 1) {
    // Structurally shared with a published snapshot copy — clone before the
    // first mutation so readers of older copies never observe it.
    slot = std::make_shared<Shard>(*slot);
  }
  return slot.get();
}

void PrefilterIndex::Insert(uint32_t contract_id, const automata::Buchi& ba,
                            const Bitset& contract_events) {
  if (contract_id >= universe_.size()) universe_.Resize(contract_id + 1);
  universe_.Set(contract_id);
  contract_count_ = universe_.Count();
  CTDB_OBS_COUNT("prefilter.inserts", 1);
  for (const Label& label : ba.DistinctLabels()) {
    InsertSubsets(contract_id, label.Expansion(contract_events));
  }
}

void PrefilterIndex::InsertSubsets(uint32_t contract_id,
                                   const LiteralKey& expansion) {
  // Enumerate subsets of `expansion` of size 1..k via a combination cursor,
  // skipping subsets containing an event with both polarities: a query label
  // is a satisfiable conjunction, so such nodes are never looked up.
  const size_t n = expansion.size();
  const size_t k = std::min(options_.max_depth, n);
  LiteralKey subset;
  std::vector<size_t> cursor;

  // Depth-first enumeration of index combinations.
  struct Frame {
    size_t next;  // next candidate index into `expansion`
  };
  std::vector<Frame> stack;
  stack.push_back({0});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (subset.size() == k || f.next >= n) {
      stack.pop_back();
      if (!subset.empty()) subset.pop_back();
      continue;
    }
    const LiteralId lit = expansion[f.next];
    ++f.next;
    // Skip contradictory extensions (expansion lists both polarities of
    // uncited events adjacently; keys are sorted so the mate is adjacent,
    // but check the whole subset for safety).
    bool contradictory = false;
    for (LiteralId existing : subset) {
      if (Literal::NegationOf(existing) == lit) {
        contradictory = true;
        break;
      }
    }
    if (contradictory) continue;
    subset.push_back(lit);
    Shard* shard = MutableShard(ShardOf(subset));
    auto [it, inserted] = shard->nodes.try_emplace(subset);
    std::shared_ptr<Bitset>& contracts = it->second;
    if (inserted) {
      contracts = std::make_shared<Bitset>();
    } else if (contracts.use_count() != 1) {
      // The node's bitset is still referenced by an older index copy (node
      // maps are cloned shallowly); give this index its own before setting.
      contracts = std::make_shared<Bitset>(*contracts);
    }
    if (contract_id >= contracts->size()) contracts->Resize(contract_id + 1);
    contracts->Set(contract_id);
    stack.push_back({f.next});
  }
}

void PrefilterIndex::Remove(uint32_t contract_id, const automata::Buchi& ba,
                            const Bitset& contract_events) {
  CTDB_OBS_COUNT("prefilter.removes", 1);
  for (const Label& label : ba.DistinctLabels()) {
    RemoveSubsets(contract_id, label.Expansion(contract_events));
  }
  if (contract_id < universe_.size()) universe_.Clear(contract_id);
  contract_count_ = universe_.Count();
}

void PrefilterIndex::RemoveSubsets(uint32_t contract_id,
                                   const LiteralKey& expansion) {
  // Mirror of InsertSubsets' enumeration: visit the same satisfiable
  // subsets of size 1..k and undo the Set. A subset reached through several
  // labels may already be gone — that just means nothing to do here.
  const size_t n = expansion.size();
  const size_t k = std::min(options_.max_depth, n);
  LiteralKey subset;

  struct Frame {
    size_t next;  // next candidate index into `expansion`
  };
  std::vector<Frame> stack;
  stack.push_back({0});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (subset.size() == k || f.next >= n) {
      stack.pop_back();
      if (!subset.empty()) subset.pop_back();
      continue;
    }
    const LiteralId lit = expansion[f.next];
    ++f.next;
    bool contradictory = false;
    for (LiteralId existing : subset) {
      if (Literal::NegationOf(existing) == lit) {
        contradictory = true;
        break;
      }
    }
    if (contradictory) continue;
    subset.push_back(lit);
    Shard* shard = MutableShard(ShardOf(subset));
    auto it = shard->nodes.find(subset);
    if (it != shard->nodes.end()) {
      std::shared_ptr<Bitset>& contracts = it->second;
      if (contract_id < contracts->size() && contracts->Test(contract_id)) {
        if (contracts.use_count() != 1) {
          // Shared with a published copy that must keep seeing the
          // contract — clone before clearing.
          contracts = std::make_shared<Bitset>(*contracts);
        }
        contracts->Clear(contract_id);
        if (contracts->None()) shard->nodes.erase(it);
      }
    }
    stack.push_back({f.next});
  }
}

const Bitset* PrefilterIndex::FindNode(const LiteralKey& key) const {
  const Shard& shard = *shards_[ShardOf(key)];
  auto it = shard.nodes.find(key);
  return it == shard.nodes.end() ? nullptr : it->second.get();
}

Bitset PrefilterIndex::Lookup(const Label& query_label) const {
  const LiteralKey key = query_label.Key();
  CTDB_OBS_COUNT("prefilter.lookups", 1);
  CTDB_OBS_HIST("prefilter.lookup_label_size", key.size());
  if (key.empty()) return universe_;  // S(true) = all contracts

  if (key.size() <= options_.max_depth) {
    const Bitset* node = FindNode(key);
    if (node == nullptr) return Bitset(universe_.size());
    Bitset result = *node;
    result.Resize(universe_.size());
    return result;
  }

  // |λ| > k: intersect S(l) over all k-subsets l of λ.
  Bitset result = universe_;
  ForEachSubsetNode(key, [&](const Bitset* node) {
    if (node == nullptr) {  // S(l) empty ⇒ S'(λ) empty
      result.ClearAll();
      return false;
    }
    result &= *node;
    return !result.None();
  });
  return result;
}

void PrefilterIndex::LookupAndInto(const Label& query_label,
                                   Bitset* acc) const {
  const LiteralKey key = query_label.Key();
  CTDB_OBS_COUNT("prefilter.lookups", 1);
  CTDB_OBS_HIST("prefilter.lookup_label_size", key.size());
  if (key.empty()) {  // S(true) = all contracts
    *acc &= universe_;
    return;
  }
  if (key.size() <= options_.max_depth) {
    const Bitset* node = FindNode(key);
    if (node == nullptr) {
      acc->ClearAll();  // S(λ) = ∅
    } else {
      *acc &= *node;  // bits past the node's size intersect to 0, as needed
    }
    return;
  }
  // |λ| > k: AND in S(l) for every k-subset l (the S'(λ) over-approximation
  // of Lookup), short-circuiting when the accumulator empties.
  ForEachSubsetNode(key, [&](const Bitset* node) {
    if (node == nullptr) {
      acc->ClearAll();
      return false;
    }
    *acc &= *node;
    return !acc->None();
  });
}

void PrefilterIndex::LookupOrInto(const Label& query_label, Bitset* acc) const {
  const LiteralKey key = query_label.Key();
  if (key.empty()) {
    CTDB_OBS_COUNT("prefilter.lookups", 1);
    CTDB_OBS_HIST("prefilter.lookup_label_size", 0);
    *acc |= universe_;
    return;
  }
  if (key.size() <= options_.max_depth) {
    CTDB_OBS_COUNT("prefilter.lookups", 1);
    CTDB_OBS_HIST("prefilter.lookup_label_size", key.size());
    const Bitset* node = FindNode(key);
    if (node != nullptr) *acc |= *node;
    return;
  }
  // The subset-intersection path needs its own accumulator; fall back to
  // Lookup (which counts itself) and OR the result in.
  *acc |= Lookup(query_label);
}

PrefilterStats PrefilterIndex::Stats() const {
  PrefilterStats stats;
  stats.contract_count = contract_count_;
  stats.memory_bytes = 0;
  for (const auto& shard : shards_) {
    stats.node_count += shard->nodes.size();
    for (const auto& [key, contracts] : shard->nodes) {
      stats.memory_bytes += key.capacity() * sizeof(LiteralId) +
                            contracts->MemoryUsage() + sizeof(Bitset);
    }
  }
  return stats;
}

}  // namespace ctdb::index
