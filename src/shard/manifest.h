// The sharded database's topology manifest (DESIGN.md §13).
//
// A sharded directory holds one `MANIFEST` file naming the shard count and
// the per-shard subdirectories. The manifest is written atomically when the
// topology is first created and never rewritten; ShardedDatabase::Open
// compares it against the requested shard count and fails cleanly on a
// mismatch — re-opening a 4-shard directory with `--shards=2` must never
// silently mis-route contract ids whose hash partition assumed 4.
//
// Format (plain text, one token pair per line, strict parse):
//
//   CTDBSHARDS1
//   shards 4
//   dir shard-000
//   dir shard-001
//   dir shard-002
//   dir shard-003
//
// Exactly `shards` dir lines, in shard order. Anything else — wrong magic,
// duplicate keys, trailing garbage — is Status::Corruption.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace ctdb::shard {

/// Name of the manifest file inside a sharded directory.
inline constexpr const char* kManifestFileName = "MANIFEST";

/// Recorded topology of a sharded database directory.
struct Manifest {
  uint32_t shards = 0;
  std::vector<std::string> dirs;  ///< shard subdirectory names, in order
};

/// "shard-000" for shard 0.
std::string ShardDirName(size_t shard);

/// Serializes `manifest` to the strict text format above.
std::string EncodeManifest(const Manifest& manifest);

/// Parses a manifest; Corruption on any structural violation (every
/// accepted input is a decode∘encode fixed point).
Result<Manifest> DecodeManifest(std::string_view text);

/// Reads and parses `dir`'s manifest. NotFound when the file is absent.
Result<Manifest> ReadManifest(const std::string& dir);

/// Atomically writes `dir`'s manifest (util::WriteFileAtomic) and fsyncs
/// the directory, so a crash mid-create never leaves a half-made topology.
Status WriteManifest(const std::string& dir, const Manifest& manifest);

}  // namespace ctdb::shard
