// Horizontal sharding: the contract space hash-partitioned across N
// independent durable instances behind one scatter-gather router
// (DESIGN.md §13).
//
// Partitioning. Global contract ids are striped across shards:
//
//   shard(id)  = id % N          local(id) = id / N
//   global(shard k, local l) = l * N + k
//
// A fresh database therefore assigns global ids 0,1,2,... round-robin —
// byte-identical id assignment to an unsharded database, which is what the
// differential suite (sharded_database_test) holds it to. The striping is
// also crash-stable: a contract's global id is a function of its shard and
// its shard-local slot index alone, so after a crash that tears different
// amounts off different shards' logs every surviving contract keeps its id
// (the global id space simply has holes where unlucky shards lost their
// unacked tails). Registration always routes to the shard with the lowest
// next global id, which refills those holes before extending the space.
// Routing is by slot count, not live count: Unregister leaves a hole in its
// shard's slot table (ids are never reused — a recycled id would corrupt
// the as_of history), so lifecycle ops route deterministically by
// shard(id) = id % N while new registrations keep striping off the end.
//
// Clocks. Each mutation ticks one global system-period clock held by the
// router (recovered as the max of the shards' clocks); the ticked value is
// passed down via the shards' *WithClock entry points and stamped into the
// contract's [valid_from, valid_to) period and WAL record. Per-shard clocks
// are therefore sparse but mutually comparable, which is exactly what
// QueryAsOf's scatter-gather needs: a shard whose clock is behind `as_of`
// simply answers with its latest state — correct, because it had no
// mutations in between (DESIGN.md §14).
//
// Durability. Each shard is a full broker::DurableDatabase with its own WAL
// and checkpoint directory — its own group-commit writer, its own fsync
// cadence, its own log device if the deployment mounts them that way. A
// registration is acknowledged when ITS shard made it durable; shards never
// wait for each other. Recovery replays all shard logs in parallel on the
// router's thread pool: wall time is the slowest shard, not the sum
// (bench_wal measures recovery ms vs shard count).
//
// Vocabulary. The paper's vocabulary is global (contracts and queries share
// one event namespace), so the router keeps every shard's vocabulary a
// superset of the union: Register broadcasts the new contract's cited
// events to the other shards (DurableDatabase::InternEvent — deliberately
// not WAL-logged), and Open re-broadcasts the union after recovery. A query
// unknown to one shard is therefore unknown to all, and error parity with
// an unsharded database holds (NotFound for typo'd events).
//
// Queries scatter to every shard (each evaluates against its own contracts,
// translation caches and all) and gather: matches are re-mapped to global
// ids and merged in ascending id order with their witnesses; stats merge as
// documented on Query below.
//
// Topology. The root directory carries a MANIFEST (shard/manifest.h)
// recording shard count and directories; Open fails with InvalidArgument on
// a mismatch instead of silently mis-routing, and with Corruption naming
// the damaged shard when one shard's log is broken mid-file (healthy
// shards' recovery is unaffected — persistence_corruption_test holds each
// shard's damage to that shard).

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "broker/broker.h"
#include "broker/durable.h"
#include "shard/manifest.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "wal/wal.h"

namespace ctdb::obs {
class Counter;
}

namespace ctdb::shard {

/// What opening (== recovering) every shard found and did.
struct ShardedRecoveryStats {
  size_t shards = 0;
  double wall_ms = 0;          ///< wall time of the parallel open
  double replay_ms_sum = 0;    ///< summed per-shard replay time (CPU view)
  size_t records_replayed = 0;
  uint64_t bytes_scanned = 0;
  bool tail_truncated = false; ///< any shard treated a torn tail as EOF
  std::vector<broker::RecoveryStats> per_shard;
};

/// \brief N durable databases behind one contract-id-striped router.
///
/// Thread safety matches DurableDatabase: queries are safe concurrently
/// with each other and with registrations (scatter-gather runs on the
/// router's own pool); Register calls from multiple threads serialize on
/// the router's route lock; Checkpoint may run concurrently with
/// everything. After Close every operation returns Status::Unavailable.
class ShardedDatabase : public broker::Broker {
 public:
  /// Opens (creating directory + manifest if needed) or recovers a sharded
  /// database rooted at `dir`. `options.shards` picks the topology for a
  /// fresh directory and must match the manifest of an existing one
  /// (0 adopts the manifest; fresh directories then default to 1 shard).
  /// All shard logs are replayed in parallel; recovery_stats() reports the
  /// per-shard breakdown.
  static Result<std::unique_ptr<ShardedDatabase>> Open(
      std::string dir, const wal::DurabilityOptions& durability = {},
      const broker::DatabaseOptions& options = {});

  ~ShardedDatabase() override;
  ShardedDatabase(const ShardedDatabase&) = delete;
  ShardedDatabase& operator=(const ShardedDatabase&) = delete;

  /// Registers a contract on the shard owning the next global id and
  /// returns that global id once the shard made the record durable. The
  /// contract's events are then broadcast to the other shards' vocabularies
  /// (a query concurrent with the broadcast may still see NotFound for a
  /// brand-new event — indistinguishable from being sequenced before the
  /// Register).
  Result<uint32_t> Register(std::string name, std::string_view ltl_text,
                            broker::RegistrationStats* stats = nullptr) override;

  /// Registers a batch, striping entries round-robin across shards and
  /// committing the per-shard sub-batches in parallel. Entries are
  /// pre-validated (parse only) so a malformed entry fails the whole batch
  /// with nothing registered anywhere — same all-or-nothing surface as the
  /// unsharded database for every error the validator can catch; a shard
  /// I/O failure mid-commit is reported but cannot un-commit other shards.
  Result<std::vector<uint32_t>> RegisterBatch(
      const std::vector<broker::ContractDatabase::BatchEntry>& entries) override;

  /// Unregisters global contract `id` on its owning shard (id % N) and
  /// returns the global clock of the removal once durable. The slot is
  /// never reused; NotFound names the global id.
  Result<uint64_t> Unregister(uint32_t id) override;

  /// Replaces global contract `id`'s specification in place (same global
  /// id, new [valid_from, ∞) version) and returns the global clock once
  /// durable. The new text's events are broadcast to the other shards.
  Result<uint64_t> Replace(uint32_t id, std::string_view ltl_text,
                           broker::RegistrationStats* stats = nullptr) override;

  /// Evaluates the query on every shard in parallel and merges: matches
  /// (and their witnesses) re-mapped to global ids, ascending; candidate /
  /// match / database-size counts summed; translate_ms and prefilter_ms the
  /// max across shards (they run in parallel); permission_ms the sum (CPU
  /// view); total_ms the scatter-gather wall time. Error parity: an error
  /// (parse failure, unknown event) is returned as the lowest-numbered
  /// shard's status — the broadcast vocabulary makes all shards agree.
  Result<broker::QueryResult> Query(
      std::string_view ltl_text,
      const broker::QueryOptions& options = {}) const override;

  /// QueryBatch with the same scatter-gather and merge semantics as Query,
  /// applied per query; each shard evaluates the whole batch against one of
  /// its snapshots.
  Result<std::vector<broker::QueryResult>> QueryBatch(
      const std::vector<std::string>& queries,
      const broker::QueryOptions& options = {}) const override;

  /// \name Streaming compliance monitor (DESIGN.md §15), scatter-gather.
  ///
  /// Open resolves one global pin clock (options.as_of, or the router clock
  /// at open) and opens a same-named session on every shard at that clock —
  /// per-shard clocks are mutually comparable (see header), so a shard
  /// behind the pin clamps to its latest state, exactly like QueryAsOf.
  /// Append scatters each batch to every shard in parallel and gathers the
  /// verdict deltas re-mapped to global ids in ascending order, summing the
  /// stepped/pruned counters. A shard failure during Open rolls back the
  /// sessions already opened, so a stream is open on all shards or none.
  /// @{
  Result<monitor::StreamOpenInfo> StreamOpen(
      std::string name, const monitor::StreamOptions& options = {}) override;
  Result<monitor::StreamAppendResult> StreamAppend(
      std::string_view name, const monitor::EventBatch& events) override;
  Result<monitor::StreamCloseInfo> StreamClose(std::string_view name) override;
  /// @}

  /// Checkpoints every shard in parallel; returns the first error but
  /// attempts all shards regardless.
  Status Checkpoint() override;

  /// Closes every shard; idempotent, run by the destructor.
  Status Close() override;

  /// Total live contracts across shards.
  size_t size() const override;

  /// Global system-period clock: the tick of the latest acknowledged
  /// mutation on any shard (the `as_of` axis).
  uint64_t last_sequence() const override;

  obs::MetricsSnapshot Metrics() const override;

  size_t shard_count() const { return shards_.size(); }
  /// Shard `k`'s database (tests and tools; read-mostly).
  const broker::DurableDatabase& shard(size_t k) const { return *shards_[k]; }
  const std::string& dir() const { return dir_; }
  const ShardedRecoveryStats& recovery_stats() const {
    return recovery_stats_;
  }

  /// \name Id striping (see header comment).
  /// @{
  static size_t ShardOfId(uint32_t global_id, size_t shards) {
    return global_id % shards;
  }
  static uint32_t LocalId(uint32_t global_id, size_t shards) {
    return global_id / static_cast<uint32_t>(shards);
  }
  static uint32_t GlobalId(size_t shard, uint32_t local_id, size_t shards) {
    return local_id * static_cast<uint32_t>(shards) +
           static_cast<uint32_t>(shard);
  }
  /// @}

 private:
  ShardedDatabase(std::string dir,
                  std::vector<std::unique_ptr<broker::DurableDatabase>> shards,
                  std::unique_ptr<util::ThreadPool> pool,
                  ShardedRecoveryStats recovery_stats);

  /// Global id the next registration on shard `k` would get.
  uint64_t NextGlobalIdOf(size_t k) const {
    return slots_[k] * shards_.size() + k;
  }
  /// Shard owning the lowest next global id (route target). Caller holds
  /// route_mutex_.
  size_t RouteShardLocked() const;

  /// Interns every event cited by shard `from`'s contract `local_id` into
  /// all other shards. Caller holds route_mutex_.
  Status BroadcastEventsLocked(size_t from, uint32_t local_id);

  Status CheckOpen() const {
    if (closed_.load(std::memory_order_acquire)) {
      return Status::Unavailable("sharded database is closed");
    }
    return Status::OK();
  }

  const std::string dir_;
  std::vector<std::unique_ptr<broker::DurableDatabase>> shards_;
  /// Scatter-gather executor (min(shards, hardware) workers). The calling
  /// thread participates in ParallelFor, so even a 1-worker pool fans out.
  std::unique_ptr<util::ThreadPool> pool_;
  ShardedRecoveryStats recovery_stats_;

  /// Serializes routing decisions, the per-shard slot table and the global
  /// clock, so id and clock assignment are race-free even with concurrent
  /// mutating threads.
  mutable std::mutex route_mutex_;
  std::vector<uint64_t> slots_;  ///< per-shard slot counts (route view)
  uint64_t clock_ = 0;           ///< global system-period clock

  std::atomic<bool> closed_{false};

  /// Per-shard "shard.<k>.registrations" counters plus the aggregate
  /// handles, resolved once at Open (the CTDB_OBS_* macros cache per-site,
  /// which a per-shard dynamic name cannot use).
  std::vector<obs::Counter*> register_counters_;
};

}  // namespace ctdb::shard
