#include "shard/manifest.h"

#include <cinttypes>

#include "util/file_util.h"
#include "util/string_util.h"

namespace ctdb::shard {

namespace {

constexpr std::string_view kMagic = "CTDBSHARDS1";

/// Consumes the next line (without its '\n') from `*rest`; false at end.
bool NextLine(std::string_view* rest, std::string_view* line) {
  if (rest->empty()) return false;
  const size_t pos = rest->find('\n');
  if (pos == std::string_view::npos) {
    // Every line, including the last, must be newline-terminated; a torn
    // tail is how a non-atomic writer would look, and we never write one.
    return false;
  }
  *line = rest->substr(0, pos);
  rest->remove_prefix(pos + 1);
  return true;
}

}  // namespace

std::string ShardDirName(size_t shard) {
  return StringFormat("shard-%03zu", shard);
}

std::string EncodeManifest(const Manifest& manifest) {
  std::string out(kMagic);
  out += '\n';
  out += StringFormat("shards %" PRIu32 "\n", manifest.shards);
  for (const std::string& dir : manifest.dirs) {
    out += "dir ";
    out += dir;
    out += '\n';
  }
  return out;
}

Result<Manifest> DecodeManifest(std::string_view text) {
  std::string_view rest = text;
  std::string_view line;
  if (!NextLine(&rest, &line) || line != kMagic) {
    return Status::Corruption("manifest: bad magic");
  }
  if (!NextLine(&rest, &line) || !StartsWith(line, "shards ")) {
    return Status::Corruption("manifest: missing shards line");
  }
  const std::string_view digits = line.substr(7);
  if (digits.empty() || digits.size() > 9) {
    return Status::Corruption("manifest: bad shard count");
  }
  uint64_t shards = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return Status::Corruption("manifest: bad shard count");
    }
    shards = shards * 10 + static_cast<uint64_t>(c - '0');
  }
  if (shards == 0 || shards > 1024) {
    return Status::Corruption("manifest: shard count out of range");
  }
  Manifest manifest;
  manifest.shards = static_cast<uint32_t>(shards);
  for (uint64_t i = 0; i < shards; ++i) {
    if (!NextLine(&rest, &line) || !StartsWith(line, "dir ") ||
        line.size() <= 4) {
      return Status::Corruption(
          StringFormat("manifest: missing dir line %" PRIu64, i));
    }
    const std::string_view name = line.substr(4);
    if (name.find('/') != std::string_view::npos ||
        name.find('\\') != std::string_view::npos || name == "." ||
        name == "..") {
      return Status::Corruption("manifest: unsafe shard directory name");
    }
    manifest.dirs.emplace_back(name);
  }
  if (!rest.empty()) return Status::Corruption("manifest: trailing bytes");
  return manifest;
}

Result<Manifest> ReadManifest(const std::string& dir) {
  CTDB_ASSIGN_OR_RETURN(
      std::string data,
      util::ReadFileToString(dir + "/" + kManifestFileName));
  auto manifest = DecodeManifest(data);
  if (!manifest.ok()) {
    return Status::Corruption(dir + "/" + kManifestFileName + ": " +
                              manifest.status().message());
  }
  return manifest;
}

Status WriteManifest(const std::string& dir, const Manifest& manifest) {
  if (manifest.shards == 0 || manifest.dirs.size() != manifest.shards) {
    return Status::InvalidArgument("manifest: dirs must match shard count");
  }
  CTDB_RETURN_NOT_OK(util::WriteFileAtomic(dir + "/" + kManifestFileName,
                                           EncodeManifest(manifest)));
  return util::SyncDir(dir);
}

}  // namespace ctdb::shard
