#include "shard/sharded.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "base/vocabulary.h"
#include "broker/contract.h"
#include "ltl/formula.h"
#include "ltl/parser.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/file_util.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "wal/segment.h"

namespace ctdb::shard {

namespace {

/// Prefixes a shard-local error with the shard directory, so "checksum
/// mismatch" becomes "shard-002: checksum mismatch".
Status AnnotateShard(size_t shard, const Status& status) {
  if (status.ok()) return status;
  return Status(status.code(), ShardDirName(shard) + ": " + status.message());
}

/// True when `dir` looks like an unsharded DurableDatabase directory —
/// i.e. it already holds WAL segments at the top level. Opening such a
/// directory as sharded would shadow the existing data, so Open refuses.
bool LooksLikeUnshardedData(const std::string& dir) {
  auto entries = util::ListDir(dir);
  if (!entries.ok()) return false;
  for (const std::string& name : *entries) {
    uint64_t index = 0;
    if (wal::ParseSegmentFileName(name, &index)) return true;
  }
  return false;
}

}  // namespace

Result<std::unique_ptr<ShardedDatabase>> ShardedDatabase::Open(
    std::string dir, const wal::DurabilityOptions& durability,
    const broker::DatabaseOptions& options) {
  Timer open_timer;
  CTDB_RETURN_NOT_OK(util::CreateDirIfMissing(dir));

  // Establish the topology: adopt the manifest when one exists (and verify
  // the caller agrees), otherwise stamp a fresh one.
  Manifest manifest;
  auto existing = ReadManifest(dir);
  if (existing.ok()) {
    manifest = std::move(*existing);
    if (options.shards != 0 && options.shards != manifest.shards) {
      return Status::InvalidArgument(StringFormat(
          "sharded database at %s has %u shards, but %zu were requested; "
          "resharding is not supported — open with the recorded topology "
          "(or shards=0 to adopt it)",
          dir.c_str(), manifest.shards, options.shards));
    }
  } else if (existing.status().code() == StatusCode::kNotFound) {
    if (LooksLikeUnshardedData(dir)) {
      return Status::InvalidArgument(
          dir + ": holds an unsharded database (WAL segments present but no " +
          kManifestFileName + "); refusing to shard over it");
    }
    if (options.shards > 1024) {
      return Status::InvalidArgument("shards must be <= 1024");
    }
    manifest.shards =
        static_cast<uint32_t>(options.shards == 0 ? 1 : options.shards);
    for (size_t k = 0; k < manifest.shards; ++k) {
      manifest.dirs.push_back(ShardDirName(k));
    }
    CTDB_RETURN_NOT_OK(WriteManifest(dir, manifest));
  } else {
    return existing.status();
  }

  const size_t n = manifest.shards;
  broker::DatabaseOptions shard_options = options;
  shard_options.shards = 1;  // each shard is a plain DurableDatabase

  // Router pool: one participant per shard up to the hardware, remembering
  // that the calling thread claims iterations too.
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  const size_t workers = std::max<size_t>(1, std::min(n, hw) - 1);
  auto pool = n > 1 ? std::make_unique<util::ThreadPool>(workers) : nullptr;

  // Recover every shard in parallel; wall time is the slowest shard.
  std::vector<std::unique_ptr<broker::DurableDatabase>> shards(n);
  std::vector<Status> open_status(n, Status::OK());
  auto open_one = [&](size_t k) {
    auto opened = broker::DurableDatabase::Open(
        dir + "/" + manifest.dirs[k], durability, shard_options);
    if (!opened.ok()) {
      open_status[k] = AnnotateShard(k, opened.status());
      return open_status[k];
    }
    shards[k] = std::move(*opened);
    return Status::OK();
  };
  if (pool) {
    // Ignore ParallelFor's first-error shortcut: report the lowest shard's
    // error deterministically, whatever the interleaving.
    (void)pool->ParallelFor(0, n, open_one);
  } else {
    for (size_t k = 0; k < n; ++k) {
      if (!shards[k]) (void)open_one(k);
    }
  }
  for (size_t k = 0; k < n; ++k) {
    if (!shards[k] && open_status[k].ok()) (void)open_one(k);
    CTDB_RETURN_NOT_OK(open_status[k]);
  }

  ShardedRecoveryStats stats;
  stats.shards = n;
  for (size_t k = 0; k < n; ++k) {
    const broker::RecoveryStats& rs = shards[k]->recovery_stats();
    stats.replay_ms_sum += rs.replay_ms + rs.checkpoint_load_ms;
    stats.records_replayed += rs.records_replayed;
    stats.bytes_scanned += rs.bytes_scanned;
    stats.tail_truncated = stats.tail_truncated || rs.tail_truncated;
    stats.per_shard.push_back(rs);
  }

  // Re-broadcast the union vocabulary: InternEvent is not WAL-logged, so a
  // recovered shard only knows the events its own contracts cite.
  if (n > 1) {
    std::vector<std::string> union_names;
    for (size_t k = 0; k < n; ++k) {
      const auto snapshot = shards[k]->Snapshot();
      for (const std::string& name : snapshot->vocabulary().names()) {
        union_names.push_back(name);
      }
    }
    for (size_t k = 0; k < n; ++k) {
      for (const std::string& name : union_names) {
        CTDB_RETURN_NOT_OK(
            AnnotateShard(k, shards[k]->InternEvent(name).status()));
      }
    }
  }
  stats.wall_ms = open_timer.ElapsedMillis();

  return std::unique_ptr<ShardedDatabase>(new ShardedDatabase(
      std::move(dir), std::move(shards), std::move(pool), std::move(stats)));
}

ShardedDatabase::ShardedDatabase(
    std::string dir,
    std::vector<std::unique_ptr<broker::DurableDatabase>> shards,
    std::unique_ptr<util::ThreadPool> pool, ShardedRecoveryStats recovery_stats)
    : dir_(std::move(dir)),
      shards_(std::move(shards)),
      pool_(std::move(pool)),
      recovery_stats_(std::move(recovery_stats)) {
  slots_.resize(shards_.size());
  for (size_t k = 0; k < shards_.size(); ++k) {
    slots_[k] = shards_[k]->slot_count();
    // Shard clocks are sparse samples of one global clock; the max is the
    // latest tick any shard acknowledged.
    clock_ = std::max(clock_, shards_[k]->last_sequence());
  }
#if CTDB_OBS
  // Counters are cached at construction, so a runtime-disabled registry
  // stays empty (the documented CTDB_OBS=0 contract); enabling obs after
  // construction leaves the per-shard counters unrecorded by design.
  if (obs::Enabled()) {
    register_counters_.resize(shards_.size());
    for (size_t k = 0; k < shards_.size(); ++k) {
      register_counters_[k] = obs::MetricsRegistry::Default()->GetCounter(
          StringFormat("shard.%03zu.registrations", k));
    }
    obs::MetricsRegistry::Default()
        ->GetGauge("shard.count")
        ->Add(static_cast<int64_t>(shards_.size()));
  }
#endif
}

ShardedDatabase::~ShardedDatabase() {
  (void)Close();
#if CTDB_OBS
  if (!register_counters_.empty()) {
    obs::MetricsRegistry::Default()
        ->GetGauge("shard.count")
        ->Sub(static_cast<int64_t>(shards_.size()));
  }
#endif
}

size_t ShardedDatabase::RouteShardLocked() const {
  size_t best = 0;
  for (size_t k = 1; k < shards_.size(); ++k) {
    if (NextGlobalIdOf(k) < NextGlobalIdOf(best)) best = k;
  }
  return best;
}

Status ShardedDatabase::BroadcastEventsLocked(size_t from, uint32_t local_id) {
  if (shards_.size() == 1) return Status::OK();
  const auto snapshot = shards_[from]->Snapshot();
  const broker::Contract& contract = snapshot->contract(local_id);
  const Vocabulary& vocab = snapshot->vocabulary();
  for (size_t event : contract.events.Indices()) {
    const std::string& name = vocab.Name(static_cast<EventId>(event));
    for (size_t k = 0; k < shards_.size(); ++k) {
      if (k == from) continue;
      CTDB_RETURN_NOT_OK(
          AnnotateShard(k, shards_[k]->InternEvent(name).status()));
    }
  }
  return Status::OK();
}

Result<uint32_t> ShardedDatabase::Register(std::string name,
                                           std::string_view ltl_text,
                                           broker::RegistrationStats* stats) {
  CTDB_RETURN_NOT_OK(CheckOpen());
  std::lock_guard<std::mutex> lock(route_mutex_);
  const size_t k = RouteShardLocked();
  const uint64_t at = clock_ + 1;
  auto local = shards_[k]->RegisterWithClock(std::move(name), ltl_text, stats,
                                             at);
  // Resync even on failure: a WAL-append error still applied the mutation
  // (and its clock) in the shard's memory, and the router must not hand the
  // same tick out twice.
  clock_ = std::max(clock_, shards_[k]->last_sequence());
  CTDB_RETURN_NOT_OK(local.status());
  const uint32_t local_id = *local;
  // The shard assigns local ids densely from its own slot count; the route
  // table tracked that count, so the striped global id is exactly the next
  // one.
  if (local_id != slots_[k]) {
    return Status::Internal(StringFormat(
        "shard %zu assigned local id %u, router expected %llu", k, local_id,
        static_cast<unsigned long long>(slots_[k])));
  }
  slots_[k] += 1;
#if CTDB_OBS
  if (obs::Enabled() && !register_counters_.empty()) {
    register_counters_[k]->Add();
  }
#endif
  CTDB_RETURN_NOT_OK(BroadcastEventsLocked(k, local_id));
  return GlobalId(k, local_id, shards_.size());
}

Result<std::vector<uint32_t>> ShardedDatabase::RegisterBatch(
    const std::vector<broker::ContractDatabase::BatchEntry>& entries) {
  CTDB_RETURN_NOT_OK(CheckOpen());
  if (entries.empty()) return std::vector<uint32_t>{};

  // Pre-validate every entry with a scratch parser so a malformed entry
  // fails the whole batch before anything touches any shard — the same
  // all-or-nothing surface as the unsharded RegisterBatch.
  {
    ltl::FormulaFactory scratch_factory;
    Vocabulary scratch_vocab;
    for (const auto& entry : entries) {
      CTDB_RETURN_NOT_OK(
          ltl::Parse(entry.ltl_text, &scratch_factory, &scratch_vocab)
              .status());
    }
  }

  std::lock_guard<std::mutex> lock(route_mutex_);
  const size_t n = shards_.size();

  // Assign global ids and clocks up front (round-robin over the
  // lowest-next-id shards), grouping entries into per-shard sub-batches.
  // Entry i gets global clock clock_ + 1 + i, so the batch occupies the
  // same clock range as the equivalent sequence of single registrations.
  std::vector<uint32_t> global_ids(entries.size());
  std::vector<std::vector<broker::ContractDatabase::BatchEntry>> sub(n);
  std::vector<std::vector<size_t>> sub_origin(n);  // entry index per slot
  std::vector<std::vector<uint64_t>> sub_clocks(n);
  std::vector<uint64_t> planned = slots_;
  for (size_t i = 0; i < entries.size(); ++i) {
    size_t best = 0;
    for (size_t k = 1; k < n; ++k) {
      if (planned[k] * n + k < planned[best] * n + best) best = k;
    }
    global_ids[i] =
        GlobalId(best, static_cast<uint32_t>(planned[best]), n);
    planned[best] += 1;
    sub[best].push_back(entries[i]);
    sub_origin[best].push_back(i);
    sub_clocks[best].push_back(clock_ + 1 + i);
  }

  // Commit the sub-batches, each atomic within its shard.
  std::vector<Status> shard_status(n, Status::OK());
  auto commit_one = [&](size_t k) {
    if (sub[k].empty()) return Status::OK();
    auto ids = shards_[k]->RegisterBatchWithClocks(sub[k], &sub_clocks[k]);
    if (!ids.ok()) {
      shard_status[k] = AnnotateShard(k, ids.status());
      return shard_status[k];
    }
    for (size_t slot = 0; slot < ids->size(); ++slot) {
      if ((*ids)[slot] !=
          LocalId(global_ids[sub_origin[k][slot]], n)) {
        shard_status[k] = Status::Internal(
            AnnotateShard(k, Status::Internal("local id out of step"))
                .message());
        return shard_status[k];
      }
    }
    return Status::OK();
  };
  Status first;
  if (pool_) {
    (void)pool_->ParallelFor(0, n, commit_one);
    // ParallelFor may skip shards after the first error; run the skipped
    // ones so the commit is as complete as it can be, then report the
    // lowest-numbered failure deterministically.
    for (size_t k = 0; k < n; ++k) {
      if (!sub[k].empty() && shard_status[k].ok() &&
          shards_[k]->slot_count() < planned[k]) {
        (void)commit_one(k);
      }
      if (first.ok() && !shard_status[k].ok()) first = shard_status[k];
    }
  } else {
    first = commit_one(0);
  }
  // Resync slots and the clock from the shards: on a partial failure some
  // sub-batches committed (and consumed their planned clocks), and the
  // router view must cover them.
  for (size_t k = 0; k < n; ++k) {
    slots_[k] = shards_[k]->slot_count();
    clock_ = std::max(clock_, shards_[k]->last_sequence());
  }
  CTDB_RETURN_NOT_OK(first);

  for (size_t k = 0; k < n; ++k) {
#if CTDB_OBS
    if (obs::Enabled() && !register_counters_.empty() && !sub[k].empty()) {
      register_counters_[k]->Add(sub[k].size());
    }
#endif
    for (size_t slot = 0; slot < sub[k].size(); ++slot) {
      CTDB_RETURN_NOT_OK(BroadcastEventsLocked(
          k, LocalId(global_ids[sub_origin[k][slot]], n)));
    }
  }
  return global_ids;
}

Result<uint64_t> ShardedDatabase::Unregister(uint32_t id) {
  CTDB_RETURN_NOT_OK(CheckOpen());
  std::lock_guard<std::mutex> lock(route_mutex_);
  const size_t n = shards_.size();
  const size_t k = ShardOfId(id, n);
  // Surface the global id in the not-found case: the shard only knows the
  // local id, and an out-of-range local would read as a different contract.
  if (LocalId(id, n) >= slots_[k]) {
    return Status::NotFound("contract " + std::to_string(id) +
                            " is not live");
  }
  const uint64_t at = clock_ + 1;
  auto result = shards_[k]->UnregisterWithClock(LocalId(id, n), at);
  // Resync even on failure: a WAL-append error still ticked the shard.
  clock_ = std::max(clock_, shards_[k]->last_sequence());
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("contract " + std::to_string(id) +
                              " is not live");
    }
    return AnnotateShard(k, result.status());
  }
  CTDB_OBS_COUNT("shard.unregisters", 1);
  return at;
}

Result<uint64_t> ShardedDatabase::Replace(uint32_t id,
                                          std::string_view ltl_text,
                                          broker::RegistrationStats* stats) {
  CTDB_RETURN_NOT_OK(CheckOpen());
  std::lock_guard<std::mutex> lock(route_mutex_);
  const size_t n = shards_.size();
  const size_t k = ShardOfId(id, n);
  if (LocalId(id, n) >= slots_[k]) {
    return Status::NotFound("contract " + std::to_string(id) +
                            " is not live");
  }
  const uint64_t at = clock_ + 1;
  auto result = shards_[k]->ReplaceWithClock(LocalId(id, n), ltl_text, stats,
                                             at);
  // Resync even on failure: a WAL-append error still ticked the shard.
  clock_ = std::max(clock_, shards_[k]->last_sequence());
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("contract " + std::to_string(id) +
                              " is not live");
    }
    return result.status();  // parse/translate errors keep their wording
  }
  // The replacement text may cite brand-new events; keep the vocabularies
  // in sync exactly as Register does.
  CTDB_RETURN_NOT_OK(BroadcastEventsLocked(k, LocalId(id, n)));
  CTDB_OBS_COUNT("shard.replaces", 1);
  return at;
}

Result<broker::QueryResult> ShardedDatabase::Query(
    std::string_view ltl_text, const broker::QueryOptions& options) const {
  const std::string query(ltl_text);
  CTDB_ASSIGN_OR_RETURN(std::vector<broker::QueryResult> results,
                        QueryBatch({query}, options));
  return std::move(results[0]);
}

Result<std::vector<broker::QueryResult>> ShardedDatabase::QueryBatch(
    const std::vector<std::string>& queries,
    const broker::QueryOptions& options) const {
  CTDB_RETURN_NOT_OK(CheckOpen());
  const size_t n = shards_.size();
  Timer wall;

  // Scatter: every shard evaluates the whole batch against one of its
  // snapshots.
  std::vector<Result<std::vector<broker::QueryResult>>> per_shard(
      n, Status::Internal("shard not reached"));
  auto run_one = [&](size_t k) {
    per_shard[k] = shards_[k]->QueryBatch(queries, options);
    return Status::OK();  // errors merge below, in shard order
  };
  if (pool_ && n > 1) {
    CTDB_RETURN_NOT_OK(pool_->ParallelFor(0, n, run_one));
  } else {
    for (size_t k = 0; k < n; ++k) (void)run_one(k);
  }
  for (size_t k = 0; k < n; ++k) {
    // Parse / unknown-event errors are identical across shards (the
    // vocabularies are kept in sync); report shard 0's wording.
    CTDB_RETURN_NOT_OK(per_shard[k].status());
  }
  const double wall_ms = wall.ElapsedMillis();

  // Gather: merge each query's shard results by ascending global id.
  std::vector<broker::QueryResult> merged(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    broker::QueryResult& out = merged[q];
    // k-way merge by global id; shard streams are already sorted by local
    // id, and global = local * n + k preserves that order within a shard.
    std::vector<size_t> cursor(n, 0);
    size_t total = 0;
    for (size_t k = 0; k < n; ++k) {
      total += (*per_shard[k])[q].matches.size();
    }
    out.matches.reserve(total);
    if (options.collect_witnesses) out.witnesses.reserve(total);
    while (out.matches.size() < total) {
      size_t best = n;
      uint64_t best_id = 0;
      for (size_t k = 0; k < n; ++k) {
        const auto& r = (*per_shard[k])[q];
        if (cursor[k] >= r.matches.size()) continue;
        const uint64_t gid = GlobalId(k, r.matches[cursor[k]], n);
        if (best == n || gid < best_id) {
          best = k;
          best_id = gid;
        }
      }
      auto& r = (*per_shard[best])[q];
      out.matches.push_back(static_cast<uint32_t>(best_id));
      if (options.collect_witnesses) {
        out.witnesses.push_back(std::move(r.witnesses[cursor[best]]));
      }
      cursor[best] += 1;
    }
    // Stats: sizes and counts sum; the parallel phases (translate,
    // prefilter) cost their slowest shard; permission is summed CPU time;
    // total is the scatter-gather wall clock for the whole batch.
    for (size_t k = 0; k < n; ++k) {
      const broker::QueryStats& s = (*per_shard[k])[q].stats;
      broker::QueryStats& m = out.stats;
      m.database_size += s.database_size;
      m.candidates += s.candidates;
      m.matches += s.matches;
      m.translate_ms = std::max(m.translate_ms, s.translate_ms);
      m.prefilter_ms = std::max(m.prefilter_ms, s.prefilter_ms);
      m.permission_ms += s.permission_ms;
      m.translate_cache_hit = m.translate_cache_hit || s.translate_cache_hit;
    }
    out.stats.total_ms = wall_ms;
  }
  CTDB_OBS_COUNT("shard.queries", queries.size());
  return merged;
}

Result<monitor::StreamOpenInfo> ShardedDatabase::StreamOpen(
    std::string name, const monitor::StreamOptions& options) {
  CTDB_RETURN_NOT_OK(CheckOpen());
  // One global pin for every shard. Per-shard clocks are sparse but
  // mutually comparable (router-assigned), so a shard whose clock is behind
  // the pin clamps to its latest state — correct, it had no mutations in
  // between (same argument as QueryAsOf, DESIGN.md §14).
  uint64_t pin = options.as_of;
  if (pin == 0) {
    std::lock_guard<std::mutex> lock(route_mutex_);
    pin = clock_;
  }
  monitor::StreamOptions shard_options = options;
  shard_options.as_of = pin;
  monitor::StreamOpenInfo info;
  info.clock = pin;
  for (size_t k = 0; k < shards_.size(); ++k) {
    auto opened = shards_[k]->StreamOpen(name, shard_options);
    if (!opened.ok()) {
      // All-or-nothing: a stream is open on every shard or on none.
      for (size_t j = 0; j < k; ++j) (void)shards_[j]->StreamClose(name);
      return AnnotateShard(k, opened.status());
    }
    info.tracked += opened->tracked;
  }
  return info;
}

Result<monitor::StreamAppendResult> ShardedDatabase::StreamAppend(
    std::string_view name, const monitor::EventBatch& events) {
  CTDB_RETURN_NOT_OK(CheckOpen());
  const size_t n = shards_.size();

  // Scatter: every shard steps its own contracts through the whole batch.
  std::vector<Result<monitor::StreamAppendResult>> per_shard(
      n, Status::Internal("shard not reached"));
  auto run_one = [&](size_t k) {
    per_shard[k] = shards_[k]->StreamAppend(name, events);
    return Status::OK();  // errors merge below, in shard order
  };
  if (pool_ && n > 1) {
    CTDB_RETURN_NOT_OK(pool_->ParallelFor(0, n, run_one));
  } else {
    for (size_t k = 0; k < n; ++k) (void)run_one(k);
  }
  for (size_t k = 0; k < n; ++k) {
    CTDB_RETURN_NOT_OK(AnnotateShard(k, per_shard[k].status()));
  }

  // Gather: k-way merge of the verdict deltas by ascending global id;
  // every shard saw the same events, counters sum.
  monitor::StreamAppendResult merged;
  merged.events = (*per_shard[0]).events;
  size_t total = 0;
  for (size_t k = 0; k < n; ++k) {
    merged.stepped += (*per_shard[k]).stepped;
    merged.pruned += (*per_shard[k]).pruned;
    total += (*per_shard[k]).deltas.size();
  }
  merged.deltas.reserve(total);
  std::vector<size_t> cursor(n, 0);
  while (merged.deltas.size() < total) {
    size_t best = n;
    uint64_t best_id = 0;
    for (size_t k = 0; k < n; ++k) {
      const auto& deltas = (*per_shard[k]).deltas;
      if (cursor[k] >= deltas.size()) continue;
      const uint64_t gid = GlobalId(k, deltas[cursor[k]].contract_id, n);
      if (best == n || gid < best_id) {
        best = k;
        best_id = gid;
      }
    }
    merged.deltas.push_back({static_cast<uint32_t>(best_id),
                             (*per_shard[best]).deltas[cursor[best]].verdict});
    cursor[best] += 1;
  }
  return merged;
}

Result<monitor::StreamCloseInfo> ShardedDatabase::StreamClose(
    std::string_view name) {
  // No CheckOpen: closing a stream is read-only summary work and stays
  // legal while the database shuts down.
  const size_t n = shards_.size();
  std::vector<Result<monitor::StreamCloseInfo>> per_shard(
      n, Status::Internal("shard not reached"));
  for (size_t k = 0; k < n; ++k) {
    per_shard[k] = shards_[k]->StreamClose(name);
  }
  for (size_t k = 0; k < n; ++k) {
    CTDB_RETURN_NOT_OK(AnnotateShard(k, per_shard[k].status()));
  }
  monitor::StreamCloseInfo info;
  info.events = (*per_shard[0]).events;
  size_t total = 0;
  for (size_t k = 0; k < n; ++k) {
    info.satisfied += (*per_shard[k]).satisfied;
    info.violated += (*per_shard[k]).violated;
    info.undetermined += (*per_shard[k]).undetermined;
    total += (*per_shard[k]).verdicts.size();
  }
  info.verdicts.reserve(total);
  std::vector<size_t> cursor(n, 0);
  while (info.verdicts.size() < total) {
    size_t best = n;
    uint64_t best_id = 0;
    for (size_t k = 0; k < n; ++k) {
      const auto& verdicts = (*per_shard[k]).verdicts;
      if (cursor[k] >= verdicts.size()) continue;
      const uint64_t gid = GlobalId(k, verdicts[cursor[k]].contract_id, n);
      if (best == n || gid < best_id) {
        best = k;
        best_id = gid;
      }
    }
    info.verdicts.push_back(
        {static_cast<uint32_t>(best_id),
         (*per_shard[best]).verdicts[cursor[best]].verdict});
    cursor[best] += 1;
  }
  return info;
}

Status ShardedDatabase::Checkpoint() {
  CTDB_RETURN_NOT_OK(CheckOpen());
  const size_t n = shards_.size();
  std::vector<Status> status(n, Status::OK());
  auto one = [&](size_t k) {
    status[k] = AnnotateShard(k, shards_[k]->Checkpoint());
    return Status::OK();  // attempt every shard; merge below
  };
  if (pool_ && n > 1) {
    (void)pool_->ParallelFor(0, n, one);
  } else {
    for (size_t k = 0; k < n; ++k) (void)one(k);
  }
  for (size_t k = 0; k < n; ++k) CTDB_RETURN_NOT_OK(status[k]);
  CTDB_OBS_COUNT("shard.checkpoints", 1);
  return Status::OK();
}

Status ShardedDatabase::Close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return Status::OK();
  Status first;
  for (size_t k = 0; k < shards_.size(); ++k) {
    Status s = AnnotateShard(k, shards_[k]->Close());
    if (first.ok()) first = s;
  }
  return first;
}

size_t ShardedDatabase::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

uint64_t ShardedDatabase::last_sequence() const {
  std::lock_guard<std::mutex> lock(route_mutex_);
  return clock_;
}

obs::MetricsSnapshot ShardedDatabase::Metrics() const {
  return obs::MetricsRegistry::Default()->Snapshot();
}

}  // namespace ctdb::shard
