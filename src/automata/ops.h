// Structural operations on Büchi automata: reachability pruning, dead-state
// elimination, emptiness, projection of labels.

#pragma once

#include <vector>

#include "automata/buchi.h"
#include "util/bitset.h"

namespace ctdb::automata {

/// States reachable from the initial state.
Bitset ReachableStates(const Buchi& ba);

/// \brief Removes states that are unreachable from the initial state or from
/// which no accepting cycle is reachable ("dead" states).
///
/// The initial state is always kept (possibly with no outgoing transitions,
/// denoting the empty language). If `state_map` is non-null it receives, for
/// every old state, its new id or kDroppedState.
Buchi PruneDeadStates(const Buchi& ba, std::vector<StateId>* state_map = nullptr);

inline constexpr StateId kDroppedState = UINT32_MAX;

/// True iff L(ba) = ∅, i.e. no accepting cycle is reachable from the initial
/// state.
bool IsEmptyLanguage(const Buchi& ba);

/// \brief Rebuilds `ba` with every label projected onto the given retained
/// event polarities: positive literals survive only for events in
/// `retained_pos`, negative literals only for events in `retained_neg`
/// (π_L of Section 5.1).
Buchi ProjectLabels(const Buchi& ba, const Bitset& retained_pos,
                    const Bitset& retained_neg);

}  // namespace ctdb::automata
