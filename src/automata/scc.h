// Strongly connected components of a Büchi automaton's state graph.
// Used by the pruning-condition extraction (Algorithm 1), the seeds
// optimization (§6.2.4), dead-state pruning and the SCC permission checker.

#pragma once

#include <cstdint>
#include <vector>

#include "automata/buchi.h"

namespace ctdb::automata {

/// \brief SCC decomposition result.
struct SccInfo {
  /// Component id per state; ids are in reverse topological order
  /// (a transition u→v with scc[u] != scc[v] implies scc[u] > scc[v]).
  std::vector<uint32_t> component;
  /// Number of components.
  uint32_t count = 0;
  /// Per component: true iff it contains an edge between two of its states
  /// (i.e. a cycle exists through its states; single states need a
  /// self-loop).
  std::vector<bool> cyclic;
  /// Per component: true iff it contains a final state.
  std::vector<bool> has_final;

  /// True iff state `s` lies on some cycle that contains a final state —
  /// the seed criterion of §6.2.4.
  bool OnFinalCycle(StateId s) const {
    const uint32_t c = component[s];
    return cyclic[c] && has_final[c];
  }
};

/// Computes the SCCs of `ba` (iterative Tarjan; safe for deep graphs).
SccInfo ComputeScc(const Buchi& ba);

}  // namespace ctdb::automata
