// Graphviz export, for debugging and for rendering the paper's figures.

#pragma once

#include <string>

#include "automata/buchi.h"
#include "base/vocabulary.h"

namespace ctdb::automata {

/// Renders `ba` in Graphviz dot syntax. Final states are double circles,
/// matching the paper's figures.
std::string ToDot(const Buchi& ba, const Vocabulary& vocab,
                  const std::string& name = "ba");

}  // namespace ctdb::automata
