#include "automata/serialize.h"

#include <cstdio>

#include "util/string_util.h"

namespace ctdb::automata {

std::string Serialize(const Buchi& ba, const Vocabulary& vocab) {
  std::string out =
      StringFormat("ba states=%zu initial=%u\n", ba.StateCount(), ba.initial());
  out += "finals";
  for (size_t s : ba.finals().Indices()) {
    out += StringFormat(" %zu", s);
  }
  out += "\n";
  for (StateId s = 0; s < ba.StateCount(); ++s) {
    for (const Transition& t : ba.Out(s)) {
      out += StringFormat("t %u %u %s\n", s, t.to,
                          t.label.ToString(vocab).c_str());
    }
  }
  out += "end\n";
  return out;
}

namespace {
/// Upper bound on the declared state count of a serialized automaton.
constexpr size_t kMaxSerializedStates = size_t{1} << 20;
}  // namespace

Result<Buchi> Deserialize(std::string_view text, Vocabulary* vocab) {
  Buchi ba;
  bool saw_header = false;
  bool done = false;
  size_t declared_states = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    const std::string_view line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    if (done) {
      return Status::InvalidArgument("content after 'end'");
    }
    if (StartsWith(line, "ba ")) {
      size_t n = 0;
      unsigned init = 0;
      if (std::sscanf(std::string(line).c_str(), "ba states=%zu initial=%u",
                      &n, &init) != 2) {
        return Status::InvalidArgument("malformed 'ba' header: " +
                                       std::string(line));
      }
      if (n == 0) return Status::InvalidArgument("automaton needs >= 1 state");
      // A declared state count allocates adjacency storage up front, so cap
      // it: a hostile header like "ba states=99999999999" must fail with a
      // Status instead of exhausting memory. Real automata (Table 2) are
      // orders of magnitude below the cap.
      if (n > kMaxSerializedStates) {
        return Status::OutOfRange(
            StringFormat("declared state count %zu exceeds limit %zu", n,
                         kMaxSerializedStates));
      }
      declared_states = n;
      ba.AddStates(n - 1);  // One state exists already.
      if (init >= n) return Status::InvalidArgument("initial out of range");
      ba.SetInitial(init);
      saw_header = true;
      continue;
    }
    if (!saw_header) {
      return Status::InvalidArgument("expected 'ba' header first");
    }
    if (StartsWith(line, "finals")) {
      for (const std::string& tok : Split(line.substr(6), ' ')) {
        const std::string_view t = Trim(tok);
        if (t.empty()) continue;
        size_t s = 0;
        if (std::sscanf(std::string(t).c_str(), "%zu", &s) != 1 ||
            s >= declared_states) {
          return Status::InvalidArgument("bad final state: " + std::string(t));
        }
        ba.SetFinal(static_cast<StateId>(s));
      }
      continue;
    }
    if (StartsWith(line, "t ")) {
      unsigned from = 0;
      unsigned to = 0;
      int consumed = 0;
      if (std::sscanf(std::string(line).c_str(), "t %u %u %n", &from, &to,
                      &consumed) != 2) {
        return Status::InvalidArgument("malformed transition: " +
                                       std::string(line));
      }
      if (from >= declared_states || to >= declared_states) {
        return Status::InvalidArgument("transition endpoint out of range");
      }
      const std::string_view label_text =
          Trim(line.substr(static_cast<size_t>(consumed)));
      Label label;
      if (label_text != "true") {
        for (const std::string& lit_tok : Split(label_text, '&')) {
          std::string_view lit = Trim(lit_tok);
          if (lit.empty()) {
            return Status::InvalidArgument("empty literal in label: " +
                                           std::string(label_text));
          }
          bool negated = false;
          if (lit[0] == '!') {
            negated = true;
            lit = Trim(lit.substr(1));
          }
          CTDB_ASSIGN_OR_RETURN(EventId e, vocab->Intern(lit));
          label.Add(Literal{e, negated});
        }
      }
      ba.AddTransition(from, std::move(label), to);
      continue;
    }
    if (line == "end") {
      done = true;
      continue;
    }
    return Status::InvalidArgument("unrecognized line: " + std::string(line));
  }
  if (!saw_header) return Status::InvalidArgument("missing 'ba' header");
  if (!done) return Status::InvalidArgument("missing 'end'");
  return ba;
}

}  // namespace ctdb::automata
