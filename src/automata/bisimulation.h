// Bisimulation partition refinement (Definition 9 and Section 5.3).
//
// Computes the coarsest partition of a BA's states such that two states in a
// block (1) agree on finality and (2) have matching outgoing transitions
// (same label, into the same block). Labels can be projected onto a retained
// literal set on the fly, so the projection BAs of Section 5 never need to be
// materialized during precomputation.
//
// The refinement loop is signature-based (Kanellakis–Smolka): each round
// recomputes, per state, the set of (label, target-block) pairs and splits
// blocks whose states disagree. An optional starting partition supports the
// lattice-order precomputation of Section 5.3 (Theorem 3: the partition for
// L' ⊇ L refines the partition for L, so refinement may start from it).

#pragma once

#include <cstdint>
#include <vector>

#include "automata/buchi.h"
#include "util/bitset.h"

namespace ctdb::automata {

/// \brief A partition of states into blocks: `block_of[s]` is the block id of
/// state s. Canonical form: block ids are dense and assigned in order of
/// first occurrence (state 0's block is 0, the next distinct block is 1, ...).
struct Partition {
  std::vector<uint32_t> block_of;
  uint32_t block_count = 0;

  bool operator==(const Partition& other) const {
    return block_of == other.block_of;
  }

  /// Renumbers blocks into canonical order-of-first-occurrence form.
  void Canonicalize();

  /// True iff this partition refines `coarser` (every block of this is
  /// contained in a block of `coarser`).
  bool Refines(const Partition& coarser) const;

  /// The partition with every state in its own block.
  static Partition Discrete(size_t n);
  /// The partition separating final from non-final states of `ba`.
  static Partition FinalSplit(const Buchi& ba);
};

/// Options for CoarsestBisimulation.
struct BisimulationOptions {
  /// When non-null, labels are first projected onto these retained polarities
  /// (see Label::ProjectOnto) before comparison — equivalent to running on
  /// π_L(A) without building it.
  const Bitset* retained_pos = nullptr;
  const Bitset* retained_neg = nullptr;
  /// When non-null, refinement starts from this partition instead of the
  /// final/non-final split. Must itself refine the final split.
  const Partition* start = nullptr;
};

/// \brief Computes the coarsest bisimulation partition of `ba` under
/// `options` (Definition 9, with label projection per Definition 8).
Partition CoarsestBisimulation(const Buchi& ba,
                               const BisimulationOptions& options = {});

}  // namespace ctdb::automata
