// Quotient BA construction (Definition 10): states are bisimulation classes.

#pragma once

#include "automata/bisimulation.h"
#include "automata/buchi.h"
#include "util/bitset.h"

namespace ctdb::automata {

/// \brief Builds the simplification A_s of `ba` under `partition`
/// (Definition 10). When retained polarities are given, transition labels are
/// projected first (so the result is the simplification of the relevant BA,
/// (A^r)_s of Theorem 9).
///
/// `partition` must refine the final/non-final split, so every block is
/// uniformly final or non-final.
Buchi BuildQuotient(const Buchi& ba, const Partition& partition,
                    const Bitset* retained_pos = nullptr,
                    const Bitset* retained_neg = nullptr);

}  // namespace ctdb::automata
