#include "automata/ops.h"

#include <vector>

#include "automata/scc.h"

namespace ctdb::automata {

Bitset ReachableStates(const Buchi& ba) {
  Bitset reachable(ba.StateCount());
  std::vector<StateId> stack{ba.initial()};
  reachable.Set(ba.initial());
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (const Transition& t : ba.Out(s)) {
      if (!reachable.Test(t.to)) {
        reachable.Set(t.to);
        stack.push_back(t.to);
      }
    }
  }
  return reachable;
}

namespace {

/// States from which an accepting cycle is reachable: backward closure of the
/// states in cyclic final-bearing SCCs.
Bitset LiveStates(const Buchi& ba) {
  const SccInfo scc = ComputeScc(ba);
  Bitset live(ba.StateCount());
  std::vector<StateId> stack;
  for (StateId s = 0; s < ba.StateCount(); ++s) {
    if (scc.OnFinalCycle(s)) {
      live.Set(s);
      stack.push_back(s);
    }
  }
  const auto in = ba.BuildReverseAdjacency();
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (const auto& [pred, _] : in[s]) {
      if (!live.Test(pred)) {
        live.Set(pred);
        stack.push_back(pred);
      }
    }
  }
  return live;
}

}  // namespace

Buchi PruneDeadStates(const Buchi& ba, std::vector<StateId>* state_map) {
  Bitset keep = ReachableStates(ba);
  keep &= LiveStates(ba);
  keep.Resize(ba.StateCount());
  keep.Set(ba.initial());  // Always keep the initial state.

  std::vector<StateId> map(ba.StateCount(), kDroppedState);
  Buchi out;  // Starts with one state: reuse it as the image of initial().
  map[ba.initial()] = out.initial();
  for (StateId s = 0; s < ba.StateCount(); ++s) {
    if (s == ba.initial() || !keep.Test(s)) continue;
    map[s] = out.AddState();
  }
  for (StateId s = 0; s < ba.StateCount(); ++s) {
    if (map[s] == kDroppedState) continue;
    if (ba.IsFinal(s)) out.SetFinal(map[s]);
    for (const Transition& t : ba.Out(s)) {
      if (map[t.to] == kDroppedState) continue;
      out.AddTransition(map[s], t.label, map[t.to]);
    }
  }
  if (state_map != nullptr) *state_map = std::move(map);
  return out;
}

bool IsEmptyLanguage(const Buchi& ba) {
  const Bitset reachable = ReachableStates(ba);
  const SccInfo scc = ComputeScc(ba);
  for (StateId s = 0; s < ba.StateCount(); ++s) {
    if (reachable.Test(s) && scc.OnFinalCycle(s)) return false;
  }
  return true;
}

Buchi ProjectLabels(const Buchi& ba, const Bitset& retained_pos,
                    const Bitset& retained_neg) {
  Buchi out;
  out.AddStates(ba.StateCount() - 1);  // Constructor already made state 0.
  out.SetInitial(ba.initial());
  for (StateId s = 0; s < ba.StateCount(); ++s) {
    if (ba.IsFinal(s)) out.SetFinal(s);
    for (const Transition& t : ba.Out(s)) {
      out.AddTransition(s, t.label.ProjectOnto(retained_pos, retained_neg),
                        t.to);
    }
  }
  out.DedupTransitions();
  return out;
}

}  // namespace ctdb::automata
