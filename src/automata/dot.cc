#include "automata/dot.h"

#include "util/string_util.h"

namespace ctdb::automata {

std::string ToDot(const Buchi& ba, const Vocabulary& vocab,
                  const std::string& name) {
  std::string out = "digraph " + name + " {\n  rankdir=LR;\n";
  out += "  __init [shape=point];\n";
  for (StateId s = 0; s < ba.StateCount(); ++s) {
    out += StringFormat("  s%u [shape=%s, label=\"%u\"];\n", s,
                        ba.IsFinal(s) ? "doublecircle" : "circle", s);
  }
  out += StringFormat("  __init -> s%u;\n", ba.initial());
  for (StateId s = 0; s < ba.StateCount(); ++s) {
    for (const Transition& t : ba.Out(s)) {
      out += StringFormat("  s%u -> s%u [label=\"%s\"];\n", s, t.to,
                          t.label.ToString(vocab).c_str());
    }
  }
  out += "}\n";
  return out;
}

}  // namespace ctdb::automata
