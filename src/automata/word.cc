#include "automata/word.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace ctdb::automata {
namespace {

/// Product node (automaton state, distinct word position) as a dense index.
struct ProductGraph {
  const Buchi& ba;
  const LassoWord& word;
  size_t positions;

  size_t NodeCount() const { return ba.StateCount() * positions; }
  size_t Encode(StateId s, size_t pos) const { return s * positions + pos; }
  StateId StateOf(size_t node) const {
    return static_cast<StateId>(node / positions);
  }
  size_t PosOf(size_t node) const { return node % positions; }
};

}  // namespace

bool AcceptsWord(const Buchi& ba, const LassoWord& word) {
  assert(word.Valid());
  const ProductGraph g{ba, word, word.PositionCount()};

  // Iterative Tarjan over the product graph, explored on the fly from
  // (initial, 0). Accept iff some component is cyclic and contains a node
  // whose automaton state is final.
  constexpr uint32_t kUnvisited = UINT32_MAX;
  std::vector<uint32_t> index(g.NodeCount(), kUnvisited);
  std::vector<uint32_t> lowlink(g.NodeCount(), 0);
  std::vector<bool> on_stack(g.NodeCount(), false);
  std::vector<size_t> stack;
  uint32_t next_index = 0;

  struct Frame {
    size_t node;
    uint32_t edge;
  };
  std::vector<Frame> frames;

  const size_t root = g.Encode(ba.initial(), 0);
  frames.push_back({root, 0});
  index[root] = lowlink[root] = next_index++;
  stack.push_back(root);
  on_stack[root] = true;

  auto enabled = [&](size_t node, uint32_t edge, size_t* succ) {
    const StateId s = g.StateOf(node);
    const size_t pos = g.PosOf(node);
    const auto& out = ba.Out(s);
    if (edge >= out.size()) return false;
    const Transition& t = out[edge];
    if (!Satisfies(word.At(pos), t.label)) {
      *succ = SIZE_MAX;
      return true;  // Edge exists but is disabled; caller skips it.
    }
    *succ = g.Encode(t.to, word.Successor(pos));
    return true;
  };

  while (!frames.empty()) {
    Frame& f = frames.back();
    size_t succ;
    if (enabled(f.node, f.edge, &succ)) {
      ++f.edge;
      if (succ == SIZE_MAX) continue;  // disabled transition
      if (index[succ] == kUnvisited) {
        index[succ] = lowlink[succ] = next_index++;
        stack.push_back(succ);
        on_stack[succ] = true;
        frames.push_back({succ, 0});
      } else if (on_stack[succ]) {
        lowlink[f.node] = std::min(lowlink[f.node], index[succ]);
      }
      continue;
    }
    const size_t v = f.node;
    frames.pop_back();
    if (!frames.empty()) {
      lowlink[frames.back().node] =
          std::min(lowlink[frames.back().node], lowlink[v]);
    }
    if (lowlink[v] == index[v]) {
      // Collect the component; check acceptance.
      std::vector<size_t> comp;
      while (true) {
        const size_t w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        comp.push_back(w);
        if (w == v) break;
      }
      bool has_final = false;
      for (size_t node : comp) {
        if (ba.IsFinal(g.StateOf(node))) {
          has_final = true;
          break;
        }
      }
      if (!has_final) continue;
      // Cyclic? Any enabled edge between two members (self-loop included).
      // Membership test: on the component list (small) — use a mark vector.
      bool cyclic = false;
      for (size_t node : comp) {
        const StateId s = g.StateOf(node);
        const size_t pos = g.PosOf(node);
        const size_t next_pos = word.Successor(pos);
        for (const Transition& t : ba.Out(s)) {
          if (!Satisfies(word.At(pos), t.label)) continue;
          const size_t succ_node = g.Encode(t.to, next_pos);
          if (std::find(comp.begin(), comp.end(), succ_node) != comp.end()) {
            cyclic = true;
            break;
          }
        }
        if (cyclic) break;
      }
      if (cyclic) return true;
    }
  }
  return false;
}

}  // namespace ctdb::automata
