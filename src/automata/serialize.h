// Text serialization of Büchi automata.
//
// The paper's prototype passes contract BAs between its four modules as text
// files (§7.1); this is the equivalent format. One automaton per block:
//
//   ba states=<n> initial=<s>
//   finals <s1> <s2> ...
//   t <from> <to> <label>
//   ...
//   end
//
// where <label> is `true` or literals joined by '&' (e.g. `refund & !use`).

#pragma once

#include <string>
#include <string_view>

#include "automata/buchi.h"
#include "base/vocabulary.h"
#include "util/result.h"

namespace ctdb::automata {

/// Serializes `ba` using event names from `vocab`.
std::string Serialize(const Buchi& ba, const Vocabulary& vocab);

/// Parses one automaton serialized by Serialize. Unknown events are interned
/// into `vocab`.
Result<Buchi> Deserialize(std::string_view text, Vocabulary* vocab);

}  // namespace ctdb::automata
