// Acceptance of an ultimately periodic word by a Büchi automaton.
// Test-oracle companion of ltl/evaluator.h: BA(ϕ) accepts w ⇔ w ⊨ ϕ.

#pragma once

#include "automata/buchi.h"
#include "base/run.h"

namespace ctdb::automata {

/// \brief True iff `ba` accepts the run `word` = u·vʷ, i.e. some run of the
/// automaton over the word visits a final state infinitely often.
///
/// Decided exactly by an SCC analysis of the (state × word-position) product
/// graph: the word is accepted iff a cyclic product SCC containing a final
/// automaton state is reachable from (initial, 0).
bool AcceptsWord(const Buchi& ba, const LassoWord& word);

}  // namespace ctdb::automata
