#include "automata/buchi.h"

#include <unordered_set>

#include "util/hash.h"
#include "util/string_util.h"

namespace ctdb::automata {

Buchi::Buchi() { AddState(); }

StateId Buchi::AddState() {
  const StateId id = static_cast<StateId>(out_.size());
  out_.emplace_back();
  finals_.Resize(out_.size());
  return id;
}

StateId Buchi::AddStates(size_t count) {
  const StateId first = static_cast<StateId>(out_.size());
  for (size_t i = 0; i < count; ++i) AddState();
  return first;
}

void Buchi::AddTransition(StateId from, Label label, StateId to) {
  if (!label.IsSatisfiable()) return;
  out_[from].push_back(Transition{to, std::move(label)});
}

size_t Buchi::TransitionCount() const {
  size_t n = 0;
  for (const auto& ts : out_) n += ts.size();
  return n;
}

Bitset Buchi::CitedEvents() const {
  Bitset events;
  for (const auto& ts : out_) {
    for (const Transition& t : ts) {
      events |= t.label.positive();
      events |= t.label.negative();
    }
  }
  return events;
}

std::vector<Label> Buchi::DistinctLabels() const {
  std::vector<Label> labels;
  std::unordered_set<uint64_t> seen;
  for (const auto& ts : out_) {
    for (const Transition& t : ts) {
      // Hash pre-filter; resolve rare collisions by linear check.
      const uint64_t h = t.label.Hash();
      if (seen.insert(h).second) {
        labels.push_back(t.label);
      } else {
        bool found = false;
        for (const Label& l : labels) {
          if (l == t.label) {
            found = true;
            break;
          }
        }
        if (!found) labels.push_back(t.label);
      }
    }
  }
  return labels;
}

void Buchi::DedupTransitions() {
  for (auto& ts : out_) {
    std::vector<Transition> unique;
    for (Transition& t : ts) {
      bool dup = false;
      for (const Transition& u : unique) {
        if (u.to == t.to && u.label == t.label) {
          dup = true;
          break;
        }
      }
      if (!dup) unique.push_back(std::move(t));
    }
    ts = std::move(unique);
  }
}

Status Buchi::Validate() const {
  if (initial_ >= out_.size()) {
    return Status::Internal("initial state out of range");
  }
  for (size_t s = 0; s < out_.size(); ++s) {
    for (const Transition& t : out_[s]) {
      if (t.to >= out_.size()) {
        return Status::Internal(
            StringFormat("transition %zu -> %u out of range", s, t.to));
      }
      if (!t.label.IsSatisfiable()) {
        return Status::Internal(
            StringFormat("unsatisfiable label on transition from %zu", s));
      }
    }
  }
  return Status::OK();
}

size_t Buchi::MemoryUsage() const {
  size_t bytes = finals_.MemoryUsage() + out_.capacity() * sizeof(out_[0]);
  for (const auto& ts : out_) {
    bytes += ts.capacity() * sizeof(Transition);
    for (const Transition& t : ts) {
      bytes += t.label.positive().MemoryUsage() +
               t.label.negative().MemoryUsage();
    }
  }
  return bytes;
}

std::vector<std::vector<std::pair<StateId, uint32_t>>>
Buchi::BuildReverseAdjacency() const {
  std::vector<std::vector<std::pair<StateId, uint32_t>>> in(out_.size());
  for (StateId s = 0; s < out_.size(); ++s) {
    for (uint32_t i = 0; i < out_[s].size(); ++i) {
      in[out_[s][i].to].emplace_back(s, i);
    }
  }
  return in;
}

}  // namespace ctdb::automata
