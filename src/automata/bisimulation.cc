#include "automata/bisimulation.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "util/hash.h"

namespace ctdb::automata {

void Partition::Canonicalize() {
  std::vector<uint32_t> rename(block_count, UINT32_MAX);
  uint32_t next = 0;
  for (uint32_t& b : block_of) {
    if (rename[b] == UINT32_MAX) rename[b] = next++;
    b = rename[b];
  }
  block_count = next;
}

bool Partition::Refines(const Partition& coarser) const {
  assert(block_of.size() == coarser.block_of.size());
  // For every pair in the same block here, they must share a block there.
  // Equivalent check: map block -> coarser block must be a function.
  std::vector<uint32_t> image(block_count, UINT32_MAX);
  for (size_t s = 0; s < block_of.size(); ++s) {
    const uint32_t b = block_of[s];
    if (image[b] == UINT32_MAX) {
      image[b] = coarser.block_of[s];
    } else if (image[b] != coarser.block_of[s]) {
      return false;
    }
  }
  return true;
}

Partition Partition::Discrete(size_t n) {
  Partition p;
  p.block_of.resize(n);
  for (size_t i = 0; i < n; ++i) p.block_of[i] = static_cast<uint32_t>(i);
  p.block_count = static_cast<uint32_t>(n);
  return p;
}

Partition Partition::FinalSplit(const Buchi& ba) {
  Partition p;
  p.block_of.resize(ba.StateCount());
  for (StateId s = 0; s < ba.StateCount(); ++s) {
    p.block_of[s] = ba.IsFinal(s) ? 1 : 0;
  }
  p.block_count = 2;
  p.Canonicalize();
  return p;
}

Partition CoarsestBisimulation(const Buchi& ba,
                               const BisimulationOptions& options) {
  const size_t n = ba.StateCount();
  Partition part =
      options.start != nullptr ? *options.start : Partition::FinalSplit(ba);
  assert(part.block_of.size() == n);
  part.Canonicalize();

  // Intern (possibly projected) labels to dense ids once.
  struct LabelRef {
    uint32_t label_id;
    StateId to;
  };
  std::vector<std::vector<LabelRef>> out(n);
  {
    std::unordered_map<uint64_t, std::vector<std::pair<Label, uint32_t>>>
        intern;
    uint32_t next_label = 0;
    auto intern_label = [&](const Label& raw) -> uint32_t {
      Label label = raw;
      if (options.retained_pos != nullptr && options.retained_neg != nullptr) {
        label = raw.ProjectOnto(*options.retained_pos, *options.retained_neg);
      }
      auto& bucket = intern[label.Hash()];
      for (const auto& [existing, id] : bucket) {
        if (existing == label) return id;
      }
      bucket.emplace_back(label, next_label);
      return next_label++;
    };
    for (StateId s = 0; s < n; ++s) {
      for (const Transition& t : ba.Out(s)) {
        out[s].push_back(LabelRef{intern_label(t.label), t.to});
      }
    }
  }

  // Signature refinement to fixpoint. Signatures are word-packed: each move
  // is one uint64 (label id in the high word, target block in the low word),
  // so building a signature is append + sort + unique over machine words and
  // hashing/equality run word-parallel (util::U64VectorHash) instead of
  // walking (label, block) pair structs. The scratch vector is reused across
  // states — a heap allocation happens only when a new block is minted.
  std::vector<uint64_t> sig;
  while (true) {
    bool changed = false;
    std::unordered_map<std::vector<uint64_t>, uint32_t, U64VectorHash>
        sig_to_block;
    sig_to_block.reserve(part.block_count * 2);
    std::vector<uint32_t> new_block(n);
    uint32_t next_block = 0;
    for (StateId s = 0; s < n; ++s) {
      sig.clear();
      sig.reserve(1 + out[s].size());
      // Word 0: the state's current block; then sorted distinct packed moves.
      sig.push_back(part.block_of[s]);
      for (const LabelRef& r : out[s]) {
        sig.push_back((static_cast<uint64_t>(r.label_id) << 32) |
                      part.block_of[r.to]);
      }
      std::sort(sig.begin() + 1, sig.end());
      sig.erase(std::unique(sig.begin() + 1, sig.end()), sig.end());
      auto it = sig_to_block.find(sig);
      if (it == sig_to_block.end()) {
        it = sig_to_block.emplace(sig, next_block++).first;
      }
      new_block[s] = it->second;
    }
    if (next_block != part.block_count) changed = true;
    part.block_of = std::move(new_block);
    part.block_count = next_block;
    if (!changed) break;
  }
  part.Canonicalize();
  return part;
}

}  // namespace ctdb::automata
