// Büchi automata over snapshot sequences (Sections 2.3 and 6.2.1).
//
// States are dense ids; transitions are labeled with conjunctions of literals
// (base/label.h). Following §6.2.2 ("w.l.o.g. they have a single initial
// state"), a Buchi has exactly one initial state. Acceptance: a run is
// accepted iff it satisfies a lasso path through a final state.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/label.h"
#include "util/bitset.h"
#include "util/status.h"

namespace ctdb::automata {

using StateId = uint32_t;

/// \brief A labeled transition.
struct Transition {
  StateId to = 0;
  Label label;
};

/// \brief A transition-labeled Büchi automaton with a single initial state.
class Buchi {
 public:
  /// Creates an automaton with a single (initial, non-final) state and no
  /// transitions: the empty language.
  Buchi();

  /// Appends a fresh non-final state and returns its id.
  StateId AddState();

  /// Adds `count` fresh states; returns the first new id.
  StateId AddStates(size_t count);

  size_t StateCount() const { return out_.size(); }

  StateId initial() const { return initial_; }
  void SetInitial(StateId s) { initial_ = s; }

  bool IsFinal(StateId s) const { return finals_.Test(s); }
  void SetFinal(StateId s) { finals_.Set(s); }
  const Bitset& finals() const { return finals_; }
  size_t FinalCount() const { return finals_.Count(); }

  /// Adds a transition; unsatisfiable labels (p ∧ ¬p) are silently dropped —
  /// they can never be enabled by any snapshot.
  void AddTransition(StateId from, Label label, StateId to);

  /// Outgoing transitions of `s`.
  const std::vector<Transition>& Out(StateId s) const { return out_[s]; }

  /// Total number of transitions.
  size_t TransitionCount() const;

  /// Union of events cited on any transition label.
  Bitset CitedEvents() const;

  /// Every distinct label (deduplicated, arbitrary order).
  std::vector<Label> DistinctLabels() const;

  /// Removes duplicate (same target, same label) transitions.
  void DedupTransitions();

  /// Structural invariants: state ids in range, labels satisfiable.
  Status Validate() const;

  /// Approximate heap footprint, for the §7.4 index-size report.
  size_t MemoryUsage() const;

  /// Reverse adjacency: predecessors[to] lists (from, transition index in
  /// Out(from)). Computed on demand; invalidated by mutation.
  std::vector<std::vector<std::pair<StateId, uint32_t>>> BuildReverseAdjacency()
      const;

 private:
  StateId initial_ = 0;
  Bitset finals_;
  std::vector<std::vector<Transition>> out_;
};

}  // namespace ctdb::automata
