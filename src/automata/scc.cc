#include "automata/scc.h"

#include <algorithm>

namespace ctdb::automata {

SccInfo ComputeScc(const Buchi& ba) {
  const size_t n = ba.StateCount();
  SccInfo info;
  info.component.assign(n, 0);

  constexpr uint32_t kUnvisited = UINT32_MAX;
  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<StateId> stack;
  uint32_t next_index = 0;

  // Explicit DFS frames: (state, next outgoing transition to visit).
  struct Frame {
    StateId state;
    uint32_t edge;
  };
  std::vector<Frame> frames;

  for (StateId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& out = ba.Out(f.state);
      if (f.edge < out.size()) {
        const StateId w = out[f.edge].to;
        ++f.edge;
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.state] = std::min(lowlink[f.state], index[w]);
        }
        continue;
      }
      // All edges explored: close the frame.
      const StateId v = f.state;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().state] =
            std::min(lowlink[frames.back().state], lowlink[v]);
      }
      if (lowlink[v] == index[v]) {
        // v is the root of a component.
        const uint32_t comp = info.count++;
        while (true) {
          const StateId w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          info.component[w] = comp;
          if (w == v) break;
        }
      }
    }
  }

  // Tarjan emits components in reverse topological order already.
  info.cyclic.assign(info.count, false);
  info.has_final.assign(info.count, false);
  for (StateId s = 0; s < n; ++s) {
    const uint32_t c = info.component[s];
    if (ba.IsFinal(s)) info.has_final[c] = true;
    for (const Transition& t : ba.Out(s)) {
      if (info.component[t.to] == c) info.cyclic[c] = true;
    }
  }
  return info;
}

}  // namespace ctdb::automata
