#include "automata/quotient.h"

#include <cassert>

namespace ctdb::automata {

Buchi BuildQuotient(const Buchi& ba, const Partition& partition,
                    const Bitset* retained_pos, const Bitset* retained_neg) {
  assert(partition.block_of.size() == ba.StateCount());
  Buchi out;
  if (partition.block_count > 1) out.AddStates(partition.block_count - 1);
  out.SetInitial(partition.block_of[ba.initial()]);

  // All states of a block have, by Definition 9, the same finality and the
  // same set of (projected label, target block) moves — so one representative
  // per block suffices to enumerate the quotient's edges. This keeps the
  // per-query quotient materialization cost proportional to the *quotient*
  // size, the "some care in the implementation" of §5.2.
  std::vector<StateId> representative(partition.block_count, UINT32_MAX);
  for (StateId s = 0; s < ba.StateCount(); ++s) {
    const uint32_t b = partition.block_of[s];
    if (representative[b] == UINT32_MAX) representative[b] = s;
    if (ba.IsFinal(s)) out.SetFinal(b);
  }
  for (uint32_t b = 0; b < partition.block_count; ++b) {
    const StateId s = representative[b];
    if (s == UINT32_MAX) continue;
    for (const Transition& t : ba.Out(s)) {
      Label label = t.label;
      if (retained_pos != nullptr && retained_neg != nullptr) {
        label = label.ProjectOnto(*retained_pos, *retained_neg);
      }
      out.AddTransition(b, std::move(label), partition.block_of[t.to]);
    }
  }
  out.DedupTransitions();
  return out;
}

}  // namespace ctdb::automata
