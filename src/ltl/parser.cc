#include "ltl/parser.h"

#include <cctype>
#include <string>

#include "util/string_util.h"

namespace ctdb::ltl {
namespace {

enum class TokenKind {
  kEnd,
  kIdent,
  kTrue,
  kFalse,
  kNot,      // !  or ~
  kAnd,      // &  or &&
  kOr,       // |  or ||
  kImplies,  // ->
  kIff,      // <->
  kLParen,
  kRParen,
  kNext,       // X
  kFinally,    // F
  kGlobally,   // G
  kUntil,      // U
  kWeakUntil,  // W
  kRelease,    // R
  kBefore,     // B
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<Token> Next() {
    SkipSpace();
    Token tok;
    tok.pos = pos_;
    if (pos_ >= input_.size()) {
      tok.kind = TokenKind::kEnd;
      return tok;
    }
    const char c = input_[pos_];
    switch (c) {
      case '(': ++pos_; tok.kind = TokenKind::kLParen; return tok;
      case ')': ++pos_; tok.kind = TokenKind::kRParen; return tok;
      case '!': case '~': ++pos_; tok.kind = TokenKind::kNot; return tok;
      case '&':
        ++pos_;
        if (pos_ < input_.size() && input_[pos_] == '&') ++pos_;
        tok.kind = TokenKind::kAnd;
        return tok;
      case '|':
        ++pos_;
        if (pos_ < input_.size() && input_[pos_] == '|') ++pos_;
        tok.kind = TokenKind::kOr;
        return tok;
      case '-':
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '>') {
          pos_ += 2;
          tok.kind = TokenKind::kImplies;
          return tok;
        }
        return Error("expected '->'");
      case '<':
        if (pos_ + 2 < input_.size() && input_[pos_ + 1] == '-' &&
            input_[pos_ + 2] == '>') {
          pos_ += 3;
          tok.kind = TokenKind::kIff;
          return tok;
        }
        return Error("expected '<->'");
      default:
        break;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const size_t start = pos_;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_')) {
        ++pos_;
      }
      tok.text = std::string(input_.substr(start, pos_ - start));
      if (tok.text == "true") {
        tok.kind = TokenKind::kTrue;
      } else if (tok.text == "false") {
        tok.kind = TokenKind::kFalse;
      } else if (tok.text == "X") {
        tok.kind = TokenKind::kNext;
      } else if (tok.text == "F") {
        tok.kind = TokenKind::kFinally;
      } else if (tok.text == "G") {
        tok.kind = TokenKind::kGlobally;
      } else if (tok.text == "U") {
        tok.kind = TokenKind::kUntil;
      } else if (tok.text == "W") {
        tok.kind = TokenKind::kWeakUntil;
      } else if (tok.text == "R") {
        tok.kind = TokenKind::kRelease;
      } else if (tok.text == "B") {
        tok.kind = TokenKind::kBefore;
      } else {
        tok.kind = TokenKind::kIdent;
      }
      return tok;
    }
    return Error(StringFormat("unexpected character '%c'", c));
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(
        StringFormat("LTL parse error at offset %zu: %s", pos_, msg.c_str()));
  }

  std::string_view input_;
  size_t pos_ = 0;
};

class Parser {
 public:
  /// `vocab` may be null for read-only parsing; then `const_vocab` resolves
  /// identifiers and interning is impossible (require_known_events implied).
  Parser(std::string_view input, FormulaFactory* factory, Vocabulary* vocab,
         const Vocabulary* const_vocab, const ParseOptions& options)
      : lexer_(input),
        factory_(factory),
        vocab_(vocab),
        const_vocab_(const_vocab),
        options_(options) {}

  Result<const Formula*> Run() {
    CTDB_RETURN_NOT_OK(Advance());
    CTDB_ASSIGN_OR_RETURN(const Formula* f, ParseIff());
    if (current_.kind != TokenKind::kEnd) {
      return Error("trailing input after formula");
    }
    return f;
  }

 private:
  Status Advance() {
    CTDB_ASSIGN_OR_RETURN(current_, lexer_.Next());
    return Status::OK();
  }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(StringFormat(
        "LTL parse error at offset %zu: %s", current_.pos, msg.c_str()));
  }

  Result<const Formula*> ParseIff() {
    CTDB_ASSIGN_OR_RETURN(const Formula* lhs, ParseImplies());
    while (current_.kind == TokenKind::kIff) {
      CTDB_RETURN_NOT_OK(Advance());
      CTDB_ASSIGN_OR_RETURN(const Formula* rhs, ParseImplies());
      lhs = factory_->Iff(lhs, rhs);
    }
    return lhs;
  }

  Result<const Formula*> ParseImplies() {
    CTDB_RETURN_NOT_OK(EnterRecursion());
    DepthScope scope{this};
    CTDB_ASSIGN_OR_RETURN(const Formula* lhs, ParseOr());
    if (current_.kind == TokenKind::kImplies) {
      CTDB_RETURN_NOT_OK(Advance());
      CTDB_ASSIGN_OR_RETURN(const Formula* rhs, ParseImplies());
      return factory_->Implies(lhs, rhs);
    }
    return lhs;
  }

  Result<const Formula*> ParseOr() {
    CTDB_ASSIGN_OR_RETURN(const Formula* lhs, ParseAnd());
    while (current_.kind == TokenKind::kOr) {
      CTDB_RETURN_NOT_OK(Advance());
      CTDB_ASSIGN_OR_RETURN(const Formula* rhs, ParseAnd());
      lhs = factory_->Or(lhs, rhs);
    }
    return lhs;
  }

  Result<const Formula*> ParseAnd() {
    CTDB_ASSIGN_OR_RETURN(const Formula* lhs, ParseTemporal());
    while (current_.kind == TokenKind::kAnd) {
      CTDB_RETURN_NOT_OK(Advance());
      CTDB_ASSIGN_OR_RETURN(const Formula* rhs, ParseTemporal());
      lhs = factory_->And(lhs, rhs);
    }
    return lhs;
  }

  Result<const Formula*> ParseTemporal() {
    CTDB_RETURN_NOT_OK(EnterRecursion());
    DepthScope scope{this};
    CTDB_ASSIGN_OR_RETURN(const Formula* lhs, ParseUnary());
    Op op;
    switch (current_.kind) {
      case TokenKind::kUntil: op = Op::kUntil; break;
      case TokenKind::kWeakUntil: op = Op::kWeakUntil; break;
      case TokenKind::kRelease: op = Op::kRelease; break;
      case TokenKind::kBefore: op = Op::kBefore; break;
      default: return lhs;
    }
    CTDB_RETURN_NOT_OK(Advance());
    CTDB_ASSIGN_OR_RETURN(const Formula* rhs, ParseTemporal());
    return factory_->Make(op, lhs, rhs);
  }

  /// Decrements the recursion budget counter on scope exit.
  struct DepthScope {
    Parser* parser;
    ~DepthScope() { --parser->depth_; }
  };

  /// Charges one unit of the recursion budget (max_depth). Placed on every
  /// self- or mutually-recursive production (ParseImplies, ParseTemporal,
  /// ParseUnary — parentheses re-enter through ParseUnary's live frame), so
  /// adversarial inputs like "((((..." or "p U p U p ..." fail with a
  /// Status instead of overflowing the stack.
  Status EnterRecursion() {
    if (depth_ >= options_.max_depth) {
      return Error(StringFormat("formula nesting exceeds max depth %zu",
                                options_.max_depth));
    }
    ++depth_;
    return Status::OK();
  }

  Result<const Formula*> ParseUnary() {
    CTDB_RETURN_NOT_OK(EnterRecursion());
    DepthScope scope{this};
    switch (current_.kind) {
      case TokenKind::kNot: {
        CTDB_RETURN_NOT_OK(Advance());
        CTDB_ASSIGN_OR_RETURN(const Formula* f, ParseUnary());
        return factory_->Not(f);
      }
      case TokenKind::kNext: {
        CTDB_RETURN_NOT_OK(Advance());
        CTDB_ASSIGN_OR_RETURN(const Formula* f, ParseUnary());
        return factory_->Next(f);
      }
      case TokenKind::kFinally: {
        CTDB_RETURN_NOT_OK(Advance());
        CTDB_ASSIGN_OR_RETURN(const Formula* f, ParseUnary());
        return factory_->Finally(f);
      }
      case TokenKind::kGlobally: {
        CTDB_RETURN_NOT_OK(Advance());
        CTDB_ASSIGN_OR_RETURN(const Formula* f, ParseUnary());
        return factory_->Globally(f);
      }
      default:
        return ParseAtom();
    }
  }

  Result<const Formula*> ParseAtom() {
    switch (current_.kind) {
      case TokenKind::kTrue:
        CTDB_RETURN_NOT_OK(Advance());
        return factory_->True();
      case TokenKind::kFalse:
        CTDB_RETURN_NOT_OK(Advance());
        return factory_->False();
      case TokenKind::kLParen: {
        CTDB_RETURN_NOT_OK(Advance());
        CTDB_ASSIGN_OR_RETURN(const Formula* f, ParseIff());
        if (current_.kind != TokenKind::kRParen) {
          return Error("expected ')'");
        }
        CTDB_RETURN_NOT_OK(Advance());
        return f;
      }
      case TokenKind::kIdent: {
        const std::string name = current_.text;
        CTDB_RETURN_NOT_OK(Advance());
        if (options_.require_known_events || vocab_ == nullptr) {
          CTDB_ASSIGN_OR_RETURN(EventId id, const_vocab_->Find(name));
          return factory_->Prop(id);
        }
        CTDB_ASSIGN_OR_RETURN(EventId id, vocab_->Intern(name));
        return factory_->Prop(id);
      }
      case TokenKind::kEnd:
        return Error("unexpected end of input");
      default:
        return Error("expected an atom");
    }
  }

  Lexer lexer_;
  Token current_;
  FormulaFactory* factory_;
  Vocabulary* vocab_;              ///< null for read-only parsing
  const Vocabulary* const_vocab_;  ///< always valid for lookups
  ParseOptions options_;
  size_t depth_ = 0;
};

}  // namespace

Result<const Formula*> Parse(std::string_view text, FormulaFactory* factory,
                             Vocabulary* vocab, const ParseOptions& options) {
  Parser parser(text, factory, vocab, vocab, options);
  return parser.Run();
}

Result<const Formula*> Parse(std::string_view text, FormulaFactory* factory,
                             const Vocabulary& vocab,
                             const ParseOptions& options) {
  Parser parser(text, factory, /*vocab=*/nullptr, &vocab, options);
  return parser.Run();
}

}  // namespace ctdb::ltl
