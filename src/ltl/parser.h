// Text parser for LTL formulas.
//
// Grammar (lowest to highest precedence; -> and <-> are right-associative,
// the binary temporal operators U W R B are right-associative as usual in
// LTL):
//
//   iff     := implies ('<->' implies)*
//   implies := or ('->' implies)?
//   or      := and (('|' | '||') and)*
//   and     := temporal (('&' | '&&') temporal)*
//   temporal:= unary (('U' | 'W' | 'R' | 'B') temporal)?
//   unary   := ('!' | 'X' | 'F' | 'G') unary | atom
//   atom    := 'true' | 'false' | identifier | '(' iff ')'
//
// Identifiers are [A-Za-z_][A-Za-z0-9_]* excluding the reserved operator
// letters (U W R B X F G) and keywords (true false). By default unknown
// identifiers are interned into the vocabulary; a strict mode rejects them
// (used for queries, which must cite only registered events).

#pragma once

#include <string_view>

#include "base/vocabulary.h"
#include "ltl/formula.h"
#include "util/result.h"

namespace ctdb::ltl {

/// Parsing options.
struct ParseOptions {
  /// When true, identifiers not present in the vocabulary are an error;
  /// when false they are interned on first sight.
  bool require_known_events = false;
  /// Recursion budget: parsing fails with InvalidArgument once the descent
  /// nests deeper than this, instead of overflowing the stack on
  /// adversarial inputs like "((((..." or "p U p U p ...". One level of
  /// formula nesting consumes at most three units, so the default still
  /// admits ASTs several hundred levels deep while bounding the depth every
  /// later recursive pass (printing, rewriting, the tableau) inherits.
  size_t max_depth = 1024;
};

/// \brief Parses `text` into a formula owned by `factory`.
///
/// Event identifiers are resolved against (and, unless
/// `options.require_known_events`, added to) `vocab`. Errors carry the
/// offending position.
Result<const Formula*> Parse(std::string_view text, FormulaFactory* factory,
                             Vocabulary* vocab,
                             const ParseOptions& options = {});

/// \brief Read-only parse against a shared vocabulary.
///
/// Like Parse above but never interns: `require_known_events` is implied
/// (unknown identifiers are a NotFound error), so `vocab` may be shared with
/// concurrent readers — this is the overload the snapshot-isolated query
/// path uses with a thread-local factory.
Result<const Formula*> Parse(std::string_view text, FormulaFactory* factory,
                             const Vocabulary& vocab,
                             const ParseOptions& options = {});

}  // namespace ctdb::ltl
