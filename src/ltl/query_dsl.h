// A small intention-level DSL for building temporal queries and contract
// clauses without writing raw LTL.
//
// The paper positions LTL as a developer language behind friendlier
// front-ends (§2.2, citing [5]); this header is the programmatic front-end.
// It also bakes in the subtle strictness conventions that raw LTL makes easy
// to get wrong — e.g. `F` includes the present instant, so "a then later b"
// must be F(a ∧ X F b), not F(a ∧ F b) (which a single simultaneous-ish
// event can satisfy).

#pragma once

#include <vector>

#include "ltl/formula.h"

namespace ctdb::ltl::dsl {

/// "The steps happen in this order, each strictly after the previous one":
///   Sequence({a, b, c}) = F(a ∧ X F(b ∧ X F c)).
/// Empty input yields `true`.
const Formula* Sequence(const std::vector<const Formula*>& steps,
                        FormulaFactory* factory);

/// "Eventually f": F f.
const Formula* EventuallyHappens(const Formula* f, FormulaFactory* factory);

/// "f never happens": G ¬f.
const Formula* Never(const Formula* f, FormulaFactory* factory);

/// "f holds at every instant": G f.
const Formula* AlwaysHolds(const Formula* f, FormulaFactory* factory);

/// "After any `trigger`, `banned` never happens again (strictly later
/// occurrences; a simultaneous event is not 'after')":
///   G(trigger → X G ¬banned).
const Formula* NeverAfter(const Formula* banned, const Formula* trigger,
                          FormulaFactory* factory);

/// "Still possible after `trigger`": trigger happens and `wanted` strictly
/// later: F(trigger ∧ X F wanted).
const Formula* PossibleAfter(const Formula* wanted, const Formula* trigger,
                             FormulaFactory* factory);

/// "Whenever `trigger` happens, `response` eventually follows (same instant
/// allowed)": G(trigger → F response) — the Dwyer response pattern.
const Formula* RespondsTo(const Formula* response, const Formula* trigger,
                          FormulaFactory* factory);

/// "`first` happens before any `later`" (the paper's B operator):
///   first B later ≡ ¬(¬first U later).
const Formula* Precedes(const Formula* first, const Formula* later,
                        FormulaFactory* factory);

/// "f happens at most once": G(f → X G ¬f).
const Formula* AtMostOnce(const Formula* f, FormulaFactory* factory);

/// "f happens exactly once": F f ∧ G(f → X G ¬f).
const Formula* ExactlyOnce(const Formula* f, FormulaFactory* factory);

/// "At every instant, at most one of the given events happens" — the
/// pairwise-exclusion clauses C0 of Example 5, generated instead of written
/// out by hand.
const Formula* MutuallyExclusive(const std::vector<const Formula*>& events,
                                 FormulaFactory* factory);

/// "Once `terminal` happens nothing in `events` ever happens again
/// (strictly later)" — the C4/C5 'terminal event' clauses of Example 5.
const Formula* Terminal(const Formula* terminal,
                        const std::vector<const Formula*>& events,
                        FormulaFactory* factory);

}  // namespace ctdb::ltl::dsl
