// Reference semantics of LTL over ultimately periodic runs (Section 6.1).
//
// This evaluator is the ground-truth oracle the test suite uses to validate
// the tableau translation: for random formulas ϕ and random lasso words w,
//   w ⊨ ϕ  ⇔  BA(ϕ) accepts w.
// It is deliberately simple (per-position fixpoint iteration) rather than
// fast.

#pragma once

#include "base/run.h"
#include "ltl/formula.h"

namespace ctdb::ltl {

/// \brief Evaluates `f` on the infinite run represented by `word`, returning
/// the truth value at instant 0.
///
/// Every LTL operator (including the derived F, G, W, B and the boolean
/// connectives) is evaluated directly from its semantics; U is a least
/// fixpoint and R a greatest fixpoint over the lasso's distinct positions.
bool Evaluate(const Formula* f, const LassoWord& word);

/// \brief Evaluates `f` at distinct-position `position` of `word`
/// (0 ≤ position < word.PositionCount()).
bool EvaluateAt(const Formula* f, const LassoWord& word, size_t position);

}  // namespace ctdb::ltl
