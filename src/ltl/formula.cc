#include "ltl/formula.h"

#include <cassert>
#include <new>
#include <type_traits>

#include "util/hash.h"

namespace ctdb::ltl {

const char* OpSymbol(Op op) {
  switch (op) {
    case Op::kTrue: return "true";
    case Op::kFalse: return "false";
    case Op::kProp: return "<prop>";
    case Op::kNot: return "!";
    case Op::kAnd: return "&";
    case Op::kOr: return "|";
    case Op::kImplies: return "->";
    case Op::kIff: return "<->";
    case Op::kNext: return "X";
    case Op::kFinally: return "F";
    case Op::kGlobally: return "G";
    case Op::kUntil: return "U";
    case Op::kWeakUntil: return "W";
    case Op::kRelease: return "R";
    case Op::kBefore: return "B";
  }
  return "?";
}

bool IsUnary(Op op) {
  return op == Op::kNot || op == Op::kNext || op == Op::kFinally ||
         op == Op::kGlobally;
}

bool IsBinary(Op op) {
  return op == Op::kAnd || op == Op::kOr || op == Op::kImplies ||
         op == Op::kIff || IsBinaryTemporal(op);
}

bool IsBinaryTemporal(Op op) {
  return op == Op::kUntil || op == Op::kWeakUntil || op == Op::kRelease ||
         op == Op::kBefore;
}

size_t Formula::Size() const {
  size_t n = 1;
  if (left_ != nullptr) n += left_->Size();
  if (right_ != nullptr) n += right_->Size();
  return n;
}

void Formula::CollectEvents(Bitset* events) const {
  if (op_ == Op::kProp) {
    if (prop_ >= events->size()) events->Resize(prop_ + 1);
    events->Set(prop_);
    return;
  }
  if (left_ != nullptr) left_->CollectEvents(events);
  if (right_ != nullptr) right_->CollectEvents(events);
}

bool Formula::IsTemporal() const {
  switch (op_) {
    case Op::kNext:
    case Op::kFinally:
    case Op::kGlobally:
    case Op::kUntil:
    case Op::kWeakUntil:
    case Op::kRelease:
    case Op::kBefore:
      return true;
    default:
      break;
  }
  return (left_ != nullptr && left_->IsTemporal()) ||
         (right_ != nullptr && right_->IsTemporal());
}

namespace {

// Printing precedence, higher binds tighter. Matches the parser in parser.cc.
int Precedence(Op op) {
  switch (op) {
    case Op::kIff: return 1;
    case Op::kImplies: return 2;
    case Op::kOr: return 3;
    case Op::kAnd: return 4;
    case Op::kUntil:
    case Op::kWeakUntil:
    case Op::kRelease:
    case Op::kBefore: return 5;
    case Op::kNot:
    case Op::kNext:
    case Op::kFinally:
    case Op::kGlobally: return 6;
    default: return 7;  // atoms
  }
}

void Print(const Formula* f, const Vocabulary& vocab, int parent_prec,
           std::string* out) {
  const int prec = Precedence(f->op());
  const bool parens = prec < parent_prec;
  if (parens) *out += "(";
  switch (f->op()) {
    case Op::kTrue:
      *out += "true";
      break;
    case Op::kFalse:
      *out += "false";
      break;
    case Op::kProp:
      *out += vocab.Name(f->prop());
      break;
    case Op::kNot:
    case Op::kNext:
    case Op::kFinally:
    case Op::kGlobally: {
      *out += OpSymbol(f->op());
      if (f->op() != Op::kNot) *out += " ";
      // Unary operators chain without parens: "!F p".
      Print(f->left(), vocab, prec, out);
      break;
    }
    default: {
      // Binary operators are printed non-associatively: both operands are
      // parenthesized at the same precedence level, so "aUb U c" never prints
      // ambiguously.
      Print(f->left(), vocab, prec + 1, out);
      *out += " ";
      *out += OpSymbol(f->op());
      *out += " ";
      Print(f->right(), vocab, prec + 1, out);
      break;
    }
  }
  if (parens) *out += ")";
}

}  // namespace

std::string Formula::ToString(const Vocabulary& vocab) const {
  std::string out;
  Print(this, vocab, 0, &out);
  return out;
}

size_t FormulaFactory::NodeKeyHash::operator()(const NodeKey& k) const {
  uint64_t h = static_cast<uint64_t>(k.op);
  h = HashCombine(h, k.prop);
  h = HashCombine(h, reinterpret_cast<uintptr_t>(k.left));
  h = HashCombine(h, reinterpret_cast<uintptr_t>(k.right));
  return static_cast<size_t>(h);
}

FormulaFactory::FormulaFactory() {
  true_ = Intern(Op::kTrue, 0, nullptr, nullptr);
  false_ = Intern(Op::kFalse, 0, nullptr, nullptr);
}

const Formula* FormulaFactory::Intern(Op op, EventId prop, const Formula* left,
                                      const Formula* right) {
  const NodeKey key{op, prop, left, right};
  auto it = interned_.find(key);
  if (it != interned_.end()) return it->second;
  static_assert(std::is_trivially_destructible_v<Formula>,
                "arena-placed nodes are never destroyed");
  void* mem = arena_.Allocate(sizeof(Formula), alignof(Formula));
  const Formula* node =
      new (mem) Formula(op, prop, left, right,
                        static_cast<uint32_t>(node_count_++));
  interned_.emplace(key, node);
  return node;
}

const Formula* FormulaFactory::Prop(EventId event) {
  return Intern(Op::kProp, event, nullptr, nullptr);
}

const Formula* FormulaFactory::Not(const Formula* f) {
  if (f == true_) return false_;
  if (f == false_) return true_;
  if (f->op() == Op::kNot) return f->left();
  return Intern(Op::kNot, 0, f, nullptr);
}

const Formula* FormulaFactory::And(const Formula* a, const Formula* b) {
  if (a == true_) return b;
  if (b == true_) return a;
  if (a == false_ || b == false_) return false_;
  if (a == b) return a;
  return Intern(Op::kAnd, 0, a, b);
}

const Formula* FormulaFactory::Or(const Formula* a, const Formula* b) {
  if (a == false_) return b;
  if (b == false_) return a;
  if (a == true_ || b == true_) return true_;
  if (a == b) return a;
  return Intern(Op::kOr, 0, a, b);
}

const Formula* FormulaFactory::Implies(const Formula* a, const Formula* b) {
  if (a == true_) return b;
  if (a == false_) return true_;
  if (b == true_) return true_;
  return Intern(Op::kImplies, 0, a, b);
}

const Formula* FormulaFactory::Iff(const Formula* a, const Formula* b) {
  if (a == b) return true_;
  return Intern(Op::kIff, 0, a, b);
}

const Formula* FormulaFactory::Next(const Formula* f) {
  if (f == true_) return true_;
  if (f == false_) return false_;
  return Intern(Op::kNext, 0, f, nullptr);
}

const Formula* FormulaFactory::Finally(const Formula* f) {
  if (f == true_) return true_;
  if (f == false_) return false_;
  if (f->op() == Op::kFinally) return f;  // FFp = Fp
  return Intern(Op::kFinally, 0, f, nullptr);
}

const Formula* FormulaFactory::Globally(const Formula* f) {
  if (f == true_) return true_;
  if (f == false_) return false_;
  if (f->op() == Op::kGlobally) return f;  // GGp = Gp
  return Intern(Op::kGlobally, 0, f, nullptr);
}

const Formula* FormulaFactory::Until(const Formula* a, const Formula* b) {
  if (b == true_) return true_;
  if (b == false_) return false_;
  if (a == false_) return b;  // false U b = b
  if (a == b) return b;
  // Note: true U b is *not* folded to F b, so NNF output stays within
  // {∧, ∨, X, U, R} (see rewriter.h).
  return Intern(Op::kUntil, 0, a, b);
}

const Formula* FormulaFactory::WeakUntil(const Formula* a, const Formula* b) {
  if (b == true_) return true_;
  if (a == true_) return true_;
  if (b == false_) return Globally(a);
  if (a == false_) return b;
  return Intern(Op::kWeakUntil, 0, a, b);
}

const Formula* FormulaFactory::Release(const Formula* a, const Formula* b) {
  if (b == true_) return true_;
  if (b == false_) return false_;
  if (a == true_) return b;  // true R b = b
  if (a == b) return b;
  // false R b is *not* folded to G b (same NNF-purity reason as Until).
  return Intern(Op::kRelease, 0, a, b);
}

const Formula* FormulaFactory::Before(const Formula* a, const Formula* b) {
  // pBq ≡ ¬(¬p U q): keep the B node for faithful printing; constant-fold
  // the trivial cases through that identity.
  if (b == false_) return true_;     // ¬(¬p U false) = ¬false = true
  if (a == true_) {
    // true B q ≡ ¬(false U q) ≡ ¬q  -- false U q = q.
    return Not(b);
  }
  return Intern(Op::kBefore, 0, a, b);
}

const Formula* FormulaFactory::AndAll(const std::vector<const Formula*>& fs) {
  const Formula* acc = true_;
  for (const Formula* f : fs) acc = And(acc, f);
  return acc;
}

const Formula* FormulaFactory::OrAll(const std::vector<const Formula*>& fs) {
  const Formula* acc = false_;
  for (const Formula* f : fs) acc = Or(acc, f);
  return acc;
}

const Formula* FormulaFactory::Make(Op op, const Formula* left,
                                    const Formula* right) {
  switch (op) {
    case Op::kTrue: return true_;
    case Op::kFalse: return false_;
    case Op::kNot: return Not(left);
    case Op::kAnd: return And(left, right);
    case Op::kOr: return Or(left, right);
    case Op::kImplies: return Implies(left, right);
    case Op::kIff: return Iff(left, right);
    case Op::kNext: return Next(left);
    case Op::kFinally: return Finally(left);
    case Op::kGlobally: return Globally(left);
    case Op::kUntil: return Until(left, right);
    case Op::kWeakUntil: return WeakUntil(left, right);
    case Op::kRelease: return Release(left, right);
    case Op::kBefore: return Before(left, right);
    case Op::kProp:
      assert(false && "use Prop(event)");
      break;
  }
  return true_;
}

}  // namespace ctdb::ltl
