#include "ltl/patterns.h"

#include <cassert>

namespace ctdb::ltl {

const char* PatternBehaviorName(PatternBehavior b) {
  switch (b) {
    case PatternBehavior::kAbsence: return "absence";
    case PatternBehavior::kExistence: return "existence";
    case PatternBehavior::kUniversality: return "universality";
    case PatternBehavior::kPrecedence: return "precedence";
    case PatternBehavior::kResponse: return "response";
  }
  return "?";
}

const char* PatternScopeName(PatternScope s) {
  switch (s) {
    case PatternScope::kGlobal: return "global";
    case PatternScope::kBefore: return "before";
    case PatternScope::kAfter: return "after";
    case PatternScope::kBetween: return "between";
  }
  return "?";
}

int PatternArity(PatternBehavior behavior, PatternScope scope) {
  int n = 1;  // p
  if (behavior == PatternBehavior::kPrecedence ||
      behavior == PatternBehavior::kResponse) {
    ++n;  // s
  }
  switch (scope) {
    case PatternScope::kGlobal: break;
    case PatternScope::kBefore: ++n; break;   // r
    case PatternScope::kAfter: ++n; break;    // q
    case PatternScope::kBetween: n += 2; break;  // q, r
  }
  return n;
}

const Formula* MakePattern(PatternBehavior behavior, PatternScope scope,
                           const Formula* p, const Formula* s,
                           const Formula* q, const Formula* r,
                           FormulaFactory* fac) {
  switch (behavior) {
    case PatternBehavior::kAbsence:
      switch (scope) {
        case PatternScope::kGlobal:
          // G(¬p)
          return fac->Globally(fac->Not(p));
        case PatternScope::kBefore:
          // Fr → (¬p U r)
          return fac->Implies(fac->Finally(r), fac->Until(fac->Not(p), r));
        case PatternScope::kAfter:
          // G(q → G(¬p))
          return fac->Globally(fac->Implies(q, fac->Globally(fac->Not(p))));
        case PatternScope::kBetween:
          // G((q ∧ ¬r ∧ Fr) → (¬p U r))
          return fac->Globally(fac->Implies(
              fac->And(fac->And(q, fac->Not(r)), fac->Finally(r)),
              fac->Until(fac->Not(p), r)));
      }
      break;
    case PatternBehavior::kExistence:
      switch (scope) {
        case PatternScope::kGlobal:
          // F p
          return fac->Finally(p);
        case PatternScope::kBefore:
          // ¬r W (p ∧ ¬r)
          return fac->WeakUntil(fac->Not(r), fac->And(p, fac->Not(r)));
        case PatternScope::kAfter:
          // G(¬q) ∨ F(q ∧ F p)
          return fac->Or(fac->Globally(fac->Not(q)),
                         fac->Finally(fac->And(q, fac->Finally(p))));
        case PatternScope::kBetween:
          // G(q ∧ ¬r → (¬r W (p ∧ ¬r)))
          return fac->Globally(fac->Implies(
              fac->And(q, fac->Not(r)),
              fac->WeakUntil(fac->Not(r), fac->And(p, fac->Not(r)))));
      }
      break;
    case PatternBehavior::kUniversality:
      switch (scope) {
        case PatternScope::kGlobal:
          // G p
          return fac->Globally(p);
        case PatternScope::kBefore:
          // Fr → (p U r)
          return fac->Implies(fac->Finally(r), fac->Until(p, r));
        case PatternScope::kAfter:
          // G(q → G p)   [original form of [8]; the paper's Table 3 row is a
          // transcription typo of the Between row]
          return fac->Globally(fac->Implies(q, fac->Globally(p)));
        case PatternScope::kBetween:
          // G((q ∧ ¬r ∧ Fr) → (p U r))
          return fac->Globally(fac->Implies(
              fac->And(fac->And(q, fac->Not(r)), fac->Finally(r)),
              fac->Until(p, r)));
      }
      break;
    case PatternBehavior::kPrecedence:
      switch (scope) {
        case PatternScope::kGlobal:
          // Fp → (¬p U (s ∨ G(¬p)))
          return fac->Implies(
              fac->Finally(p),
              fac->Until(fac->Not(p),
                         fac->Or(s, fac->Globally(fac->Not(p)))));
        case PatternScope::kBefore:
          // Fr → (¬p U (s ∨ r))
          return fac->Implies(fac->Finally(r),
                              fac->Until(fac->Not(p), fac->Or(s, r)));
        case PatternScope::kAfter:
          // G(¬q) ∨ F(q ∧ (¬p U (s ∨ G(¬p))))
          return fac->Or(
              fac->Globally(fac->Not(q)),
              fac->Finally(fac->And(
                  q, fac->Until(fac->Not(p),
                                fac->Or(s, fac->Globally(fac->Not(p)))))));
        case PatternScope::kBetween:
          // G((q ∧ ¬r ∧ Fr) → (¬p U (s ∨ r)))
          return fac->Globally(fac->Implies(
              fac->And(fac->And(q, fac->Not(r)), fac->Finally(r)),
              fac->Until(fac->Not(p), fac->Or(s, r))));
      }
      break;
    case PatternBehavior::kResponse:
      switch (scope) {
        case PatternScope::kGlobal:
          // G(p → F s)
          return fac->Globally(fac->Implies(p, fac->Finally(s)));
        case PatternScope::kBefore:
          // Fr → (p → (¬r U (s ∧ ¬r))) U r
          return fac->Implies(
              fac->Finally(r),
              fac->Until(fac->Implies(p, fac->Until(fac->Not(r),
                                                    fac->And(s, fac->Not(r)))),
                         r));
        case PatternScope::kAfter:
          // G(q → G(p → F s))
          return fac->Globally(fac->Implies(
              q, fac->Globally(fac->Implies(p, fac->Finally(s)))));
        case PatternScope::kBetween:
          // G((q ∧ ¬r ∧ Fr) → (p → (¬r U (s ∧ ¬r))) U r)
          return fac->Globally(fac->Implies(
              fac->And(fac->And(q, fac->Not(r)), fac->Finally(r)),
              fac->Until(fac->Implies(p, fac->Until(fac->Not(r),
                                                    fac->And(s, fac->Not(r)))),
                         r)));
      }
      break;
  }
  assert(false && "unhandled pattern");
  return fac->True();
}

PatternFrequencies PatternFrequencies::Survey() {
  PatternFrequencies f;
  // Matched-specification counts from Dwyer, Avrunin & Corbett [8]
  // (555 surveyed specs; the 5 base behaviors cover ~92%). Indexed by
  // PatternBehavior: absence, existence, universality, precedence, response.
  f.behavior = {85.0, 27.0, 119.0, 26.0, 245.0};
  // Scope counts, indexed by PatternScope: global, before, after, between
  // ("after-until" folded into between, as the paper uses four scopes).
  f.scope = {423.0, 10.0, 117.0, 45.0};
  return f;
}

const Formula* MakePrecedenceChain(const Formula* s, const Formula* t,
                                   const Formula* p, FormulaFactory* fac) {
  // F p → (¬p U (s ∧ ¬p ∧ X(¬p U t))).
  const Formula* np = fac->Not(p);
  return fac->Implies(
      fac->Finally(p),
      fac->Until(np, fac->And(fac->And(s, np),
                              fac->Next(fac->Until(np, t)))));
}

const Formula* MakeResponseChain(const Formula* p, const Formula* s,
                                 const Formula* t, FormulaFactory* fac) {
  // G(p → F(s ∧ X F t)).
  return fac->Globally(fac->Implies(
      p, fac->Finally(fac->And(s, fac->Next(fac->Finally(t))))));
}

const Formula* MakeBoundedExistence(const Formula* p, int k,
                                    FormulaFactory* fac) {
  assert(k >= 0);
  // "p occurs at most k times": nested  ¬p W (p ∧ ¬p W (...))  unrolling from
  // Dwyer et al.; we use the equivalent  G-free form built from U/W:
  //   at_most(0) = G ¬p
  //   at_most(k) = ¬p W (p ∧ X at_most(k-1))
  if (k == 0) return fac->Globally(fac->Not(p));
  const Formula* inner = MakeBoundedExistence(p, k - 1, fac);
  return fac->WeakUntil(fac->Not(p),
                        fac->And(p, fac->Next(inner)));
}

}  // namespace ctdb::ltl
