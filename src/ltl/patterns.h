// The Dwyer–Avrunin–Corbett property-specification patterns (paper §7.2,
// Tables 1 and 3) used to generate realistic contract and query clauses.

#pragma once

#include <string>
#include <vector>

#include "ltl/formula.h"

namespace ctdb::ltl {

/// The five pattern behaviors the paper's generator uses (§7.2).
enum class PatternBehavior : uint8_t {
  kAbsence,       ///< p never occurs in the scope.
  kExistence,     ///< p occurs within the scope.
  kUniversality,  ///< p holds throughout the scope.
  kPrecedence,    ///< s precedes p within the scope.
  kResponse,      ///< s follows p within the scope.
};

/// The four scopes of §7.2.
enum class PatternScope : uint8_t {
  kGlobal,   ///< the whole timeline
  kBefore,   ///< up to event r
  kAfter,    ///< after event q
  kBetween,  ///< between events q and r
};

const char* PatternBehaviorName(PatternBehavior b);
const char* PatternScopeName(PatternScope s);

/// Number of event parameters a (behavior, scope) combination consumes:
/// 1 for p (+1 for s on precedence/response), +1 for r (before), +1 for q
/// (after), +2 for q and r (between).
int PatternArity(PatternBehavior behavior, PatternScope scope);

/// \brief Instantiates the LTL formula of Table 3 for the given behavior and
/// scope over event propositions p, s (behavior events) and q, r (scope
/// delimiters). Unused parameters are ignored.
///
/// Two rows of the paper's Table 3 contain transcription typos
/// (universality/after and response/between); this implementation uses the
/// original formulas from Dwyer et al. [8], which the surrounding rows match.
const Formula* MakePattern(PatternBehavior behavior, PatternScope scope,
                           const Formula* p, const Formula* s,
                           const Formula* q, const Formula* r,
                           FormulaFactory* factory);

/// \brief Survey frequencies from Dwyer et al. [8] (555 surveyed
/// specifications), restricted to the 5 behaviors / 4 scopes the paper's
/// generator samples from. Rows sum to the behavior's matched-spec count.
struct PatternFrequencies {
  /// Relative weight of each behavior, indexed by PatternBehavior.
  std::vector<double> behavior;
  /// Relative weight of each scope, indexed by PatternScope.
  std::vector<double> scope;

  /// The published distribution.
  static PatternFrequencies Survey();
};

/// Extension (a "variation" noted in §7.2): bounded existence — p occurs at
/// most `k` times in the global scope.
const Formula* MakeBoundedExistence(const Formula* p, int k,
                                    FormulaFactory* factory);

/// Extension: the Dwyer chain patterns (global scope) covering most of the
/// surveyed specifications beyond the five base behaviors.
/// Precedence chain (2 cause, 1 effect): p occurs only after s followed by t:
///   F p → (¬p U (s ∧ ¬p ∧ X(¬p U t))).
const Formula* MakePrecedenceChain(const Formula* s, const Formula* t,
                                   const Formula* p, FormulaFactory* factory);

/// Response chain (1 stimulus, 2 responses): every p is eventually followed
/// by s and then (strictly later) t:
///   G(p → F(s ∧ X F t)).
const Formula* MakeResponseChain(const Formula* p, const Formula* s,
                                 const Formula* t, FormulaFactory* factory);

}  // namespace ctdb::ltl
