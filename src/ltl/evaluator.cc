#include "ltl/evaluator.h"

#include <cassert>
#include <unordered_map>
#include <vector>

namespace ctdb::ltl {
namespace {

/// Evaluates each subformula to a truth vector over the lasso's distinct
/// positions, memoized by node pointer (hash-consing makes pointers unique
/// per structure).
class Evaluator {
 public:
  explicit Evaluator(const LassoWord& word) : word_(word), n_(word.PositionCount()) {
    assert(word.Valid());
  }

  const std::vector<bool>& Eval(const Formula* f) {
    auto it = memo_.find(f);
    if (it != memo_.end()) return it->second;
    std::vector<bool> v = EvalImpl(f);
    return memo_.emplace(f, std::move(v)).first->second;
  }

 private:
  std::vector<bool> EvalImpl(const Formula* f) {
    std::vector<bool> v(n_);
    switch (f->op()) {
      case Op::kTrue:
        v.assign(n_, true);
        break;
      case Op::kFalse:
        v.assign(n_, false);
        break;
      case Op::kProp:
        for (size_t i = 0; i < n_; ++i) v[i] = word_.At(i).Test(f->prop());
        break;
      case Op::kNot: {
        const auto& a = Eval(f->left());
        for (size_t i = 0; i < n_; ++i) v[i] = !a[i];
        break;
      }
      case Op::kAnd: {
        const auto& a = Eval(f->left());
        const auto& b = Eval(f->right());
        for (size_t i = 0; i < n_; ++i) v[i] = a[i] && b[i];
        break;
      }
      case Op::kOr: {
        const auto& a = Eval(f->left());
        const auto& b = Eval(f->right());
        for (size_t i = 0; i < n_; ++i) v[i] = a[i] || b[i];
        break;
      }
      case Op::kImplies: {
        const auto& a = Eval(f->left());
        const auto& b = Eval(f->right());
        for (size_t i = 0; i < n_; ++i) v[i] = !a[i] || b[i];
        break;
      }
      case Op::kIff: {
        const auto& a = Eval(f->left());
        const auto& b = Eval(f->right());
        for (size_t i = 0; i < n_; ++i) v[i] = a[i] == b[i];
        break;
      }
      case Op::kNext: {
        const auto& a = Eval(f->left());
        for (size_t i = 0; i < n_; ++i) v[i] = a[word_.Successor(i)];
        break;
      }
      case Op::kFinally: {
        // Least fixpoint of v[i] = a[i] ∨ v[succ(i)].
        const auto& a = Eval(f->left());
        v = Lfp(a, /*guard=*/std::vector<bool>(n_, true));
        break;
      }
      case Op::kGlobally: {
        // Greatest fixpoint of v[i] = a[i] ∧ v[succ(i)].
        const auto& a = Eval(f->left());
        v = Gfp(std::vector<bool>(n_, false), a);
        break;
      }
      case Op::kUntil: {
        const auto& a = Eval(f->left());
        const auto& b = Eval(f->right());
        v = Lfp(b, a);
        break;
      }
      case Op::kRelease: {
        // a R b: gfp of v[i] = b[i] ∧ (a[i] ∨ v[succ(i)]).
        const auto& a = Eval(f->left());
        const auto& b = Eval(f->right());
        v = Gfp(a, b);
        break;
      }
      case Op::kWeakUntil: {
        // a W b ≡ (a U b) ∨ G a.
        const auto& a = Eval(f->left());
        const auto& b = Eval(f->right());
        const std::vector<bool> until = Lfp(b, a);
        const std::vector<bool> always =
            Gfp(std::vector<bool>(n_, false), a);
        for (size_t i = 0; i < n_; ++i) v[i] = until[i] || always[i];
        break;
      }
      case Op::kBefore: {
        // a B b ≡ ¬(¬a U b).
        const auto& a = Eval(f->left());
        const auto& b = Eval(f->right());
        std::vector<bool> na(n_);
        for (size_t i = 0; i < n_; ++i) na[i] = !a[i];
        const std::vector<bool> until = Lfp(b, na);
        for (size_t i = 0; i < n_; ++i) v[i] = !until[i];
        break;
      }
    }
    return v;
  }

  /// Least fixpoint of v[i] = base[i] ∨ (guard[i] ∧ v[succ(i)])
  /// — the semantics of guard U base.
  std::vector<bool> Lfp(const std::vector<bool>& base,
                        const std::vector<bool>& guard) {
    std::vector<bool> v = base;
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t ii = n_; ii > 0; --ii) {
        const size_t i = ii - 1;
        const bool next = base[i] || (guard[i] && v[word_.Successor(i)]);
        if (next && !v[i]) {
          v[i] = true;
          changed = true;
        }
      }
    }
    return v;
  }

  /// Greatest fixpoint of v[i] = hold[i] ∧ (release[i] ∨ v[succ(i)])
  /// — the semantics of release R hold.
  std::vector<bool> Gfp(const std::vector<bool>& release,
                        const std::vector<bool>& hold) {
    std::vector<bool> v(n_, true);
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t ii = n_; ii > 0; --ii) {
        const size_t i = ii - 1;
        const bool next = hold[i] && (release[i] || v[word_.Successor(i)]);
        if (!next && v[i]) {
          v[i] = false;
          changed = true;
        }
      }
    }
    return v;
  }

  const LassoWord& word_;
  const size_t n_;
  std::unordered_map<const Formula*, std::vector<bool>> memo_;
};

}  // namespace

bool EvaluateAt(const Formula* f, const LassoWord& word, size_t position) {
  assert(position < word.PositionCount());
  Evaluator ev(word);
  return ev.Eval(f)[position];
}

bool Evaluate(const Formula* f, const LassoWord& word) {
  return EvaluateAt(f, word, 0);
}

}  // namespace ctdb::ltl
