#include "ltl/query_dsl.h"

namespace ctdb::ltl::dsl {

const Formula* Sequence(const std::vector<const Formula*>& steps,
                        FormulaFactory* fac) {
  if (steps.empty()) return fac->True();
  // Build from the right: F(s1 ∧ X F(s2 ∧ X F(...))).
  const Formula* chain = steps.back();
  for (size_t i = steps.size() - 1; i > 0; --i) {
    chain = fac->And(steps[i - 1], fac->Next(fac->Finally(chain)));
  }
  return fac->Finally(chain);
}

const Formula* EventuallyHappens(const Formula* f, FormulaFactory* fac) {
  return fac->Finally(f);
}

const Formula* Never(const Formula* f, FormulaFactory* fac) {
  return fac->Globally(fac->Not(f));
}

const Formula* AlwaysHolds(const Formula* f, FormulaFactory* fac) {
  return fac->Globally(f);
}

const Formula* NeverAfter(const Formula* banned, const Formula* trigger,
                          FormulaFactory* fac) {
  return fac->Globally(fac->Implies(
      trigger, fac->Next(fac->Globally(fac->Not(banned)))));
}

const Formula* PossibleAfter(const Formula* wanted, const Formula* trigger,
                             FormulaFactory* fac) {
  return fac->Finally(
      fac->And(trigger, fac->Next(fac->Finally(wanted))));
}

const Formula* RespondsTo(const Formula* response, const Formula* trigger,
                          FormulaFactory* fac) {
  return fac->Globally(fac->Implies(trigger, fac->Finally(response)));
}

const Formula* Precedes(const Formula* first, const Formula* later,
                        FormulaFactory* fac) {
  return fac->Before(first, later);
}

const Formula* AtMostOnce(const Formula* f, FormulaFactory* fac) {
  return fac->Globally(
      fac->Implies(f, fac->Next(fac->Globally(fac->Not(f)))));
}

const Formula* ExactlyOnce(const Formula* f, FormulaFactory* fac) {
  return fac->And(fac->Finally(f), AtMostOnce(f, fac));
}

const Formula* MutuallyExclusive(const std::vector<const Formula*>& events,
                                 FormulaFactory* fac) {
  const Formula* all = fac->True();
  for (size_t i = 0; i < events.size(); ++i) {
    const Formula* others = fac->True();
    for (size_t j = 0; j < events.size(); ++j) {
      if (j == i) continue;
      others = fac->And(others, fac->Not(events[j]));
    }
    all = fac->And(all, fac->Globally(fac->Implies(events[i], others)));
  }
  return all;
}

const Formula* Terminal(const Formula* terminal,
                        const std::vector<const Formula*>& events,
                        FormulaFactory* fac) {
  const Formula* none = fac->True();
  for (const Formula* e : events) {
    none = fac->And(none, fac->Not(e));
  }
  return fac->Globally(fac->Implies(
      terminal, fac->Next(fac->Globally(none))));
}

}  // namespace ctdb::ltl::dsl
