// Linear Temporal Logic formulas (Section 2.2 / 6.1 of the paper).
//
// Formulas are immutable, hash-consed nodes owned by a FormulaFactory:
// structurally equal formulas are the same pointer, so equality checks are
// O(1) and the tableau construction can key sets of formulas by pointer.
//
// Operator glossary (paper Section 2.2):
//   Xp   next          Fp  eventually      Gp  globally
//   pUq  until         pWq weak until      pRq release (dual of U)
//   pBq  before        — defined in the paper as  pBq ≡ ¬(¬p U q)

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/vocabulary.h"
#include "util/arena.h"
#include "util/bitset.h"

namespace ctdb::ltl {

/// LTL operator kinds.
enum class Op : uint8_t {
  kTrue,
  kFalse,
  kProp,       ///< An event variable from the vocabulary.
  kNot,
  kAnd,
  kOr,
  kImplies,
  kIff,
  kNext,       ///< X
  kFinally,    ///< F
  kGlobally,   ///< G
  kUntil,      ///< U
  kWeakUntil,  ///< W
  kRelease,    ///< R
  kBefore,     ///< B (paper-specific; pBq ≡ ¬(¬pUq))
};

/// Human-readable operator symbol ("U", "&", ...).
const char* OpSymbol(Op op);

/// True for X, F, G, and unary ¬.
bool IsUnary(Op op);
/// True for ∧, ∨, →, ↔, U, W, R, B.
bool IsBinary(Op op);
/// True for U, W, R, B (binary temporal operators).
bool IsBinaryTemporal(Op op);

class FormulaFactory;

/// \brief An immutable LTL formula node. Obtain instances only through a
/// FormulaFactory; compare with pointer equality.
class Formula {
 public:
  Op op() const { return op_; }
  /// Event id; valid only when op() == kProp.
  EventId prop() const { return prop_; }
  /// Operand of a unary node / left operand of a binary node.
  const Formula* left() const { return left_; }
  /// Right operand of a binary node.
  const Formula* right() const { return right_; }

  /// Monotonically increasing id within the owning factory; gives a stable
  /// total order for canonical printing and set keys.
  uint32_t id() const { return id_; }

  /// Number of AST nodes.
  size_t Size() const;

  /// Marks in `events` every vocabulary event cited in the formula. The
  /// bitset is grown as needed.
  void CollectEvents(Bitset* events) const;

  /// True iff the formula contains a temporal operator (X F G U W R B).
  bool IsTemporal() const;

  /// Renders with minimal parentheses, e.g. "G(dateChange -> !F refund)".
  std::string ToString(const Vocabulary& vocab) const;

 private:
  friend class FormulaFactory;
  Formula(Op op, EventId prop, const Formula* left, const Formula* right,
          uint32_t id)
      : op_(op), prop_(prop), left_(left), right_(right), id_(id) {}

  Op op_;
  EventId prop_;
  const Formula* left_;
  const Formula* right_;
  uint32_t id_;
};

/// \brief Arena + hash-consing table for Formula nodes.
///
/// The factory applies only identity-preserving local canonicalizations
/// (¬¬p → p, conjunction/disjunction with constants, idempotence); deeper
/// rewriting lives in rewriter.h.
class FormulaFactory {
 public:
  FormulaFactory();
  FormulaFactory(const FormulaFactory&) = delete;
  FormulaFactory& operator=(const FormulaFactory&) = delete;

  const Formula* True() { return true_; }
  const Formula* False() { return false_; }
  const Formula* Prop(EventId event);

  const Formula* Not(const Formula* f);
  const Formula* And(const Formula* a, const Formula* b);
  const Formula* Or(const Formula* a, const Formula* b);
  const Formula* Implies(const Formula* a, const Formula* b);
  const Formula* Iff(const Formula* a, const Formula* b);
  const Formula* Next(const Formula* f);
  const Formula* Finally(const Formula* f);
  const Formula* Globally(const Formula* f);
  const Formula* Until(const Formula* a, const Formula* b);
  const Formula* WeakUntil(const Formula* a, const Formula* b);
  const Formula* Release(const Formula* a, const Formula* b);
  const Formula* Before(const Formula* a, const Formula* b);

  /// n-ary conjunction of `fs` (True for empty input).
  const Formula* AndAll(const std::vector<const Formula*>& fs);
  /// n-ary disjunction of `fs` (False for empty input).
  const Formula* OrAll(const std::vector<const Formula*>& fs);

  /// Generic construction by op kind.
  const Formula* Make(Op op, const Formula* left, const Formula* right);

  /// Number of distinct nodes created (diagnostics).
  size_t NodeCount() const { return node_count_; }

 private:
  const Formula* Intern(Op op, EventId prop, const Formula* left,
                        const Formula* right);

  struct NodeKey {
    Op op;
    EventId prop;
    const Formula* left;
    const Formula* right;
    bool operator==(const NodeKey& other) const {
      return op == other.op && prop == other.prop && left == other.left &&
             right == other.right;
    }
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey& k) const;
  };

  /// Nodes live in a bump arena (util/arena.h): formula construction is the
  /// first stage of every translation, and arena placement makes each intern
  /// a pointer bump instead of a container allocation. Formula is trivially
  /// destructible, so releasing the arena wholesale is safe.
  util::Arena arena_;
  size_t node_count_ = 0;
  std::unordered_map<NodeKey, const Formula*, NodeKeyHash> interned_;
  const Formula* true_;
  const Formula* false_;
};

}  // namespace ctdb::ltl
