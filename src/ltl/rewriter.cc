#include "ltl/rewriter.h"

#include <cassert>
#include <unordered_map>

namespace ctdb::ltl {
namespace {

/// Memoized NNF driver. `negate` tracks the polarity with which the node is
/// being rewritten.
class NnfRewriter {
 public:
  explicit NnfRewriter(FormulaFactory* factory) : factory_(factory) {}

  const Formula* Rewrite(const Formula* f, bool negate) {
    const Key key{f, negate};
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    const Formula* result = RewriteImpl(f, negate);
    memo_.emplace(key, result);
    return result;
  }

 private:
  const Formula* RewriteImpl(const Formula* f, bool negate) {
    FormulaFactory& fac = *factory_;
    switch (f->op()) {
      case Op::kTrue:
        return negate ? fac.False() : fac.True();
      case Op::kFalse:
        return negate ? fac.True() : fac.False();
      case Op::kProp: {
        // Re-intern rather than reuse `f`: the input may live in a different
        // factory (snapshot queries translate with a call-local one), and
        // every node of the result must be owned by `factory_` so the
        // pointer-identity invariants downstream passes rely on hold.
        const Formula* prop = fac.Prop(f->prop());
        return negate ? fac.Not(prop) : prop;
      }
      case Op::kNot:
        return Rewrite(f->left(), !negate);
      case Op::kAnd:
        return negate ? fac.Or(Rewrite(f->left(), true),
                               Rewrite(f->right(), true))
                      : fac.And(Rewrite(f->left(), false),
                                Rewrite(f->right(), false));
      case Op::kOr:
        return negate ? fac.And(Rewrite(f->left(), true),
                                Rewrite(f->right(), true))
                      : fac.Or(Rewrite(f->left(), false),
                               Rewrite(f->right(), false));
      case Op::kImplies:
        // a -> b  ≡  ¬a ∨ b
        return negate ? fac.And(Rewrite(f->left(), false),
                                Rewrite(f->right(), true))
                      : fac.Or(Rewrite(f->left(), true),
                               Rewrite(f->right(), false));
      case Op::kIff: {
        // a <-> b ≡ (a ∧ b) ∨ (¬a ∧ ¬b); negated: (a ∧ ¬b) ∨ (¬a ∧ b).
        const Formula* a_pos = Rewrite(f->left(), false);
        const Formula* a_neg = Rewrite(f->left(), true);
        const Formula* b_pos = Rewrite(f->right(), false);
        const Formula* b_neg = Rewrite(f->right(), true);
        if (negate) {
          return fac.Or(fac.And(a_pos, b_neg), fac.And(a_neg, b_pos));
        }
        return fac.Or(fac.And(a_pos, b_pos), fac.And(a_neg, b_neg));
      }
      case Op::kNext:
        // ¬X a ≡ X ¬a (over infinite runs).
        return fac.Next(Rewrite(f->left(), negate));
      case Op::kFinally:
        // F a ≡ true U a; ¬F a ≡ G ¬a ≡ false R ¬a.
        return negate ? fac.Release(fac.False(), Rewrite(f->left(), true))
                      : fac.Until(fac.True(), Rewrite(f->left(), false));
      case Op::kGlobally:
        // G a ≡ false R a; ¬G a ≡ F ¬a ≡ true U ¬a.
        return negate ? fac.Until(fac.True(), Rewrite(f->left(), true))
                      : fac.Release(fac.False(), Rewrite(f->left(), false));
      case Op::kUntil:
        // ¬(a U b) ≡ ¬a R ¬b.
        return negate ? fac.Release(Rewrite(f->left(), true),
                                    Rewrite(f->right(), true))
                      : fac.Until(Rewrite(f->left(), false),
                                  Rewrite(f->right(), false));
      case Op::kRelease:
        // ¬(a R b) ≡ ¬a U ¬b.
        return negate ? fac.Until(Rewrite(f->left(), true),
                                  Rewrite(f->right(), true))
                      : fac.Release(Rewrite(f->left(), false),
                                    Rewrite(f->right(), false));
      case Op::kWeakUntil: {
        // a W b ≡ b R (a ∨ b); ¬(a W b) ≡ ¬b U (¬a ∧ ¬b).
        if (negate) {
          const Formula* na = Rewrite(f->left(), true);
          const Formula* nb = Rewrite(f->right(), true);
          return fac.Until(nb, fac.And(na, nb));
        }
        const Formula* a = Rewrite(f->left(), false);
        const Formula* b = Rewrite(f->right(), false);
        return fac.Release(b, fac.Or(a, b));
      }
      case Op::kBefore: {
        // a B b ≡ ¬(¬a U b) ≡ a R ¬b; ¬(a B b) ≡ ¬a U b.
        if (negate) {
          return fac.Until(Rewrite(f->left(), true),
                           Rewrite(f->right(), false));
        }
        return fac.Release(Rewrite(f->left(), false),
                           Rewrite(f->right(), true));
      }
    }
    assert(false && "unhandled op");
    return fac.True();
  }

  struct Key {
    const Formula* f;
    bool negate;
    bool operator==(const Key& other) const {
      return f == other.f && negate == other.negate;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<const void*>()(k.f) ^ (k.negate ? 0x9e3779b9u : 0u);
    }
  };

  FormulaFactory* factory_;
  std::unordered_map<Key, const Formula*, KeyHash> memo_;
};

}  // namespace

const Formula* ToNnf(const Formula* f, FormulaFactory* factory) {
  return NnfRewriter(factory).Rewrite(f, /*negate=*/false);
}

bool IsNnf(const Formula* f) {
  switch (f->op()) {
    case Op::kTrue:
    case Op::kFalse:
    case Op::kProp:
      return true;
    case Op::kNot:
      return f->left()->op() == Op::kProp;
    case Op::kAnd:
    case Op::kOr:
    case Op::kUntil:
    case Op::kRelease:
      return IsNnf(f->left()) && IsNnf(f->right());
    case Op::kNext:
      return IsNnf(f->left());
    default:
      return false;
  }
}

namespace {

bool IsEventually(const Formula* f) {
  return f->op() == Op::kUntil && f->left()->op() == Op::kTrue;
}

bool IsAlways(const Formula* f) {
  return f->op() == Op::kRelease && f->left()->op() == Op::kFalse;
}

class NnfSimplifier {
 public:
  explicit NnfSimplifier(FormulaFactory* factory) : factory_(factory) {}

  const Formula* Simplify(const Formula* f) {
    auto it = memo_.find(f);
    if (it != memo_.end()) return it->second;
    const Formula* result = SimplifyImpl(f);
    memo_.emplace(f, result);
    return result;
  }

 private:
  const Formula* SimplifyImpl(const Formula* f) {
    FormulaFactory& fac = *factory_;
    switch (f->op()) {
      case Op::kTrue:
      case Op::kFalse:
      case Op::kProp:
      case Op::kNot:
        return f;
      case Op::kAnd: {
        const Formula* a = Simplify(f->left());
        const Formula* b = Simplify(f->right());
        // (x R b) ∧ (x R c) → x R (b ∧ c); covers G b ∧ G c → G (b ∧ c).
        if (a->op() == Op::kRelease && b->op() == Op::kRelease &&
            a->left() == b->left()) {
          return Simplify(fac.Release(a->left(), fac.And(a->right(), b->right())));
        }
        // (b U x) ∧ (c U x) → (b ∧ c) U x.
        if (a->op() == Op::kUntil && b->op() == Op::kUntil &&
            a->right() == b->right()) {
          return Simplify(fac.Until(fac.And(a->left(), b->left()), a->right()));
        }
        // X a ∧ X b → X (a ∧ b).
        if (a->op() == Op::kNext && b->op() == Op::kNext) {
          return Simplify(fac.Next(fac.And(a->left(), b->left())));
        }
        return fac.And(a, b);
      }
      case Op::kOr: {
        const Formula* a = Simplify(f->left());
        const Formula* b = Simplify(f->right());
        // (x U b) ∨ (x U c) → x U (b ∨ c); covers F b ∨ F c → F (b ∨ c).
        if (a->op() == Op::kUntil && b->op() == Op::kUntil &&
            a->left() == b->left()) {
          return Simplify(fac.Until(a->left(), fac.Or(a->right(), b->right())));
        }
        // (b R x) ∨ (c R x) → (b ∨ c) R x.
        if (a->op() == Op::kRelease && b->op() == Op::kRelease &&
            a->right() == b->right()) {
          return Simplify(fac.Release(fac.Or(a->left(), b->left()), a->right()));
        }
        // X a ∨ X b → X (a ∨ b).
        if (a->op() == Op::kNext && b->op() == Op::kNext) {
          return Simplify(fac.Next(fac.Or(a->left(), b->left())));
        }
        return fac.Or(a, b);
      }
      case Op::kNext:
        return fac.Next(Simplify(f->left()));
      case Op::kUntil: {
        const Formula* a = Simplify(f->left());
        const Formula* b = Simplify(f->right());
        // F (a U b) → F b.
        if (a->op() == Op::kTrue && b->op() == Op::kUntil) {
          return Simplify(fac.Until(fac.True(), b->right()));
        }
        // F F b handled by factory; a U F b → F b.
        if (IsEventually(b)) return b;
        return fac.Until(a, b);
      }
      case Op::kRelease: {
        const Formula* a = Simplify(f->left());
        const Formula* b = Simplify(f->right());
        // G (a R b) → G b.
        if (a->op() == Op::kFalse && b->op() == Op::kRelease) {
          return Simplify(fac.Release(fac.False(), b->right()));
        }
        // a R G b → G b.
        if (IsAlways(b)) return b;
        return fac.Release(a, b);
      }
      default:
        // Not NNF; leave untouched.
        return f;
    }
  }

  FormulaFactory* factory_;
  std::unordered_map<const Formula*, const Formula*> memo_;
};

}  // namespace

const Formula* SimplifyNnf(const Formula* f, FormulaFactory* factory) {
  return NnfSimplifier(factory).Simplify(f);
}

const Formula* Normalize(const Formula* f, FormulaFactory* factory) {
  return SimplifyNnf(ToNnf(f, factory), factory);
}

}  // namespace ctdb::ltl
