// Formula rewriting: negation normal form and pre-translation simplification.

#pragma once

#include "ltl/formula.h"

namespace ctdb::ltl {

/// \brief Rewrites `f` into negation normal form.
///
/// The result uses only: true, false, propositions, negated propositions,
/// ∧, ∨, X, U, R. Derived operators are expanded through the standard
/// identities (F p ≡ true U p, G p ≡ false R p, p W q ≡ q R (p ∨ q)) and the
/// paper's definition p B q ≡ ¬(¬p U q) ≡ p R ¬q.
const Formula* ToNnf(const Formula* f, FormulaFactory* factory);

/// True iff `f` is in negation normal form as produced by ToNnf.
bool IsNnf(const Formula* f);

/// \brief Applies language-preserving simplification rules to an NNF formula
/// (LTL2BA-style rewriting), e.g. F(a U b) → F b, (a U c) ∨ (b U c) stays,
/// (a U b) ∨ (a U c) → a U (b ∨ c), (a R b) ∧ (a R c) → a R (b ∧ c).
///
/// Shrinking the formula before the tableau construction is the main lever
/// against the worst-case exponential BA size (Section 3.1).
const Formula* SimplifyNnf(const Formula* f, FormulaFactory* factory);

/// Convenience: ToNnf followed by SimplifyNnf.
const Formula* Normalize(const Formula* f, FormulaFactory* factory);

}  // namespace ctdb::ltl
