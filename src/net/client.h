// Blocking TCP client for the ctdb wire protocol (net/protocol.h).
//
// One Client wraps one connection. `Call` is the simple request/response
// path; `Send` + `Receive` decouple the two halves for pipelining — any
// number of requests may be written before the first response is read
// (the server answers a connection's requests in receive order, but match
// by correlation id anyway). `SendBytes` writes raw bytes, which is how
// the torture tests inject half frames and garbage.
//
// Thread safety: none — one Client per thread (the load generator opens
// one per worker).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "net/protocol.h"
#include "util/result.h"

namespace ctdb::net {

class Client {
 public:
  /// Connects (blocking) to host:port.
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Writes one request frame (blocking until fully written).
  Status Send(const Request& request);

  /// Writes raw bytes verbatim — torture-test entry point for half frames
  /// and garbage.
  Status SendBytes(std::string_view bytes);

  /// Reads one whole response frame (blocking). Unavailable when the peer
  /// closed before a full frame arrived; Corruption when it sent one that
  /// does not decode.
  Result<Response> Receive();

  /// Send + Receive. With pipelined requests in flight this returns the
  /// earliest outstanding response, not necessarily this request's.
  Result<Response> Call(const Request& request);

  /// Half-closes the write side (shutdown(SHUT_WR)) — the server sees EOF,
  /// finishes what it received and responds before closing.
  void CloseWrite();
  /// Closes the socket entirely.
  void Close();

  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string inbuf_;  ///< bytes received beyond the last returned frame
  size_t in_pos_ = 0;
};

}  // namespace ctdb::net
