// The ctdb network service: a long-running multi-client TCP server in
// front of a broker::Broker — a single DurableDatabase or a sharded
// topology (src/shard) — selected by the caller (DESIGN.md §12).
//
// Architecture: one event-loop thread multiplexes every socket with
// poll(2) — the listener, a self-pipe for cross-thread wakeups, and all
// client connections, each non-blocking. The loop does all socket reads
// and writes; request *execution* happens on the database's own
// util::ThreadPool via Submit, so a slow query never stalls I/O. Workers
// hand finished response frames back by appending to the connection's
// outbound buffer (mutex-guarded) and poking the self-pipe.
//
// Pipelining: a client may send any number of request frames back to back;
// the loop parses every complete frame out of the connection's read buffer
// and dispatches each one. Responses carry the request's correlation id.
//
// Admission control: at most ServerOptions::max_pending requests may be
// queued-or-executing at once. Past that the server load-sheds: it answers
// the overflow request immediately with Status::Unavailable — a response
// frame, never a hang — and counts net.shed.
//
// Backpressure: when a slow reader's outbound buffer exceeds
// max_outbound_bytes, the loop stops reading from (and thus stops
// accepting work from) that connection until the buffer drains below half
// the cap. Memory per connection is therefore bounded by the cap plus one
// frame.
//
// Protocol errors (bad CRC, oversized length) are unrecoverable for a
// byte stream: the server answers with one final error response frame
// (id 0) and closes the connection after flushing — other connections are
// unaffected (the torture tests hold it to that).
//
// Graceful drain (RequestDrain, Shutdown, SIGTERM in tools/ctdb_server):
// stop accepting connections, stop reading new bytes, finish every request
// already received (the WAL group-commit writer flushes as those
// registrations complete), flush every outbound buffer, then close. A
// connection that will not drain its responses is cut off after
// drain_timeout_ms so shutdown always terminates.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "net/protocol.h"
#include "util/result.h"

namespace ctdb::broker {
class Broker;
}
namespace ctdb::util {
class ThreadPool;
}

namespace ctdb::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; see Server::port()
  /// Worker threads executing requests (grows the database's shared pool).
  size_t workers = 4;
  /// Admission-control cap: requests queued-or-executing before load-shed.
  size_t max_pending = 256;
  size_t max_connections = 1024;
  /// Per-connection outbound-buffer cap before reads pause (backpressure).
  size_t max_outbound_bytes = 8u << 20;
  /// Grace period for flushing outbound buffers during drain.
  int drain_timeout_ms = 5000;
};

/// \brief Multi-client TCP front end for a Broker.
///
/// Thread safety: Start/Shutdown/RequestDrain may be called from any
/// thread; RequestDrain is async-signal-safe after Start returned (one
/// relaxed store + one write(2) on the self-pipe).
class Server {
 public:
  /// Binds, listens and starts the event loop. `db` must outlive the
  /// server. With options.port == 0 the kernel picks a free port,
  /// reported by port().
  static Result<std::unique_ptr<Server>> Start(broker::Broker* db,
                                               const ServerOptions& options = {});

  /// Shuts down (gracefully) if still running.
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (resolved when options.port was 0).
  uint16_t port() const { return port_; }

  /// Begins a graceful drain: stop accepting, stop reading, finish
  /// in-flight requests, flush, close. Returns immediately; Shutdown (or
  /// the destructor) joins. Async-signal-safe; idempotent.
  void RequestDrain();

  /// RequestDrain + join the event loop. Idempotent; returns OK once the
  /// loop exited cleanly.
  Status Shutdown();

  /// True once a drain was requested (the server no longer accepts work).
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Requests currently queued or executing (admission-control level).
  size_t pending_requests() const {
    return pending_.load(std::memory_order_acquire);
  }
  /// Currently open client connections.
  size_t connection_count() const {
    return connections_.load(std::memory_order_acquire);
  }

 private:
  struct Connection;
  class Loop;

  Server() = default;

  /// Pokes the self-pipe so a blocked poll() returns (async-signal-safe).
  void Wake();

  broker::Broker* db_ = nullptr;
  ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_ = nullptr;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<size_t> pending_{0};
  std::atomic<size_t> connections_{0};

  std::unique_ptr<Loop> loop_;
  std::thread loop_thread_;
};

/// Executes one request against the database (shared by the server workers
/// and in-process tests). Never returns a transport error: the outcome —
/// including InvalidArgument for a bad query — is encoded in the Response.
Response ExecuteRequest(broker::Broker* db, const Request& request);

}  // namespace ctdb::net
