#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ctdb::net {

namespace {

Status Errno(const char* what) {
  return Status::Unavailable(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("unparsable host " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status status = Errno("connect");
    close(fd);
    return status;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() { Close(); }

Status Client::Send(const Request& request) {
  return SendBytes(EncodeRequestFrame(request));
}

Status Client::SendBytes(std::string_view bytes) {
  if (fd_ < 0) return Status::Unavailable("client closed");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      return Errno("send");
    }
  }
  return Status::OK();
}

Result<Response> Client::Receive() {
  if (fd_ < 0) return Status::Unavailable("client closed");
  char buf[64 * 1024];
  for (;;) {
    std::string_view payload;
    size_t offset = in_pos_;
    const FrameScan scan = ScanFrame(inbuf_, &offset, &payload);
    if (scan == FrameScan::kCorrupt) {
      return Status::Corruption("invalid response frame");
    }
    if (scan == FrameScan::kFrame) {
      Response response;
      CTDB_RETURN_NOT_OK(DecodeResponsePayload(payload, &response));
      in_pos_ = offset;
      if (in_pos_ == inbuf_.size()) {
        inbuf_.clear();
        in_pos_ = 0;
      } else if (in_pos_ > (1u << 20)) {
        inbuf_.erase(0, in_pos_);
        in_pos_ = 0;
      }
      return response;
    }
    const ssize_t n = read(fd_, buf, sizeof buf);
    if (n > 0) {
      inbuf_.append(buf, static_cast<size_t>(n));
    } else if (n == 0) {
      return Status::Unavailable("connection closed by server");
    } else if (errno != EINTR) {
      return Errno("read");
    }
  }
}

Result<Response> Client::Call(const Request& request) {
  CTDB_RETURN_NOT_OK(Send(request));
  return Receive();
}

void Client::CloseWrite() {
  if (fd_ >= 0) shutdown(fd_, SHUT_WR);
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

}  // namespace ctdb::net
