#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "broker/broker.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ctdb::net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

/// Per-connection state. The event loop owns the socket and the read side;
/// the outbound buffer is shared with workers under `out_mutex`.
struct Server::Connection {
  int fd = -1;

  // --- event-loop-thread state ------------------------------------------
  std::string inbuf;
  size_t in_pos = 0;          ///< parse offset into inbuf
  bool read_closed = false;   ///< EOF seen, or reads abandoned for good
  bool close_after_flush = false;
  bool paused = false;        ///< reads paused by outbound backpressure

  // --- shared with workers ----------------------------------------------
  std::mutex out_mutex;
  std::string outbuf;         ///< bytes [out_pos, size) await the socket
  size_t out_pos = 0;
  bool dead = false;          ///< socket closed; further appends discarded
  std::atomic<size_t> in_flight{0};  ///< requests executing for this conn

  /// Appends a frame for the loop to flush. Returns false when the
  /// connection already died (the frame is dropped).
  bool Append(std::string_view frame) {
    std::lock_guard<std::mutex> lock(out_mutex);
    if (dead) return false;
    outbuf.append(frame);
    return true;
  }

  size_t PendingOut() {
    std::lock_guard<std::mutex> lock(out_mutex);
    return outbuf.size() - out_pos;
  }
};

/// The poll(2) event loop (see server.h for the architecture comment).
class Server::Loop {
 public:
  explicit Loop(Server* server) : server_(*server) {}

  void Run() {
    std::vector<pollfd> fds;
    std::vector<std::shared_ptr<Connection>> polled;
    bool drain_seen = false;
    std::chrono::steady_clock::time_point drain_deadline{};

    for (;;) {
      const bool draining = server_.draining();
      if (draining && !drain_seen) {
        drain_seen = true;
        drain_deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(
                             server_.options_.drain_timeout_ms);
        CloseListener();
      }

      ReapConnections(draining);
      if (draining) {
        if (conns_.empty()) break;
        if (std::chrono::steady_clock::now() >= drain_deadline) {
          for (auto& [fd, conn] : conns_) CloseSocket(*conn);
          conns_.clear();
          break;
        }
      }

      fds.clear();
      polled.clear();
      fds.push_back({server_.wake_read_fd_, POLLIN, 0});
      if (!draining && server_.listen_fd_ >= 0) {
        fds.push_back({server_.listen_fd_, POLLIN, 0});
      }
      const size_t first_conn = fds.size();
      for (auto& [fd, conn] : conns_) {
        short events = 0;
        if (!draining && !conn->read_closed && !conn->paused) events |= POLLIN;
        if (conn->PendingOut() > 0) events |= POLLOUT;
        if (events == 0) continue;
        fds.push_back({fd, events, 0});
        polled.push_back(conn);
      }

      const int timeout_ms = draining ? 20 : 200;
      const int n = poll(fds.data(), fds.size(), timeout_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // unrecoverable poll failure; shut down
      }

      if (fds[0].revents & POLLIN) DrainWakePipe();
      if (!draining && first_conn == 2 && (fds[1].revents & POLLIN)) {
        AcceptConnections();
      }
      for (size_t i = first_conn; i < fds.size(); ++i) {
        const auto& conn = polled[i - first_conn];
        if (conn->fd < 0) continue;  // closed by an earlier event this round
        if (fds[i].revents & (POLLOUT | POLLERR | POLLHUP)) {
          FlushConnection(*conn);
        }
        if (conn->fd >= 0 && (fds[i].revents & (POLLIN | POLLHUP))) {
          HandleReadable(conn);
        }
      }
      // Workers appended responses since the last poll; flush eagerly so a
      // response never waits for the next POLLOUT round trip.
      for (auto& [fd, conn] : conns_) {
        if (conn->PendingOut() > 0) FlushConnection(*conn);
        UpdateBackpressure(*conn);
      }
    }
    CloseListener();
  }

 private:
  void DrainWakePipe() {
    char buf[256];
    while (read(server_.wake_read_fd_, buf, sizeof buf) > 0) {
    }
  }

  void CloseListener() {
    if (server_.listen_fd_ >= 0) {
      close(server_.listen_fd_);
      server_.listen_fd_ = -1;
    }
  }

  void AcceptConnections() {
    for (;;) {
      const int fd = accept4(server_.listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or transient accept failure: try next round
      }
      if (conns_.size() >= server_.options_.max_connections) {
        close(fd);
        CTDB_OBS_COUNT("net.accept.rejected", 1);
        continue;
      }
      const int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      conns_.emplace(fd, std::move(conn));
      server_.connections_.fetch_add(1, std::memory_order_acq_rel);
      CTDB_OBS_COUNT("net.connections.accepted", 1);
      CTDB_OBS_GAUGE_ADD("net.connections.active", 1);
    }
  }

  void HandleReadable(const std::shared_ptr<Connection>& conn) {
    char buf[64 * 1024];
    // Bounded rounds so one fast writer cannot monopolize the loop.
    for (int round = 0; round < 16 && !conn->read_closed; ++round) {
      const ssize_t n = read(conn->fd, buf, sizeof buf);
      if (n > 0) {
        conn->inbuf.append(buf, static_cast<size_t>(n));
        CTDB_OBS_COUNT("net.bytes.in", static_cast<uint64_t>(n));
        if (static_cast<size_t>(n) < sizeof buf) break;
      } else if (n == 0) {
        // Peer finished sending; answer what we already have, then close.
        conn->read_closed = true;
        conn->close_after_flush = true;
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      } else if (errno != EINTR) {
        CloseConnection(*conn);
        return;
      }
    }
    ParseFrames(conn);
  }

  void ParseFrames(const std::shared_ptr<Connection>& conn) {
    const std::string_view data(conn->inbuf);
    size_t offset = conn->in_pos;
    while (conn->fd >= 0 && !conn->dead) {
      std::string_view payload;
      const FrameScan scan = ScanFrame(data, &offset, &payload);
      if (scan == FrameScan::kNeedMore) break;
      if (scan == FrameScan::kCorrupt) {
        ProtocolError(*conn, Status::Corruption("invalid frame"));
        break;
      }
      CTDB_OBS_COUNT("net.frames.in", 1);
      Request request;
      const Status status = DecodeRequestPayload(payload, &request);
      if (!status.ok()) {
        ProtocolError(*conn, status);
        break;
      }
      Dispatch(conn, std::move(request));
    }
    conn->in_pos = offset;
    // Compact once the parsed prefix dominates the buffer.
    if (conn->in_pos > 4096 && conn->in_pos * 2 >= conn->inbuf.size()) {
      conn->inbuf.erase(0, conn->in_pos);
      conn->in_pos = 0;
    }
  }

  /// A framing violation is unrecoverable on a byte stream: answer with one
  /// final error frame (correlation id 0 — the request id is unknowable),
  /// stop reading, and close once the error is flushed.
  void ProtocolError(Connection& conn, const Status& status) {
    CTDB_OBS_COUNT("net.protocol_errors", 1);
    Response response;
    response.id = 0;
    response.request_kind = MsgKind::kQuery;
    response.code = status.code();
    response.message = status.message();
    conn.Append(EncodeResponseFrame(response));
    CTDB_OBS_COUNT("net.frames.out", 1);
    conn.read_closed = true;
    conn.close_after_flush = true;
    conn.inbuf.clear();
    conn.in_pos = 0;
  }

  /// Admission control: executes the request on the pool, or load-sheds
  /// with an immediate Unavailable response when max_pending is reached.
  void Dispatch(const std::shared_ptr<Connection>& conn, Request request) {
    Server& server = server_;
    const size_t was =
        server.pending_.fetch_add(1, std::memory_order_acq_rel);
    if (was >= server.options_.max_pending) {
      server.pending_.fetch_sub(1, std::memory_order_acq_rel);
      CTDB_OBS_COUNT("net.shed", 1);
      conn->Append(EncodeResponseFrame(Response::Error(
          request,
          Status::Unavailable("server overloaded: request queue full"))));
      CTDB_OBS_COUNT("net.frames.out", 1);
      return;
    }
    CTDB_OBS_GAUGE_ADD("net.queue.depth", 1);
    conn->in_flight.fetch_add(1, std::memory_order_acq_rel);
    server.pool_->Submit([&server, conn, request = std::move(request)] {
      const Timer timer;
      Response response = ExecuteRequest(server.db_, request);
      CTDB_OBS_HIST("net.request_us",
                    static_cast<uint64_t>(timer.ElapsedMicros()));
      CTDB_OBS_COUNT("net.requests", 1);
      if (conn->Append(EncodeResponseFrame(response))) {
        CTDB_OBS_COUNT("net.frames.out", 1);
      }
      conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
      server.pending_.fetch_sub(1, std::memory_order_acq_rel);
      CTDB_OBS_GAUGE_ADD("net.queue.depth", -1);
      server.Wake();
    });
  }

  /// Non-blocking write of whatever the outbound buffer holds.
  void FlushConnection(Connection& conn) {
    std::lock_guard<std::mutex> lock(conn.out_mutex);
    if (conn.fd < 0) return;
    while (conn.out_pos < conn.outbuf.size()) {
      const ssize_t n =
          send(conn.fd, conn.outbuf.data() + conn.out_pos,
               conn.outbuf.size() - conn.out_pos, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_pos += static_cast<size_t>(n);
        CTDB_OBS_COUNT("net.bytes.out", static_cast<uint64_t>(n));
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      } else if (n < 0 && errno == EINTR) {
        continue;
      } else {
        CloseSocketLocked(conn);
        return;
      }
    }
    if (conn.out_pos == conn.outbuf.size()) {
      conn.outbuf.clear();
      conn.out_pos = 0;
    } else if (conn.out_pos > (1u << 20)) {
      conn.outbuf.erase(0, conn.out_pos);
      conn.out_pos = 0;
    }
  }

  /// Pauses reads while a slow reader's responses pile up past the cap;
  /// resumes below half of it.
  void UpdateBackpressure(Connection& conn) {
    if (conn.fd < 0) return;
    const size_t pending = conn.PendingOut();
    if (!conn.paused && pending > server_.options_.max_outbound_bytes) {
      conn.paused = true;
      CTDB_OBS_COUNT("net.backpressure.pauses", 1);
    } else if (conn.paused &&
               pending < server_.options_.max_outbound_bytes / 2) {
      conn.paused = false;
    }
  }

  /// Closes connections that finished: nothing left to read, execute or
  /// flush. During drain every connection is "finished" once idle.
  void ReapConnections(bool draining) {
    for (auto it = conns_.begin(); it != conns_.end();) {
      Connection& conn = *it->second;
      // ParseFrames dispatches every complete frame it sees, so leftover
      // inbuf bytes are always a partial frame — nothing pending there.
      const bool idle = conn.in_flight.load(std::memory_order_acquire) == 0 &&
                        conn.PendingOut() == 0;
      const bool done = (conn.close_after_flush || draining) && idle;
      if (conn.fd < 0 || done) {
        if (conn.fd >= 0) CloseSocket(conn);
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void CloseSocket(Connection& conn) {
    std::lock_guard<std::mutex> lock(conn.out_mutex);
    CloseSocketLocked(conn);
  }

  void CloseSocketLocked(Connection& conn) {
    if (conn.fd < 0) return;
    close(conn.fd);
    conn.fd = -1;
    conn.dead = true;
    server_.connections_.fetch_sub(1, std::memory_order_acq_rel);
    CTDB_OBS_GAUGE_ADD("net.connections.active", -1);
  }

  void CloseConnection(Connection& conn) { CloseSocket(conn); }

  Server& server_;
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;
};

Result<std::unique_ptr<Server>> Server::Start(broker::Broker* db,
                                              const ServerOptions& options) {
  if (db == nullptr) return Status::InvalidArgument("null database");
  std::unique_ptr<Server> server(new Server);
  server->db_ = db;
  server->options_ = options;
  if (server->options_.workers == 0) server->options_.workers = 1;
  if (server->options_.max_pending == 0) server->options_.max_pending = 1;

  const int listen_fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) return Errno("socket");
  server->listen_fd_ = listen_fd;
  const int one = 1;
  setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparsable host " + options.host);
  }
  if (bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return Errno("bind");
  }
  if (listen(listen_fd, 128) != 0) return Errno("listen");
  if (!SetNonBlocking(listen_fd)) return Errno("fcntl");

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return Errno("getsockname");
  }
  server->port_ = ntohs(bound.sin_port);

  int pipe_fds[2];
  if (pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) return Errno("pipe2");
  server->wake_read_fd_ = pipe_fds[0];
  server->wake_write_fd_ = pipe_fds[1];

  server->owned_pool_ =
      std::make_unique<util::ThreadPool>(server->options_.workers);
  server->pool_ = server->owned_pool_.get();
  server->loop_ = std::make_unique<Loop>(server.get());
  server->loop_thread_ = std::thread([loop = server->loop_.get()] {
    loop->Run();
  });
  return server;
}

Server::~Server() { Shutdown(); }

void Server::RequestDrain() {
  draining_.store(true, std::memory_order_release);
  Wake();
}

void Server::Wake() {
  if (wake_write_fd_ >= 0) {
    const char byte = 1;
    // A full pipe means a wakeup is already pending — nothing to do.
    [[maybe_unused]] const ssize_t n = write(wake_write_fd_, &byte, 1);
  }
}

Status Server::Shutdown() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) {
    if (loop_thread_.joinable()) loop_thread_.join();
    return Status::OK();
  }
  RequestDrain();
  if (loop_thread_.joinable()) loop_thread_.join();
  // Workers may still be finishing requests whose connections were force
  // closed; draining the pool joins them before the pipe goes away.
  owned_pool_.reset();
  pool_ = nullptr;
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0) close(wake_write_fd_);
  wake_read_fd_ = wake_write_fd_ = -1;
  return Status::OK();
}

Response ExecuteRequest(broker::Broker* db, const Request& request) {
  Response response;
  response.id = request.id;
  response.request_kind = request.kind;
  switch (request.kind) {
    case MsgKind::kRegister: {
      auto result = db->Register(request.name, request.ltl);
      if (!result.ok()) return Response::Error(request, result.status());
      response.ids.push_back(*result);
      break;
    }
    case MsgKind::kRegisterBatch: {
      std::vector<broker::ContractDatabase::BatchEntry> entries;
      entries.reserve(request.entries.size());
      for (const Request::Entry& entry : request.entries) {
        entries.push_back({entry.name, entry.ltl});
      }
      auto result = db->RegisterBatch(entries);
      if (!result.ok()) return Response::Error(request, result.status());
      response.ids = std::move(*result);
      break;
    }
    case MsgKind::kQuery: {
      broker::QueryOptions options;
      options.as_of = request.as_of;
      auto result = db->Query(request.ltl, options);
      if (!result.ok()) return Response::Error(request, result.status());
      Response::Answer answer;
      answer.matches = std::move(result->matches);
      answer.total_us =
          static_cast<uint64_t>(result->stats.total_ms * 1000.0);
      answer.candidates = result->stats.candidates;
      response.answers.push_back(std::move(answer));
      break;
    }
    case MsgKind::kQueryBatch: {
      broker::QueryOptions options;
      options.as_of = request.as_of;
      auto result = db->QueryBatch(request.queries, options);
      if (!result.ok()) return Response::Error(request, result.status());
      response.answers.reserve(result->size());
      for (broker::QueryResult& qr : *result) {
        Response::Answer answer;
        answer.matches = std::move(qr.matches);
        answer.total_us = static_cast<uint64_t>(qr.stats.total_ms * 1000.0);
        answer.candidates = qr.stats.candidates;
        response.answers.push_back(std::move(answer));
      }
      break;
    }
    case MsgKind::kCheckpoint: {
      const Status status = db->Checkpoint();
      if (!status.ok()) return Response::Error(request, status);
      response.sequence = db->last_sequence();
      break;
    }
    case MsgKind::kStats: {
      response.stats_json = db->Metrics().ToJson();
      break;
    }
    case MsgKind::kUnregister: {
      auto result = db->Unregister(request.contract_id);
      if (!result.ok()) return Response::Error(request, result.status());
      response.sequence = *result;
      break;
    }
    case MsgKind::kReplace: {
      auto result = db->Replace(request.contract_id, request.ltl);
      if (!result.ok()) return Response::Error(request, result.status());
      response.sequence = *result;
      break;
    }
    case MsgKind::kStreamOpen: {
      monitor::StreamOptions options;
      options.as_of = request.as_of;
      auto result = db->StreamOpen(request.name, options);
      if (!result.ok()) return Response::Error(request, result.status());
      response.sequence = result->clock;
      response.tracked = result->tracked;
      break;
    }
    case MsgKind::kStreamAppend: {
      auto result = db->StreamAppend(request.name, request.events);
      if (!result.ok()) return Response::Error(request, result.status());
      response.events = result->events;
      response.stepped = result->stepped;
      response.pruned = result->pruned;
      response.verdicts = std::move(result->deltas);
      break;
    }
    case MsgKind::kStreamClose: {
      auto result = db->StreamClose(request.name);
      if (!result.ok()) return Response::Error(request, result.status());
      response.events = result->events;
      response.satisfied = result->satisfied;
      response.violated = result->violated;
      response.undetermined = result->undetermined;
      response.verdicts = std::move(result->verdicts);
      break;
    }
    case MsgKind::kResponse:
      return Response::Error(
          request, Status::InvalidArgument("kResponse is not a request"));
  }
  return response;
}

}  // namespace ctdb::net
