// Wire protocol of the ctdb network service (DESIGN.md §12).
//
// A frame on the wire mirrors the WAL record framing (wal/record.h):
//
//   ┌────────────┬────────────┬──────────────────────────────┐
//   │ length u32 │ crc32c u32 │ payload (`length` bytes)     │
//   └────────────┴────────────┴──────────────────────────────┘
//     little-endian             crc is over the payload only
//
//   request payload  := kind u8 · id u64 · body(kind)
//   response payload := kResponse u8 · id u64 · request_kind u8 ·
//                       status_code u8 · msg_len u32 · msg ·
//                       [body(request_kind) when status_code == OK]
//
//   body(kRegister)      := str name · str ltl
//   body(kRegisterBatch) := u32 count · count × (str name · str ltl)
//   body(kQuery)         := str ltl · u64 as_of
//   body(kQueryBatch)    := u32 count · count × str · u64 as_of
//   body(kCheckpoint)    := (empty)
//   body(kStats)         := (empty)
//   body(kUnregister)    := u32 contract_id
//   body(kReplace)       := u32 contract_id · str ltl
//   body(kStreamOpen)    := str name · u64 as_of
//   body(kStreamAppend)  := str name · u32 count · count × (u32 n · n × str)
//   body(kStreamClose)   := str name
//   str                  := len u32 · bytes
//
// `as_of` = 0 asks for the latest state; any other value evaluates the
// query against the contract set as of that system-period clock tick
// (DESIGN.md §14).
//
// Response bodies:
//   kRegister      := u32 contract id
//   kRegisterBatch := u32 count · count × u32 id
//   kQuery         := u32 match_count · ids · u64 total_us · u64 candidates
//   kQueryBatch    := u32 count · count × (u32 match_count · ids)
//   kCheckpoint    := u64 covered sequence
//   kStats         := str metrics JSON
//   kUnregister    := u64 clock of the removal
//   kReplace       := u64 clock of the supersession
//   kStreamOpen    := u64 pinned clock · u32 contracts tracked
//   kStreamAppend  := u64 events · u64 stepped · u64 pruned ·
//                     u32 count · count × (u32 contract id · u8 verdict)
//   kStreamClose   := u64 events · u32 satisfied · u32 violated ·
//                     u32 undetermined · u32 count ·
//                     count × (u32 contract id · u8 verdict)
//
// A verdict byte is 0 = undetermined, 1 = satisfied, 2 = violated
// (monitor::StreamVerdict); anything else is rejected as Corruption.
//
// `id` is a client-assigned correlation id echoed verbatim by the response,
// which is what makes per-connection pipelining work: a client may have any
// number of requests in flight and match responses by id (the server
// answers each connection's requests in receive order, but clients should
// not rely on that).
//
// Decoding is hostile-input safe: a length prefix above kMaxFrameBytes is
// rejected before any allocation, element counts are validated against the
// bytes actually present before a vector is sized, and every structural
// violation comes back as Status::Corruption (fuzzed by
// tools/fuzz/fuzz_protocol). Valid payloads are a round-trip fixed point:
// decode ∘ encode == identity.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "monitor/types.h"
#include "util/result.h"

namespace ctdb::net {

/// Frame header size: length u32 + crc u32.
inline constexpr size_t kFrameHeaderBytes = 8;

/// Upper bound on one payload; larger length prefixes are rejected as
/// corruption before any allocation, bounding memory under hostile input.
inline constexpr size_t kMaxFrameBytes = 1u << 24;

/// Message kinds. Requests use the operation kinds; every response frame is
/// kResponse and carries the operation kind it answers.
enum class MsgKind : uint8_t {
  kRegister = 1,
  kRegisterBatch = 2,
  kQuery = 3,
  kQueryBatch = 4,
  kCheckpoint = 5,
  kStats = 6,
  kUnregister = 7,
  kReplace = 8,
  kStreamOpen = 9,
  kStreamAppend = 10,
  kStreamClose = 11,
  kResponse = 32,
};

/// True for the eleven operation kinds (not kResponse).
bool IsRequestKind(uint8_t kind);

/// \brief One client request.
struct Request {
  MsgKind kind = MsgKind::kQuery;
  uint64_t id = 0;  ///< correlation id, echoed by the response

  struct Entry {
    std::string name;
    std::string ltl;
    bool operator==(const Entry&) const = default;
  };
  std::string name;             ///< kRegister: contract name; kStream*: stream
  std::string ltl;              ///< kRegister / kQuery / kReplace: LTL text
  std::vector<Entry> entries;   ///< kRegisterBatch
  std::vector<std::string> queries;  ///< kQueryBatch
  monitor::EventBatch events;   ///< kStreamAppend: instants to append
  uint32_t contract_id = 0;     ///< kUnregister / kReplace: target contract
  uint64_t as_of = 0;           ///< kQuery / kQueryBatch / kStreamOpen: 0 = latest

  static Request Register(uint64_t id, std::string name, std::string ltl);
  static Request RegisterBatch(uint64_t id, std::vector<Entry> entries);
  static Request Query(uint64_t id, std::string ltl, uint64_t as_of = 0);
  static Request QueryBatch(uint64_t id, std::vector<std::string> queries,
                            uint64_t as_of = 0);
  static Request Checkpoint(uint64_t id);
  static Request Stats(uint64_t id);
  static Request Unregister(uint64_t id, uint32_t contract_id);
  static Request Replace(uint64_t id, uint32_t contract_id, std::string ltl);
  static Request StreamOpen(uint64_t id, std::string name, uint64_t as_of = 0);
  static Request StreamAppend(uint64_t id, std::string name,
                              monitor::EventBatch events);
  static Request StreamClose(uint64_t id, std::string name);

  bool operator==(const Request&) const = default;
};

/// \brief One server response. `request_kind` names the operation answered;
/// the per-operation body is present only when `code` is kOk.
struct Response {
  uint64_t id = 0;
  MsgKind request_kind = MsgKind::kQuery;
  StatusCode code = StatusCode::kOk;
  std::string message;  ///< error detail; empty on success

  std::vector<uint32_t> ids;  ///< kRegister (1 element) / kRegisterBatch
  /// kQuery result, and one element per query for kQueryBatch.
  struct Answer {
    std::vector<uint32_t> matches;
    uint64_t total_us = 0;    ///< server-side evaluation time
    uint64_t candidates = 0;  ///< contracts surviving the prefilter
    bool operator==(const Answer&) const = default;
  };
  std::vector<Answer> answers;
  /// kCheckpoint: covered mutation sequence; kUnregister / kReplace: the
  /// system-period clock of the lifecycle change; kStreamOpen: the pinned
  /// snapshot clock.
  uint64_t sequence = 0;
  std::string stats_json;    ///< kStats: metrics registry snapshot

  uint32_t tracked = 0;      ///< kStreamOpen: contracts tracked at the pin
  uint64_t events = 0;       ///< kStreamAppend / kStreamClose: total appended
  uint64_t stepped = 0;      ///< kStreamAppend: (contract, instant) steps run
  uint64_t pruned = 0;       ///< kStreamAppend: steps skipped by pruning
  uint32_t satisfied = 0;    ///< kStreamClose: verdict tallies
  uint32_t violated = 0;
  uint32_t undetermined = 0;
  /// kStreamAppend: verdict changes since the last append; kStreamClose:
  /// final verdict of every tracked contract. Ascending contract id.
  std::vector<monitor::VerdictDelta> verdicts;

  /// The response's status as a Status value.
  Status status() const {
    return code == StatusCode::kOk ? Status::OK() : Status(code, message);
  }
  /// An error response answering `request` (body omitted).
  static Response Error(const Request& request, const Status& status);

  bool operator==(const Response&) const = default;
};

/// \name Payload codec (no frame header).
/// @{
std::string EncodeRequestPayload(const Request& request);
std::string EncodeResponsePayload(const Response& response);
/// Corruption on any structural violation; trailing bytes are corruption too.
Status DecodeRequestPayload(std::string_view payload, Request* request);
Status DecodeResponsePayload(std::string_view payload, Response* response);
/// @}

/// \name Frame codec: header + payload.
/// @{
std::string EncodeRequestFrame(const Request& request);
std::string EncodeResponseFrame(const Response& response);

/// Outcome of scanning a byte buffer for one whole frame.
enum class FrameScan {
  kFrame,      ///< a complete, CRC-valid frame starts at `offset`
  kNeedMore,   ///< the buffer ends inside the header or payload
  kCorrupt,    ///< bad length, CRC mismatch — the stream is unrecoverable
};

/// \brief Extracts the payload of the frame starting at `data[offset]`.
///
/// On kFrame advances `*offset` past the frame and points `*payload` into
/// `data` (valid while `data` is). Never allocates; a hostile length prefix
/// (> kMaxFrameBytes) is kCorrupt, an incomplete frame is kNeedMore.
FrameScan ScanFrame(std::string_view data, size_t* offset,
                    std::string_view* payload);

/// Decodes one whole request frame (ScanFrame + DecodeRequestPayload).
/// kNeedMore comes back as Corruption — use ScanFrame for streaming.
Status DecodeRequestFrame(std::string_view data, size_t* offset,
                          Request* request);
Status DecodeResponseFrame(std::string_view data, size_t* offset,
                           Response* response);
/// @}

}  // namespace ctdb::net
