#include "net/protocol.h"

#include "util/crc32c.h"

namespace ctdb::net {

namespace {

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool GetU8(std::string_view data, size_t* offset, uint8_t* v) {
  if (data.size() - *offset < 1) return false;
  *v = static_cast<uint8_t>(data[*offset]);
  *offset += 1;
  return true;
}

bool GetU32(std::string_view data, size_t* offset, uint32_t* v) {
  if (data.size() - *offset < 4) return false;
  const auto* p = reinterpret_cast<const uint8_t*>(data.data() + *offset);
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
  *offset += 4;
  return true;
}

bool GetU64(std::string_view data, size_t* offset, uint64_t* v) {
  uint32_t lo = 0, hi = 0;
  if (!GetU32(data, offset, &lo) || !GetU32(data, offset, &hi)) return false;
  *v = static_cast<uint64_t>(hi) << 32 | lo;
  return true;
}

bool GetString(std::string_view data, size_t* offset, std::string* s) {
  uint32_t len = 0;
  if (!GetU32(data, offset, &len)) return false;
  if (data.size() - *offset < len) return false;
  s->assign(data.substr(*offset, len));
  *offset += len;
  return true;
}

/// True when `count` elements of at least `min_bytes` each can still fit in
/// the remaining payload — the guard that keeps a hostile count prefix from
/// turning into a giant vector allocation.
bool CountFits(std::string_view data, size_t offset, uint32_t count,
               size_t min_bytes) {
  return static_cast<uint64_t>(count) * min_bytes <= data.size() - offset;
}

Status Corrupt(const char* what) { return Status::Corruption(what); }

void PutVerdicts(std::string* out,
                 const std::vector<monitor::VerdictDelta>& verdicts) {
  PutU32(out, static_cast<uint32_t>(verdicts.size()));
  for (const monitor::VerdictDelta& v : verdicts) {
    PutU32(out, v.contract_id);
    PutU8(out, static_cast<uint8_t>(v.verdict));
  }
}

bool GetVerdicts(std::string_view data, size_t* offset,
                 std::vector<monitor::VerdictDelta>* verdicts) {
  uint32_t count = 0;
  if (!GetU32(data, offset, &count) || !CountFits(data, *offset, count, 5)) {
    return false;
  }
  verdicts->resize(count);
  for (monitor::VerdictDelta& v : *verdicts) {
    uint8_t verdict = 0;
    if (!GetU32(data, offset, &v.contract_id) ||
        !GetU8(data, offset, &verdict) ||
        verdict > static_cast<uint8_t>(monitor::StreamVerdict::kViolated)) {
      return false;
    }
    v.verdict = static_cast<monitor::StreamVerdict>(verdict);
  }
  return true;
}

}  // namespace

bool IsRequestKind(uint8_t kind) {
  return kind >= static_cast<uint8_t>(MsgKind::kRegister) &&
         kind <= static_cast<uint8_t>(MsgKind::kStreamClose);
}

Request Request::Register(uint64_t id, std::string name, std::string ltl) {
  Request r;
  r.kind = MsgKind::kRegister;
  r.id = id;
  r.name = std::move(name);
  r.ltl = std::move(ltl);
  return r;
}

Request Request::RegisterBatch(uint64_t id, std::vector<Entry> entries) {
  Request r;
  r.kind = MsgKind::kRegisterBatch;
  r.id = id;
  r.entries = std::move(entries);
  return r;
}

Request Request::Query(uint64_t id, std::string ltl, uint64_t as_of) {
  Request r;
  r.kind = MsgKind::kQuery;
  r.id = id;
  r.ltl = std::move(ltl);
  r.as_of = as_of;
  return r;
}

Request Request::QueryBatch(uint64_t id, std::vector<std::string> queries,
                            uint64_t as_of) {
  Request r;
  r.kind = MsgKind::kQueryBatch;
  r.id = id;
  r.queries = std::move(queries);
  r.as_of = as_of;
  return r;
}

Request Request::Checkpoint(uint64_t id) {
  Request r;
  r.kind = MsgKind::kCheckpoint;
  r.id = id;
  return r;
}

Request Request::Stats(uint64_t id) {
  Request r;
  r.kind = MsgKind::kStats;
  r.id = id;
  return r;
}

Request Request::Unregister(uint64_t id, uint32_t contract_id) {
  Request r;
  r.kind = MsgKind::kUnregister;
  r.id = id;
  r.contract_id = contract_id;
  return r;
}

Request Request::Replace(uint64_t id, uint32_t contract_id, std::string ltl) {
  Request r;
  r.kind = MsgKind::kReplace;
  r.id = id;
  r.contract_id = contract_id;
  r.ltl = std::move(ltl);
  return r;
}

Request Request::StreamOpen(uint64_t id, std::string name, uint64_t as_of) {
  Request r;
  r.kind = MsgKind::kStreamOpen;
  r.id = id;
  r.name = std::move(name);
  r.as_of = as_of;
  return r;
}

Request Request::StreamAppend(uint64_t id, std::string name,
                              monitor::EventBatch events) {
  Request r;
  r.kind = MsgKind::kStreamAppend;
  r.id = id;
  r.name = std::move(name);
  r.events = std::move(events);
  return r;
}

Request Request::StreamClose(uint64_t id, std::string name) {
  Request r;
  r.kind = MsgKind::kStreamClose;
  r.id = id;
  r.name = std::move(name);
  return r;
}

Response Response::Error(const Request& request, const Status& status) {
  Response response;
  response.id = request.id;
  response.request_kind = request.kind;
  response.code = status.code();
  response.message = status.message();
  return response;
}

std::string EncodeRequestPayload(const Request& request) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(request.kind));
  PutU64(&out, request.id);
  switch (request.kind) {
    case MsgKind::kRegister:
      PutString(&out, request.name);
      PutString(&out, request.ltl);
      break;
    case MsgKind::kRegisterBatch:
      PutU32(&out, static_cast<uint32_t>(request.entries.size()));
      for (const Request::Entry& entry : request.entries) {
        PutString(&out, entry.name);
        PutString(&out, entry.ltl);
      }
      break;
    case MsgKind::kQuery:
      PutString(&out, request.ltl);
      PutU64(&out, request.as_of);
      break;
    case MsgKind::kQueryBatch:
      PutU32(&out, static_cast<uint32_t>(request.queries.size()));
      for (const std::string& q : request.queries) PutString(&out, q);
      PutU64(&out, request.as_of);
      break;
    case MsgKind::kUnregister:
      PutU32(&out, request.contract_id);
      break;
    case MsgKind::kReplace:
      PutU32(&out, request.contract_id);
      PutString(&out, request.ltl);
      break;
    case MsgKind::kStreamOpen:
      PutString(&out, request.name);
      PutU64(&out, request.as_of);
      break;
    case MsgKind::kStreamAppend:
      PutString(&out, request.name);
      PutU32(&out, static_cast<uint32_t>(request.events.size()));
      for (const std::vector<std::string>& instant : request.events) {
        PutU32(&out, static_cast<uint32_t>(instant.size()));
        for (const std::string& event : instant) PutString(&out, event);
      }
      break;
    case MsgKind::kStreamClose:
      PutString(&out, request.name);
      break;
    case MsgKind::kCheckpoint:
    case MsgKind::kStats:
    case MsgKind::kResponse:
      break;
  }
  return out;
}

Status DecodeRequestPayload(std::string_view payload, Request* request) {
  *request = Request();
  size_t offset = 0;
  uint8_t kind = 0;
  if (!GetU8(payload, &offset, &kind) ||
      !GetU64(payload, &offset, &request->id)) {
    return Corrupt("request payload truncated in header");
  }
  if (!IsRequestKind(kind)) {
    return Status::Corruption("unknown request kind " + std::to_string(kind));
  }
  request->kind = static_cast<MsgKind>(kind);
  switch (request->kind) {
    case MsgKind::kRegister:
      if (!GetString(payload, &offset, &request->name) ||
          !GetString(payload, &offset, &request->ltl)) {
        return Corrupt("register request truncated");
      }
      break;
    case MsgKind::kRegisterBatch: {
      uint32_t count = 0;
      if (!GetU32(payload, &offset, &count) ||
          !CountFits(payload, offset, count, 8)) {
        return Corrupt("register batch count exceeds payload");
      }
      request->entries.resize(count);
      for (Request::Entry& entry : request->entries) {
        if (!GetString(payload, &offset, &entry.name) ||
            !GetString(payload, &offset, &entry.ltl)) {
          return Corrupt("register batch entry truncated");
        }
      }
      break;
    }
    case MsgKind::kQuery:
      if (!GetString(payload, &offset, &request->ltl) ||
          !GetU64(payload, &offset, &request->as_of)) {
        return Corrupt("query request truncated");
      }
      break;
    case MsgKind::kQueryBatch: {
      uint32_t count = 0;
      if (!GetU32(payload, &offset, &count) ||
          !CountFits(payload, offset, count, 4)) {
        return Corrupt("query batch count exceeds payload");
      }
      request->queries.resize(count);
      for (std::string& q : request->queries) {
        if (!GetString(payload, &offset, &q)) {
          return Corrupt("query batch entry truncated");
        }
      }
      if (!GetU64(payload, &offset, &request->as_of)) {
        return Corrupt("query batch as_of truncated");
      }
      break;
    }
    case MsgKind::kUnregister:
      if (!GetU32(payload, &offset, &request->contract_id)) {
        return Corrupt("unregister request truncated");
      }
      break;
    case MsgKind::kReplace:
      if (!GetU32(payload, &offset, &request->contract_id) ||
          !GetString(payload, &offset, &request->ltl)) {
        return Corrupt("replace request truncated");
      }
      break;
    case MsgKind::kStreamOpen:
      if (!GetString(payload, &offset, &request->name) ||
          !GetU64(payload, &offset, &request->as_of)) {
        return Corrupt("stream open request truncated");
      }
      break;
    case MsgKind::kStreamAppend: {
      uint32_t count = 0;
      if (!GetString(payload, &offset, &request->name) ||
          !GetU32(payload, &offset, &count) ||
          !CountFits(payload, offset, count, 4)) {
        return Corrupt("stream append instant count exceeds payload");
      }
      request->events.resize(count);
      for (std::vector<std::string>& instant : request->events) {
        uint32_t names = 0;
        if (!GetU32(payload, &offset, &names) ||
            !CountFits(payload, offset, names, 4)) {
          return Corrupt("stream append event count exceeds payload");
        }
        instant.resize(names);
        for (std::string& event : instant) {
          if (!GetString(payload, &offset, &event)) {
            return Corrupt("stream append event truncated");
          }
        }
      }
      break;
    }
    case MsgKind::kStreamClose:
      if (!GetString(payload, &offset, &request->name)) {
        return Corrupt("stream close request truncated");
      }
      break;
    case MsgKind::kCheckpoint:
    case MsgKind::kStats:
    case MsgKind::kResponse:
      break;
  }
  if (offset != payload.size()) {
    return Corrupt("trailing bytes after request body");
  }
  return Status::OK();
}

std::string EncodeResponsePayload(const Response& response) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(MsgKind::kResponse));
  PutU64(&out, response.id);
  PutU8(&out, static_cast<uint8_t>(response.request_kind));
  PutU8(&out, static_cast<uint8_t>(response.code));
  PutString(&out, response.message);
  if (response.code != StatusCode::kOk) return out;
  switch (response.request_kind) {
    case MsgKind::kRegister:
    case MsgKind::kRegisterBatch:
      PutU32(&out, static_cast<uint32_t>(response.ids.size()));
      for (uint32_t id : response.ids) PutU32(&out, id);
      break;
    case MsgKind::kQuery:
    case MsgKind::kQueryBatch:
      PutU32(&out, static_cast<uint32_t>(response.answers.size()));
      for (const Response::Answer& answer : response.answers) {
        PutU32(&out, static_cast<uint32_t>(answer.matches.size()));
        for (uint32_t id : answer.matches) PutU32(&out, id);
        PutU64(&out, answer.total_us);
        PutU64(&out, answer.candidates);
      }
      break;
    case MsgKind::kCheckpoint:
    case MsgKind::kUnregister:
    case MsgKind::kReplace:
      PutU64(&out, response.sequence);
      break;
    case MsgKind::kStats:
      PutString(&out, response.stats_json);
      break;
    case MsgKind::kStreamOpen:
      PutU64(&out, response.sequence);
      PutU32(&out, response.tracked);
      break;
    case MsgKind::kStreamAppend:
      PutU64(&out, response.events);
      PutU64(&out, response.stepped);
      PutU64(&out, response.pruned);
      PutVerdicts(&out, response.verdicts);
      break;
    case MsgKind::kStreamClose:
      PutU64(&out, response.events);
      PutU32(&out, response.satisfied);
      PutU32(&out, response.violated);
      PutU32(&out, response.undetermined);
      PutVerdicts(&out, response.verdicts);
      break;
    case MsgKind::kResponse:
      break;
  }
  return out;
}

Status DecodeResponsePayload(std::string_view payload, Response* response) {
  *response = Response();
  size_t offset = 0;
  uint8_t kind = 0, request_kind = 0, code = 0;
  if (!GetU8(payload, &offset, &kind) ||
      !GetU64(payload, &offset, &response->id) ||
      !GetU8(payload, &offset, &request_kind) ||
      !GetU8(payload, &offset, &code) ||
      !GetString(payload, &offset, &response->message)) {
    return Corrupt("response payload truncated in header");
  }
  if (kind != static_cast<uint8_t>(MsgKind::kResponse)) {
    return Status::Corruption("not a response frame, kind " +
                              std::to_string(kind));
  }
  if (!IsRequestKind(request_kind)) {
    return Status::Corruption("response to unknown request kind " +
                              std::to_string(request_kind));
  }
  if (code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::Corruption("unknown status code " + std::to_string(code));
  }
  response->request_kind = static_cast<MsgKind>(request_kind);
  response->code = static_cast<StatusCode>(code);
  if (response->code == StatusCode::kOk) {
    switch (response->request_kind) {
      case MsgKind::kRegister:
      case MsgKind::kRegisterBatch: {
        uint32_t count = 0;
        if (!GetU32(payload, &offset, &count) ||
            !CountFits(payload, offset, count, 4)) {
          return Corrupt("response id count exceeds payload");
        }
        response->ids.resize(count);
        for (uint32_t& id : response->ids) {
          if (!GetU32(payload, &offset, &id)) {
            return Corrupt("response ids truncated");
          }
        }
        break;
      }
      case MsgKind::kQuery:
      case MsgKind::kQueryBatch: {
        uint32_t count = 0;
        if (!GetU32(payload, &offset, &count) ||
            !CountFits(payload, offset, count, 20)) {
          return Corrupt("answer count exceeds payload");
        }
        response->answers.resize(count);
        for (Response::Answer& answer : response->answers) {
          uint32_t matches = 0;
          if (!GetU32(payload, &offset, &matches) ||
              !CountFits(payload, offset, matches, 4)) {
            return Corrupt("match count exceeds payload");
          }
          answer.matches.resize(matches);
          for (uint32_t& id : answer.matches) {
            if (!GetU32(payload, &offset, &id)) {
              return Corrupt("answer matches truncated");
            }
          }
          if (!GetU64(payload, &offset, &answer.total_us) ||
              !GetU64(payload, &offset, &answer.candidates)) {
            return Corrupt("answer stats truncated");
          }
        }
        break;
      }
      case MsgKind::kCheckpoint:
      case MsgKind::kUnregister:
      case MsgKind::kReplace:
        if (!GetU64(payload, &offset, &response->sequence)) {
          return Corrupt("sequence response truncated");
        }
        break;
      case MsgKind::kStats:
        if (!GetString(payload, &offset, &response->stats_json)) {
          return Corrupt("stats response truncated");
        }
        break;
      case MsgKind::kStreamOpen:
        if (!GetU64(payload, &offset, &response->sequence) ||
            !GetU32(payload, &offset, &response->tracked)) {
          return Corrupt("stream open response truncated");
        }
        break;
      case MsgKind::kStreamAppend:
        if (!GetU64(payload, &offset, &response->events) ||
            !GetU64(payload, &offset, &response->stepped) ||
            !GetU64(payload, &offset, &response->pruned) ||
            !GetVerdicts(payload, &offset, &response->verdicts)) {
          return Corrupt("stream append response truncated or bad verdict");
        }
        break;
      case MsgKind::kStreamClose:
        if (!GetU64(payload, &offset, &response->events) ||
            !GetU32(payload, &offset, &response->satisfied) ||
            !GetU32(payload, &offset, &response->violated) ||
            !GetU32(payload, &offset, &response->undetermined) ||
            !GetVerdicts(payload, &offset, &response->verdicts)) {
          return Corrupt("stream close response truncated or bad verdict");
        }
        break;
      case MsgKind::kResponse:
        break;
    }
  }
  if (offset != payload.size()) {
    return Corrupt("trailing bytes after response body");
  }
  return Status::OK();
}

namespace {

std::string EncodeFrame(std::string payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, util::Crc32c(payload));
  out += payload;
  return out;
}

}  // namespace

std::string EncodeRequestFrame(const Request& request) {
  return EncodeFrame(EncodeRequestPayload(request));
}

std::string EncodeResponseFrame(const Response& response) {
  return EncodeFrame(EncodeResponsePayload(response));
}

FrameScan ScanFrame(std::string_view data, size_t* offset,
                    std::string_view* payload) {
  size_t pos = *offset;
  uint32_t length = 0, crc = 0;
  if (!GetU32(data, &pos, &length)) return FrameScan::kNeedMore;
  if (length > kMaxFrameBytes) return FrameScan::kCorrupt;
  if (!GetU32(data, &pos, &crc)) return FrameScan::kNeedMore;
  if (data.size() - pos < length) return FrameScan::kNeedMore;
  const std::string_view body = data.substr(pos, length);
  if (util::Crc32c(body) != crc) return FrameScan::kCorrupt;
  *payload = body;
  *offset = pos + length;
  return FrameScan::kFrame;
}

Status DecodeRequestFrame(std::string_view data, size_t* offset,
                          Request* request) {
  std::string_view payload;
  size_t pos = *offset;
  if (ScanFrame(data, &pos, &payload) != FrameScan::kFrame) {
    return Corrupt("request frame invalid or incomplete");
  }
  CTDB_RETURN_NOT_OK(DecodeRequestPayload(payload, request));
  *offset = pos;
  return Status::OK();
}

Status DecodeResponseFrame(std::string_view data, size_t* offset,
                           Response* response) {
  std::string_view payload;
  size_t pos = *offset;
  if (ScanFrame(data, &pos, &payload) != FrameScan::kFrame) {
    return Corrupt("response frame invalid or incomplete");
  }
  CTDB_RETURN_NOT_OK(DecodeResponsePayload(payload, response));
  *offset = pos;
  return Status::OK();
}

}  // namespace ctdb::net
