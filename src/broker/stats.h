// Statistics surfaced by the broker, matching the measurements of §7.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/permission.h"

namespace ctdb::broker {

/// Per-query evaluation statistics.
struct QueryStats {
  double translate_ms = 0;   ///< LTL → BA conversion (counted in both modes)
  double prefilter_ms = 0;   ///< condition extraction + index evaluation
  double permission_ms = 0;  ///< permission checks over candidates
  double total_ms = 0;

  size_t database_size = 0;  ///< contracts in the database
  size_t candidates = 0;     ///< contracts surviving the prefilter
  size_t matches = 0;        ///< contracts permitting the query

  size_t query_states = 0;       ///< states of the query BA
  size_t query_transitions = 0;  ///< transitions of the query BA

  /// True when the query BA came from the shared translation cache
  /// (translate/cache.h) instead of a fresh tableau construction.
  bool translate_cache_hit = false;

  core::PermissionStats permission;

  std::string ToString() const;
};

/// Per-registration statistics.
struct RegistrationStats {
  double translate_ms = 0;
  double prefilter_insert_ms = 0;
  double projection_precompute_ms = 0;
  size_t ba_states = 0;
  size_t ba_transitions = 0;
  size_t projection_subsets = 0;
  size_t projection_distinct = 0;

  std::string ToString() const;
};

/// Flushes one query's phase timings and outcome counts into the process
/// metrics registry (obs/metrics.h). The broker calls this after every
/// Query/QueryBatch evaluation, which makes QueryStats the per-call view of
/// the same measurements the registry aggregates across calls
/// (broker.query.* histograms, broker.candidates/matches counters).
/// No-op when observability is compiled out or disabled at runtime.
void RecordQueryStats(const QueryStats& stats);

/// Registration-side counterpart (broker.register.* histograms).
void RecordRegistrationStats(const RegistrationStats& stats);

}  // namespace ctdb::broker
