// Durable broker: the contract database behind a write-ahead log, with
// group commit, checkpointing and crash recovery (DESIGN.md §10).
//
// `DurableDatabase` wraps a `ContractDatabase` and a `wal::LogWriter`.
// Every mutation — Register, Unregister, Replace — applies to the in-memory
// database (snapshot-isolated, so queries may observe it immediately) and
// then appends a WAL record; it returns Ok only once the record is durable
// under the configured `wal::FsyncPolicy`. A crash therefore loses at most
// the mutations whose call had not yet returned — everything acknowledged
// is recovered (verified by the crash-point property test).
//
// A checkpoint pins the current snapshot, writes it as a full SaveSnapshot
// image to `checkpoint-<sequence>.ctdb` (temp file + atomic rename, so a
// crash mid-checkpoint never damages the previous one), seals the log below
// it by rotating to a fresh segment, appends a kCheckpoint record, and
// deletes every sealed segment whose records the image covers — bounding
// both log size and recovery time.
//
// Recovery (`RecoverDatabase`) loads the newest valid checkpoint (falling
// back to older ones, then to an empty database), replays the segments'
// mutation records past it in sequence order — Register, Unregister and
// Replace alike, with their recorded system-period clocks — treats a torn
// or CRC-corrupt tail as a clean end of log (wal/segment.h), and reports
// any damage before the tail — including a mutation-sequence gap — as
// Status::Corruption.

#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "broker/broker.h"
#include "broker/database.h"
#include "monitor/monitor.h"
#include "util/result.h"
#include "wal/wal.h"
#include "wal/writer.h"

namespace ctdb::broker {

/// "checkpoint-000000000042.ctdb" for sequence 42.
std::string CheckpointFileName(uint64_t sequence);
bool ParseCheckpointFileName(std::string_view name, uint64_t* sequence);

/// What recovery found and did.
struct RecoveryStats {
  uint64_t checkpoint_sequence = 0;   ///< 0 = recovered without a checkpoint
  std::string checkpoint_file;        ///< name of the loaded checkpoint
  size_t checkpoints_skipped = 0;     ///< newer checkpoints that failed to load
  size_t segments_scanned = 0;
  size_t records_replayed = 0;
  size_t records_skipped = 0;         ///< records the checkpoint already covers
  uint64_t bytes_scanned = 0;
  bool tail_truncated = false;        ///< a torn tail was treated as end-of-log
  uint64_t last_sequence = 0;         ///< == recovered database op count
  uint64_t next_segment_index = 1;    ///< where a writer should continue
  double checkpoint_load_ms = 0;
  double replay_ms = 0;
  /// Per-segment bookkeeping handed to the log writer for checkpoint
  /// truncation (max mutation sequence each sealed segment holds).
  std::vector<wal::LogWriter::SegmentInfo> sealed_segments;
};

/// \brief Rebuilds a database from a WAL directory.
///
/// Loads the newest checkpoint that deserializes cleanly and replays every
/// registration record with a later sequence. Returns Status::Corruption
/// when the log is damaged anywhere but the tail: an invalid frame followed
/// by a valid one, a sequence gap or regression, a record whose replayed
/// registration fails, or a checkpointed image that cannot be reconciled
/// with the surviving log. A torn tail only sets
/// RecoveryStats::tail_truncated.
Result<std::unique_ptr<ContractDatabase>> RecoverDatabase(
    const std::string& dir, const DatabaseOptions& options = {},
    RecoveryStats* stats = nullptr);

/// \brief A contract database whose registrations survive crashes.
///
/// Thread safety matches ContractDatabase: queries are safe concurrently
/// with each other and with registrations; Register calls from multiple
/// threads are safe and share group commits. Checkpoint may run
/// concurrently with everything (it pins a snapshot).
class DurableDatabase : public Broker {
 public:
  /// Opens (creating the directory if needed) or recovers a durable
  /// database. The WAL continues in a fresh segment — recovery never
  /// appends to a possibly-torn file.
  static Result<std::unique_ptr<DurableDatabase>> Open(
      std::string dir, const wal::DurabilityOptions& durability = {},
      const DatabaseOptions& options = {});

  ~DurableDatabase() override;
  DurableDatabase(const DurableDatabase&) = delete;
  DurableDatabase& operator=(const DurableDatabase&) = delete;

  /// Registers a contract and returns once its WAL record is durable under
  /// the configured fsync policy. Queries may observe the registration
  /// slightly before it is durable (never after a failure).
  Result<uint32_t> Register(std::string name, std::string_view ltl_text,
                            RegistrationStats* stats = nullptr) override;

  /// Registers a batch atomically (all-or-nothing in memory, one WAL group
  /// on disk). Returns once every record of the batch is durable.
  Result<std::vector<uint32_t>> RegisterBatch(
      const std::vector<ContractDatabase::BatchEntry>& entries) override;

  /// Unregisters the live contract `id`; Ok only once the kUnregister
  /// record is durable. Returns the system-period clock of the removal.
  Result<uint64_t> Unregister(uint32_t id) override {
    return UnregisterWithClock(id, 0);
  }

  /// Replaces the live contract `id`'s specification; Ok only once the
  /// kReplace record is durable. Returns the clock of the supersession.
  Result<uint64_t> Replace(uint32_t id, std::string_view ltl_text,
                           RegistrationStats* stats = nullptr) override {
    return ReplaceWithClock(id, ltl_text, stats, 0);
  }

  /// \name Explicit-clock mutation variants (the sharded router's path).
  ///
  /// `clock` = 0 self-assigns the next tick (== the unsharded WAL
  /// sequence); the router passes its global clock so valid periods are
  /// comparable across shards (DESIGN.md §14).
  /// @{
  Result<uint32_t> RegisterWithClock(std::string name,
                                     std::string_view ltl_text,
                                     RegistrationStats* stats, uint64_t clock);
  Result<std::vector<uint32_t>> RegisterBatchWithClocks(
      const std::vector<ContractDatabase::BatchEntry>& entries,
      const std::vector<uint64_t>* clocks);
  Result<uint64_t> UnregisterWithClock(uint32_t id, uint64_t clock);
  Result<uint64_t> ReplaceWithClock(uint32_t id, std::string_view ltl_text,
                                    RegistrationStats* stats, uint64_t clock);
  /// @}

  /// Interns a query-only event into the vocabulary, publishing it
  /// immediately (see ContractDatabase::InternEvent). Deliberately NOT
  /// logged to the WAL: recovery rebuilds the vocabulary from the replayed
  /// contracts alone, so interned-but-uncited events do not survive a
  /// restart. The sharded router (src/shard) relies on exactly that — it
  /// re-broadcasts the union vocabulary across shards at Open.
  Result<EventId> InternEvent(std::string_view name) {
    return db_->InternEvent(name);
  }

  /// \name Read path — forwards to the wrapped snapshot-isolated database.
  /// @{
  Result<QueryResult> Query(std::string_view ltl_text,
                            const QueryOptions& options = {}) const override {
    return db_->Query(ltl_text, options);
  }
  Result<std::vector<QueryResult>> QueryBatch(
      const std::vector<std::string>& queries,
      const QueryOptions& options = {}) const override {
    return db_->QueryBatch(queries, options);
  }
  std::shared_ptr<const DatabaseSnapshot> Snapshot() const {
    return db_->Snapshot();
  }
  size_t size() const override { return db_->size(); }
  /// Slot-table width (live contracts + holes left by Unregister); the next
  /// registration's id. The sharded router routes off this, not size().
  size_t slot_count() const { return db_->slot_count(); }
  /// Dense mutation count (== the WAL sequence of the latest record).
  uint64_t op_count() const { return db_->op_count(); }
  const Contract& contract(uint32_t id) const { return db_->contract(id); }
  /// The wrapped database (read-only: registering through it directly would
  /// bypass the log).
  const ContractDatabase& database() const { return *db_; }
  /// @}

  /// \name Streaming compliance monitor (DESIGN.md §15).
  ///
  /// Streams pin the current snapshot (or a historical clock) at open and
  /// are served entirely from it; they are ephemeral — never WAL-logged —
  /// so a restart forgets them. Unavailable after Close().
  /// @{
  Result<monitor::StreamOpenInfo> StreamOpen(
      std::string name, const monitor::StreamOptions& options = {}) override;
  Result<monitor::StreamAppendResult> StreamAppend(
      std::string_view name, const monitor::EventBatch& events) override;
  Result<monitor::StreamCloseInfo> StreamClose(std::string_view name) override;
  /// The embedded stream registry (tests and tools).
  const monitor::StreamMonitor& stream_monitor() const { return monitor_; }
  /// @}

  /// Writes a checkpoint now and truncates the log below it. Serialized
  /// against the automatic background checkpoint.
  Status Checkpoint() override;

  /// Flushes and stops the log writer; further registrations fail. Run by
  /// the destructor; idempotent.
  Status Close() override;

  /// System-period clock of the latest applied mutation (the `as_of`
  /// axis; == the dense mutation count when clocks are self-assigned).
  uint64_t last_sequence() const override { return db_->last_sequence(); }

  /// Scrape of the process-wide metrics registry (Broker interface).
  obs::MetricsSnapshot Metrics() const override {
    return db_->MetricsSnapshot();
  }

  const RecoveryStats& recovery_stats() const { return recovery_stats_; }
  const wal::DurabilityOptions& durability_options() const {
    return durability_;
  }
  const std::string& dir() const { return dir_; }

 private:
  DurableDatabase(std::string dir, const wal::DurabilityOptions& durability,
                  std::unique_ptr<ContractDatabase> db,
                  std::unique_ptr<wal::LogWriter> writer,
                  RecoveryStats recovery_stats);

  /// Launches a background checkpoint when checkpoint_log_bytes is
  /// configured and exceeded.
  void MaybeScheduleCheckpoint();
  /// Best-effort deletion of checkpoint files older than `sequence` and of
  /// stale checkpoint temp files.
  void DeleteOldCheckpoints(uint64_t sequence);

  const std::string dir_;
  const wal::DurabilityOptions durability_;
  std::unique_ptr<ContractDatabase> db_;
  std::unique_ptr<wal::LogWriter> writer_;
  RecoveryStats recovery_stats_;
  /// Open event streams over db_'s snapshots (internally synchronized).
  monitor::StreamMonitor monitor_;

  /// Orders apply-then-enqueue across writers so on-disk record order
  /// equals mutation-sequence order.
  std::mutex append_mutex_;
  /// Dense mutation count (the WAL sequence); guarded by append_mutex_.
  /// Seeded from recovery, advanced by every Register/Unregister/Replace.
  uint64_t sequence_ = 0;
  std::atomic<bool> closed_{false};

  /// Serializes checkpoints (manual vs background).
  std::mutex checkpoint_mutex_;
  std::mutex checkpoint_thread_mutex_;
  std::thread checkpoint_thread_;
  std::atomic<bool> checkpoint_running_{false};
};

}  // namespace ctdb::broker
