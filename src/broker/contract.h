// A registered contract: its specification, BA representation and the
// per-contract precomputed data both optimizations rely on.

#pragma once

#include <string>

#include "automata/buchi.h"
#include "projection/store.h"
#include "util/bitset.h"

namespace ctdb::broker {

/// \brief One contract in the database.
struct Contract {
  uint32_t id = 0;
  std::string name;
  std::string ltl_text;  ///< as registered (conjunction of clauses)

  /// System-period clock at which this contract version became visible
  /// (the Register or Replace that produced it — DESIGN.md §14). A version
  /// is visible as-of `s` iff `valid_from <= s` and, once superseded, the
  /// history store bounds it with an exclusive `valid_to`.
  uint64_t valid_from = 0;

  /// Events cited by the LTL specification — the vocabulary V of
  /// Definition 5 (may strictly contain the events on BA labels).
  Bitset events;

  /// Contract states lying on a cycle through a final state (§6.2.4).
  Bitset seed_states;

  /// The contract BA plus its precomputed simplified projections (§5); the
  /// registered automaton itself is `projections.original()`.
  projection::ContractProjections projections;

  const automata::Buchi& automaton() const { return projections.original(); }
};

}  // namespace ctdb::broker
