#include "broker/stats.h"

#include "obs/metrics.h"
#include "util/string_util.h"

namespace ctdb::broker {

namespace {

/// Millisecond (double) phase time → whole microseconds for the histograms.
uint64_t MillisToMicros(double ms) {
  return ms <= 0 ? 0 : static_cast<uint64_t>(ms * 1e3);
}

}  // namespace

void RecordQueryStats(const QueryStats& stats) {
  CTDB_OBS_COUNT("broker.queries", 1);
  CTDB_OBS_COUNT("broker.candidates", stats.candidates);
  CTDB_OBS_COUNT("broker.matches", stats.matches);
  CTDB_OBS_HIST("broker.query.translate_us", MillisToMicros(stats.translate_ms));
  CTDB_OBS_HIST("broker.query.prefilter_us", MillisToMicros(stats.prefilter_ms));
  CTDB_OBS_HIST("broker.query.permission_us",
                MillisToMicros(stats.permission_ms));
  CTDB_OBS_HIST("broker.query.total_us", MillisToMicros(stats.total_ms));
  CTDB_OBS_HIST("broker.query.candidates", stats.candidates);
  if (stats.database_size > 0) {
    // Prefilter selectivity: surviving candidates as a percentage of the
    // database (Table 2's "candidates" column, normalized).
    CTDB_OBS_HIST("broker.query.selectivity_pct",
                  stats.candidates * 100 / stats.database_size);
  }
}

void RecordRegistrationStats(const RegistrationStats& stats) {
  CTDB_OBS_COUNT("broker.registrations", 1);
  CTDB_OBS_HIST("broker.register.translate_us",
                MillisToMicros(stats.translate_ms));
  CTDB_OBS_HIST("broker.register.prefilter_insert_us",
                MillisToMicros(stats.prefilter_insert_ms));
  CTDB_OBS_HIST("broker.register.projection_precompute_us",
                MillisToMicros(stats.projection_precompute_ms));
  CTDB_OBS_HIST("broker.register.ba_states", stats.ba_states);
}

std::string QueryStats::ToString() const {
  return StringFormat(
      "total=%.2fms translate=%.2fms prefilter=%.2fms permission=%.2fms "
      "db=%zu candidates=%zu matches=%zu query_ba=%zus/%zut",
      total_ms, translate_ms, prefilter_ms, permission_ms, database_size,
      candidates, matches, query_states, query_transitions);
}

std::string RegistrationStats::ToString() const {
  return StringFormat(
      "translate=%.2fms prefilter=%.2fms projections=%.2fms ba=%zus/%zut "
      "subsets=%zu distinct=%zu",
      translate_ms, prefilter_insert_ms, projection_precompute_ms, ba_states,
      ba_transitions, projection_subsets, projection_distinct);
}

}  // namespace ctdb::broker
