#include "broker/stats.h"

#include "util/string_util.h"

namespace ctdb::broker {

std::string QueryStats::ToString() const {
  return StringFormat(
      "total=%.2fms translate=%.2fms prefilter=%.2fms permission=%.2fms "
      "db=%zu candidates=%zu matches=%zu query_ba=%zus/%zut",
      total_ms, translate_ms, prefilter_ms, permission_ms, database_size,
      candidates, matches, query_states, query_transitions);
}

std::string RegistrationStats::ToString() const {
  return StringFormat(
      "translate=%.2fms prefilter=%.2fms projections=%.2fms ba=%zus/%zut "
      "subsets=%zu distinct=%zu",
      translate_ms, prefilter_insert_ms, projection_precompute_ms, ba_states,
      ba_transitions, projection_subsets, projection_distinct);
}

}  // namespace ctdb::broker
