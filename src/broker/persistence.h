// Saving and loading contract databases.
//
// The paper's architecture (§3, §7.1) precomputes registration-time data for
// a "fairly static" contract database whose contracts are each queried many
// times; persisting the registered automata lets a broker restart without
// re-running the LTL→BA translation for every contract. The format is plain
// text (the paper's modules exchange text files). The current header is
// `ctdb-database-v2`: mutation count + system clock, the vocabulary, live
// contracts with explicit (possibly sparse) ids and their `valid-from`
// clocks, then the history store — superseded versions with their
// [valid_from, valid_to) periods and the retention floor (DESIGN.md §14).
// Legacy `ctdb-database-v1` images (append-only: dense ids, no lifecycle
// state) still load; their counters reconstruct as ops == clock == count.
// Prefilter index, seed sets and projection partitions are recomputed at
// load time from the stored automata (they are deterministic functions of
// them and of the load-time DatabaseOptions).

#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "broker/database.h"
#include "util/result.h"

namespace ctdb::broker {

/// Serializes a database snapshot (vocabulary + every contract) to `out`.
/// Newlines inside contract names or LTL text are replaced by spaces (LTL is
/// whitespace-insensitive; names are labels). Because a snapshot is frozen,
/// this is safe to run while registration continues — the saved state is
/// exactly the snapshot's.
Status SaveSnapshot(const DatabaseSnapshot& snapshot, std::ostream* out);

/// Serializes `db`'s current snapshot to `out` (SaveSnapshot on
/// db.Snapshot()).
Status SaveDatabase(const ContractDatabase& db, std::ostream* out);

/// Writes SaveDatabase output to `path` crash-safely: the image is written
/// to `<path>.tmp`, fsynced, and atomically renamed into place, so `path`
/// always holds either the previous complete image or the new one.
Status SaveDatabaseToFile(const ContractDatabase& db, const std::string& path);

/// Rebuilds a database from a SaveDatabase stream. Contract ids are
/// preserved; per-contract precomputations (seeds, prefilter entries,
/// projection partitions) are rebuilt under `options`.
Result<std::unique_ptr<ContractDatabase>> LoadDatabase(
    std::istream& in, const DatabaseOptions& options = {});

/// Reads LoadDatabase input from `path`.
Result<std::unique_ptr<ContractDatabase>> LoadDatabaseFromFile(
    const std::string& path, const DatabaseOptions& options = {});

}  // namespace ctdb::broker
