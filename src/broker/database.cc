#include "broker/database.h"

#include <algorithm>
#include <utility>

#include "core/compatibility.h"
#include "core/witness.h"
#include "ltl/parser.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace ctdb::broker {

ContractDatabase::ContractDatabase(const DatabaseOptions& options)
    : options_(options), prefilter_(options.prefilter) {}

size_t ContractDatabase::ResolveThreads(size_t requested) const {
  const size_t threads = requested == 0 ? options_.threads : requested;
  return threads == 0 ? 1 : threads;
}

util::ThreadPool* ContractDatabase::EnsurePool(size_t threads) {
  if (threads <= 1) return nullptr;
  // The calling thread participates in ParallelFor, so `threads`-way
  // concurrency needs threads - 1 workers.
  const size_t workers = threads - 1;
  if (pool_ == nullptr || pool_->thread_count() < workers) {
    pool_ = std::make_unique<util::ThreadPool>(workers);
  }
  return pool_.get();
}

Result<uint32_t> ContractDatabase::Register(std::string name,
                                            std::string_view ltl_text,
                                            RegistrationStats* stats) {
  CTDB_ASSIGN_OR_RETURN(const ltl::Formula* spec,
                        ltl::Parse(ltl_text, &factory_, &vocab_));
  return RegisterFormula(std::move(name), spec, std::string(ltl_text), stats);
}

Result<uint32_t> ContractDatabase::RegisterFormula(std::string name,
                                                   const ltl::Formula* spec,
                                                   std::string ltl_text,
                                                   RegistrationStats* stats) {
  CTDB_OBS_SPAN(span, "register");
#if CTDB_OBS
  // Capture timings for the registry even when the caller passed no stats
  // sink (the struct is flushed by RegisterAutomaton).
  RegistrationStats obs_stats;
  if (stats == nullptr && obs::Enabled()) stats = &obs_stats;
#endif
  Bitset events;
  spec->CollectEvents(&events);
  if (ltl_text.empty()) ltl_text = spec->ToString(vocab_);

  Timer timer;
  CTDB_ASSIGN_OR_RETURN(
      automata::Buchi ba,
      translate::LtlToBuchi(spec, &factory_, options_.translate));
  if (stats != nullptr) stats->translate_ms = timer.ElapsedMillis();
  return RegisterAutomaton(std::move(name), std::move(ltl_text),
                           std::move(ba), std::move(events), stats);
}

Result<uint32_t> ContractDatabase::RegisterAutomaton(std::string name,
                                                     std::string ltl_text,
                                                     automata::Buchi ba,
                                                     Bitset events,
                                                     RegistrationStats* stats) {
  CTDB_OBS_SPAN(span, "register.automaton");
#if CTDB_OBS
  RegistrationStats obs_stats;
  if (stats == nullptr && obs::Enabled()) stats = &obs_stats;
#endif
  CTDB_RETURN_NOT_OK(ba.Validate());
  auto contract = std::make_unique<Contract>();
  contract->id = static_cast<uint32_t>(contracts_.size());
  contract->name = std::move(name);
  contract->ltl_text = std::move(ltl_text);
  contract->events = std::move(events);
  if (stats != nullptr) {
    stats->ba_states = ba.StateCount();
    stats->ba_transitions = ba.TransitionCount();
  }

  Timer timer;
  contract->seed_states = core::ComputeSeedStates(ba);

  timer.Reset();
  if (options_.build_projections) {
    CTDB_OBS_SPAN(proj_span, "register.projections");
    contract->projections = projection::ContractProjections::Precompute(
        std::move(ba), options_.projections, EnsurePool(options_.threads));
    if (stats != nullptr) {
      stats->projection_precompute_ms = timer.ElapsedMillis();
      const projection::ProjectionStats ps = contract->projections.stats();
      stats->projection_subsets = ps.subsets_computed;
      stats->projection_distinct = ps.distinct_partitions;
    }
  } else {
    contract->projections =
        projection::ContractProjections::WrapOnly(std::move(ba));
  }

  if (options_.build_prefilter) {
    timer.Reset();
    CTDB_OBS_SPAN(prefilter_span, "register.prefilter_insert");
    prefilter_.Insert(contract->id, contract->projections.original(),
                      contract->events);
    if (stats != nullptr) stats->prefilter_insert_ms = timer.ElapsedMillis();
  }

  if (stats != nullptr) RecordRegistrationStats(*stats);
  const uint32_t id = contract->id;
  contracts_.push_back(std::move(contract));
  return id;
}

Result<std::vector<uint32_t>> ContractDatabase::RegisterBatch(
    const std::vector<BatchEntry>& entries, size_t threads) {
  // Phase 1 (serial): parse against the shared vocabulary so every event is
  // interned with its final id, and collect each contract's cited events.
  std::vector<Bitset> events(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    CTDB_ASSIGN_OR_RETURN(const ltl::Formula* spec,
                          ltl::Parse(entries[i].ltl_text, &factory_, &vocab_));
    spec->CollectEvents(&events[i]);
  }

  // Phase 2 (parallel): each worker re-parses into a thread-local factory
  // and vocabulary copy (event ids are already fixed), translates, and runs
  // the expensive precomputations. No shared mutable state.
  struct Built {
    Status status = Status::OK();
    std::unique_ptr<Contract> contract;
  };
  std::vector<Built> built(entries.size());
  const Vocabulary vocab_snapshot = vocab_;

  const size_t workers = std::max<size_t>(
      1, std::min(ResolveThreads(threads),
                  entries.size() == 0 ? 1 : entries.size()));
  // With a single worker the batch itself is serial, but each contract's
  // projection precompute can still use the shared executor.
  util::ThreadPool* precompute_pool =
      workers <= 1 ? EnsurePool(options_.threads) : nullptr;

  auto build_range = [&](size_t start, size_t stride) {
    ltl::FormulaFactory local_factory;
    Vocabulary local_vocab = vocab_snapshot;
    for (size_t i = start; i < entries.size(); i += stride) {
      auto spec = ltl::Parse(entries[i].ltl_text, &local_factory,
                             &local_vocab);
      if (!spec.ok()) {
        built[i].status = spec.status();
        continue;
      }
      auto ba = translate::LtlToBuchi(*spec, &local_factory,
                                      options_.translate);
      if (!ba.ok()) {
        built[i].status = ba.status();
        continue;
      }
      auto contract = std::make_unique<Contract>();
      contract->name = entries[i].name;
      contract->ltl_text = entries[i].ltl_text;
      contract->events = events[i];
      contract->seed_states = core::ComputeSeedStates(*ba);
      contract->projections =
          options_.build_projections
              ? projection::ContractProjections::Precompute(
                    std::move(*ba), options_.projections, precompute_pool)
              : projection::ContractProjections::WrapOnly(std::move(*ba));
      built[i].contract = std::move(contract);
    }
  };

  if (workers <= 1) {
    build_range(0, 1);
  } else {
    CTDB_RETURN_NOT_OK(EnsurePool(workers)->ParallelFor(
        0, workers, [&](size_t t) -> Status {
          build_range(t, workers);
          return Status::OK();
        }));
  }
  for (const Built& b : built) {
    CTDB_RETURN_NOT_OK(b.status);
  }

  // Phase 3 (serial): assign ids, fill the shared index, commit.
  std::vector<uint32_t> ids;
  ids.reserve(entries.size());
  for (Built& b : built) {
    b.contract->id = static_cast<uint32_t>(contracts_.size());
    if (options_.build_prefilter) {
      prefilter_.Insert(b.contract->id, b.contract->projections.original(),
                        b.contract->events);
    }
    ids.push_back(b.contract->id);
    contracts_.push_back(std::move(b.contract));
  }
  return ids;
}

Result<QueryResult> ContractDatabase::Query(std::string_view ltl_text,
                                            const QueryOptions& options) {
  ltl::ParseOptions parse_options;
  parse_options.require_known_events = true;
  CTDB_ASSIGN_OR_RETURN(const ltl::Formula* query,
                        ltl::Parse(ltl_text, &factory_, &vocab_,
                                   parse_options));
  return QueryFormula(query, options);
}

void ContractDatabase::CheckCandidate(size_t contract_index,
                                      const automata::Buchi& query_ba,
                                      const Bitset& query_events,
                                      const QueryOptions& options,
                                      std::vector<uint32_t>* matches,
                                      std::vector<LassoWord>* witnesses,
                                      core::PermissionStats* stats) {
  Contract& contract = *contracts_[contract_index];
  const bool use_projection =
      options.use_projections && options_.build_projections;
  const automata::Buchi& contract_ba =
      use_projection ? contract.projections.ForQueryEvents(query_events)
                     : contract.automaton();
  // Seed states were computed on the registered automaton; the quotient has
  // different state ids, so only pass them through when applicable.
  const Bitset* seeds = use_projection ? nullptr : &contract.seed_states;
  if (core::Permits(contract_ba, contract.events, query_ba,
                    options.permission, seeds, stats)) {
    matches->push_back(contract.id);
    if (options.collect_witnesses) {
      // Witnesses come from the *registered* automaton: the simplified
      // projection's labels are projected, so its runs are not directly
      // presentable contract behavior.
      auto witness = core::FindWitness(contract.automaton(), contract.events,
                                       query_ba);
      witnesses->push_back(witness.has_value() ? std::move(*witness)
                                               : LassoWord{});
    }
  }
}

Result<QueryResult> ContractDatabase::QueryFormula(const ltl::Formula* query,
                                                   const QueryOptions& options) {
  QueryResult result;
  result.stats.database_size = contracts_.size();
  Timer total;
  CTDB_OBS_SPAN(query_span, "query");

  // 1. LTL → BA (charged to the query in both modes, §7.3). The translation
  // opens its own "translate" child span.
  Timer phase;
  CTDB_ASSIGN_OR_RETURN(
      const automata::Buchi query_ba,
      translate::LtlToBuchi(query, &factory_, options_.translate));
  result.stats.translate_ms = phase.ElapsedMillis();
  result.stats.query_states = query_ba.StateCount();
  result.stats.query_transitions = query_ba.TransitionCount();

  // 2. Prefilter: pruning condition → candidate set (§4).
  phase.Reset();
  Bitset candidates;
  {
    CTDB_OBS_SPAN(prefilter_span, "query.prefilter");
    if (options.use_prefilter && options_.build_prefilter) {
      const index::Condition condition =
          index::ExtractPruningCondition(query_ba, options.pruning);
      candidates = condition.Evaluate(prefilter_);
    } else {
      candidates = Bitset::AllSet(contracts_.size());
    }
    candidates.Resize(contracts_.size());
    CTDB_OBS_SPAN_ATTR(prefilter_span, "candidates", candidates.Count());
  }
  result.stats.prefilter_ms = phase.ElapsedMillis();
  result.stats.candidates = candidates.Count();

  // 3. Permission checks over candidates (§3.1 / §5.2), on the shared
  // executor when more than one thread is requested.
  phase.Reset();
  CTDB_OBS_SPAN(permission_span, "query.permission");
  const Bitset query_events = query_ba.CitedEvents();

  const std::vector<size_t> candidate_ids = candidates.ToVector();
  const size_t threads =
      std::min(ResolveThreads(options.threads),
               candidate_ids.size() == 0 ? size_t{1} : candidate_ids.size());
  if (threads <= 1) {
    for (size_t idx : candidate_ids) {
      CheckCandidate(idx, query_ba, query_events, options, &result.matches,
                     &result.witnesses, &result.stats.permission);
    }
  } else {
    // Strided static partition (shard t takes candidates t, t+threads, …):
    // spreads expensive contracts across shards, and each contract (and
    // thus each lazy quotient cache) is touched by exactly one shard, so no
    // locking is needed. Results are re-sorted by contract id afterwards.
    struct Shard {
      std::vector<uint32_t> matches;
      std::vector<LassoWord> witnesses;
      core::PermissionStats stats;
    };
    std::vector<Shard> shards(threads);
    CTDB_RETURN_NOT_OK(EnsurePool(threads)->ParallelFor(
        0, threads, [&](size_t t) -> Status {
          for (size_t i = t; i < candidate_ids.size(); i += threads) {
            CheckCandidate(candidate_ids[i], query_ba, query_events, options,
                           &shards[t].matches, &shards[t].witnesses,
                           &shards[t].stats);
          }
          return Status::OK();
        }));
    std::vector<std::pair<uint32_t, LassoWord>> merged;
    for (Shard& shard : shards) {
      for (size_t i = 0; i < shard.matches.size(); ++i) {
        merged.emplace_back(shard.matches[i],
                            options.collect_witnesses
                                ? std::move(shard.witnesses[i])
                                : LassoWord{});
      }
      result.stats.permission.MergeFrom(shard.stats);
    }
    std::sort(merged.begin(), merged.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [id, witness] : merged) {
      result.matches.push_back(id);
      if (options.collect_witnesses) {
        result.witnesses.push_back(std::move(witness));
      }
    }
  }
  result.stats.permission_ms = phase.ElapsedMillis();
  result.stats.matches = result.matches.size();
  result.stats.total_ms = total.ElapsedMillis();
  CTDB_OBS_SPAN_ATTR(query_span, "candidates", result.stats.candidates);
  CTDB_OBS_SPAN_ATTR(query_span, "matches", result.stats.matches);
  RecordQueryStats(result.stats);
  return result;
}

Result<std::vector<QueryResult>> ContractDatabase::QueryBatch(
    const std::vector<std::string>& queries, const QueryOptions& options) {
  // Phase 1 (serial): parse every query against the shared factory and
  // vocabulary, so unknown-event typos fail the whole batch up front (the
  // same contract Query offers — and with require_known_events the parse
  // cannot intern new events, so the snapshot below is complete).
  CTDB_OBS_SPAN(batch_span, "query_batch");
  CTDB_OBS_SPAN_ATTR(batch_span, "queries", queries.size());
  ltl::ParseOptions parse_options;
  parse_options.require_known_events = true;
  std::vector<const ltl::Formula*> formulas(queries.size());
  {
    CTDB_OBS_SPAN(parse_span, "query_batch.parse");
    for (size_t i = 0; i < queries.size(); ++i) {
      auto parsed = ltl::Parse(queries[i], &factory_, &vocab_, parse_options);
      if (!parsed.ok()) {
        return Status(parsed.status().code(),
                      "query " + std::to_string(i) + ": " +
                          parsed.status().message());
      }
      formulas[i] = *parsed;
    }
  }

  std::vector<QueryResult> results(queries.size());
  const size_t threads =
      std::min(ResolveThreads(options.threads),
               queries.size() == 0 ? size_t{1} : queries.size());
  if (threads <= 1) {
    // Serial: exactly a sequence of Query calls.
    for (size_t i = 0; i < queries.size(); ++i) {
      CTDB_ASSIGN_OR_RETURN(results[i], QueryFormula(formulas[i], options));
    }
    return results;
  }
  util::ThreadPool* pool = EnsurePool(threads);

  // Phase 2 (parallel across queries): translate and prefilter. Workers
  // re-parse into thread-local factories (as RegisterBatch does); the
  // prefilter index is read-only here.
  struct Prep {
    Status status = Status::OK();
    automata::Buchi ba;
    Bitset query_events;
    std::vector<size_t> candidates;
  };
  std::vector<Prep> preps(queries.size());
  const Vocabulary vocab_snapshot = vocab_;
  const size_t prep_workers = threads;
  {
    CTDB_OBS_SPAN(prep_span, "query_batch.prep");
    CTDB_RETURN_NOT_OK(pool->ParallelFor(0, prep_workers, [&](size_t t)
                                             -> Status {
      ltl::FormulaFactory local_factory;
      Vocabulary local_vocab = vocab_snapshot;
      for (size_t i = t; i < queries.size(); i += prep_workers) {
        Prep& prep = preps[i];
        QueryStats& stats = results[i].stats;
        stats.database_size = contracts_.size();
        Timer phase;
        auto parsed = ltl::Parse(queries[i], &local_factory, &local_vocab);
        if (!parsed.ok()) {
          prep.status = parsed.status();
          continue;
        }
        auto ba = translate::LtlToBuchi(*parsed, &local_factory,
                                        options_.translate);
        if (!ba.ok()) {
          prep.status = ba.status();
          continue;
        }
        prep.ba = std::move(*ba);
        stats.translate_ms = phase.ElapsedMillis();
        stats.query_states = prep.ba.StateCount();
        stats.query_transitions = prep.ba.TransitionCount();

        phase.Reset();
        Bitset candidates;
        if (options.use_prefilter && options_.build_prefilter) {
          const index::Condition condition =
              index::ExtractPruningCondition(prep.ba, options.pruning);
          candidates = condition.Evaluate(prefilter_);
        } else {
          candidates = Bitset::AllSet(contracts_.size());
        }
        candidates.Resize(contracts_.size());
        stats.prefilter_ms = phase.ElapsedMillis();
        prep.candidates = candidates.ToVector();
        stats.candidates = prep.candidates.size();
        prep.query_events = prep.ba.CitedEvents();
      }
      return Status::OK();
    }));
    for (const Prep& prep : preps) {
      CTDB_RETURN_NOT_OK(prep.status);
    }
  }

  // Phase 3 (parallel across contract shards): permission checks for the
  // whole batch. Sharding is by contract id — shard s owns the contracts
  // with id ≡ s (mod shards) for *every* query — so each contract's lazy
  // quotient cache is touched by exactly one shard (the same invariant the
  // single-query strided partition provides) while being shared across all
  // queries of the batch.
  const size_t shards = threads;
  struct ShardOut {
    std::vector<uint32_t> matches;
    std::vector<LassoWord> witnesses;
    core::PermissionStats stats;
    double elapsed_ms = 0;
  };
  std::vector<ShardOut> out(queries.size() * shards);
  {
    CTDB_OBS_SPAN(perm_span, "query_batch.permission");
    CTDB_OBS_SPAN_ATTR(perm_span, "shards", shards);
    CTDB_RETURN_NOT_OK(pool->ParallelFor(0, shards, [&](size_t s) -> Status {
      for (size_t q = 0; q < queries.size(); ++q) {
        ShardOut& shard = out[q * shards + s];
        Timer timer;
        for (size_t idx : preps[q].candidates) {
          if (idx % shards != s) continue;
          CheckCandidate(idx, preps[q].ba, preps[q].query_events, options,
                         &shard.matches, &shard.witnesses, &shard.stats);
        }
        shard.elapsed_ms = timer.ElapsedMillis();
      }
      return Status::OK();
    }));
  }

  // Phase 4 (serial): merge each query's shards, sorted by contract id.
  CTDB_OBS_SPAN(merge_span, "query_batch.merge");
  for (size_t q = 0; q < queries.size(); ++q) {
    QueryResult& result = results[q];
    std::vector<std::pair<uint32_t, LassoWord>> merged;
    for (size_t s = 0; s < shards; ++s) {
      ShardOut& shard = out[q * shards + s];
      for (size_t i = 0; i < shard.matches.size(); ++i) {
        merged.emplace_back(shard.matches[i],
                            options.collect_witnesses
                                ? std::move(shard.witnesses[i])
                                : LassoWord{});
      }
      result.stats.permission.MergeFrom(shard.stats);
      result.stats.permission_ms += shard.elapsed_ms;
    }
    std::sort(merged.begin(), merged.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [id, witness] : merged) {
      result.matches.push_back(id);
      if (options.collect_witnesses) {
        result.witnesses.push_back(std::move(witness));
      }
    }
    result.stats.matches = result.matches.size();
    result.stats.total_ms = result.stats.translate_ms +
                            result.stats.prefilter_ms +
                            result.stats.permission_ms;
    RecordQueryStats(result.stats);
  }
  return results;
}

obs::MetricsSnapshot ContractDatabase::MetricsSnapshot() const {
  return obs::MetricsRegistry::Default()->Snapshot();
}

size_t ContractDatabase::ContractMemoryUsage() const {
  size_t bytes = 0;
  for (const auto& c : contracts_) {
    bytes += c->automaton().MemoryUsage();
  }
  return bytes;
}

size_t ContractDatabase::ProjectionMemoryUsage() const {
  size_t bytes = 0;
  for (const auto& c : contracts_) {
    bytes += c->projections.stats().partition_memory_bytes;
  }
  return bytes;
}

}  // namespace ctdb::broker
