#include "broker/database.h"

#include <algorithm>
#include <utility>

#include "core/compatibility.h"
#include "ltl/parser.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace ctdb::broker {

namespace {

/// Both registration entry points want timings flushed into the metrics
/// registry even when the caller passed no stats sink: route stats to
/// `fallback` in that case (when the registry is enabled). The fallback
/// struct is flushed by RegisterAutomatonLocked like any caller-provided
/// one.
RegistrationStats* StatsOrObsFallback(RegistrationStats* stats,
                                      RegistrationStats* fallback) {
#if CTDB_OBS
  if (stats == nullptr && obs::Enabled()) return fallback;
#else
  (void)fallback;
#endif
  return stats;
}

}  // namespace

ContractDatabase::ContractDatabase(const DatabaseOptions& options)
    : options_(options),
      prefilter_(options.prefilter),
      translation_cache_(std::make_shared<translate::TranslationCache>(
          options.translation_cache_capacity)) {
  Publish();  // the empty snapshot, so Snapshot() is never null
}

size_t ContractDatabase::ResolveThreads(size_t requested) const {
  const size_t threads = requested == 0 ? options_.threads : requested;
  return threads == 0 ? 1 : threads;
}

util::ThreadPool* ContractDatabase::EnsurePool(size_t threads) const {
  if (threads <= 1) return nullptr;
  // The calling thread participates in ParallelFor, so `threads`-way
  // concurrency needs threads - 1 workers.
  const size_t workers = threads - 1;
  std::lock_guard<std::mutex> lock(pool_mutex_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<util::ThreadPool>(workers);
  } else if (pool_->thread_count() < workers) {
    pool_->Grow(workers);
  }
  return pool_.get();
}

void ContractDatabase::Publish() {
  if (published_vocab_ == nullptr ||
      published_vocab_->size() != vocab_.size()) {
    published_vocab_ = std::make_shared<const Vocabulary>(vocab_);
  }
  auto snapshot = std::make_shared<DatabaseSnapshot>();
  snapshot->options_ = options_;
  snapshot->vocab_ = published_vocab_;
  snapshot->contracts_ = contracts_;
  snapshot->live_ = live_;
  snapshot->live_count_ = live_.Count();
  snapshot->ops_ = ops_;
  snapshot->clock_ = clock_;
  snapshot->history_ = history_;
  snapshot->prefilter_ = prefilter_;
  snapshot->translation_cache_ = translation_cache_;
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_ = std::move(snapshot);
}

Result<uint64_t> ContractDatabase::ResolveClockLocked(uint64_t clock) const {
  if (clock == 0) return clock_ + 1;
  if (clock <= clock_) {
    return Status::InvalidArgument(
        "clock " + std::to_string(clock) + " does not advance the system "
        "clock " + std::to_string(clock_));
  }
  return clock;
}

Result<uint32_t> ContractDatabase::Register(std::string name,
                                            std::string_view ltl_text,
                                            RegistrationStats* stats,
                                            uint64_t clock) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  CTDB_ASSIGN_OR_RETURN(const ltl::Formula* spec,
                        ltl::Parse(ltl_text, &factory_, &vocab_));
  return RegisterFormulaLocked(std::move(name), spec, std::string(ltl_text),
                               stats, clock);
}

Result<uint32_t> ContractDatabase::RegisterFormula(std::string name,
                                                   const ltl::Formula* spec,
                                                   std::string ltl_text,
                                                   RegistrationStats* stats,
                                                   uint64_t clock) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return RegisterFormulaLocked(std::move(name), spec, std::move(ltl_text),
                               stats, clock);
}

Result<uint32_t> ContractDatabase::RegisterFormulaLocked(
    std::string name, const ltl::Formula* spec, std::string ltl_text,
    RegistrationStats* stats, uint64_t clock) {
  CTDB_OBS_SPAN(span, "register");
  RegistrationStats obs_stats;
  stats = StatsOrObsFallback(stats, &obs_stats);
  Bitset events;
  spec->CollectEvents(&events);
  if (ltl_text.empty()) ltl_text = spec->ToString(vocab_);

  Timer timer;
  CTDB_ASSIGN_OR_RETURN(
      automata::Buchi ba,
      translate::LtlToBuchi(spec, &factory_, options_.translate));
  if (stats != nullptr) stats->translate_ms = timer.ElapsedMillis();
  return RegisterAutomatonLocked(std::move(name), std::move(ltl_text),
                                 std::move(ba), std::move(events), stats,
                                 clock);
}

Result<uint32_t> ContractDatabase::RegisterAutomaton(std::string name,
                                                     std::string ltl_text,
                                                     automata::Buchi ba,
                                                     Bitset events,
                                                     RegistrationStats* stats,
                                                     uint64_t clock) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return RegisterAutomatonLocked(std::move(name), std::move(ltl_text),
                                 std::move(ba), std::move(events), stats,
                                 clock);
}

Result<uint32_t> ContractDatabase::RegisterAutomatonLocked(
    std::string name, std::string ltl_text, automata::Buchi ba, Bitset events,
    RegistrationStats* stats, uint64_t clock) {
  CTDB_OBS_SPAN(span, "register.automaton");
  RegistrationStats obs_stats;
  stats = StatsOrObsFallback(stats, &obs_stats);
  // Validation failures return before any master state is touched, so the
  // published snapshot is untouched too.
  CTDB_RETURN_NOT_OK(ba.Validate());
  CTDB_ASSIGN_OR_RETURN(const uint64_t at, ResolveClockLocked(clock));
  auto contract = std::make_unique<Contract>();
  contract->id = static_cast<uint32_t>(contracts_.size());
  contract->name = std::move(name);
  contract->ltl_text = std::move(ltl_text);
  contract->events = std::move(events);
  contract->valid_from = at;
  if (stats != nullptr) {
    stats->ba_states = ba.StateCount();
    stats->ba_transitions = ba.TransitionCount();
  }

  Timer timer;
  contract->seed_states = core::ComputeSeedStates(ba);

  timer.Reset();
  if (options_.build_projections) {
    CTDB_OBS_SPAN(proj_span, "register.projections");
    contract->projections = projection::ContractProjections::Precompute(
        std::move(ba), options_.projections, EnsurePool(options_.threads));
    if (stats != nullptr) {
      stats->projection_precompute_ms = timer.ElapsedMillis();
      const projection::ProjectionStats ps = contract->projections.stats();
      stats->projection_subsets = ps.subsets_computed;
      stats->projection_distinct = ps.distinct_partitions;
    }
  } else {
    contract->projections =
        projection::ContractProjections::WrapOnly(std::move(ba));
  }

  if (options_.build_prefilter) {
    timer.Reset();
    CTDB_OBS_SPAN(prefilter_span, "register.prefilter_insert");
    prefilter_.Insert(contract->id, contract->projections.original(),
                      contract->events);
    if (stats != nullptr) stats->prefilter_insert_ms = timer.ElapsedMillis();
  }

  if (stats != nullptr) RecordRegistrationStats(*stats);
  const uint32_t id = contract->id;
  contracts_.push_back(std::move(contract));
  live_.Resize(contracts_.size());
  live_.Set(id);
  ops_ += 1;
  clock_ = at;
  Publish();
  return id;
}

Result<uint64_t> ContractDatabase::Unregister(uint32_t id, uint64_t clock) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  CTDB_OBS_SPAN(span, "unregister");
  if (id >= contracts_.size() || contracts_[id] == nullptr) {
    return Status::NotFound("contract " + std::to_string(id) +
                            " is not live");
  }
  CTDB_ASSIGN_OR_RETURN(const uint64_t at, ResolveClockLocked(clock));
  std::shared_ptr<const Contract> victim = contracts_[id];
  if (options_.build_prefilter) {
    prefilter_.Remove(id, victim->projections.original(), victim->events);
  }
  history_ = history_->Append(
      ContractVersion{victim, victim->valid_from, at});
  contracts_[id] = nullptr;
  live_.Clear(id);
  ops_ += 1;
  clock_ = at;
  Publish();
  CTDB_OBS_COUNT("broker.unregisters", 1);
  return at;
}

Result<uint64_t> ContractDatabase::Replace(uint32_t id,
                                           std::string_view ltl_text,
                                           RegistrationStats* stats,
                                           uint64_t clock) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  CTDB_OBS_SPAN(span, "replace");
  RegistrationStats obs_stats;
  stats = StatsOrObsFallback(stats, &obs_stats);
  if (id >= contracts_.size() || contracts_[id] == nullptr) {
    return Status::NotFound("contract " + std::to_string(id) +
                            " is not live");
  }
  CTDB_ASSIGN_OR_RETURN(const uint64_t at, ResolveClockLocked(clock));

  // Build the replacement fully before touching master state, so a parse or
  // translation failure leaves the old version live and unobserved.
  CTDB_ASSIGN_OR_RETURN(const ltl::Formula* spec,
                        ltl::Parse(ltl_text, &factory_, &vocab_));
  Bitset events;
  spec->CollectEvents(&events);
  Timer timer;
  CTDB_ASSIGN_OR_RETURN(
      automata::Buchi ba,
      translate::LtlToBuchi(spec, &factory_, options_.translate));
  if (stats != nullptr) stats->translate_ms = timer.ElapsedMillis();
  CTDB_RETURN_NOT_OK(ba.Validate());

  std::shared_ptr<const Contract> old = contracts_[id];
  auto fresh = std::make_unique<Contract>();
  fresh->id = id;
  fresh->name = old->name;
  fresh->ltl_text = std::string(ltl_text);
  fresh->events = std::move(events);
  fresh->valid_from = at;
  if (stats != nullptr) {
    stats->ba_states = ba.StateCount();
    stats->ba_transitions = ba.TransitionCount();
  }
  fresh->seed_states = core::ComputeSeedStates(ba);
  timer.Reset();
  if (options_.build_projections) {
    fresh->projections = projection::ContractProjections::Precompute(
        std::move(ba), options_.projections, EnsurePool(options_.threads));
    if (stats != nullptr) {
      stats->projection_precompute_ms = timer.ElapsedMillis();
      const projection::ProjectionStats ps = fresh->projections.stats();
      stats->projection_subsets = ps.subsets_computed;
      stats->projection_distinct = ps.distinct_partitions;
    }
  } else {
    fresh->projections =
        projection::ContractProjections::WrapOnly(std::move(ba));
  }
  if (options_.build_prefilter) {
    timer.Reset();
    prefilter_.Remove(id, old->projections.original(), old->events);
    prefilter_.Insert(id, fresh->projections.original(), fresh->events);
    if (stats != nullptr) stats->prefilter_insert_ms = timer.ElapsedMillis();
  }
  if (stats != nullptr) RecordRegistrationStats(*stats);

  history_ = history_->Append(ContractVersion{old, old->valid_from, at});
  contracts_[id] = std::move(fresh);
  ops_ += 1;
  clock_ = at;
  Publish();
  CTDB_OBS_COUNT("broker.replacements", 1);
  return at;
}

Result<uint32_t> ContractDatabase::RestoreContract(
    uint32_t id, std::string name, std::string ltl_text, automata::Buchi ba,
    Bitset events, uint64_t valid_from) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  if (id < contracts_.size()) {
    return Status::InvalidArgument("restored contract ids must ascend");
  }
  CTDB_RETURN_NOT_OK(ba.Validate());
  auto contract = std::make_unique<Contract>();
  contract->id = id;
  contract->name = std::move(name);
  contract->ltl_text = std::move(ltl_text);
  contract->events = std::move(events);
  contract->valid_from = valid_from;
  contract->seed_states = core::ComputeSeedStates(ba);
  contract->projections =
      options_.build_projections
          ? projection::ContractProjections::Precompute(
                std::move(ba), options_.projections,
                EnsurePool(options_.threads))
          : projection::ContractProjections::WrapOnly(std::move(ba));
  if (options_.build_prefilter) {
    prefilter_.Insert(id, contract->projections.original(), contract->events);
  }
  contracts_.resize(id);  // intervening slots stay holes
  contracts_.push_back(std::move(contract));
  live_.Resize(contracts_.size());
  live_.Set(id);
  Publish();
  return id;
}

Status ContractDatabase::RestoreHistoryVersion(
    uint32_t id, std::string name, std::string ltl_text, automata::Buchi ba,
    Bitset events, uint64_t valid_from, uint64_t valid_to) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  if (valid_to <= valid_from) {
    return Status::InvalidArgument("history version has an empty period");
  }
  CTDB_RETURN_NOT_OK(ba.Validate());
  auto contract = std::make_shared<Contract>();
  contract->id = id;
  contract->name = std::move(name);
  contract->ltl_text = std::move(ltl_text);
  contract->events = std::move(events);
  contract->valid_from = valid_from;
  contract->seed_states = core::ComputeSeedStates(ba);
  contract->projections =
      options_.build_projections
          ? projection::ContractProjections::Precompute(
                std::move(ba), options_.projections,
                EnsurePool(options_.threads))
          : projection::ContractProjections::WrapOnly(std::move(ba));
  history_ = history_->Append(
      ContractVersion{std::move(contract), valid_from, valid_to});
  Publish();
  return Status::OK();
}

Status ContractDatabase::RestoreLifecycle(uint64_t ops, uint64_t clock,
                                          uint64_t history_floor,
                                          uint64_t slot_count) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  if (slot_count < contracts_.size()) {
    return Status::InvalidArgument("slot count below restored contracts");
  }
  contracts_.resize(slot_count);  // trailing holes
  live_.Resize(contracts_.size());
  if (history_floor > 0) history_ = history_->Prune(history_floor);
  ops_ = ops;
  clock_ = clock;
  Publish();
  return Status::OK();
}

void ContractDatabase::PruneHistory(uint64_t horizon) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  if (horizon == 0) return;
  history_ = history_->Prune(horizon);
  Publish();
}

Result<std::vector<uint32_t>> ContractDatabase::RegisterBatch(
    const std::vector<BatchEntry>& entries, size_t threads,
    const std::vector<uint64_t>* clocks) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  if (clocks != nullptr) {
    if (clocks->size() != entries.size()) {
      return Status::InvalidArgument("clock count does not match batch size");
    }
    uint64_t last = clock_;
    for (uint64_t c : *clocks) {
      if (c <= last) {
        return Status::InvalidArgument(
            "batch clocks must be strictly increasing past the system clock");
      }
      last = c;
    }
  }

  // Phase 1 (serial): parse against the shared vocabulary so every event is
  // interned with its final id, and collect each contract's cited events.
  std::vector<Bitset> events(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    CTDB_ASSIGN_OR_RETURN(const ltl::Formula* spec,
                          ltl::Parse(entries[i].ltl_text, &factory_, &vocab_));
    spec->CollectEvents(&events[i]);
  }

  // Phase 2 (parallel): each worker re-parses into a thread-local factory
  // (read-only against the master vocabulary — every event id is already
  // fixed, and the vocabulary is stable under writer_mutex_), translates,
  // and runs the expensive precomputations. No shared mutable state.
  struct Built {
    Status status = Status::OK();
    std::unique_ptr<Contract> contract;
  };
  std::vector<Built> built(entries.size());

  const size_t workers = std::max<size_t>(
      1, std::min(ResolveThreads(threads),
                  entries.size() == 0 ? 1 : entries.size()));
  // With a single worker the batch itself is serial, but each contract's
  // projection precompute can still use the shared executor.
  util::ThreadPool* precompute_pool =
      workers <= 1 ? EnsurePool(options_.threads) : nullptr;

  auto build_range = [&](size_t start, size_t stride) {
    ltl::FormulaFactory local_factory;
    for (size_t i = start; i < entries.size(); i += stride) {
      auto spec = ltl::Parse(entries[i].ltl_text, &local_factory, vocab_);
      if (!spec.ok()) {
        built[i].status = spec.status();
        continue;
      }
      auto ba = translate::LtlToBuchi(*spec, &local_factory,
                                      options_.translate);
      if (!ba.ok()) {
        built[i].status = ba.status();
        continue;
      }
      auto contract = std::make_unique<Contract>();
      contract->name = entries[i].name;
      contract->ltl_text = entries[i].ltl_text;
      contract->events = events[i];
      contract->seed_states = core::ComputeSeedStates(*ba);
      contract->projections =
          options_.build_projections
              ? projection::ContractProjections::Precompute(
                    std::move(*ba), options_.projections, precompute_pool)
              : projection::ContractProjections::WrapOnly(std::move(*ba));
      built[i].contract = std::move(contract);
    }
  };

  if (workers <= 1) {
    build_range(0, 1);
  } else {
    CTDB_RETURN_NOT_OK(EnsurePool(workers)->ParallelFor(
        0, workers, [&](size_t t) -> Status {
          build_range(t, workers);
          return Status::OK();
        }));
  }
  for (const Built& b : built) {
    CTDB_RETURN_NOT_OK(b.status);
  }

  // Phase 3 (serial): assign ids and clocks, fill the shared index, commit.
  // One publication at the end — queries observe the whole batch or none of
  // it.
  std::vector<uint32_t> ids;
  ids.reserve(entries.size());
  for (size_t i = 0; i < built.size(); ++i) {
    Built& b = built[i];
    b.contract->id = static_cast<uint32_t>(contracts_.size());
    b.contract->valid_from = clocks != nullptr ? (*clocks)[i] : clock_ + 1;
    if (options_.build_prefilter) {
      prefilter_.Insert(b.contract->id, b.contract->projections.original(),
                        b.contract->events);
    }
    ids.push_back(b.contract->id);
    contracts_.push_back(std::move(b.contract));
    live_.Resize(contracts_.size());
    live_.Set(ids.back());
    ops_ += 1;
    clock_ = contracts_.back()->valid_from;
  }
  Publish();
  return ids;
}

Result<EventId> ContractDatabase::InternEvent(std::string_view name) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  CTDB_ASSIGN_OR_RETURN(EventId id, vocab_.Intern(name));
  Publish();
  return id;
}

Result<QueryResult> ContractDatabase::Query(std::string_view ltl_text,
                                            const QueryOptions& options) const {
  const std::shared_ptr<const DatabaseSnapshot> snapshot = Snapshot();
  return snapshot->Query(ltl_text, options,
                         EnsurePool(ResolveThreads(options.threads)));
}

Result<QueryResult> ContractDatabase::QueryFormula(
    const ltl::Formula* query, const QueryOptions& options) const {
  const std::shared_ptr<const DatabaseSnapshot> snapshot = Snapshot();
  return snapshot->QueryFormula(query, options,
                                EnsurePool(ResolveThreads(options.threads)));
}

Result<std::vector<QueryResult>> ContractDatabase::QueryBatch(
    const std::vector<std::string>& queries,
    const QueryOptions& options) const {
  const std::shared_ptr<const DatabaseSnapshot> snapshot = Snapshot();
  return snapshot->QueryBatch(queries, options,
                              EnsurePool(ResolveThreads(options.threads)));
}

obs::MetricsSnapshot ContractDatabase::MetricsSnapshot() const {
  return obs::MetricsRegistry::Default()->Snapshot();
}

}  // namespace ctdb::broker
