#include "broker/durable.h"

#include <cinttypes>

#include <algorithm>
#include <future>
#include <sstream>
#include <utility>

#include "broker/persistence.h"
#include "obs/metrics.h"
#include "util/crash_point.h"
#include "util/file_util.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "wal/record.h"
#include "wal/segment.h"

namespace ctdb::broker {

std::string CheckpointFileName(uint64_t sequence) {
  return StringFormat("checkpoint-%012" PRIu64 ".ctdb", sequence);
}

bool ParseCheckpointFileName(std::string_view name, uint64_t* sequence) {
  constexpr std::string_view kPrefix = "checkpoint-";
  constexpr std::string_view kSuffix = ".ctdb";
  if (!StartsWith(name, kPrefix) ||
      name.size() <= kPrefix.size() + kSuffix.size() ||
      name.substr(name.size() - kSuffix.size()) != kSuffix) {
    return false;
  }
  const std::string_view digits =
      name.substr(kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
  if (digits.empty() || digits.size() > 20) return false;
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *sequence = value;
  return true;
}

Result<std::unique_ptr<ContractDatabase>> RecoverDatabase(
    const std::string& dir, const DatabaseOptions& options,
    RecoveryStats* stats_out) {
  Timer total;
  RecoveryStats stats;
  CTDB_ASSIGN_OR_RETURN(std::vector<std::string> names, util::ListDir(dir));

  std::vector<std::pair<uint64_t, std::string>> segments;     // (index, name)
  std::vector<std::pair<uint64_t, std::string>> checkpoints;  // (sequence, name)
  for (const std::string& name : names) {
    uint64_t value = 0;
    if (wal::ParseSegmentFileName(name, &value)) {
      segments.emplace_back(value, name);
    } else if (ParseCheckpointFileName(name, &value)) {
      checkpoints.emplace_back(value, name);
    }
    // Anything else (stale .tmp files, foreign files) is ignored.
  }
  std::sort(segments.begin(), segments.end());
  std::sort(checkpoints.begin(), checkpoints.end());

  // Newest checkpoint that deserializes cleanly wins; a corrupt newer one
  // falls back to an older one (the log below it still exists — segments
  // are only deleted once a *newer* checkpoint record is durable, so the
  // fallback replays correspondingly more log).
  std::unique_ptr<ContractDatabase> db;
  uint64_t base = 0;
  Timer checkpoint_timer;
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    auto loaded = LoadDatabaseFromFile(dir + "/" + it->second, options);
    // A checkpoint is named by the mutation count it covers (not the live
    // contract count — unregistration decouples the two).
    if (loaded.ok() && (*loaded)->op_count() == it->first) {
      db = std::move(*loaded);
      base = it->first;
      stats.checkpoint_sequence = base;
      stats.checkpoint_file = it->second;
      break;
    }
    ++stats.checkpoints_skipped;
  }
  stats.checkpoint_load_ms = checkpoint_timer.ElapsedMillis();
  if (db == nullptr) db = std::make_unique<ContractDatabase>(options);

  Timer replay_timer;
  uint64_t next_expected = base + 1;
  uint64_t max_index = 0;
  for (const auto& [index, name] : segments) {
    max_index = std::max(max_index, index);
    CTDB_ASSIGN_OR_RETURN(std::string data,
                          util::ReadFileToString(dir + "/" + name));
    wal::ParsedSegment parsed;
    const Status status = wal::ParseSegment(data, &parsed);
    if (!status.ok()) {
      return Status::Corruption(name + ": " + status.message());
    }
    ++stats.segments_scanned;
    stats.bytes_scanned += data.size();
    if (parsed.torn_tail) stats.tail_truncated = true;

    uint64_t segment_max_sequence = 0;
    for (const wal::Record& record : parsed.records) {
      if (record.type == wal::RecordType::kCheckpoint) continue;
      segment_max_sequence = std::max(segment_max_sequence, record.sequence);
      if (record.sequence <= base) {
        ++stats.records_skipped;
        continue;
      }
      if (record.sequence != next_expected) {
        return Status::Corruption(StringFormat(
            "mutation sequence gap in %s: expected %" PRIu64 ", found %" PRIu64,
            name.c_str(), next_expected, record.sequence));
      }
      // Replay with the recorded system-period clock so valid periods (and
      // therefore as_of answers) reproduce exactly, sharded or not.
      switch (record.type) {
        case wal::RecordType::kRegister: {
          auto id = db->Register(record.name, record.ltl_text, nullptr,
                                 record.clock);
          if (!id.ok()) {
            return Status::Corruption(
                StringFormat("replay of record %" PRIu64, record.sequence) +
                " failed: " + id.status().ToString());
          }
          if (*id != record.contract_id) {
            return Status::Corruption(StringFormat(
                "replayed record %" PRIu64 " got contract id %u, logged %u",
                record.sequence, *id, record.contract_id));
          }
          break;
        }
        case wal::RecordType::kUnregister: {
          auto at = db->Unregister(record.contract_id, record.clock);
          if (!at.ok()) {
            return Status::Corruption(
                StringFormat("replay of unregister %" PRIu64, record.sequence) +
                " failed: " + at.status().ToString());
          }
          break;
        }
        case wal::RecordType::kReplace: {
          auto at = db->Replace(record.contract_id, record.ltl_text, nullptr,
                                record.clock);
          if (!at.ok()) {
            return Status::Corruption(
                StringFormat("replay of replace %" PRIu64, record.sequence) +
                " failed: " + at.status().ToString());
          }
          break;
        }
        case wal::RecordType::kCheckpoint:
          break;  // unreachable: skipped above
      }
      ++next_expected;
      ++stats.records_replayed;
    }
    stats.sealed_segments.push_back(
        wal::LogWriter::SegmentInfo{index, segment_max_sequence, data.size()});
  }
  stats.replay_ms = replay_timer.ElapsedMillis();
  stats.last_sequence = next_expected - 1;
  stats.next_segment_index = segments.empty() ? 1 : max_index + 1;

  CTDB_OBS_COUNT("wal.recovery.runs", 1);
  CTDB_OBS_COUNT("wal.recovery.records", stats.records_replayed);
  CTDB_OBS_COUNT("wal.recovery.segments", stats.segments_scanned);
  CTDB_OBS_COUNT("wal.recovery.truncated_tails", stats.tail_truncated ? 1 : 0);
  CTDB_OBS_HIST("wal.recovery.ms", static_cast<uint64_t>(total.ElapsedMillis()));
  if (stats_out != nullptr) *stats_out = stats;
  return db;
}

DurableDatabase::DurableDatabase(std::string dir,
                                 const wal::DurabilityOptions& durability,
                                 std::unique_ptr<ContractDatabase> db,
                                 std::unique_ptr<wal::LogWriter> writer,
                                 RecoveryStats recovery_stats)
    : dir_(std::move(dir)),
      durability_(durability),
      db_(std::move(db)),
      writer_(std::move(writer)),
      recovery_stats_(std::move(recovery_stats)),
      sequence_(recovery_stats_.last_sequence) {}

Result<std::unique_ptr<DurableDatabase>> DurableDatabase::Open(
    std::string dir, const wal::DurabilityOptions& durability,
    const DatabaseOptions& options) {
  CTDB_RETURN_NOT_OK(util::CreateDirIfMissing(dir));
  RecoveryStats stats;
  CTDB_ASSIGN_OR_RETURN(std::unique_ptr<ContractDatabase> db,
                        RecoverDatabase(dir, options, &stats));
  CTDB_ASSIGN_OR_RETURN(
      std::unique_ptr<wal::LogWriter> writer,
      wal::LogWriter::Open(dir, stats.next_segment_index, durability,
                           stats.sealed_segments));
  return std::unique_ptr<DurableDatabase>(
      new DurableDatabase(std::move(dir), durability, std::move(db),
                          std::move(writer), std::move(stats)));
}

DurableDatabase::~DurableDatabase() { Close(); }

Result<uint32_t> DurableDatabase::Register(std::string name,
                                           std::string_view ltl_text,
                                           RegistrationStats* stats) {
  return RegisterWithClock(std::move(name), ltl_text, stats, 0);
}

Result<uint32_t> DurableDatabase::RegisterWithClock(std::string name,
                                                    std::string_view ltl_text,
                                                    RegistrationStats* stats,
                                                    uint64_t clock) {
  std::future<Status> durable;
  Result<uint32_t> id = [&]() -> Result<uint32_t> {
    std::lock_guard<std::mutex> lock(append_mutex_);
    if (closed_.load(std::memory_order_relaxed)) {
      return Status::InvalidArgument("durable database is closed");
    }
    auto result = db_->Register(name, ltl_text, stats, clock);
    if (!result.ok()) return result;
    sequence_ += 1;
    durable = writer_->AppendAsync(
        wal::Record::Register(sequence_, db_->last_sequence(), *result,
                              std::move(name), std::string(ltl_text)));
    return result;
  }();
  if (!id.ok()) return id;
  CTDB_RETURN_NOT_OK(durable.get());
  MaybeScheduleCheckpoint();
  return id;
}

Result<std::vector<uint32_t>> DurableDatabase::RegisterBatch(
    const std::vector<ContractDatabase::BatchEntry>& entries) {
  return RegisterBatchWithClocks(entries, nullptr);
}

Result<std::vector<uint32_t>> DurableDatabase::RegisterBatchWithClocks(
    const std::vector<ContractDatabase::BatchEntry>& entries,
    const std::vector<uint64_t>* clocks) {
  std::vector<std::future<Status>> durable;
  Result<std::vector<uint32_t>> ids = [&]() -> Result<std::vector<uint32_t>> {
    std::lock_guard<std::mutex> lock(append_mutex_);
    if (closed_.load(std::memory_order_relaxed)) {
      return Status::InvalidArgument("durable database is closed");
    }
    auto result = db_->RegisterBatch(entries, 0, clocks);
    if (!result.ok()) return result;
    // Each record logs its contract's actual valid_from so replay with
    // explicit clocks reproduces the same periods.
    const std::shared_ptr<const DatabaseSnapshot> snapshot = db_->Snapshot();
    durable.reserve(entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
      sequence_ += 1;
      durable.push_back(writer_->AppendAsync(wal::Record::Register(
          sequence_, snapshot->contract((*result)[i]).valid_from, (*result)[i],
          entries[i].name, entries[i].ltl_text)));
    }
    return result;
  }();
  if (!ids.ok()) return ids;
  Status status;
  for (std::future<Status>& f : durable) {
    const Status s = f.get();
    if (status.ok() && !s.ok()) status = s;
  }
  CTDB_RETURN_NOT_OK(status);
  MaybeScheduleCheckpoint();
  return ids;
}

Result<uint64_t> DurableDatabase::UnregisterWithClock(uint32_t id,
                                                      uint64_t clock) {
  std::future<Status> durable;
  Result<uint64_t> at = [&]() -> Result<uint64_t> {
    std::lock_guard<std::mutex> lock(append_mutex_);
    if (closed_.load(std::memory_order_relaxed)) {
      return Status::InvalidArgument("durable database is closed");
    }
    auto result = db_->Unregister(id, clock);
    if (!result.ok()) return result;
    util::CrashPoint("durable.unregister.after_apply");
    sequence_ += 1;
    durable =
        writer_->AppendAsync(wal::Record::Unregister(sequence_, *result, id));
    return result;
  }();
  if (!at.ok()) return at;
  CTDB_RETURN_NOT_OK(durable.get());
  MaybeScheduleCheckpoint();
  return at;
}

Result<uint64_t> DurableDatabase::ReplaceWithClock(uint32_t id,
                                                   std::string_view ltl_text,
                                                   RegistrationStats* stats,
                                                   uint64_t clock) {
  std::future<Status> durable;
  Result<uint64_t> at = [&]() -> Result<uint64_t> {
    std::lock_guard<std::mutex> lock(append_mutex_);
    if (closed_.load(std::memory_order_relaxed)) {
      return Status::InvalidArgument("durable database is closed");
    }
    auto result = db_->Replace(id, ltl_text, stats, clock);
    if (!result.ok()) return result;
    util::CrashPoint("durable.replace.after_apply");
    sequence_ += 1;
    durable = writer_->AppendAsync(wal::Record::Replace(
        sequence_, *result, id, std::string(ltl_text)));
    return result;
  }();
  if (!at.ok()) return at;
  CTDB_RETURN_NOT_OK(durable.get());
  MaybeScheduleCheckpoint();
  return at;
}

Result<monitor::StreamOpenInfo> DurableDatabase::StreamOpen(
    std::string name, const monitor::StreamOptions& options) {
  if (closed_.load(std::memory_order_relaxed)) {
    return Status::Unavailable("durable database is closed");
  }
  return monitor_.Open(std::move(name), db_->Snapshot(), options);
}

Result<monitor::StreamAppendResult> DurableDatabase::StreamAppend(
    std::string_view name, const monitor::EventBatch& events) {
  if (closed_.load(std::memory_order_relaxed)) {
    return Status::Unavailable("durable database is closed");
  }
  return monitor_.Append(name, events);
}

Result<monitor::StreamCloseInfo> DurableDatabase::StreamClose(
    std::string_view name) {
  // Allowed even while closing: the stream pinned its snapshot at open, so
  // the summary needs nothing from the log.
  return monitor_.Close(name);
}

Status DurableDatabase::Checkpoint() {
  std::lock_guard<std::mutex> lock(checkpoint_mutex_);
  Timer timer;
  // Retention first: checkpoints are the GC boundary, so history older than
  // the configured window is dropped before the image pins it (ISSUE 9 —
  // the checkpoint-GC story generalized to a retention policy).
  const uint64_t keep = db_->options().retention.keep_history_seqs;
  if (keep > 0) {
    const uint64_t clock = db_->last_sequence();
    if (clock > keep) db_->PruneHistory(clock - keep);
  }
  // Pin: the snapshot is immutable, its op count is the sequence it covers.
  const std::shared_ptr<const DatabaseSnapshot> snapshot = db_->Snapshot();
  const uint64_t sequence = snapshot->ops();
  std::ostringstream image;
  CTDB_RETURN_NOT_OK(SaveSnapshot(*snapshot, &image));
  const std::string file = CheckpointFileName(sequence);
  CTDB_RETURN_NOT_OK(util::WriteFileAtomic(dir_ + "/" + file, image.str()));
  util::CrashPoint("wal.checkpoint.after_publish");
  // Seal the log below the checkpoint so covered segments become deletable;
  // the kCheckpoint record lands in the fresh segment.
  CTDB_RETURN_NOT_OK(writer_->RotateSegment());
  CTDB_RETURN_NOT_OK(writer_->Append(wal::Record::Checkpoint(sequence, file)));
  util::CrashPoint("wal.checkpoint.after_record");
  writer_->ResetBytesSinceCheckpoint();
  CTDB_RETURN_NOT_OK(writer_->DeleteSegmentsCoveredBy(sequence));
  DeleteOldCheckpoints(sequence);
  CTDB_OBS_COUNT("wal.checkpoints", 1);
  CTDB_OBS_HIST("wal.checkpoint_ms",
                static_cast<uint64_t>(timer.ElapsedMillis()));
  return Status::OK();
}

Status DurableDatabase::Close() {
  closed_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(checkpoint_thread_mutex_);
    if (checkpoint_thread_.joinable()) checkpoint_thread_.join();
  }
  return writer_->Close();
}

void DurableDatabase::MaybeScheduleCheckpoint() {
  if (durability_.checkpoint_log_bytes == 0 ||
      writer_->bytes_since_checkpoint() < durability_.checkpoint_log_bytes) {
    return;
  }
  if (checkpoint_running_.exchange(true)) return;
  std::lock_guard<std::mutex> lock(checkpoint_thread_mutex_);
  if (closed_.load(std::memory_order_relaxed)) {
    checkpoint_running_.store(false);
    return;
  }
  if (checkpoint_thread_.joinable()) checkpoint_thread_.join();
  checkpoint_thread_ = std::thread([this] {
    // A failed background checkpoint is retried once the next registration
    // crosses the threshold again (bytes_since_checkpoint keeps growing).
    (void)Checkpoint();
    checkpoint_running_.store(false);
  });
}

void DurableDatabase::DeleteOldCheckpoints(uint64_t sequence) {
  auto names = util::ListDir(dir_);
  if (!names.ok()) return;
  for (const std::string& name : *names) {
    uint64_t old_sequence = 0;
    const bool stale_checkpoint =
        ParseCheckpointFileName(name, &old_sequence) && old_sequence < sequence;
    // Orphaned atomic-write temps (crash before rename) are safe to drop:
    // only the serialized checkpointer creates them.
    const bool stale_tmp =
        name.size() > 4 && name.substr(name.size() - 4) == ".tmp" &&
        name != CheckpointFileName(sequence) + ".tmp";
    if (stale_checkpoint || stale_tmp) {
      (void)util::RemoveFileIfExists(dir_ + "/" + name);
    }
  }
}

}  // namespace ctdb::broker
