#include "broker/snapshot.h"

#include <algorithm>
#include <utility>

#include "core/compatibility.h"
#include "core/witness.h"
#include "ltl/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ctdb::broker {

size_t DatabaseSnapshot::ResolveThreads(size_t requested,
                                        const util::ThreadPool* pool) const {
  if (pool == nullptr) return 1;  // no executor: inline on the caller
  const size_t threads = requested == 0 ? options_.threads : requested;
  return threads == 0 ? 1 : threads;
}

Result<QueryResult> DatabaseSnapshot::Query(std::string_view ltl_text,
                                            const QueryOptions& options,
                                            util::ThreadPool* pool) const {
  // Parse with a local factory, read-only against the snapshot vocabulary:
  // unknown events are a NotFound error and nothing shared is touched.
  ltl::FormulaFactory factory;
  CTDB_ASSIGN_OR_RETURN(const ltl::Formula* query,
                        ltl::Parse(ltl_text, &factory, *vocab_));
  return RunQuery(query, &factory, options, pool);
}

Result<QueryResult> DatabaseSnapshot::QueryFormula(
    const ltl::Formula* query, const QueryOptions& options,
    util::ThreadPool* pool) const {
  // The translation below rebuilds `query` into this local factory (NNF
  // normalization copies the formula first), so callers may pass formulas
  // owned by any factory — including the database's shared one — without
  // the read path interning into it.
  ltl::FormulaFactory factory;
  return RunQuery(query, &factory, options, pool);
}

void DatabaseSnapshot::CheckCandidate(const Contract& contract,
                                      const automata::Buchi& query_ba,
                                      const Bitset& query_events,
                                      const QueryOptions& options,
                                      std::vector<uint32_t>* matches,
                                      std::vector<LassoWord>* witnesses,
                                      core::PermissionStats* stats) const {
  const bool use_projection =
      options.use_projections && options_.build_projections;
  const automata::Buchi& contract_ba =
      use_projection ? contract.projections.ForQueryEvents(query_events)
                     : contract.automaton();
  // Seed states were computed on the registered automaton; the quotient has
  // different state ids, so only pass them through when applicable.
  const Bitset* seeds = use_projection ? nullptr : &contract.seed_states;
  if (core::Permits(contract_ba, contract.events, query_ba,
                    options.permission, seeds, stats)) {
    matches->push_back(contract.id);
    if (options.collect_witnesses) {
      // Witnesses come from the *registered* automaton: the simplified
      // projection's labels are projected, so its runs are not directly
      // presentable contract behavior.
      auto witness = core::FindWitness(contract.automaton(), contract.events,
                                       query_ba);
      witnesses->push_back(witness.has_value() ? std::move(*witness)
                                               : LassoWord{});
    }
  }
}

Result<QueryResult> DatabaseSnapshot::RunQuery(const ltl::Formula* query,
                                               ltl::FormulaFactory* factory,
                                               const QueryOptions& options,
                                               util::ThreadPool* pool) const {
  QueryResult result;
  result.stats.database_size = live_count_;
  Timer total;
  CTDB_OBS_SPAN(query_span, "query");

  // 1. LTL → BA (charged to the query in both modes, §7.3), through the
  // shared translation cache when the database configured one: a repeated
  // query structure costs one canonical-key build and a hash probe instead
  // of the tableau pipeline. The miss path opens its own "translate" span.
  Timer phase;
  bool cache_hit = false;
  CTDB_ASSIGN_OR_RETURN(
      const std::shared_ptr<const automata::Buchi> query_ba_ptr,
      translate::LtlToBuchiCached(query, factory, translation_cache_.get(),
                                  options_.translate, nullptr, &cache_hit));
  const automata::Buchi& query_ba = *query_ba_ptr;
  result.stats.translate_ms = phase.ElapsedMillis();
  result.stats.translate_cache_hit = cache_hit;
  result.stats.query_states = query_ba.StateCount();
  result.stats.query_transitions = query_ba.TransitionCount();

  // Time travel: an as_of clock strictly before this snapshot's diverts to
  // the historical engine (full scan over the reconstructed version set); a
  // clock at or past the snapshot is just "latest" and stays on this path.
  if (options.as_of != 0 && options.as_of < clock_) {
    return RunQueryAsOf(query_ba, options, std::move(result), &total);
  }

  // 2. Prefilter: pruning condition → candidate set (§4). Dead contracts
  // are scrubbed from the index by Unregister/Replace, but the live mask is
  // ANDed in anyway — exactness must not hinge on index hygiene.
  phase.Reset();
  Bitset candidates;
  {
    CTDB_OBS_SPAN(prefilter_span, "query.prefilter");
    if (options.use_prefilter && options_.build_prefilter) {
      const index::Condition condition =
          index::ExtractPruningCondition(query_ba, options.pruning);
      candidates = condition.Evaluate(prefilter_);
      candidates.Resize(contracts_.size());
      candidates &= live_;
    } else {
      candidates = live_;
    }
    CTDB_OBS_SPAN_ATTR(prefilter_span, "candidates", candidates.Count());
  }
  result.stats.prefilter_ms = phase.ElapsedMillis();
  result.stats.candidates = candidates.Count();

  // 3. Permission checks over candidates (§3.1 / §5.2), on the given
  // executor when more than one thread is requested.
  phase.Reset();
  CTDB_OBS_SPAN(permission_span, "query.permission");
  const Bitset query_events = query_ba.CitedEvents();

  const std::vector<size_t> candidate_ids = candidates.ToVector();
  const size_t threads =
      std::min(ResolveThreads(options.threads, pool),
               candidate_ids.size() == 0 ? size_t{1} : candidate_ids.size());
  if (threads <= 1) {
    for (size_t idx : candidate_ids) {
      CheckCandidate(*contracts_[idx], query_ba, query_events, options,
                     &result.matches, &result.witnesses,
                     &result.stats.permission);
    }
  } else {
    // Strided static partition (shard t takes candidates t, t+threads, …):
    // spreads expensive contracts across shards. Concurrent shards may touch
    // the same contract only across *different* queries; within this query
    // each contract belongs to exactly one shard, and the lazy quotient
    // caches are internally synchronized anyway. Results are re-sorted by
    // contract id afterwards.
    struct Shard {
      std::vector<uint32_t> matches;
      std::vector<LassoWord> witnesses;
      core::PermissionStats stats;
    };
    std::vector<Shard> shards(threads);
    CTDB_RETURN_NOT_OK(pool->ParallelFor(0, threads, [&](size_t t) -> Status {
      for (size_t i = t; i < candidate_ids.size(); i += threads) {
        CheckCandidate(*contracts_[candidate_ids[i]], query_ba, query_events,
                       options, &shards[t].matches, &shards[t].witnesses,
                       &shards[t].stats);
      }
      return Status::OK();
    }));
    std::vector<std::pair<uint32_t, LassoWord>> merged;
    for (Shard& shard : shards) {
      for (size_t i = 0; i < shard.matches.size(); ++i) {
        merged.emplace_back(shard.matches[i],
                            options.collect_witnesses
                                ? std::move(shard.witnesses[i])
                                : LassoWord{});
      }
      result.stats.permission.MergeFrom(shard.stats);
    }
    std::sort(merged.begin(), merged.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [id, witness] : merged) {
      result.matches.push_back(id);
      if (options.collect_witnesses) {
        result.witnesses.push_back(std::move(witness));
      }
    }
  }
  result.stats.permission_ms = phase.ElapsedMillis();
  result.stats.matches = result.matches.size();
  result.stats.total_ms = total.ElapsedMillis();
  CTDB_OBS_SPAN_ATTR(query_span, "candidates", result.stats.candidates);
  CTDB_OBS_SPAN_ATTR(query_span, "matches", result.stats.matches);
  RecordQueryStats(result.stats);
  return result;
}

std::vector<const Contract*> DatabaseSnapshot::VisibleAt(uint64_t seq) const {
  // At any clock a contract id has at most one visible version: live
  // versions are open-ended ([valid_from, ∞)) and historical periods of the
  // same id are disjoint (each Replace closes the old period exactly where
  // the new one opens).
  std::vector<const Contract*> visible;
  for (const auto& c : contracts_) {
    if (c != nullptr && c->valid_from <= seq) visible.push_back(c.get());
  }
  for (const ContractVersion& v : history_->versions()) {
    if (v.VisibleAt(seq)) visible.push_back(v.contract.get());
  }
  std::sort(visible.begin(), visible.end(),
            [](const Contract* a, const Contract* b) { return a->id < b->id; });
  return visible;
}

Result<QueryResult> DatabaseSnapshot::RunQueryAsOf(
    const automata::Buchi& query_ba, const QueryOptions& options,
    QueryResult result, Timer* total) const {
  if (options.as_of < history_->floor()) {
    return Status::InvalidArgument(
        "as_of " + std::to_string(options.as_of) +
        " is below the retention floor " + std::to_string(history_->floor()) +
        ": history there has been discarded");
  }
  CTDB_OBS_SPAN(asof_span, "query.as_of");
  CTDB_OBS_COUNT("broker.queries.as_of", 1);
  Timer phase;
  const std::vector<const Contract*> visible = VisibleAt(options.as_of);
  result.stats.database_size = visible.size();
  result.stats.prefilter_ms = phase.ElapsedMillis();
  result.stats.candidates = visible.size();

  // Full scan: every visible version gets a real permission check. The
  // prefilter only indexes live contracts, so using it here could drop
  // historical matches — exactness wins over speed for audit queries.
  phase.Reset();
  const Bitset query_events = query_ba.CitedEvents();
  for (const Contract* contract : visible) {
    CheckCandidate(*contract, query_ba, query_events, options,
                   &result.matches, &result.witnesses,
                   &result.stats.permission);
  }
  result.stats.permission_ms = phase.ElapsedMillis();
  result.stats.matches = result.matches.size();
  result.stats.total_ms = total->ElapsedMillis();
  CTDB_OBS_SPAN_ATTR(asof_span, "visible", visible.size());
  CTDB_OBS_SPAN_ATTR(asof_span, "matches", result.stats.matches);
  RecordQueryStats(result.stats);
  return result;
}

Result<std::vector<QueryResult>> DatabaseSnapshot::QueryBatch(
    const std::vector<std::string>& queries, const QueryOptions& options,
    util::ThreadPool* pool) const {
  // Phase 1 (serial): parse every query read-only against the snapshot
  // vocabulary, so unknown-event typos fail the whole batch up front (the
  // same contract Query offers).
  CTDB_OBS_SPAN(batch_span, "query_batch");
  CTDB_OBS_SPAN_ATTR(batch_span, "queries", queries.size());
  ltl::FormulaFactory factory;
  std::vector<const ltl::Formula*> formulas(queries.size());
  {
    CTDB_OBS_SPAN(parse_span, "query_batch.parse");
    for (size_t i = 0; i < queries.size(); ++i) {
      auto parsed = ltl::Parse(queries[i], &factory, *vocab_);
      if (!parsed.ok()) {
        return Status(parsed.status().code(),
                      "query " + std::to_string(i) + ": " +
                          parsed.status().message());
      }
      formulas[i] = *parsed;
    }
  }

  std::vector<QueryResult> results(queries.size());
  // Historical batches take the serial path unconditionally: the parallel
  // phases below are built around the live prefilter, while as-of
  // evaluation is a per-query full scan (RunQuery diverts internally).
  const size_t threads =
      options.as_of != 0
          ? 1
          : std::min(ResolveThreads(options.threads, pool),
                     queries.size() == 0 ? size_t{1} : queries.size());
  if (threads <= 1) {
    // Serial: exactly a sequence of Query calls.
    for (size_t i = 0; i < queries.size(); ++i) {
      CTDB_ASSIGN_OR_RETURN(results[i],
                            RunQuery(formulas[i], &factory, options, nullptr));
    }
    return results;
  }

  // Phase 2 (parallel across queries): translate and prefilter. Workers
  // parse into thread-local factories; every shared structure they read
  // (vocabulary, prefilter) is frozen in this snapshot.
  struct Prep {
    Status status = Status::OK();
    std::shared_ptr<const automata::Buchi> ba;
    Bitset query_events;
    std::vector<size_t> candidates;
  };
  std::vector<Prep> preps(queries.size());
  const size_t prep_workers = threads;
  {
    CTDB_OBS_SPAN(prep_span, "query_batch.prep");
    CTDB_RETURN_NOT_OK(pool->ParallelFor(0, prep_workers, [&](size_t t)
                                             -> Status {
      ltl::FormulaFactory local_factory;
      for (size_t i = t; i < queries.size(); i += prep_workers) {
        Prep& prep = preps[i];
        QueryStats& stats = results[i].stats;
        stats.database_size = live_count_;
        Timer phase;
        auto parsed = ltl::Parse(queries[i], &local_factory, *vocab_);
        if (!parsed.ok()) {
          prep.status = parsed.status();
          continue;
        }
        bool cache_hit = false;
        auto ba = translate::LtlToBuchiCached(*parsed, &local_factory,
                                              translation_cache_.get(),
                                              options_.translate, nullptr,
                                              &cache_hit);
        if (!ba.ok()) {
          prep.status = ba.status();
          continue;
        }
        prep.ba = std::move(*ba);
        stats.translate_ms = phase.ElapsedMillis();
        stats.translate_cache_hit = cache_hit;
        stats.query_states = prep.ba->StateCount();
        stats.query_transitions = prep.ba->TransitionCount();

        phase.Reset();
        Bitset candidates;
        if (options.use_prefilter && options_.build_prefilter) {
          const index::Condition condition =
              index::ExtractPruningCondition(*prep.ba, options.pruning);
          candidates = condition.Evaluate(prefilter_);
          candidates.Resize(contracts_.size());
          candidates &= live_;
        } else {
          candidates = live_;
        }
        stats.prefilter_ms = phase.ElapsedMillis();
        prep.candidates = candidates.ToVector();
        stats.candidates = prep.candidates.size();
        prep.query_events = prep.ba->CitedEvents();
      }
      return Status::OK();
    }));
    for (const Prep& prep : preps) {
      CTDB_RETURN_NOT_OK(prep.status);
    }
  }

  // Phase 3 (parallel across contract shards): permission checks for the
  // whole batch. Sharding is by contract id — shard s owns the contracts
  // with id ≡ s (mod shards) for *every* query — so each contract's lazy
  // quotient cache is touched by exactly one shard (the same invariant the
  // single-query strided partition provides) while being shared across all
  // queries of the batch.
  const size_t shards = threads;
  struct ShardOut {
    std::vector<uint32_t> matches;
    std::vector<LassoWord> witnesses;
    core::PermissionStats stats;
    double elapsed_ms = 0;
  };
  std::vector<ShardOut> out(queries.size() * shards);
  {
    CTDB_OBS_SPAN(perm_span, "query_batch.permission");
    CTDB_OBS_SPAN_ATTR(perm_span, "shards", shards);
    CTDB_RETURN_NOT_OK(pool->ParallelFor(0, shards, [&](size_t s) -> Status {
      for (size_t q = 0; q < queries.size(); ++q) {
        ShardOut& shard = out[q * shards + s];
        Timer timer;
        for (size_t idx : preps[q].candidates) {
          if (idx % shards != s) continue;
          CheckCandidate(*contracts_[idx], *preps[q].ba, preps[q].query_events,
                         options, &shard.matches, &shard.witnesses,
                         &shard.stats);
        }
        shard.elapsed_ms = timer.ElapsedMillis();
      }
      return Status::OK();
    }));
  }

  // Phase 4 (serial): merge each query's shards, sorted by contract id.
  CTDB_OBS_SPAN(merge_span, "query_batch.merge");
  for (size_t q = 0; q < queries.size(); ++q) {
    QueryResult& result = results[q];
    std::vector<std::pair<uint32_t, LassoWord>> merged;
    for (size_t s = 0; s < shards; ++s) {
      ShardOut& shard = out[q * shards + s];
      for (size_t i = 0; i < shard.matches.size(); ++i) {
        merged.emplace_back(shard.matches[i],
                            options.collect_witnesses
                                ? std::move(shard.witnesses[i])
                                : LassoWord{});
      }
      result.stats.permission.MergeFrom(shard.stats);
      result.stats.permission_ms += shard.elapsed_ms;
    }
    std::sort(merged.begin(), merged.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [id, witness] : merged) {
      result.matches.push_back(id);
      if (options.collect_witnesses) {
        result.witnesses.push_back(std::move(witness));
      }
    }
    result.stats.matches = result.matches.size();
    result.stats.total_ms = result.stats.translate_ms +
                            result.stats.prefilter_ms +
                            result.stats.permission_ms;
    RecordQueryStats(result.stats);
  }
  return results;
}

size_t DatabaseSnapshot::ContractMemoryUsage() const {
  size_t bytes = 0;
  for (const auto& c : contracts_) {
    if (c != nullptr) bytes += c->automaton().MemoryUsage();
  }
  // Superseded versions never alias live slots (Replace installs a fresh
  // Contract; Unregister empties the slot), so summing both is exact.
  for (const ContractVersion& v : history_->versions()) {
    bytes += v.contract->automaton().MemoryUsage();
  }
  return bytes;
}

size_t DatabaseSnapshot::ProjectionMemoryUsage() const {
  size_t bytes = 0;
  for (const auto& c : contracts_) {
    if (c != nullptr) bytes += c->projections.stats().partition_memory_bytes;
  }
  for (const ContractVersion& v : history_->versions()) {
    bytes += v.contract->projections.stats().partition_memory_bytes;
  }
  return bytes;
}

}  // namespace ctdb::broker
