#include "broker/persistence.h"

#include <cinttypes>

#include <fstream>
#include <ostream>
#include <sstream>
#include <string>

#include "automata/serialize.h"
#include "util/file_util.h"
#include "util/string_util.h"

namespace ctdb::broker {

namespace {

constexpr const char* kHeaderV1 = "ctdb-database-v1";
constexpr const char* kHeaderV2 = "ctdb-database-v2";

std::string OneLine(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

/// Shared body writer for live contracts and history versions.
void WriteContractBody(const Contract& contract, const Vocabulary& vocab,
                       std::ostream* out) {
  *out << "name " << OneLine(contract.name) << "\n";
  *out << "ltl " << OneLine(contract.ltl_text) << "\n";
  *out << "events";
  for (size_t e : contract.events.Indices()) *out << " " << e;
  *out << "\n";
  *out << automata::Serialize(contract.automaton(), vocab);
}

}  // namespace

Status SaveSnapshot(const DatabaseSnapshot& snapshot, std::ostream* out) {
  const Vocabulary& vocab = snapshot.vocabulary();
  *out << kHeaderV2 << "\n";
  // Mutation count and system clock: recovery validates a checkpoint by its
  // op count and resumes the as_of axis from the clock (DESIGN.md §14).
  *out << "sequence " << snapshot.ops() << " " << snapshot.sequence() << "\n";
  *out << "vocabulary " << vocab.size() << "\n";
  for (const std::string& name : vocab.names()) {
    *out << "v " << name << "\n";
  }
  // Live contracts carry explicit (possibly sparse) ids; `slots` restores
  // trailing holes so later registrations keep allocating fresh ids.
  *out << "contracts " << snapshot.size() << " slots "
       << snapshot.slot_count() << "\n";
  for (uint32_t id = 0; id < snapshot.slot_count(); ++id) {
    const Contract* contract = snapshot.contract_or_null(id);
    if (contract == nullptr) continue;
    *out << "contract " << id << " valid-from " << contract->valid_from
         << "\n";
    WriteContractBody(*contract, vocab, out);
  }
  const HistoryStore& history = snapshot.history();
  *out << "history " << history.size() << " floor " << history.floor()
       << "\n";
  for (const ContractVersion& v : history.versions()) {
    *out << "version " << v.contract->id << " " << v.valid_from << " "
         << v.valid_to << "\n";
    WriteContractBody(*v.contract, vocab, out);
  }
  *out << "end-database\n";
  if (!out->good()) return Status::Internal("write failure while saving");
  return Status::OK();
}

Status SaveDatabase(const ContractDatabase& db, std::ostream* out) {
  return SaveSnapshot(*db.Snapshot(), out);
}

Status SaveDatabaseToFile(const ContractDatabase& db,
                          const std::string& path) {
  // Serialize to memory, then publish with temp-file + atomic rename so a
  // crash mid-save never leaves a truncated image where a previous good one
  // stood (checkpoints in broker/durable.cc rely on the same helper).
  std::ostringstream out;
  CTDB_RETURN_NOT_OK(SaveDatabase(db, &out));
  return util::WriteFileAtomic(path, out.str());
}

Result<std::unique_ptr<ContractDatabase>> LoadDatabase(
    std::istream& in, const DatabaseOptions& options) {
  auto db = std::make_unique<ContractDatabase>(options);
  std::string line;

  auto next_line = [&](const char* what) -> Result<std::string> {
    while (std::getline(in, line)) {
      const std::string_view trimmed = Trim(line);
      if (!trimmed.empty()) return std::string(trimmed);
    }
    return Status::InvalidArgument(std::string("unexpected end of input, ") +
                                   "expected " + what);
  };

  /// One contract body: name, ltl, events, serialized BA — shared by the v1
  /// contract list, the v2 live list and the v2 history list.
  struct Body {
    std::string name;
    std::string ltl;
    Bitset events;
    automata::Buchi ba;
  };
  auto read_body = [&]() -> Result<Body> {
    Body body;
    CTDB_ASSIGN_OR_RETURN(std::string name_line, next_line("name"));
    if (!StartsWith(name_line, "name ")) {
      return Status::InvalidArgument("expected 'name', got: " + name_line);
    }
    body.name = name_line.substr(5);
    CTDB_ASSIGN_OR_RETURN(std::string ltl_line, next_line("ltl"));
    if (!StartsWith(ltl_line, "ltl ")) {
      return Status::InvalidArgument("expected 'ltl', got: " + ltl_line);
    }
    body.ltl = ltl_line.substr(4);
    CTDB_ASSIGN_OR_RETURN(std::string events_line, next_line("events"));
    if (!StartsWith(events_line, "events")) {
      return Status::InvalidArgument("expected 'events', got: " + events_line);
    }
    for (const std::string& tok : Split(events_line.substr(6), ' ')) {
      const std::string_view t = Trim(tok);
      if (t.empty()) continue;
      size_t e = 0;
      if (std::sscanf(std::string(t).c_str(), "%zu", &e) != 1 ||
          e >= db->vocabulary()->size()) {
        return Status::InvalidArgument("bad event id in: " + events_line);
      }
      body.events.Resize(e + 1);
      body.events.Set(e);
    }
    // Collect the BA block up to and including its 'end'.
    std::string ba_text;
    while (true) {
      CTDB_ASSIGN_OR_RETURN(std::string ba_line, next_line("ba body"));
      ba_text += ba_line;
      ba_text += "\n";
      if (ba_line == "end") break;
    }
    CTDB_ASSIGN_OR_RETURN(body.ba,
                          automata::Deserialize(ba_text, db->vocabulary()));
    return body;
  };

  CTDB_ASSIGN_OR_RETURN(std::string header, next_line("header"));
  const bool v2 = header == kHeaderV2;
  if (!v2 && header != kHeaderV1) {
    return Status::InvalidArgument("not a ctdb database: bad header");
  }

  uint64_t ops = 0, clock = 0;
  if (v2) {
    CTDB_ASSIGN_OR_RETURN(std::string seq_line, next_line("sequence"));
    if (std::sscanf(seq_line.c_str(), "sequence %" SCNu64 " %" SCNu64, &ops,
                    &clock) != 2) {
      return Status::InvalidArgument("malformed sequence line");
    }
  }

  CTDB_ASSIGN_OR_RETURN(std::string vocab_line, next_line("vocabulary"));
  size_t vocab_count = 0;
  if (std::sscanf(vocab_line.c_str(), "vocabulary %zu", &vocab_count) != 1) {
    return Status::InvalidArgument("malformed vocabulary line");
  }
  for (size_t i = 0; i < vocab_count; ++i) {
    CTDB_ASSIGN_OR_RETURN(std::string v, next_line("vocabulary entry"));
    if (!StartsWith(v, "v ")) {
      return Status::InvalidArgument("malformed vocabulary entry: " + v);
    }
    // InternEvent publishes, so a vocabulary entry no contract cites (e.g. a
    // query-only event) is restored as queryable, exactly as saved.
    CTDB_RETURN_NOT_OK(
        db->InternEvent(Trim(std::string_view(v).substr(2))).status());
  }

  CTDB_ASSIGN_OR_RETURN(std::string contracts_line, next_line("contracts"));
  size_t contract_count = 0;
  size_t slot_count = 0;
  if (v2) {
    if (std::sscanf(contracts_line.c_str(), "contracts %zu slots %zu",
                    &contract_count, &slot_count) != 2) {
      return Status::InvalidArgument("malformed contracts line");
    }
  } else {
    if (std::sscanf(contracts_line.c_str(), "contracts %zu",
                    &contract_count) != 1) {
      return Status::InvalidArgument("malformed contracts line");
    }
    slot_count = contract_count;
  }

  size_t min_next_id = 0;
  for (size_t c = 0; c < contract_count; ++c) {
    CTDB_ASSIGN_OR_RETURN(std::string contract_line, next_line("contract"));
    size_t declared_id = 0;
    uint64_t valid_from = 0;
    if (v2) {
      if (std::sscanf(contract_line.c_str(),
                      "contract %zu valid-from %" SCNu64, &declared_id,
                      &valid_from) != 2) {
        return Status::InvalidArgument("malformed contract line: " +
                                       contract_line);
      }
      if (declared_id < min_next_id || declared_id >= slot_count) {
        return Status::InvalidArgument(
            "contract ids must ascend within the slot range");
      }
      min_next_id = declared_id + 1;
    } else {
      if (std::sscanf(contract_line.c_str(), "contract %zu", &declared_id) !=
          1) {
        return Status::InvalidArgument("malformed contract line: " +
                                       contract_line);
      }
      if (declared_id != c) {
        return Status::InvalidArgument("contract ids must be dense and "
                                       "in-order");
      }
    }
    CTDB_ASSIGN_OR_RETURN(Body body, read_body());
    if (v2) {
      CTDB_RETURN_NOT_OK(
          db->RestoreContract(static_cast<uint32_t>(declared_id),
                              std::move(body.name), std::move(body.ltl),
                              std::move(body.ba), std::move(body.events),
                              valid_from)
              .status());
    } else {
      // The v1 image is append-only: RegisterAutomaton self-assigns dense
      // ids and consecutive clocks, reproducing ops == clock == count.
      CTDB_RETURN_NOT_OK(
          db->RegisterAutomaton(std::move(body.name), std::move(body.ltl),
                                std::move(body.ba), std::move(body.events))
              .status());
    }
  }

  uint64_t history_floor = 0;
  if (v2) {
    CTDB_ASSIGN_OR_RETURN(std::string history_line, next_line("history"));
    size_t history_count = 0;
    if (std::sscanf(history_line.c_str(), "history %zu floor %" SCNu64,
                    &history_count, &history_floor) != 2) {
      return Status::InvalidArgument("malformed history line");
    }
    for (size_t i = 0; i < history_count; ++i) {
      CTDB_ASSIGN_OR_RETURN(std::string version_line, next_line("version"));
      size_t id = 0;
      uint64_t from = 0, to = 0;
      if (std::sscanf(version_line.c_str(),
                      "version %zu %" SCNu64 " %" SCNu64, &id, &from,
                      &to) != 3) {
        return Status::InvalidArgument("malformed version line: " +
                                       version_line);
      }
      CTDB_ASSIGN_OR_RETURN(Body body, read_body());
      CTDB_RETURN_NOT_OK(db->RestoreHistoryVersion(
          static_cast<uint32_t>(id), std::move(body.name),
          std::move(body.ltl), std::move(body.ba), std::move(body.events),
          from, to));
    }
  }

  CTDB_ASSIGN_OR_RETURN(std::string footer, next_line("end-database"));
  if (footer != "end-database") {
    return Status::InvalidArgument("missing end-database footer");
  }
  if (v2) {
    CTDB_RETURN_NOT_OK(
        db->RestoreLifecycle(ops, clock, history_floor, slot_count));
  }
  return db;
}

Result<std::unique_ptr<ContractDatabase>> LoadDatabaseFromFile(
    const std::string& path, const DatabaseOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open: " + path);
  }
  return LoadDatabase(in, options);
}

}  // namespace ctdb::broker
