#include "broker/persistence.h"

#include <fstream>
#include <ostream>
#include <sstream>
#include <string>

#include "automata/serialize.h"
#include "util/file_util.h"
#include "util/string_util.h"

namespace ctdb::broker {

namespace {

constexpr const char* kHeader = "ctdb-database-v1";

std::string OneLine(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

}  // namespace

Status SaveSnapshot(const DatabaseSnapshot& snapshot, std::ostream* out) {
  const Vocabulary& vocab = snapshot.vocabulary();
  *out << kHeader << "\n";
  *out << "vocabulary " << vocab.size() << "\n";
  for (const std::string& name : vocab.names()) {
    *out << "v " << name << "\n";
  }
  *out << "contracts " << snapshot.size() << "\n";
  for (uint32_t id = 0; id < snapshot.size(); ++id) {
    const Contract& contract = snapshot.contract(id);
    *out << "contract " << id << "\n";
    *out << "name " << OneLine(contract.name) << "\n";
    *out << "ltl " << OneLine(contract.ltl_text) << "\n";
    *out << "events";
    for (size_t e : contract.events.Indices()) *out << " " << e;
    *out << "\n";
    *out << automata::Serialize(contract.automaton(), vocab);
  }
  *out << "end-database\n";
  if (!out->good()) return Status::Internal("write failure while saving");
  return Status::OK();
}

Status SaveDatabase(const ContractDatabase& db, std::ostream* out) {
  return SaveSnapshot(*db.Snapshot(), out);
}

Status SaveDatabaseToFile(const ContractDatabase& db,
                          const std::string& path) {
  // Serialize to memory, then publish with temp-file + atomic rename so a
  // crash mid-save never leaves a truncated image where a previous good one
  // stood (checkpoints in broker/durable.cc rely on the same helper).
  std::ostringstream out;
  CTDB_RETURN_NOT_OK(SaveDatabase(db, &out));
  return util::WriteFileAtomic(path, out.str());
}

Result<std::unique_ptr<ContractDatabase>> LoadDatabase(
    std::istream& in, const DatabaseOptions& options) {
  auto db = std::make_unique<ContractDatabase>(options);
  std::string line;

  auto next_line = [&](const char* what) -> Result<std::string> {
    while (std::getline(in, line)) {
      const std::string_view trimmed = Trim(line);
      if (!trimmed.empty()) return std::string(trimmed);
    }
    return Status::InvalidArgument(std::string("unexpected end of input, ") +
                                   "expected " + what);
  };

  CTDB_ASSIGN_OR_RETURN(std::string header, next_line("header"));
  if (header != kHeader) {
    return Status::InvalidArgument("not a ctdb database: bad header");
  }

  CTDB_ASSIGN_OR_RETURN(std::string vocab_line, next_line("vocabulary"));
  size_t vocab_count = 0;
  if (std::sscanf(vocab_line.c_str(), "vocabulary %zu", &vocab_count) != 1) {
    return Status::InvalidArgument("malformed vocabulary line");
  }
  for (size_t i = 0; i < vocab_count; ++i) {
    CTDB_ASSIGN_OR_RETURN(std::string v, next_line("vocabulary entry"));
    if (!StartsWith(v, "v ")) {
      return Status::InvalidArgument("malformed vocabulary entry: " + v);
    }
    // InternEvent publishes, so a vocabulary entry no contract cites (e.g. a
    // query-only event) is restored as queryable, exactly as saved.
    CTDB_RETURN_NOT_OK(
        db->InternEvent(Trim(std::string_view(v).substr(2))).status());
  }

  CTDB_ASSIGN_OR_RETURN(std::string contracts_line, next_line("contracts"));
  size_t contract_count = 0;
  if (std::sscanf(contracts_line.c_str(), "contracts %zu",
                  &contract_count) != 1) {
    return Status::InvalidArgument("malformed contracts line");
  }

  for (size_t c = 0; c < contract_count; ++c) {
    CTDB_ASSIGN_OR_RETURN(std::string contract_line, next_line("contract"));
    size_t declared_id = 0;
    if (std::sscanf(contract_line.c_str(), "contract %zu", &declared_id) !=
        1) {
      return Status::InvalidArgument("malformed contract line: " +
                                     contract_line);
    }
    if (declared_id != c) {
      return Status::InvalidArgument("contract ids must be dense and "
                                     "in-order");
    }
    CTDB_ASSIGN_OR_RETURN(std::string name_line, next_line("name"));
    if (!StartsWith(name_line, "name ")) {
      return Status::InvalidArgument("expected 'name', got: " + name_line);
    }
    CTDB_ASSIGN_OR_RETURN(std::string ltl_line, next_line("ltl"));
    if (!StartsWith(ltl_line, "ltl ")) {
      return Status::InvalidArgument("expected 'ltl', got: " + ltl_line);
    }
    CTDB_ASSIGN_OR_RETURN(std::string events_line, next_line("events"));
    if (!StartsWith(events_line, "events")) {
      return Status::InvalidArgument("expected 'events', got: " + events_line);
    }
    Bitset events;
    for (const std::string& tok : Split(events_line.substr(6), ' ')) {
      const std::string_view t = Trim(tok);
      if (t.empty()) continue;
      size_t e = 0;
      if (std::sscanf(std::string(t).c_str(), "%zu", &e) != 1 ||
          e >= db->vocabulary()->size()) {
        return Status::InvalidArgument("bad event id in: " + events_line);
      }
      events.Resize(e + 1);
      events.Set(e);
    }
    // Collect the BA block up to and including its 'end'.
    std::string ba_text;
    while (true) {
      CTDB_ASSIGN_OR_RETURN(std::string ba_line, next_line("ba body"));
      ba_text += ba_line;
      ba_text += "\n";
      if (ba_line == "end") break;
    }
    CTDB_ASSIGN_OR_RETURN(automata::Buchi ba,
                          automata::Deserialize(ba_text, db->vocabulary()));
    CTDB_ASSIGN_OR_RETURN(
        uint32_t id,
        db->RegisterAutomaton(name_line.substr(5), ltl_line.substr(4),
                              std::move(ba), std::move(events)));
    (void)id;
  }

  CTDB_ASSIGN_OR_RETURN(std::string footer, next_line("end-database"));
  if (footer != "end-database") {
    return Status::InvalidArgument("missing end-database footer");
  }
  return db;
}

Result<std::unique_ptr<ContractDatabase>> LoadDatabaseFromFile(
    const std::string& path, const DatabaseOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open: " + path);
  }
  return LoadDatabase(in, options);
}

}  // namespace ctdb::broker
