// The abstract broker surface: what a contract-database service needs from
// its storage engine, independent of whether that engine is one durable
// instance (broker::DurableDatabase) or a hash-partitioned fleet of them
// (shard::ShardedDatabase, DESIGN.md §13).
//
// The network layer (net/server.h) executes every wire operation against
// this interface, so `ctdb_server --shards=N` can put the same protocol in
// front of either topology. Implementations must be internally synchronized
// exactly like DurableDatabase: queries safe concurrently with each other
// and with registrations, Register* safe from multiple threads, Checkpoint
// safe concurrently with everything.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "broker/database.h"
#include "broker/snapshot.h"
#include "monitor/types.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace ctdb::broker {

/// \brief Abstract registration/query/checkpoint surface shared by the
/// durable database and the sharded router.
class Broker {
 public:
  virtual ~Broker() = default;

  /// Registers a contract; Ok only once the registration is durable under
  /// the implementation's policy.
  virtual Result<uint32_t> Register(std::string name,
                                    std::string_view ltl_text,
                                    RegistrationStats* stats = nullptr) = 0;

  /// Registers a batch; ids are returned in entry order.
  virtual Result<std::vector<uint32_t>> RegisterBatch(
      const std::vector<ContractDatabase::BatchEntry>& entries) = 0;

  /// Unregisters the live contract `id`; Ok only once durable. Returns the
  /// system-period clock the removal happened at — as-of queries strictly
  /// below it keep seeing the contract (DESIGN.md §14).
  virtual Result<uint64_t> Unregister(uint32_t id) = 0;

  /// Replaces the live contract `id`'s specification, keeping id and name;
  /// Ok only once durable. Returns the clock of the supersession.
  virtual Result<uint64_t> Replace(uint32_t id, std::string_view ltl_text,
                                   RegistrationStats* stats = nullptr) = 0;

  virtual Result<QueryResult> Query(std::string_view ltl_text,
                                    const QueryOptions& options = {}) const = 0;

  /// Time travel: Query against the contract set as of clock `seq`
  /// (QueryOptions::as_of semantics — `seq` past the current clock answers
  /// "latest", below the retention floor is InvalidArgument).
  Result<QueryResult> QueryAsOf(uint64_t seq, std::string_view ltl_text,
                                QueryOptions options = {}) const {
    options.as_of = seq;
    return Query(ltl_text, options);
  }

  virtual Result<std::vector<QueryResult>> QueryBatch(
      const std::vector<std::string>& queries,
      const QueryOptions& options = {}) const = 0;

  /// \name Streaming compliance monitor (DESIGN.md §15).
  ///
  /// A stream pins the contract set visible at open (snapshot isolation on
  /// the lifecycle clock) and every appended event advances each pinned
  /// contract's automaton under finite-trace acceptance, reporting verdict
  /// deltas. Streams are ephemeral monitoring state: not WAL-logged, gone
  /// after Close()/restart.
  /// @{

  /// Opens stream `name`; AlreadyExists when it is already open.
  virtual Result<monitor::StreamOpenInfo> StreamOpen(
      std::string name, const monitor::StreamOptions& options = {}) = 0;

  /// Appends events (each one instant's set of event names) to stream
  /// `name`; NotFound when it is not open. Returns the verdict changes
  /// since the previous append, sorted by contract id.
  virtual Result<monitor::StreamAppendResult> StreamAppend(
      std::string_view name, const monitor::EventBatch& events) = 0;

  /// Closes stream `name`, returning its final per-contract verdicts;
  /// NotFound when it is not open.
  virtual Result<monitor::StreamCloseInfo> StreamClose(
      std::string_view name) = 0;
  /// @}

  /// Writes a checkpoint now and truncates the log(s) below it.
  virtual Status Checkpoint() = 0;

  /// Flushes and stops; further registrations fail. Idempotent.
  virtual Status Close() = 0;

  /// Number of live contracts.
  virtual size_t size() const = 0;

  /// System-period clock of the latest applied mutation (the `as_of` axis).
  virtual uint64_t last_sequence() const = 0;

  /// Scrape of the process-wide metrics registry (obs/metrics.h).
  virtual obs::MetricsSnapshot Metrics() const = 0;
};

}  // namespace ctdb::broker
