// The contract history store: superseded contract versions with their
// system periods, the half of the temporal table that live snapshots no
// longer show.
//
// Every mutation carries a system-period clock (== the WAL mutation
// sequence when unsharded; router-assigned when sharded). A contract
// version produced at clock `f` and superseded (replaced or unregistered)
// at clock `t` is stored here with period [valid_from, valid_to) = [f, t);
// the *current* version of a live contract lives only in the snapshot's
// contract table with an open-ended period [valid_from, ∞). `QueryAsOf(s)`
// unions the live versions with valid_from <= s and the historical versions
// with valid_from <= s < valid_to (DESIGN.md §14).
//
// The store is immutable and shared by pointer between snapshots: lifecycle
// operations build a new store by copy-append (lifecycle ops are rare and
// history small relative to automata, so O(versions) copies beat the
// locking a mutable structure would need on the query path). Superseded
// versions keep their full Contract — projections included — so as-of
// queries never re-translate or re-project.
//
// Retention (`RetentionOptions::keep_history_seqs`) trims the store from
// the front: PruneHistory(horizon) drops versions dead at or before the
// horizon and records the resulting `floor`, below which as-of queries are
// refused as InvalidArgument rather than silently answered incompletely.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "broker/contract.h"

namespace ctdb::broker {

/// One superseded contract version with its closed system period.
struct ContractVersion {
  std::shared_ptr<const Contract> contract;
  uint64_t valid_from = 0;  ///< clock of the Register/Replace that made it
  uint64_t valid_to = 0;    ///< exclusive: clock of the op that killed it

  /// Visibility test for as-of queries.
  bool VisibleAt(uint64_t seq) const {
    return valid_from <= seq && seq < valid_to;
  }
};

/// \brief Immutable store of superseded contract versions.
///
/// Shared between snapshots via shared_ptr; every mutation that retires a
/// version publishes a new store (copy-append), so readers never lock.
class HistoryStore {
 public:
  HistoryStore() = default;

  /// New store = this + one more retired version. `version.valid_to` must
  /// exceed `version.valid_from` (an empty period would be invisible at
  /// every clock and is a caller bug).
  std::shared_ptr<const HistoryStore> Append(ContractVersion version) const;

  /// New store without versions fully dead at or before `horizon`
  /// (valid_to <= horizon) and with floor() raised to `horizon`. Returns
  /// nullptr-equivalent copy of *this (still a fresh store) even when
  /// nothing is dropped, so callers can publish unconditionally.
  std::shared_ptr<const HistoryStore> Prune(uint64_t horizon) const;

  /// Clock below which history has been discarded; as-of queries at
  /// seq < floor() must be refused. 0 = complete history.
  uint64_t floor() const { return floor_; }

  const std::vector<ContractVersion>& versions() const { return versions_; }
  size_t size() const { return versions_.size(); }
  bool empty() const { return versions_.empty(); }

  /// Retired versions of one contract, oldest first (appends happen in
  /// clock order, so the stored order is already chronological).
  std::vector<ContractVersion> VersionsOf(uint32_t contract_id) const;

  /// Heap bytes held by the store's own structures (the contracts
  /// themselves are accounted by the snapshot's memory report; shared
  /// pointers here may alias live contracts' projections).
  size_t MemoryUsage() const;

 private:
  std::vector<ContractVersion> versions_;  ///< in valid_to (append) order
  uint64_t floor_ = 0;
};

}  // namespace ctdb::broker
