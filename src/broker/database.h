// The contract database / temporal broker (Section 3).
//
// Registration translates a contract's LTL specification to a BA, inserts it
// into the prefiltering index (§4) and precomputes its simplified projections
// (§5). Query evaluation translates the query, extracts its pruning
// condition, evaluates the condition against the index to obtain candidates,
// and runs the permission algorithm on each candidate's best simplified
// projection. Every optimization can be toggled, which is how the benchmarks
// compare the unoptimized scan of §3 against the optimized system of §7.
//
// Concurrency model (DESIGN.md §8): the database is snapshot-isolated.
// Registration mutates writer-side master state under an internal mutex and
// then publishes an immutable DatabaseSnapshot by swapping a shared_ptr;
// Query/QueryFormula/QueryBatch are const and run entirely against the
// snapshot current when they were called. Any number of reader threads may
// query concurrently with each other and with writers; writers serialize on
// the internal mutex (concurrent Register* calls are safe, just not
// parallel). A query observes either all of a registration or none of it,
// and a failed registration is never observable.

#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "automata/buchi.h"
#include "base/vocabulary.h"
#include "broker/snapshot.h"
#include "broker/stats.h"
#include "ltl/formula.h"
#include "obs/metrics.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace ctdb::broker {

/// \brief The broker's temporal-specification store.
///
/// Owns the vocabulary and the formula factory; contracts and queries are
/// expressed against the shared vocabulary (Section 1, requirement ii).
class ContractDatabase {
 public:
  explicit ContractDatabase(const DatabaseOptions& options = {});

  /// Registers a contract given as LTL text (clauses conjoined with '&').
  /// New event names are interned into the vocabulary.
  ///
  /// Every mutating call takes an optional system-period `clock` (DESIGN.md
  /// §14): 0 (the default) self-assigns the next tick (`sequence() + 1` —
  /// the unsharded case, where clock == mutation count), while an explicit
  /// value stamps that clock (the sharded router and recovery replay both
  /// assign clocks externally). An explicit clock must exceed sequence().
  Result<uint32_t> Register(std::string name, std::string_view ltl_text,
                            RegistrationStats* stats = nullptr,
                            uint64_t clock = 0);

  /// Registers a pre-parsed contract formula (writer-side entry point: the
  /// formula must come from this database's factory() — see there).
  Result<uint32_t> RegisterFormula(std::string name, const ltl::Formula* spec,
                                   std::string ltl_text = {},
                                   RegistrationStats* stats = nullptr,
                                   uint64_t clock = 0);

  /// Registers a contract from its already-translated automaton (the
  /// persistence loader's path): skips the LTL→BA translation but performs
  /// every other registration-time precomputation. `events` must be the
  /// events cited by the contract's specification (Definition 5).
  Result<uint32_t> RegisterAutomaton(std::string name, std::string ltl_text,
                                     automata::Buchi ba, Bitset events,
                                     RegistrationStats* stats = nullptr,
                                     uint64_t clock = 0);

  /// \brief Unregisters the live contract `id`.
  ///
  /// The contract's current version moves to the history store with its
  /// period closed at the operation's clock; its id is never reused (the
  /// slot becomes a hole). Queries observe the removal atomically, as-of
  /// queries below the clock keep seeing the contract. Returns the clock
  /// the removal happened at. NotFound when `id` is not live.
  Result<uint64_t> Unregister(uint32_t id, uint64_t clock = 0);

  /// \brief Replaces the live contract `id`'s specification, keeping its id
  /// and name.
  ///
  /// The superseded version (projections included) moves to the history
  /// store, the new version becomes live at the operation's clock, and
  /// the prefilter swaps entries copy-on-write. Returns the clock of the
  /// supersession. NotFound when `id` is not live; on any parse/translate
  /// error nothing changes.
  Result<uint64_t> Replace(uint32_t id, std::string_view ltl_text,
                           RegistrationStats* stats = nullptr,
                           uint64_t clock = 0);

  /// Drops history versions fully dead at or before `horizon` and raises
  /// the as-of retention floor there (RetentionOptions). Publishes.
  void PruneHistory(uint64_t horizon);

  /// \name Persistence-restore hooks (broker/persistence.cc only).
  ///
  /// The loader rebuilds a database image that may contain holes, history
  /// and counters that plain Register* calls cannot reproduce. None of
  /// these advance ops/clock — RestoreLifecycle stamps the saved counters
  /// at the end of the load.
  /// @{

  /// Installs a live contract at exactly slot `id` (>= slot_count();
  /// intervening slots become holes), with its saved system period start.
  /// Runs the full registration-time precompute (seeds, projections,
  /// prefilter).
  Result<uint32_t> RestoreContract(uint32_t id, std::string name,
                                   std::string ltl_text, automata::Buchi ba,
                                   Bitset events, uint64_t valid_from);

  /// Appends a superseded version `[valid_from, valid_to)` of contract `id`
  /// to the history store (projections precomputed so as-of queries answer
  /// at full fidelity after a restart).
  Status RestoreHistoryVersion(uint32_t id, std::string name,
                               std::string ltl_text, automata::Buchi ba,
                               Bitset events, uint64_t valid_from,
                               uint64_t valid_to);

  /// Finishes a restore: pads trailing holes out to `slot_count`, raises
  /// the history floor, stamps the mutation count and system clock, and
  /// publishes.
  Status RestoreLifecycle(uint64_t ops, uint64_t clock, uint64_t history_floor,
                          uint64_t slot_count);
  /// @}

  /// One contract of a batch registration.
  struct BatchEntry {
    std::string name;
    std::string ltl_text;
  };

  /// Registers many contracts at once, running the expensive per-contract
  /// work (LTL→BA translation, seed computation, projection precomputation —
  /// §7.4 observes this workload is "completely parallel") on the shared
  /// executor with `threads`-way concurrency (0 inherits
  /// DatabaseOptions::threads). Equivalent to registering the entries in
  /// order; returns their ids. On any error nothing is registered, and
  /// queries never observe a partially committed batch (one snapshot is
  /// published at the end). `clocks`, when given, must hold one
  /// strictly-increasing clock per entry (the sharded router's path);
  /// nullptr self-assigns consecutive ticks.
  Result<std::vector<uint32_t>> RegisterBatch(
      const std::vector<BatchEntry>& entries, size_t threads = 0,
      const std::vector<uint64_t>* clocks = nullptr);

  /// Interns an event into the vocabulary without registering a contract,
  /// and publishes the change so subsequent queries may cite it. Returns the
  /// event's id (the existing one if already interned). This is the
  /// writer-side way to introduce query-only events (e.g. the persistence
  /// loader restoring a vocabulary larger than its contracts cite).
  Result<EventId> InternEvent(std::string_view name);

  /// \brief The current immutable snapshot.
  ///
  /// The returned view is frozen: later registrations do not affect it, and
  /// it stays valid as long as the shared_ptr is held. Use it to run a
  /// sequence of queries against one consistent state, or to keep serving a
  /// consistent state while registration proceeds.
  std::shared_ptr<const DatabaseSnapshot> Snapshot() const {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    return snapshot_;
  }

  /// Evaluates an LTL query against the current snapshot. Queries must cite
  /// only registered events (unknown events cannot be permitted by any
  /// contract — they are an error, to catch typos early). Safe to call
  /// concurrently with registrations and other queries; parses and
  /// translates with a call-local formula factory, never this database's.
  Result<QueryResult> Query(std::string_view ltl_text,
                            const QueryOptions& options = {}) const;

  /// Evaluates a pre-parsed query formula against the current snapshot. The
  /// formula may come from any factory (including factory()); it is rebuilt
  /// into a call-local one before translation.
  Result<QueryResult> QueryFormula(const ltl::Formula* query,
                                   const QueryOptions& options = {}) const;

  /// Evaluates many LTL queries in one call against the current snapshot —
  /// one consistent state for the whole batch. See
  /// DatabaseSnapshot::QueryBatch for the batching contract and stats
  /// semantics.
  Result<std::vector<QueryResult>> QueryBatch(
      const std::vector<std::string>& queries,
      const QueryOptions& options = {}) const;

  /// Live-contract count of the current snapshot.
  size_t size() const { return Snapshot()->size(); }
  /// Id slots ever allocated (ids are never reused; see
  /// DatabaseSnapshot::slot_count()).
  size_t slot_count() const { return Snapshot()->slot_count(); }
  /// Mutations applied so far (the dense WAL sequence).
  uint64_t op_count() const { return Snapshot()->ops(); }
  /// System-period clock of the last mutation (the `as_of` axis).
  uint64_t last_sequence() const { return Snapshot()->sequence(); }
  /// The live contract with id `id`. The reference stays valid as long as
  /// some snapshot (or the history store) retains the version — holding the
  /// Snapshot() you resolved it through is the safe pattern.
  const Contract& contract(uint32_t id) const {
    return Snapshot()->contract(id);
  }

  /// Writer-side accessor to the master vocabulary. Direct interning through
  /// it becomes visible to queries only at the next publication (any
  /// successful Register* call); prefer InternEvent, which publishes
  /// immediately. Must not be called concurrently with writers.
  Vocabulary* vocabulary() { return &vocab_; }
  /// Writer-side read of the master vocabulary (may be ahead of the
  /// published snapshot's); for a concurrency-safe view use
  /// Snapshot()->vocabulary().
  const Vocabulary& vocabulary() const { return vocab_; }
  /// The shared formula factory used by registration. Writer-side: formulas
  /// built here may be passed to RegisterFormula; the factory is not
  /// thread-safe, so don't use it concurrently with writers.
  ltl::FormulaFactory* factory() { return &factory_; }

  /// Writer-side view of the master prefilter index (may be ahead of the
  /// published snapshot's); for a concurrency-safe view use
  /// Snapshot()->prefilter().
  const index::PrefilterIndex& prefilter() const { return prefilter_; }
  const DatabaseOptions& options() const { return options_; }

  /// Aggregate footprint of the auxiliary structures (§7.4), measured on the
  /// current snapshot.
  size_t PrefilterMemoryUsage() const {
    return Snapshot()->PrefilterMemoryUsage();
  }
  size_t ContractMemoryUsage() const {
    return Snapshot()->ContractMemoryUsage();
  }
  size_t ProjectionMemoryUsage() const {
    return Snapshot()->ProjectionMemoryUsage();
  }

  /// \brief Scrapes the process-wide metrics registry: counters, gauges and
  /// histograms for every instrumented pipeline layer (translate.*,
  /// prefilter.*, permission.*, projection.*, threadpool.*, broker.*).
  /// The registry is process-global (instrumentation sites live deep inside
  /// layers that have no database handle), so in a multi-database process
  /// the snapshot aggregates across databases. Runtime on/off:
  /// obs::Configure / obs::SetEnabled / the CTDB_OBS environment variable;
  /// compile-time: the CTDB_OBS CMake option.
  obs::MetricsSnapshot MetricsSnapshot() const;

  /// Cumulative counters of the shared query-translation cache
  /// (translate/cache.h). All zeros (capacity included) when the cache was
  /// disabled via DatabaseOptions::translation_cache_capacity = 0.
  translate::TranslationCacheStats TranslationCacheStats() const {
    return translation_cache_->Stats();
  }

 private:
  /// Registration bodies; the caller holds writer_mutex_.
  Result<uint32_t> RegisterFormulaLocked(std::string name,
                                         const ltl::Formula* spec,
                                         std::string ltl_text,
                                         RegistrationStats* stats,
                                         uint64_t clock);
  Result<uint32_t> RegisterAutomatonLocked(std::string name,
                                           std::string ltl_text,
                                           automata::Buchi ba, Bitset events,
                                           RegistrationStats* stats,
                                           uint64_t clock);

  /// Resolves an optional caller clock (0 = self-assign the next tick);
  /// InvalidArgument when an explicit clock does not advance. The caller
  /// holds writer_mutex_.
  Result<uint64_t> ResolveClockLocked(uint64_t clock) const;

  /// Builds a snapshot of the master state and publishes it; the caller
  /// holds writer_mutex_ (the constructor publishes without it — no
  /// concurrent access exists yet). Cheap: structural sharing everywhere,
  /// plus one vocabulary copy when events were interned since the last
  /// publication.
  void Publish();

  /// Resolves a per-call thread count (0 = inherit the database default).
  size_t ResolveThreads(size_t requested) const;

  /// Returns the shared executor with at least `threads - 1` workers (the
  /// calling thread participates in ParallelFor, so `threads`-way
  /// concurrency needs one fewer worker), creating it or growing it in
  /// place on demand. Returns nullptr for threads <= 1. Safe to call
  /// concurrently (readers and writers both use it).
  util::ThreadPool* EnsurePool(size_t threads) const;

  DatabaseOptions options_;

  /// Serializes all writers (Register*, InternEvent). Readers never take
  /// it — they go through snapshot_.
  std::mutex writer_mutex_;

  // --- master state, mutated only under writer_mutex_ -------------------
  Vocabulary vocab_;
  ltl::FormulaFactory factory_;
  /// Slot table indexed by contract id; nullptr = unregistered (hole).
  std::vector<std::shared_ptr<const Contract>> contracts_;
  Bitset live_;         ///< bit i set iff contracts_[i] is live
  uint64_t ops_ = 0;    ///< dense mutation count (the WAL sequence)
  uint64_t clock_ = 0;  ///< system-period clock of the last mutation
  /// Superseded contract versions; immutable stores swapped copy-on-append
  /// so published snapshots share them. Never null.
  std::shared_ptr<const HistoryStore> history_ =
      std::make_shared<HistoryStore>();
  index::PrefilterIndex prefilter_;
  /// Shared query-translation cache, created once at construction and handed
  /// to every published snapshot (internally synchronized; see
  /// translate/cache.h). Never null.
  std::shared_ptr<translate::TranslationCache> translation_cache_;
  /// The vocabulary copy the last published snapshot points at; reused by
  /// Publish while no new event was interned (the vocabulary is
  /// append-only, so equal size ⇒ identical contents).
  std::shared_ptr<const Vocabulary> published_vocab_;

  /// The published snapshot. Guarded by a dedicated mutex held only for
  /// the shared_ptr copy/swap — never while a snapshot is being built — so
  /// a reader's wait is bounded by a pointer assignment, not by writer
  /// work. (A std::atomic<std::shared_ptr> would express this directly,
  /// but libstdc++ implements it with a spinlock whose element-pointer
  /// access ThreadSanitizer cannot model, and the TSan CI job gates on
  /// this path.)
  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const DatabaseSnapshot> snapshot_;

  /// Shared executor for every parallel phase; created lazily and grown in
  /// place (util::ThreadPool::Grow) when a call requests more concurrency
  /// than any before it, so references held by in-flight calls stay valid.
  mutable std::mutex pool_mutex_;
  mutable std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace ctdb::broker
