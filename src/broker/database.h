// The contract database / temporal broker (Section 3).
//
// Registration translates a contract's LTL specification to a BA, inserts it
// into the prefiltering index (§4) and precomputes its simplified projections
// (§5). Query evaluation translates the query, extracts its pruning
// condition, evaluates the condition against the index to obtain candidates,
// and runs the permission algorithm on each candidate's best simplified
// projection. Every optimization can be toggled, which is how the benchmarks
// compare the unoptimized scan of §3 against the optimized system of §7.

#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "automata/buchi.h"
#include "base/run.h"
#include "base/vocabulary.h"
#include "broker/contract.h"
#include "broker/stats.h"
#include "core/permission.h"
#include "index/prefilter.h"
#include "index/pruning.h"
#include "ltl/formula.h"
#include "obs/metrics.h"
#include "projection/store.h"
#include "translate/ltl_to_ba.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace ctdb::broker {

/// Registration-time configuration.
struct DatabaseOptions {
  /// Maintain the prefiltering index (§4).
  bool build_prefilter = true;
  index::PrefilterOptions prefilter;

  /// Precompute simplified projections (§5).
  bool build_projections = true;
  projection::ProjectionStoreOptions projections;

  /// LTL → BA pipeline settings.
  translate::TranslateOptions translate;

  /// Default concurrency for the database's parallel phases (registration
  /// precompute, per-candidate permission checks, batched queries). The
  /// database lazily creates one shared work-stealing executor
  /// (util::ThreadPool) sized to the largest concurrency ever requested and
  /// reuses it across calls — no per-call thread spawn/join. 1 (the default)
  /// reproduces the paper's single-threaded prototype byte-for-byte: no pool
  /// is created and every phase runs inline on the calling thread.
  /// QueryOptions::threads and RegisterBatch's `threads` argument override
  /// this per call (there, 0 means "inherit this value").
  size_t threads = 1;
};

/// Query-time configuration.
struct QueryOptions {
  /// Use the prefiltering index to restrict permission checks to candidates.
  bool use_prefilter = true;
  /// Use the precomputed simplified projections for the permission checks.
  bool use_projections = true;
  /// Also extract, for every match, a concrete allowed event sequence that
  /// satisfies the query (a witness; see core/witness.h). Witnesses are
  /// computed on the registered automata, so they are real contract runs.
  bool collect_witnesses = false;
  /// Number of threads for the per-candidate permission checks; the workload
  /// is embarrassingly parallel across candidates (§7.4 makes the same
  /// observation for the registration-time precompute). 0 (the default)
  /// inherits DatabaseOptions::threads; 1 forces single-threaded evaluation.
  /// Parallel checks run on the database's shared executor, not on per-call
  /// threads.
  size_t threads = 0;
  /// Permission algorithm knobs (Algorithm 2 vs SCC, seeds).
  core::PermissionOptions permission;
  index::PruningOptions pruning;
};

/// A query's outcome.
struct QueryResult {
  std::vector<uint32_t> matches;  ///< ids of contracts permitting the query
  /// When QueryOptions::collect_witnesses is set: witnesses[i] demonstrates
  /// matches[i] (same order and length as `matches`).
  std::vector<LassoWord> witnesses;
  QueryStats stats;
};

/// \brief The broker's temporal-specification store.
///
/// Owns the vocabulary and the formula factory; contracts and queries are
/// expressed against the shared vocabulary (Section 1, requirement ii).
class ContractDatabase {
 public:
  explicit ContractDatabase(const DatabaseOptions& options = {});

  /// Registers a contract given as LTL text (clauses conjoined with '&').
  /// New event names are interned into the vocabulary.
  Result<uint32_t> Register(std::string name, std::string_view ltl_text,
                            RegistrationStats* stats = nullptr);

  /// Registers a pre-parsed contract formula.
  Result<uint32_t> RegisterFormula(std::string name, const ltl::Formula* spec,
                                   std::string ltl_text = {},
                                   RegistrationStats* stats = nullptr);

  /// Registers a contract from its already-translated automaton (the
  /// persistence loader's path): skips the LTL→BA translation but performs
  /// every other registration-time precomputation. `events` must be the
  /// events cited by the contract's specification (Definition 5).
  Result<uint32_t> RegisterAutomaton(std::string name, std::string ltl_text,
                                     automata::Buchi ba, Bitset events,
                                     RegistrationStats* stats = nullptr);

  /// One contract of a batch registration.
  struct BatchEntry {
    std::string name;
    std::string ltl_text;
  };

  /// Registers many contracts at once, running the expensive per-contract
  /// work (LTL→BA translation, seed computation, projection precomputation —
  /// §7.4 observes this workload is "completely parallel") on the shared
  /// executor with `threads`-way concurrency (0 inherits
  /// DatabaseOptions::threads). Equivalent to registering the entries in
  /// order; returns their ids. On any error nothing is registered.
  Result<std::vector<uint32_t>> RegisterBatch(
      const std::vector<BatchEntry>& entries, size_t threads = 0);

  /// Evaluates an LTL query. Queries must cite only registered events
  /// (unknown events cannot be permitted by any contract — they are an
  /// error, to catch typos early). Non-const: query evaluation warms the
  /// per-contract quotient caches and interns formula nodes.
  Result<QueryResult> Query(std::string_view ltl_text,
                            const QueryOptions& options = {});

  /// Evaluates a pre-parsed query formula.
  Result<QueryResult> QueryFormula(const ltl::Formula* query,
                                   const QueryOptions& options = {});

  /// \brief Evaluates many LTL queries in one call.
  ///
  /// Returns one QueryResult per query, each identical (matches and
  /// witnesses) to what Query would return for that text. Batching amortizes
  /// executor dispatch across the whole batch and shares each contract's
  /// lazy quotient cache across all queries: with `threads` > 1 the
  /// translate/prefilter phase parallelizes across queries (each worker
  /// re-parses into a thread-local factory, as RegisterBatch does) and the
  /// permission phase shards the (query, candidate) pairs *by contract id*,
  /// so every contract — and thus its quotient cache — is touched by exactly
  /// one worker while being reused across all queries that prefilter to it.
  /// On any parse error, no query is evaluated.
  ///
  /// Per-query stats are filled as in Query, except that in parallel mode
  /// `permission_ms` is the CPU time spent on that query's checks (summed
  /// across shards) and `total_ms` the sum of the per-phase times. In both
  /// modes the invariant `total_ms >= translate_ms + prefilter_ms` holds:
  /// serial total is the wall clock enclosing all three phases, parallel
  /// total is exactly translate + prefilter + the summed permission CPU time
  /// (so it can exceed the batch's wall clock, but never undercuts the two
  /// serial phases). Guarded by a regression test in query_batch_test.
  Result<std::vector<QueryResult>> QueryBatch(
      const std::vector<std::string>& queries,
      const QueryOptions& options = {});

  size_t size() const { return contracts_.size(); }
  const Contract& contract(uint32_t id) const { return *contracts_[id]; }

  Vocabulary* vocabulary() { return &vocab_; }
  const Vocabulary& vocabulary() const { return vocab_; }
  ltl::FormulaFactory* factory() { return &factory_; }

  const index::PrefilterIndex& prefilter() const { return prefilter_; }
  const DatabaseOptions& options() const { return options_; }

  /// Aggregate footprint of the auxiliary structures (§7.4).
  size_t PrefilterMemoryUsage() const { return prefilter_.Stats().memory_bytes; }
  size_t ContractMemoryUsage() const;
  size_t ProjectionMemoryUsage() const;

  /// \brief Scrapes the process-wide metrics registry: counters, gauges and
  /// histograms for every instrumented pipeline layer (translate.*,
  /// prefilter.*, permission.*, projection.*, threadpool.*, broker.*).
  /// The registry is process-global (instrumentation sites live deep inside
  /// layers that have no database handle), so in a multi-database process
  /// the snapshot aggregates across databases. Runtime on/off:
  /// obs::Configure / obs::SetEnabled / the CTDB_OBS environment variable;
  /// compile-time: the CTDB_OBS CMake option.
  obs::MetricsSnapshot MetricsSnapshot() const;

 private:
  /// Resolves a per-call thread count (0 = inherit the database default).
  size_t ResolveThreads(size_t requested) const;
  /// Returns the shared executor with at least `threads - 1` workers (the
  /// calling thread participates in ParallelFor, so `threads`-way
  /// concurrency needs one fewer worker), creating or growing it on demand.
  /// Returns nullptr for threads <= 1.
  util::ThreadPool* EnsurePool(size_t threads);

  /// Runs one permission check; appends to the given output buffers.
  void CheckCandidate(size_t contract_index, const automata::Buchi& query_ba,
                      const Bitset& query_events, const QueryOptions& options,
                      std::vector<uint32_t>* matches,
                      std::vector<LassoWord>* witnesses,
                      core::PermissionStats* stats);

  DatabaseOptions options_;
  Vocabulary vocab_;
  ltl::FormulaFactory factory_;
  std::vector<std::unique_ptr<Contract>> contracts_;
  index::PrefilterIndex prefilter_;
  /// Shared executor for every parallel phase; created lazily, grown (by
  /// replacement, between calls — the database is externally synchronized)
  /// when a call requests more concurrency than any before it.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace ctdb::broker
