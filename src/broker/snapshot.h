// An immutable, queryable view of the contract database.
//
// A DatabaseSnapshot is the unit of publication in the broker's RCU-style
// concurrency model (DESIGN.md §8): ContractDatabase keeps master state on
// the writer side and, after every successful registration, publishes a new
// snapshot by swapping a shared_ptr under a tiny mutex. Snapshots are
// deeply immutable —
// the vocabulary, the contract vector and the prefilter index are frozen at
// publication — so any number of threads can query one snapshot, or
// different snapshots, with no locking on the read path. The only mutation a
// query performs is warming per-contract lazy quotient caches, which are
// internally synchronized (projection/store.h) and shared across snapshots
// that share a contract.
//
// Structural sharing keeps publication cheap: consecutive snapshots share
// the Contract objects (shared_ptr), the prefilter shards the registration
// did not touch (copy-on-write, index/prefilter.h), and — when no event was
// interned — the vocabulary.
//
// Queries parse and translate with a caller-local formula factory (never the
// database's shared one) and resolve events read-only against the snapshot
// vocabulary, so the read path allocates no shared state at all.

#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "automata/buchi.h"
#include "base/run.h"
#include "base/vocabulary.h"
#include "broker/contract.h"
#include "broker/stats.h"
#include "core/permission.h"
#include "index/prefilter.h"
#include "index/pruning.h"
#include "ltl/formula.h"
#include "projection/store.h"
#include "translate/cache.h"
#include "translate/ltl_to_ba.h"
#include "util/result.h"

namespace ctdb::util {
class ThreadPool;
}

namespace ctdb::broker {

/// Registration-time configuration.
struct DatabaseOptions {
  /// Maintain the prefiltering index (§4).
  bool build_prefilter = true;
  index::PrefilterOptions prefilter;

  /// Precompute simplified projections (§5).
  bool build_projections = true;
  projection::ProjectionStoreOptions projections;

  /// LTL → BA pipeline settings.
  translate::TranslateOptions translate;

  /// Entry budget for the shared query-translation cache
  /// (translate/cache.h): repeated query structures skip the tableau
  /// pipeline entirely. 0 disables caching (every query translates afresh —
  /// the paper-faithful ablation baseline). Registration-side translations
  /// never consult the cache; it serves the read path only.
  size_t translation_cache_capacity = 256;

  /// Default concurrency for the database's parallel phases (registration
  /// precompute, per-candidate permission checks, batched queries). The
  /// database lazily creates one shared work-stealing executor
  /// (util::ThreadPool) grown in place to the largest concurrency ever
  /// requested and reuses it across calls — no per-call thread spawn/join.
  /// 1 (the default) reproduces the paper's single-threaded prototype
  /// byte-for-byte: no pool is created and every phase runs inline on the
  /// calling thread. QueryOptions::threads and RegisterBatch's `threads`
  /// argument override this per call (there, 0 means "inherit this value").
  size_t threads = 1;

  /// Number of independent durable shards the contract space is partitioned
  /// into — consumed by shard::ShardedDatabase::Open (DESIGN.md §13), where
  /// 0 means "adopt whatever the directory's manifest records". Ignored by
  /// ContractDatabase/DurableDatabase themselves: a single instance is
  /// always exactly one shard.
  size_t shards = 1;
};

/// Query-time configuration.
struct QueryOptions {
  /// Use the prefiltering index to restrict permission checks to candidates.
  bool use_prefilter = true;
  /// Use the precomputed simplified projections for the permission checks.
  bool use_projections = true;
  /// Also extract, for every match, a concrete allowed event sequence that
  /// satisfies the query (a witness; see core/witness.h). Witnesses are
  /// computed on the registered automata, so they are real contract runs.
  bool collect_witnesses = false;
  /// Number of threads for the per-candidate permission checks; the workload
  /// is embarrassingly parallel across candidates (§7.4 makes the same
  /// observation for the registration-time precompute). 0 (the default)
  /// inherits DatabaseOptions::threads; 1 forces single-threaded evaluation.
  /// Parallel checks run on the database's shared executor, not on per-call
  /// threads.
  size_t threads = 0;
  /// Permission algorithm knobs (Algorithm 2 vs SCC, seeds).
  core::PermissionOptions permission;
  index::PruningOptions pruning;
};

/// A query's outcome.
struct QueryResult {
  std::vector<uint32_t> matches;  ///< ids of contracts permitting the query
  /// When QueryOptions::collect_witnesses is set: witnesses[i] demonstrates
  /// matches[i] (same order and length as `matches`).
  std::vector<LassoWord> witnesses;
  QueryStats stats;
};

/// \brief A frozen view of the database: the full query engine over an
/// immutable contract set.
///
/// Obtained from ContractDatabase::Snapshot(); remains valid (and continues
/// to answer from the state it captured) for as long as the shared_ptr is
/// held, regardless of later registrations. All members are safe to call
/// concurrently.
class DatabaseSnapshot {
 public:
  DatabaseSnapshot() = default;

  /// Evaluates an LTL query against this snapshot. Queries must cite only
  /// events known to the snapshot (unknown events cannot be permitted by any
  /// contract — they are an error, to catch typos early).
  ///
  /// `pool` is an optional executor for the parallel permission phase; with
  /// nullptr (or an effective thread count of 1) evaluation is single
  /// threaded on the calling thread. ContractDatabase::Query passes its
  /// shared executor.
  Result<QueryResult> Query(std::string_view ltl_text,
                            const QueryOptions& options = {},
                            util::ThreadPool* pool = nullptr) const;

  /// Evaluates a pre-parsed query formula. The formula may come from any
  /// factory (it is rebuilt into a local one before translation).
  Result<QueryResult> QueryFormula(const ltl::Formula* query,
                                   const QueryOptions& options = {},
                                   util::ThreadPool* pool = nullptr) const;

  /// \brief Evaluates many LTL queries in one call.
  ///
  /// Returns one QueryResult per query, each identical (matches and
  /// witnesses) to what Query would return for that text. Batching amortizes
  /// executor dispatch across the whole batch and shares each contract's
  /// lazy quotient cache across all queries: with `threads` > 1 the
  /// translate/prefilter phase parallelizes across queries (each worker
  /// parses into a thread-local factory) and the permission phase shards the
  /// (query, candidate) pairs *by contract id*, so every contract — and thus
  /// its quotient cache — is touched by exactly one worker while being
  /// reused across all queries that prefilter to it. On any parse error, no
  /// query is evaluated.
  ///
  /// Per-query stats are filled as in Query, except that in parallel mode
  /// `permission_ms` is the CPU time spent on that query's checks (summed
  /// across shards) and `total_ms` the sum of the per-phase times. In both
  /// modes the invariant `total_ms >= translate_ms + prefilter_ms` holds:
  /// serial total is the wall clock enclosing all three phases, parallel
  /// total is exactly translate + prefilter + the summed permission CPU time
  /// (so it can exceed the batch's wall clock, but never undercuts the two
  /// serial phases). Guarded by a regression test in query_batch_test.
  Result<std::vector<QueryResult>> QueryBatch(
      const std::vector<std::string>& queries, const QueryOptions& options = {},
      util::ThreadPool* pool = nullptr) const;

  /// Number of contracts in this snapshot.
  size_t size() const { return contracts_.size(); }
  /// The contract with id `id` (< size()). The reference is valid for the
  /// snapshot's lifetime.
  const Contract& contract(uint32_t id) const { return *contracts_[id]; }

  const Vocabulary& vocabulary() const { return *vocab_; }
  const index::PrefilterIndex& prefilter() const { return prefilter_; }
  const DatabaseOptions& options() const { return options_; }

  /// Aggregate footprint of the auxiliary structures (§7.4).
  size_t PrefilterMemoryUsage() const {
    return prefilter_.Stats().memory_bytes;
  }
  size_t ContractMemoryUsage() const;
  size_t ProjectionMemoryUsage() const;

 private:
  friend class ContractDatabase;  ///< the only producer of non-empty snapshots

  /// Resolves a per-call thread count (0 = inherit the database default);
  /// clamped to 1 when `pool` is null.
  size_t ResolveThreads(size_t requested, const util::ThreadPool* pool) const;

  /// The query engine shared by Query/QueryFormula/QueryBatch-serial:
  /// translate (into `factory`) → prefilter → permission checks.
  Result<QueryResult> RunQuery(const ltl::Formula* query,
                               ltl::FormulaFactory* factory,
                               const QueryOptions& options,
                               util::ThreadPool* pool) const;

  /// Runs one permission check; appends to the given output buffers.
  void CheckCandidate(size_t contract_index, const automata::Buchi& query_ba,
                      const Bitset& query_events, const QueryOptions& options,
                      std::vector<uint32_t>* matches,
                      std::vector<LassoWord>* witnesses,
                      core::PermissionStats* stats) const;

  DatabaseOptions options_;
  std::shared_ptr<const Vocabulary> vocab_ = std::make_shared<Vocabulary>();
  std::vector<std::shared_ptr<const Contract>> contracts_;
  index::PrefilterIndex prefilter_;
  /// The database's shared query-translation cache (translate/cache.h),
  /// handed to every published snapshot: a formula translated through one
  /// snapshot is a hit for queries on any other. Null or disabled ⇒ every
  /// query translates afresh. The cache is internally synchronized, so
  /// sharing it does not compromise snapshot immutability — cached automata
  /// are immutable values behind shared_ptr.
  std::shared_ptr<translate::TranslationCache> translation_cache_;
};

}  // namespace ctdb::broker
