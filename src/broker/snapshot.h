// An immutable, queryable view of the contract database.
//
// A DatabaseSnapshot is the unit of publication in the broker's RCU-style
// concurrency model (DESIGN.md §8): ContractDatabase keeps master state on
// the writer side and, after every successful registration, publishes a new
// snapshot by swapping a shared_ptr under a tiny mutex. Snapshots are
// deeply immutable —
// the vocabulary, the contract vector and the prefilter index are frozen at
// publication — so any number of threads can query one snapshot, or
// different snapshots, with no locking on the read path. The only mutation a
// query performs is warming per-contract lazy quotient caches, which are
// internally synchronized (projection/store.h) and shared across snapshots
// that share a contract.
//
// Structural sharing keeps publication cheap: consecutive snapshots share
// the Contract objects (shared_ptr), the prefilter shards the registration
// did not touch (copy-on-write, index/prefilter.h), and — when no event was
// interned — the vocabulary.
//
// Queries parse and translate with a caller-local formula factory (never the
// database's shared one) and resolve events read-only against the snapshot
// vocabulary, so the read path allocates no shared state at all.

#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "automata/buchi.h"
#include "base/run.h"
#include "base/vocabulary.h"
#include "broker/contract.h"
#include "broker/history.h"
#include "broker/stats.h"
#include "core/permission.h"
#include "index/prefilter.h"
#include "index/pruning.h"
#include "ltl/formula.h"
#include "projection/store.h"
#include "translate/cache.h"
#include "translate/ltl_to_ba.h"
#include "util/result.h"
#include "util/timer.h"

namespace ctdb::util {
class ThreadPool;
}

namespace ctdb::broker {

/// How much contract history to retain for `as_of` queries (DESIGN.md §14).
struct RetentionOptions {
  /// Number of recent system-clock ticks whose history must stay
  /// answerable: after a checkpoint at clock `c`, superseded versions dead
  /// at or before `c - keep_history_seqs` may be discarded and the as-of
  /// floor raised there. 0 (the default) keeps all history forever.
  uint64_t keep_history_seqs = 0;
};

/// Registration-time configuration.
struct DatabaseOptions {
  /// Maintain the prefiltering index (§4).
  bool build_prefilter = true;
  index::PrefilterOptions prefilter;

  /// Precompute simplified projections (§5).
  bool build_projections = true;
  projection::ProjectionStoreOptions projections;

  /// LTL → BA pipeline settings.
  translate::TranslateOptions translate;

  /// Entry budget for the shared query-translation cache
  /// (translate/cache.h): repeated query structures skip the tableau
  /// pipeline entirely. 0 disables caching (every query translates afresh —
  /// the paper-faithful ablation baseline). Registration-side translations
  /// never consult the cache; it serves the read path only.
  size_t translation_cache_capacity = 256;

  /// Default concurrency for the database's parallel phases (registration
  /// precompute, per-candidate permission checks, batched queries). The
  /// database lazily creates one shared work-stealing executor
  /// (util::ThreadPool) grown in place to the largest concurrency ever
  /// requested and reuses it across calls — no per-call thread spawn/join.
  /// 1 (the default) reproduces the paper's single-threaded prototype
  /// byte-for-byte: no pool is created and every phase runs inline on the
  /// calling thread. QueryOptions::threads and RegisterBatch's `threads`
  /// argument override this per call (there, 0 means "inherit this value").
  size_t threads = 1;

  /// Number of independent durable shards the contract space is partitioned
  /// into — consumed by shard::ShardedDatabase::Open (DESIGN.md §13), where
  /// 0 means "adopt whatever the directory's manifest records". Ignored by
  /// ContractDatabase/DurableDatabase themselves: a single instance is
  /// always exactly one shard.
  size_t shards = 1;

  /// History retention for time-travel queries. Applied by the durable
  /// layer at checkpoint time (the natural pruning point: the checkpoint
  /// image is what re-seeds history on recovery).
  RetentionOptions retention;
};

/// Query-time configuration.
struct QueryOptions {
  /// Use the prefiltering index to restrict permission checks to candidates.
  bool use_prefilter = true;
  /// Use the precomputed simplified projections for the permission checks.
  bool use_projections = true;
  /// Also extract, for every match, a concrete allowed event sequence that
  /// satisfies the query (a witness; see core/witness.h). Witnesses are
  /// computed on the registered automata, so they are real contract runs.
  bool collect_witnesses = false;
  /// Number of threads for the per-candidate permission checks; the workload
  /// is embarrassingly parallel across candidates (§7.4 makes the same
  /// observation for the registration-time precompute). 0 (the default)
  /// inherits DatabaseOptions::threads; 1 forces single-threaded evaluation.
  /// Parallel checks run on the database's shared executor, not on per-call
  /// threads.
  size_t threads = 0;
  /// Permission algorithm knobs (Algorithm 2 vs SCC, seeds).
  core::PermissionOptions permission;
  index::PruningOptions pruning;

  /// Time travel: answer against the contract set as of this system clock
  /// (DESIGN.md §14) instead of the live set. 0 (the default) means
  /// "latest"; clock 0 itself is never assigned to a mutation, so the
  /// sentinel is unambiguous. A value at or above the snapshot's clock is
  /// clamped to "latest"; a value below the retention floor is
  /// InvalidArgument (history there has been discarded, an exact answer is
  /// impossible). Historical evaluation scans every visible version — the
  /// prefilter indexes only live contracts — so exactness, not speed, is
  /// the contract here.
  uint64_t as_of = 0;
};

/// A query's outcome.
struct QueryResult {
  std::vector<uint32_t> matches;  ///< ids of contracts permitting the query
  /// When QueryOptions::collect_witnesses is set: witnesses[i] demonstrates
  /// matches[i] (same order and length as `matches`).
  std::vector<LassoWord> witnesses;
  QueryStats stats;
};

/// \brief A frozen view of the database: the full query engine over an
/// immutable contract set.
///
/// Obtained from ContractDatabase::Snapshot(); remains valid (and continues
/// to answer from the state it captured) for as long as the shared_ptr is
/// held, regardless of later registrations. All members are safe to call
/// concurrently.
class DatabaseSnapshot {
 public:
  DatabaseSnapshot() = default;

  /// Evaluates an LTL query against this snapshot. Queries must cite only
  /// events known to the snapshot (unknown events cannot be permitted by any
  /// contract — they are an error, to catch typos early).
  ///
  /// `pool` is an optional executor for the parallel permission phase; with
  /// nullptr (or an effective thread count of 1) evaluation is single
  /// threaded on the calling thread. ContractDatabase::Query passes its
  /// shared executor.
  Result<QueryResult> Query(std::string_view ltl_text,
                            const QueryOptions& options = {},
                            util::ThreadPool* pool = nullptr) const;

  /// Evaluates a pre-parsed query formula. The formula may come from any
  /// factory (it is rebuilt into a local one before translation).
  Result<QueryResult> QueryFormula(const ltl::Formula* query,
                                   const QueryOptions& options = {},
                                   util::ThreadPool* pool = nullptr) const;

  /// \brief Evaluates many LTL queries in one call.
  ///
  /// Returns one QueryResult per query, each identical (matches and
  /// witnesses) to what Query would return for that text. Batching amortizes
  /// executor dispatch across the whole batch and shares each contract's
  /// lazy quotient cache across all queries: with `threads` > 1 the
  /// translate/prefilter phase parallelizes across queries (each worker
  /// parses into a thread-local factory) and the permission phase shards the
  /// (query, candidate) pairs *by contract id*, so every contract — and thus
  /// its quotient cache — is touched by exactly one worker while being
  /// reused across all queries that prefilter to it. On any parse error, no
  /// query is evaluated.
  ///
  /// Per-query stats are filled as in Query, except that in parallel mode
  /// `permission_ms` is the CPU time spent on that query's checks (summed
  /// across shards) and `total_ms` the sum of the per-phase times. In both
  /// modes the invariant `total_ms >= translate_ms + prefilter_ms` holds:
  /// serial total is the wall clock enclosing all three phases, parallel
  /// total is exactly translate + prefilter + the summed permission CPU time
  /// (so it can exceed the batch's wall clock, but never undercuts the two
  /// serial phases). Guarded by a regression test in query_batch_test.
  Result<std::vector<QueryResult>> QueryBatch(
      const std::vector<std::string>& queries, const QueryOptions& options = {},
      util::ThreadPool* pool = nullptr) const;

  /// Number of *live* contracts in this snapshot (unregistered ones leave
  /// holes — see slot_count()).
  size_t size() const { return live_count_; }

  /// Number of id slots ever allocated (== one past the largest id). Ids
  /// are never reused, so dead contracts leave nullptr holes in the slot
  /// table and `slot_count() >= size()`.
  size_t slot_count() const { return contracts_.size(); }

  /// The live contract with id `id` (requires `is_live(id)`). The reference
  /// is valid for the snapshot's lifetime.
  const Contract& contract(uint32_t id) const { return *contracts_[id]; }

  /// The contract in slot `id`, or nullptr when the slot is a hole (dead
  /// contract) or out of range.
  const Contract* contract_or_null(uint32_t id) const {
    return id < contracts_.size() ? contracts_[id].get() : nullptr;
  }

  bool is_live(uint32_t id) const {
    return id < contracts_.size() && contracts_[id] != nullptr;
  }

  /// Count of mutations applied (the dense WAL sequence — what checkpoint
  /// coverage is keyed by).
  uint64_t ops() const { return ops_; }

  /// System-period clock of the last mutation (== ops() unsharded;
  /// router-assigned, sparse per shard, when sharded). The `as_of` axis.
  uint64_t sequence() const { return clock_; }

  /// Superseded contract versions (never null).
  const HistoryStore& history() const { return *history_; }
  const std::shared_ptr<const HistoryStore>& history_ptr() const {
    return history_;
  }

  const Vocabulary& vocabulary() const { return *vocab_; }
  const index::PrefilterIndex& prefilter() const { return prefilter_; }
  const DatabaseOptions& options() const { return options_; }

  /// The contract versions visible as-of clock `seq`: live contracts with
  /// valid_from <= seq plus history versions whose period covers seq. One
  /// version per contract id, sorted by id. Pointers stay valid for the
  /// snapshot's lifetime. Callers owning exactness (time-travel queries,
  /// stream sessions) must check `seq` against history().floor() first.
  std::vector<const Contract*> VisibleAt(uint64_t seq) const;

  /// Aggregate footprint of the auxiliary structures (§7.4).
  size_t PrefilterMemoryUsage() const {
    return prefilter_.Stats().memory_bytes;
  }
  size_t ContractMemoryUsage() const;
  size_t ProjectionMemoryUsage() const;

 private:
  friend class ContractDatabase;  ///< the only producer of non-empty snapshots

  /// Resolves a per-call thread count (0 = inherit the database default);
  /// clamped to 1 when `pool` is null.
  size_t ResolveThreads(size_t requested, const util::ThreadPool* pool) const;

  /// The query engine shared by Query/QueryFormula/QueryBatch-serial:
  /// translate (into `factory`) → prefilter → permission checks.
  Result<QueryResult> RunQuery(const ltl::Formula* query,
                               ltl::FormulaFactory* factory,
                               const QueryOptions& options,
                               util::ThreadPool* pool) const;

  /// Runs one permission check; appends to the given output buffers.
  void CheckCandidate(const Contract& contract,
                      const automata::Buchi& query_ba,
                      const Bitset& query_events, const QueryOptions& options,
                      std::vector<uint32_t>* matches,
                      std::vector<LassoWord>* witnesses,
                      core::PermissionStats* stats) const;

  /// The historical-query engine behind RunQuery when options.as_of names a
  /// clock before this snapshot's: full scan over VisibleAt(as_of).
  Result<QueryResult> RunQueryAsOf(const automata::Buchi& query_ba,
                                   const QueryOptions& options,
                                   QueryResult result, Timer* total) const;

  DatabaseOptions options_;
  std::shared_ptr<const Vocabulary> vocab_ = std::make_shared<Vocabulary>();
  /// Slot table indexed by contract id; nullptr = unregistered (hole).
  std::vector<std::shared_ptr<const Contract>> contracts_;
  /// Bit i set iff slot i holds a live contract.
  Bitset live_;
  size_t live_count_ = 0;
  uint64_t ops_ = 0;    ///< dense mutation count (WAL sequence)
  uint64_t clock_ = 0;  ///< system-period clock of the last mutation
  std::shared_ptr<const HistoryStore> history_ =
      std::make_shared<HistoryStore>();
  index::PrefilterIndex prefilter_;
  /// The database's shared query-translation cache (translate/cache.h),
  /// handed to every published snapshot: a formula translated through one
  /// snapshot is a hit for queries on any other. Null or disabled ⇒ every
  /// query translates afresh. The cache is internally synchronized, so
  /// sharing it does not compromise snapshot immutability — cached automata
  /// are immutable values behind shared_ptr.
  std::shared_ptr<translate::TranslationCache> translation_cache_;
};

}  // namespace ctdb::broker
