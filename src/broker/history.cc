#include "broker/history.h"

#include <algorithm>

namespace ctdb::broker {

std::shared_ptr<const HistoryStore> HistoryStore::Append(
    ContractVersion version) const {
  auto next = std::make_shared<HistoryStore>(*this);
  next->versions_.push_back(std::move(version));
  return next;
}

std::shared_ptr<const HistoryStore> HistoryStore::Prune(
    uint64_t horizon) const {
  auto next = std::make_shared<HistoryStore>();
  next->floor_ = std::max(floor_, horizon);
  next->versions_.reserve(versions_.size());
  for (const ContractVersion& v : versions_) {
    if (v.valid_to > horizon) next->versions_.push_back(v);
  }
  return next;
}

std::vector<ContractVersion> HistoryStore::VersionsOf(
    uint32_t contract_id) const {
  std::vector<ContractVersion> out;
  for (const ContractVersion& v : versions_) {
    if (v.contract && v.contract->id == contract_id) out.push_back(v);
  }
  return out;
}

size_t HistoryStore::MemoryUsage() const {
  return sizeof(*this) + versions_.capacity() * sizeof(ContractVersion);
}

}  // namespace ctdb::broker
