#include "wal/wal.h"

namespace ctdb::wal {

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kGroup:
      return "group";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "unknown";
}

}  // namespace ctdb::wal
