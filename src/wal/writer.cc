#include "wal/writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "util/crash_point.h"
#include "util/file_util.h"
#include "util/timer.h"
#include "wal/segment.h"

namespace ctdb::wal {

namespace {

Status WriteAllFd(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("segment write: ") +
                              std::strerror(errno));
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

}  // namespace

LogWriter::LogWriter(std::string dir, const DurabilityOptions& options,
                     std::vector<SegmentInfo> recovered_segments)
    : dir_(std::move(dir)),
      options_(options),
      sealed_segments_(std::move(recovered_segments)) {}

Result<std::unique_ptr<LogWriter>> LogWriter::Open(
    std::string dir, uint64_t next_segment_index,
    const DurabilityOptions& options,
    std::vector<SegmentInfo> recovered_segments) {
  std::unique_ptr<LogWriter> writer(new LogWriter(
      std::move(dir), options, std::move(recovered_segments)));
  CTDB_RETURN_NOT_OK(writer->OpenSegment(next_segment_index));
  writer->thread_ = std::thread([w = writer.get()] { w->WriterLoop(); });
  return writer;
}

LogWriter::~LogWriter() { Close(); }

std::future<Status> LogWriter::AppendAsync(const Record& record) {
  std::promise<Status> promise;
  std::future<Status> future = promise.get_future();
  std::lock_guard<std::mutex> lock(queue_mutex_);
  if (closed_ || stop_) {
    promise.set_value(Status::InvalidArgument("log writer is closed"));
    return future;
  }
  if (!sticky_error_.ok()) {
    promise.set_value(sticky_error_);
    return future;
  }
  Pending pending;
  pending.frame = EncodeFrame(record);
  // Every mutating type advances the segment's sequence watermark;
  // kCheckpoint records are bookkeeping and never pin a segment.
  pending.sequence = IsMutationType(record.type) ? record.sequence : 0;
  pending.done = std::move(promise);
  queue_.push_back(std::move(pending));
  queue_cv_.notify_all();
  return future;
}

Status LogWriter::Append(const Record& record) {
  Timer wait;
  std::future<Status> future = AppendAsync(record);
  const Status status = future.get();
  CTDB_OBS_HIST("wal.commit_wait_us", wait.ElapsedMicros());
  return status;
}

Status LogWriter::RotateSegment() {
  std::future<Status> future;
  {
    std::promise<Status> promise;
    future = promise.get_future();
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (closed_ || stop_) {
      return Status::InvalidArgument("log writer is closed");
    }
    if (!sticky_error_.ok()) return sticky_error_;
    Pending pending;
    pending.rotate = true;
    pending.done = std::move(promise);
    queue_.push_back(std::move(pending));
    queue_cv_.notify_all();
  }
  return future.get();
}

Status LogWriter::Close() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (closed_) return sticky_error_;
    closed_ = true;
    stop_ = true;
    queue_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  const Status close_status = CloseSegmentFile();
  std::lock_guard<std::mutex> lock(queue_mutex_);
  if (sticky_error_.ok() && !close_status.ok()) sticky_error_ = close_status;
  return sticky_error_;
}

Status LogWriter::DeleteSegmentsCoveredBy(uint64_t sequence) {
  std::lock_guard<std::mutex> lock(segments_mutex_);
  Status status;
  std::vector<SegmentInfo> keep;
  size_t deleted = 0;
  for (const SegmentInfo& info : sealed_segments_) {
    if (info.max_sequence > sequence) {
      keep.push_back(info);
      continue;
    }
    const Status remove =
        util::RemoveFileIfExists(dir_ + "/" + SegmentFileName(info.index));
    if (!remove.ok()) {
      if (status.ok()) status = remove;
      keep.push_back(info);
      continue;
    }
    ++deleted;
    util::CrashPoint("wal.gc.after_delete");
  }
  sealed_segments_ = std::move(keep);
  if (deleted > 0) {
    CTDB_OBS_COUNT("wal.segments_deleted", deleted);
    if (ShouldSync()) {
      const Status sync = util::SyncDir(dir_);
      if (status.ok()) status = sync;
    }
  }
  return status;
}

std::vector<LogWriter::SegmentInfo> LogWriter::SealedSegments() const {
  std::lock_guard<std::mutex> lock(segments_mutex_);
  return sealed_segments_;
}

void LogWriter::WriterLoop() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  while (true) {
    if (queue_.empty()) {
      if (stop_) break;
      queue_cv_.wait(lock);
      continue;
    }
    // Group-commit window: keep collecting while callers pile on. Under
    // kAlways (or a zero window) whatever is queued right now forms the
    // group — concurrent appends still batch, they just never wait.
    if (options_.fsync_policy == FsyncPolicy::kGroup && !stop_ &&
        options_.group_commit_window.count() > 0) {
      const auto deadline =
          std::chrono::steady_clock::now() + options_.group_commit_window;
      while (!stop_ && std::chrono::steady_clock::now() < deadline) {
        queue_cv_.wait_until(lock, deadline);
      }
    }
    std::vector<Pending> batch = std::move(queue_);
    queue_.clear();
    lock.unlock();

    // Rotate requests split the batch into groups committed around them.
    size_t group_start = 0;
    for (size_t i = 0; i <= batch.size(); ++i) {
      const bool is_rotate = i < batch.size() && batch[i].rotate;
      if (i != batch.size() && !is_rotate) continue;
      CommitGroup(&batch, group_start, i);
      if (is_rotate) {
        Status status;
        {
          std::lock_guard<std::mutex> sticky_lock(queue_mutex_);
          status = sticky_error_;
        }
        if (status.ok()) status = RotateLocked();
        if (!status.ok()) {
          std::lock_guard<std::mutex> sticky_lock(queue_mutex_);
          if (sticky_error_.ok()) sticky_error_ = status;
        }
        batch[i].done.set_value(status);
      }
      group_start = i + 1;
    }
    lock.lock();
  }
}

void LogWriter::CommitGroup(std::vector<Pending>* batch, size_t first,
                            size_t last) {
  if (first == last) return;
  Status status;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    status = sticky_error_;
  }
  std::string buffer;
  uint64_t max_sequence = 0;
  for (size_t i = first; i < last; ++i) {
    buffer += (*batch)[i].frame;
    max_sequence = std::max(max_sequence, (*batch)[i].sequence);
  }
  if (status.ok() && segment_bytes_written_ > kSegmentMagic.size() &&
      segment_bytes_written_ + buffer.size() > options_.segment_bytes) {
    status = RotateLocked();
  }
  if (status.ok()) {
    status = WriteAllFd(fd_, buffer);
    util::CrashPoint("wal.writer.after_write");
  }
  if (status.ok() && ShouldSync()) {
    Timer fsync_timer;
    if (::fsync(fd_) != 0) {
      status = Status::Internal(std::string("segment fsync: ") +
                                std::strerror(errno));
    } else {
      CTDB_OBS_COUNT("wal.fsyncs", 1);
      CTDB_OBS_HIST("wal.fsync_us", fsync_timer.ElapsedMicros());
    }
    util::CrashPoint("wal.writer.after_fsync");
  }
  if (status.ok()) {
    segment_bytes_written_ += buffer.size();
    segment_max_sequence_ = std::max(segment_max_sequence_, max_sequence);
    bytes_since_checkpoint_.fetch_add(buffer.size(),
                                      std::memory_order_relaxed);
    CTDB_OBS_COUNT("wal.appends", last - first);
    CTDB_OBS_COUNT("wal.append_bytes", buffer.size());
    CTDB_OBS_COUNT("wal.groups", 1);
    CTDB_OBS_HIST("wal.group_records", last - first);
    CTDB_OBS_HIST("wal.group_bytes", buffer.size());
  } else {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (sticky_error_.ok()) sticky_error_ = status;
  }
  util::CrashPoint("wal.writer.before_ack");
  for (size_t i = first; i < last; ++i) {
    (*batch)[i].done.set_value(status);
  }
}

Status LogWriter::RotateLocked() {
  const uint64_t next = current_segment_index() + 1;
  CTDB_RETURN_NOT_OK(CloseSegmentFile());
  CTDB_RETURN_NOT_OK(OpenSegment(next));
  CTDB_OBS_COUNT("wal.rotations", 1);
  return Status::OK();
}

Status LogWriter::OpenSegment(uint64_t index) {
  const std::string path = dir_ + "/" + SegmentFileName(index);
  // O_EXCL: segment indices are never reused (recovery hands out max+1), so
  // an existing file means a bookkeeping bug — refuse to clobber data.
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return Status::Internal("open segment " + path + ": " +
                            std::strerror(errno));
  }
  const Status magic = WriteAllFd(fd_, kSegmentMagic);
  if (!magic.ok()) {
    ::close(fd_);
    fd_ = -1;
    return magic;
  }
  if (ShouldSync()) {
    // Make the file name durable; the magic itself rides the first group's
    // fsync (an un-synced magic parses as an empty torn tail — harmless).
    CTDB_RETURN_NOT_OK(util::SyncDir(dir_));
  }
  segment_bytes_written_ = kSegmentMagic.size();
  segment_max_sequence_ = 0;
  current_segment_index_.store(index, std::memory_order_relaxed);
  util::CrashPoint("wal.segment.after_open");
  return Status::OK();
}

Status LogWriter::CloseSegmentFile() {
  if (fd_ < 0) return Status::OK();
  Status status;
  if (ShouldSync() && ::fsync(fd_) != 0) {
    status = Status::Internal(std::string("segment fsync on close: ") +
                              std::strerror(errno));
  }
  if (::close(fd_) != 0 && status.ok()) {
    status = Status::Internal(std::string("segment close: ") +
                              std::strerror(errno));
  }
  fd_ = -1;
  std::lock_guard<std::mutex> lock(segments_mutex_);
  sealed_segments_.push_back(SegmentInfo{current_segment_index(),
                                         segment_max_sequence_,
                                         segment_bytes_written_});
  return status;
}

}  // namespace ctdb::wal
