// The group-commit log writer: a dedicated background thread that batches
// concurrently enqueued records into one write+fsync per group.
//
// Callers enqueue framed records with AppendAsync and block on the returned
// future; the writer thread collects everything queued (waiting up to
// DurabilityOptions::group_commit_window under FsyncPolicy::kGroup), writes
// the group with a single `write`, makes it durable per the fsync policy,
// and only then fulfils the futures — so an acknowledged append is durable
// by construction. Rotation to a new segment happens on the writer thread,
// either when the current segment exceeds segment_bytes or on an explicit
// RotateSegment request (the checkpointer uses this to seal the log below a
// checkpoint so covered segments become deletable).
//
// Ordering contract: records are written in enqueue order. The owner
// (broker::DurableDatabase) enqueues mutation records while holding its
// append mutex, so on-disk order equals mutation-sequence order — which
// recovery then verifies.
//
// I/O errors are sticky: the first failed write/fsync fails its whole group
// and every later append, so a caller can never get an Ok for a record
// behind a hole in the log.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/result.h"
#include "wal/record.h"
#include "wal/wal.h"

namespace ctdb::wal {

/// \brief Appends records to segment files with group commit.
class LogWriter {
 public:
  /// A sealed (no longer written) segment, remembered for checkpoint
  /// truncation.
  struct SegmentInfo {
    uint64_t index = 0;
    /// Highest mutation sequence the segment holds (0 = none). Every
    /// mutating record type — kRegister, kUnregister, kReplace — advances
    /// it; kCheckpoint records are bookkeeping and do not.
    uint64_t max_sequence = 0;
    uint64_t bytes = 0;
  };

  /// Creates the writer and its first segment file
  /// `dir/SegmentFileName(next_segment_index)`. `recovered_segments`
  /// carries the sealed segments recovery found on disk so they remain
  /// candidates for checkpoint truncation. The writer never appends to a
  /// pre-existing segment — a recovered torn tail stays untouched on disk
  /// and unreferenced by the record sequence.
  static Result<std::unique_ptr<LogWriter>> Open(
      std::string dir, uint64_t next_segment_index,
      const DurabilityOptions& options,
      std::vector<SegmentInfo> recovered_segments = {});

  ~LogWriter();
  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// Enqueues `record`; the future resolves once the record is durable per
  /// the fsync policy (for kNever: written to the OS).
  std::future<Status> AppendAsync(const Record& record);

  /// AppendAsync + wait.
  Status Append(const Record& record);

  /// Seals the current segment and starts a new one; returns once every
  /// previously enqueued record is flushed and the new segment exists.
  Status RotateSegment();

  /// Drains the queue, seals the current segment and stops the writer
  /// thread. Further appends fail. Idempotent; also run by the destructor.
  Status Close();

  /// Deletes every sealed segment whose mutating records all have sequence
  /// <= `sequence` (they are covered by a checkpoint). Never touches the
  /// open segment.
  Status DeleteSegmentsCoveredBy(uint64_t sequence);

  /// Log bytes appended since the last ResetBytesSinceCheckpoint (drives
  /// automatic checkpoint scheduling).
  uint64_t bytes_since_checkpoint() const {
    return bytes_since_checkpoint_.load(std::memory_order_relaxed);
  }
  void ResetBytesSinceCheckpoint() {
    bytes_since_checkpoint_.store(0, std::memory_order_relaxed);
  }

  uint64_t current_segment_index() const {
    return current_segment_index_.load(std::memory_order_relaxed);
  }

  std::vector<SegmentInfo> SealedSegments() const;

 private:
  LogWriter(std::string dir, const DurabilityOptions& options,
            std::vector<SegmentInfo> recovered_segments);

  struct Pending {
    std::string frame;      ///< empty for rotate requests
    uint64_t sequence = 0;  ///< 0 when not a mutating record
    bool rotate = false;
    std::promise<Status> done;
  };

  void WriterLoop();
  /// Writes+syncs the accumulated frames of `batch[first..last)` as one
  /// group and fulfils their promises.
  void CommitGroup(std::vector<Pending>* batch, size_t first, size_t last);
  /// Seals the current segment (fsync unless kNever) and opens the next.
  Status RotateLocked();
  Status OpenSegment(uint64_t index);
  Status CloseSegmentFile();
  bool ShouldSync() const {
    return options_.fsync_policy != FsyncPolicy::kNever;
  }

  const std::string dir_;
  const DurabilityOptions options_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::vector<Pending> queue_;
  bool stop_ = false;
  Status sticky_error_;  ///< guarded by queue_mutex_; first I/O failure

  // Writer-thread-only state.
  int fd_ = -1;
  uint64_t segment_bytes_written_ = 0;
  uint64_t segment_max_sequence_ = 0;

  std::atomic<uint64_t> current_segment_index_{0};
  std::atomic<uint64_t> bytes_since_checkpoint_{0};

  mutable std::mutex segments_mutex_;
  std::vector<SegmentInfo> sealed_segments_;

  std::thread thread_;
  bool closed_ = false;  ///< guarded by queue_mutex_
};

}  // namespace ctdb::wal
