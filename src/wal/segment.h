// Write-ahead-log segment files: naming, header, and the reader with the
// torn-tail rule.
//
// A segment file is the 8-byte magic "CTDBWAL1" followed by frames
// (record.h). Segments are named `wal-<index>.log` with a zero-padded
// monotonically increasing index, so lexicographic order is append order.
//
// Torn-tail rule (the heart of crash recovery, DESIGN.md §10): a crash can
// leave a partially written frame — or nothing but garbage from a dropped
// write — at the *physical end* of the segment that was current. Parsing
// therefore treats an invalid frame as a clean end of the segment iff no
// syntactically complete, CRC-valid frame exists anywhere after it
// (ParsedSegment::torn_tail); if one does, bytes in the *middle* of the
// durable log were damaged and the segment is reported as
// Status::Corruption. Lost acknowledged records cannot hide behind this
// rule: recovery (broker/durable.cc) additionally enforces registration-
// sequence continuity across segments, so a tail truncation that swallowed
// records followed by surviving later ones still surfaces as corruption.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "wal/record.h"

namespace ctdb::wal {

/// Segment file magic (also the format version).
inline constexpr std::string_view kSegmentMagic = "CTDBWAL1";

/// "wal-000000000042.log" for index 42.
std::string SegmentFileName(uint64_t index);

/// Parses a SegmentFileName; false for any other name.
bool ParseSegmentFileName(std::string_view name, uint64_t* index);

/// The readable content of one segment.
struct ParsedSegment {
  std::vector<Record> records;
  /// Bytes covered by the magic plus the valid frames (the offset a torn
  /// tail would be truncated at).
  size_t valid_bytes = 0;
  /// True when parsing stopped at a torn/corrupt tail (invalid bytes with
  /// no valid frame after them) instead of the exact end of the data.
  bool torn_tail = false;
};

/// \brief Parses segment bytes according to the torn-tail rule.
///
/// Returns Corruption when the magic is damaged (on data of at least magic
/// size) or when an invalid frame is followed by a valid one. Data shorter
/// than the magic — including an empty file, a crash between segment
/// creation and the magic write — parses as an empty segment with
/// torn_tail set when nonempty.
Status ParseSegment(std::string_view data, ParsedSegment* out);

}  // namespace ctdb::wal
