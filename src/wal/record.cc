#include "wal/record.h"

#include <cstring>

#include "util/crc32c.h"

namespace ctdb::wal {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool GetU32(std::string_view data, size_t* offset, uint32_t* v) {
  if (data.size() - *offset < 4) return false;
  const auto* p = reinterpret_cast<const uint8_t*>(data.data() + *offset);
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
  *offset += 4;
  return true;
}

bool GetU64(std::string_view data, size_t* offset, uint64_t* v) {
  uint32_t lo = 0, hi = 0;
  if (!GetU32(data, offset, &lo) || !GetU32(data, offset, &hi)) return false;
  *v = static_cast<uint64_t>(hi) << 32 | lo;
  return true;
}

bool GetString(std::string_view data, size_t* offset, std::string* s) {
  uint32_t len = 0;
  if (!GetU32(data, offset, &len)) return false;
  if (data.size() - *offset < len) return false;
  s->assign(data.substr(*offset, len));
  *offset += len;
  return true;
}

}  // namespace

Record Record::Register(uint64_t sequence, uint64_t clock,
                        uint32_t contract_id, std::string name,
                        std::string ltl_text) {
  Record r;
  r.type = RecordType::kRegister;
  r.sequence = sequence;
  r.clock = clock;
  r.contract_id = contract_id;
  r.name = std::move(name);
  r.ltl_text = std::move(ltl_text);
  return r;
}

Record Record::Unregister(uint64_t sequence, uint64_t clock,
                          uint32_t contract_id) {
  Record r;
  r.type = RecordType::kUnregister;
  r.sequence = sequence;
  r.clock = clock;
  r.contract_id = contract_id;
  return r;
}

Record Record::Replace(uint64_t sequence, uint64_t clock, uint32_t contract_id,
                       std::string ltl_text) {
  Record r;
  r.type = RecordType::kReplace;
  r.sequence = sequence;
  r.clock = clock;
  r.contract_id = contract_id;
  r.ltl_text = std::move(ltl_text);
  return r;
}

Record Record::Checkpoint(uint64_t sequence, std::string snapshot_path) {
  Record r;
  r.type = RecordType::kCheckpoint;
  r.sequence = sequence;
  r.snapshot_path = std::move(snapshot_path);
  return r;
}

bool Record::operator==(const Record& other) const {
  return type == other.type && sequence == other.sequence &&
         clock == other.clock && contract_id == other.contract_id &&
         name == other.name && ltl_text == other.ltl_text &&
         snapshot_path == other.snapshot_path;
}

std::string EncodePayload(const Record& record) {
  std::string out;
  out.push_back(static_cast<char>(record.type));
  PutU64(&out, record.sequence);
  PutU64(&out, record.clock);
  PutU32(&out, record.contract_id);
  switch (record.type) {
    case RecordType::kRegister:
      PutString(&out, record.name);
      PutString(&out, record.ltl_text);
      break;
    case RecordType::kUnregister:
      break;  // the common header carries everything
    case RecordType::kReplace:
      PutString(&out, record.ltl_text);
      break;
    case RecordType::kCheckpoint:
      PutString(&out, record.snapshot_path);
      break;
  }
  return out;
}

Status DecodePayload(std::string_view payload, Record* record) {
  if (payload.empty()) return Status::Corruption("empty record payload");
  *record = Record();
  size_t offset = 0;
  const uint8_t type = static_cast<uint8_t>(payload[offset++]);
  if (!GetU64(payload, &offset, &record->sequence) ||
      !GetU64(payload, &offset, &record->clock) ||
      !GetU32(payload, &offset, &record->contract_id)) {
    return Status::Corruption("record payload truncated in header");
  }
  switch (type) {
    case static_cast<uint8_t>(RecordType::kRegister):
      record->type = RecordType::kRegister;
      if (!GetString(payload, &offset, &record->name) ||
          !GetString(payload, &offset, &record->ltl_text)) {
        return Status::Corruption("register record payload truncated");
      }
      break;
    case static_cast<uint8_t>(RecordType::kUnregister):
      record->type = RecordType::kUnregister;
      break;
    case static_cast<uint8_t>(RecordType::kReplace):
      record->type = RecordType::kReplace;
      if (!GetString(payload, &offset, &record->ltl_text)) {
        return Status::Corruption("replace record payload truncated");
      }
      break;
    case static_cast<uint8_t>(RecordType::kCheckpoint):
      record->type = RecordType::kCheckpoint;
      if (!GetString(payload, &offset, &record->snapshot_path)) {
        return Status::Corruption("checkpoint record payload truncated");
      }
      break;
    default:
      return Status::Corruption("unknown record type " + std::to_string(type));
  }
  if (offset != payload.size()) {
    return Status::Corruption("trailing bytes after record body");
  }
  return Status::OK();
}

std::string EncodeFrame(const Record& record) {
  const std::string payload = EncodePayload(record);
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, util::Crc32c(payload));
  out += payload;
  return out;
}

Status DecodeFrame(std::string_view data, size_t* offset, Record* record) {
  size_t pos = *offset;
  uint32_t length = 0, crc = 0;
  if (!GetU32(data, &pos, &length) || !GetU32(data, &pos, &crc)) {
    return Status::Corruption("frame header truncated");
  }
  if (length > kMaxRecordBytes) {
    return Status::Corruption("frame length " + std::to_string(length) +
                              " exceeds record size cap");
  }
  if (data.size() - pos < length) {
    return Status::Corruption("frame payload truncated");
  }
  const std::string_view payload = data.substr(pos, length);
  if (util::Crc32c(payload) != crc) {
    return Status::Corruption("frame CRC mismatch");
  }
  CTDB_RETURN_NOT_OK(DecodePayload(payload, record));
  *offset = pos + length;
  return Status::OK();
}

bool FrameLooksValid(std::string_view data, size_t offset) {
  size_t pos = offset;
  uint32_t length = 0, crc = 0;
  if (!GetU32(data, &pos, &length) || !GetU32(data, &pos, &crc)) return false;
  // The minimum bound matters beyond hygiene: a run of ≥8 zero bytes decodes
  // as length 0 · crc 0, and CRC32C("") == 0 — without it, any torn tail
  // containing such a run (easy with u64 header fields) would look like a
  // valid later frame and misclassify the tear as mid-log corruption.
  if (length < kMinRecordBytes || length > kMaxRecordBytes) return false;
  if (data.size() - pos < length) return false;
  return util::Crc32c(data.substr(pos, length)) == crc;
}

}  // namespace ctdb::wal
