// Write-ahead-log record format: binary, length-prefixed, CRC32C-framed.
//
// A frame on disk is
//
//   ┌────────────┬───────────┬──────────────────────────────┐
//   │ length u32 │ crc32c u32│ payload (`length` bytes)     │
//   └────────────┴───────────┴──────────────────────────────┘
//     little-endian           crc is over the payload only
//
//   payload := type u8 · sequence u64 · clock u64 · contract_id u32 · body
//   kRegister body   := name_len u32 · name · ltl_len u32 · ltl_text
//   kUnregister body := (empty — contract_id is in the common header)
//   kReplace body    := ltl_len u32 · ltl_text
//   kCheckpoint body := path_len u32 · snapshot_path
//
// `sequence` is the record's 1-based position among this log's mutating
// records (dense: every kRegister/kUnregister/kReplace advances it by one) —
// what recovery checks for continuity. `clock` is the system-period clock
// the mutation happened at (DESIGN.md §14): equal to `sequence` for an
// unsharded database, a router-assigned global value (sparse per shard) for
// a sharded one. `contract_id` names the contract the mutation touched; for
// kRegister it is the id the registration was assigned, which recovery
// verifies replay reproduces. For kCheckpoint, `sequence` is the mutation
// sequence the checkpoint image covers and `snapshot_path` the checkpoint
// file's name within the WAL directory (clock/contract_id are zero).
//
// Decoding is hostile-input safe: any framing or structural violation comes
// back as Status::Corruption, never a crash or overread (fuzzed by
// tools/fuzz/fuzz_wal).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

namespace ctdb::wal {

enum class RecordType : uint8_t {
  kRegister = 1,
  kCheckpoint = 2,
  kUnregister = 3,
  kReplace = 4,
};

/// True for the record types that mutate the contract set (and therefore
/// advance the mutation sequence); kCheckpoint is bookkeeping.
inline constexpr bool IsMutationType(RecordType type) {
  return type == RecordType::kRegister || type == RecordType::kUnregister ||
         type == RecordType::kReplace;
}

/// One logical log record (see the format comment above).
struct Record {
  RecordType type = RecordType::kRegister;
  uint64_t sequence = 0;
  uint64_t clock = 0;         ///< system-period clock of the mutation
  uint32_t contract_id = 0;   ///< contract the mutation touched
  std::string name;           ///< kRegister: contract name
  std::string ltl_text;       ///< kRegister/kReplace: the LTL specification
  std::string snapshot_path;  ///< kCheckpoint: checkpoint file name

  static Record Register(uint64_t sequence, uint64_t clock,
                         uint32_t contract_id, std::string name,
                         std::string ltl_text);
  static Record Unregister(uint64_t sequence, uint64_t clock,
                           uint32_t contract_id);
  static Record Replace(uint64_t sequence, uint64_t clock,
                        uint32_t contract_id, std::string ltl_text);
  static Record Checkpoint(uint64_t sequence, std::string snapshot_path);

  bool operator==(const Record& other) const;
};

/// Frame header size: length u32 + crc u32.
inline constexpr size_t kFrameHeaderBytes = 8;

/// Lower bound on one payload: the common header (type u8 · sequence u64 ·
/// clock u64 · contract_id u32) that every record type carries. Anything
/// shorter is rejected before the CRC is even consulted — which also keeps a
/// run of zero bytes (length 0 · crc 0 · empty payload, and CRC32C("") == 0)
/// from passing FrameLooksValid and turning a torn tail into a false
/// mid-log-corruption verdict.
inline constexpr size_t kMinRecordBytes = 1 + 8 + 8 + 4;

/// Upper bound on one payload; larger length prefixes are rejected as
/// corruption before any allocation, bounding memory under hostile input.
inline constexpr size_t kMaxRecordBytes = 1u << 26;

/// Serializes the payload (no frame header).
std::string EncodePayload(const Record& record);

/// Parses a payload produced by EncodePayload. Corruption on any structural
/// violation; trailing garbage after the body is corruption too.
Status DecodePayload(std::string_view payload, Record* record);

/// Serializes the full frame: header + payload.
std::string EncodeFrame(const Record& record);

/// \brief Reads the frame starting at `data[offset]`.
///
/// On success advances `*offset` past the frame and fills `*record`. Returns
/// Corruption when the bytes at `offset` are not a whole, CRC-valid,
/// decodable frame (the segment reader decides whether that means a torn
/// tail or real corruption — segment.h).
Status DecodeFrame(std::string_view data, size_t* offset, Record* record);

/// True iff a syntactically complete frame with a matching CRC starts at
/// `data[offset]` (no payload decoding). Used by the segment reader to
/// distinguish a torn tail from mid-log corruption.
bool FrameLooksValid(std::string_view data, size_t offset);

}  // namespace ctdb::wal
