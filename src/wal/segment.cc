#include "wal/segment.h"

#include <cinttypes>

#include "util/string_util.h"

namespace ctdb::wal {

std::string SegmentFileName(uint64_t index) {
  return StringFormat("wal-%012" PRIu64 ".log", index);
}

bool ParseSegmentFileName(std::string_view name, uint64_t* index) {
  if (!StartsWith(name, "wal-") || name.size() <= 8 ||
      name.substr(name.size() - 4) != ".log") {
    return false;
  }
  const std::string_view digits = name.substr(4, name.size() - 8);
  if (digits.empty() || digits.size() > 20) return false;
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *index = value;
  return true;
}

namespace {

/// True iff any syntactically complete, CRC-valid frame starts at or after
/// `from`. Random garbage almost never passes: the length prefix must fit
/// the remaining bytes (rejecting ~all 32-bit values for realistic segment
/// sizes) and the payload CRC must match (2^-32).
bool AnyValidFrameAfter(std::string_view data, size_t from) {
  if (data.size() < kFrameHeaderBytes) return false;
  for (size_t offset = from; offset + kFrameHeaderBytes <= data.size();
       ++offset) {
    if (FrameLooksValid(data, offset)) return true;
  }
  return false;
}

}  // namespace

Status ParseSegment(std::string_view data, ParsedSegment* out) {
  *out = ParsedSegment();
  if (data.size() < kSegmentMagic.size()) {
    // Crash between segment creation and the magic write.
    out->torn_tail = !data.empty();
    return Status::OK();
  }
  if (data.substr(0, kSegmentMagic.size()) != kSegmentMagic) {
    return Status::Corruption("bad segment magic");
  }
  size_t offset = kSegmentMagic.size();
  out->valid_bytes = offset;
  while (offset < data.size()) {
    Record record;
    const size_t frame_start = offset;
    const Status status = DecodeFrame(data, &offset, &record);
    if (!status.ok()) {
      if (AnyValidFrameAfter(data, frame_start + 1)) {
        return Status::Corruption("invalid frame before end of segment: " +
                                  status.message());
      }
      out->torn_tail = true;
      return Status::OK();
    }
    out->records.push_back(std::move(record));
    out->valid_bytes = offset;
  }
  return Status::OK();
}

}  // namespace ctdb::wal
