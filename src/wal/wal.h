// Durability subsystem (DESIGN.md §10): configuration shared by the record
// format (record.h), segment reader (segment.h), group-commit writer
// (writer.h) and the broker integration (broker/durable.h). Crash-point
// fault injection lives in util/crash_point.h.
//
// The write-ahead log is a directory of segment files `wal-<index>.log`
// holding CRC32C-framed registration records, plus checkpoint files
// `checkpoint-<sequence>.ctdb` (full SaveSnapshot images written atomically).
// Registrations are durable once their record is written and — depending on
// FsyncPolicy — fsynced; recovery loads the newest valid checkpoint and
// replays the records past it (broker/durable.h).

#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace ctdb::wal {

/// When an acknowledged registration is guaranteed to survive a crash.
enum class FsyncPolicy : uint8_t {
  /// fsync before every acknowledgement: a record is durable when its
  /// Register returns Ok. Concurrent registrations arriving while an fsync
  /// is in flight still share the next one (group commit never turns off).
  kAlways,
  /// The writer waits up to `group_commit_window` collecting records, then
  /// persists the whole group with one write+fsync. A registration is
  /// durable when it returns Ok; the window only bounds added latency.
  kGroup,
  /// Never fsync: records are written to the OS immediately but survive
  /// only an orderly process exit, not a power failure. For bulk loads and
  /// tests.
  kNever,
};

const char* FsyncPolicyName(FsyncPolicy policy);

/// Knobs for the durability subsystem (broker::DurableDatabase).
struct DurabilityOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kGroup;

  /// How long the group-commit writer waits for more records before
  /// flushing a group (kGroup only). 0 flushes whatever is queued at once —
  /// equivalent to kAlways.
  std::chrono::microseconds group_commit_window{200};

  /// Rotate to a new segment once the current one exceeds this size.
  size_t segment_bytes = 8u << 20;

  /// When > 0: automatically run a background checkpoint after this many
  /// log bytes have been appended since the last one. 0 disables automatic
  /// checkpoints (call DurableDatabase::Checkpoint explicitly).
  uint64_t checkpoint_log_bytes = 0;
};

}  // namespace ctdb::wal
