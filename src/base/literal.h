// Literals: an event cited positively or negatively in a transition label.
// Encoded as a dense id so literal sets can be sorted vectors / bitsets.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/vocabulary.h"

namespace ctdb {

/// Dense literal id: event `e` positive -> 2e, negative -> 2e+1.
using LiteralId = uint32_t;

/// \brief A single literal (event + polarity).
struct Literal {
  EventId event = 0;
  bool negated = false;

  LiteralId id() const {
    return (static_cast<LiteralId>(event) << 1) | (negated ? 1u : 0u);
  }

  static Literal FromId(LiteralId id) {
    return Literal{id >> 1, (id & 1u) != 0};
  }

  /// The same event with opposite polarity.
  Literal Negation() const { return Literal{event, !negated}; }

  /// Id of the negation of literal `id`.
  static LiteralId NegationOf(LiteralId id) { return id ^ 1u; }

  /// Event of literal `id`.
  static EventId EventOf(LiteralId id) { return id >> 1; }

  /// True iff literal `id` is negative.
  static bool IsNegated(LiteralId id) { return (id & 1u) != 0; }

  bool operator==(const Literal& other) const {
    return event == other.event && negated == other.negated;
  }
  bool operator<(const Literal& other) const { return id() < other.id(); }

  /// e.g. "refund" or "!refund".
  std::string ToString(const Vocabulary& vocab) const {
    return (negated ? "!" : "") + vocab.Name(event);
  }
};

/// A canonical literal-set key: sorted, deduplicated literal ids. Used by the
/// prefilter index and the projection store.
using LiteralKey = std::vector<LiteralId>;

}  // namespace ctdb
