#include "base/label.h"

#include <algorithm>

#include "util/hash.h"

namespace ctdb {

Label Label::FromLiterals(const std::vector<Literal>& literals) {
  Label label;
  for (const Literal& lit : literals) label.Add(lit);
  return label;
}

void Label::Add(Literal lit) {
  if (lit.negated) {
    AddNegative(lit.event);
  } else {
    AddPositive(lit.event);
  }
}

void Label::AddPositive(EventId e) {
  if (e >= pos_.size()) pos_.Resize(e + 1);
  pos_.Set(e);
}

void Label::AddNegative(EventId e) {
  if (e >= neg_.size()) neg_.Resize(e + 1);
  neg_.Set(e);
}

std::vector<Literal> Label::Literals() const {
  std::vector<Literal> out;
  out.reserve(LiteralCount());
  for (size_t e : pos_.Indices()) {
    out.push_back(Literal{static_cast<EventId>(e), false});
  }
  for (size_t e : neg_.Indices()) {
    out.push_back(Literal{static_cast<EventId>(e), true});
  }
  std::sort(out.begin(), out.end());
  return out;
}

LiteralKey Label::Key() const {
  LiteralKey key;
  key.reserve(LiteralCount());
  for (const Literal& lit : Literals()) key.push_back(lit.id());
  return key;
}

Label Label::ConjunctionWith(const Label& other) const {
  Label out = *this;
  out.pos_ |= other.pos_;
  out.neg_ |= other.neg_;
  return out;
}

Label Label::ProjectOnto(const Bitset& retained_pos,
                         const Bitset& retained_neg) const {
  Label out = *this;
  out.pos_ &= retained_pos;
  out.neg_ &= retained_neg;
  return out;
}

LiteralKey Label::Expansion(const Bitset& contract_events) const {
  LiteralKey key;
  for (size_t e : contract_events.Indices()) {
    const EventId event = static_cast<EventId>(e);
    const bool in_pos = pos_.Test(e);
    const bool in_neg = neg_.Test(e);
    if (in_pos) {
      key.push_back(Literal{event, false}.id());
    } else if (in_neg) {
      key.push_back(Literal{event, true}.id());
    } else {
      // Cited by the contract but absent from this label: both polarities.
      key.push_back(Literal{event, false}.id());
      key.push_back(Literal{event, true}.id());
    }
  }
  // Events cited in the label but (defensively) outside `contract_events`.
  for (size_t e : pos_.Indices()) {
    if (!contract_events.Test(e)) {
      key.push_back(Literal{static_cast<EventId>(e), false}.id());
    }
  }
  for (size_t e : neg_.Indices()) {
    if (!contract_events.Test(e)) {
      key.push_back(Literal{static_cast<EventId>(e), true}.id());
    }
  }
  std::sort(key.begin(), key.end());
  return key;
}

uint64_t Label::Hash() const {
  return HashCombine(pos_.Hash(), neg_.Hash());
}

std::string Label::ToString(const Vocabulary& vocab) const {
  if (IsTrue()) return "true";
  std::string out;
  bool first = true;
  for (const Literal& lit : Literals()) {
    if (!first) out += " & ";
    out += lit.ToString(vocab);
    first = false;
  }
  return out;
}

}  // namespace ctdb
