// Runs and their finite lasso representations (Section 6.1).
//
// A run assigns a truth value to every vocabulary event at every instant; a
// snapshot is one instant's assignment, represented as the set of events that
// happen. Infinite runs with finitely many distinct suffixes are represented
// as lasso words u·vʷ (finite prefix u, cycle v repeated forever) — exactly
// the runs that matter for Büchi acceptance and for the test oracles.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "base/label.h"
#include "util/bitset.h"

namespace ctdb {

/// \brief One instant of a run: the set of events that happen.
using Snapshot = Bitset;

/// True iff `snapshot` satisfies conjunction `label` (all positive literals'
/// events happen, no negative literal's event does).
inline bool Satisfies(const Snapshot& snapshot, const Label& label) {
  return label.positive().IsSubsetOf(snapshot) &&
         label.negative().DisjointWith(snapshot);
}

/// \brief An ultimately periodic run u·vʷ.
struct LassoWord {
  std::vector<Snapshot> prefix;  ///< u — may be empty.
  std::vector<Snapshot> cycle;   ///< v — must be non-empty for a valid word.

  /// Number of distinct positions (|u| + |v|).
  size_t PositionCount() const { return prefix.size() + cycle.size(); }

  /// The snapshot at distinct-position index i ∈ [0, PositionCount()).
  const Snapshot& At(size_t i) const {
    return i < prefix.size() ? prefix[i] : cycle[i - prefix.size()];
  }

  /// Successor of distinct-position i (wraps the cycle back to its start).
  size_t Successor(size_t i) const {
    return i + 1 < PositionCount() ? i + 1 : prefix.size();
  }

  /// The snapshot at absolute instant t of the infinite run.
  const Snapshot& AtInstant(size_t t) const {
    if (t < prefix.size()) return prefix[t];
    return cycle[(t - prefix.size()) % cycle.size()];
  }

  bool Valid() const { return !cycle.empty(); }

  /// e.g. "{purchase}{use}({})^w".
  std::string ToString(const Vocabulary& vocab) const {
    std::string out;
    auto render = [&](const Snapshot& s) {
      out += "{";
      bool first = true;
      for (size_t e : s.Indices()) {
        if (!first) out += ",";
        out += vocab.Name(static_cast<EventId>(e));
        first = false;
      }
      out += "}";
    };
    for (const Snapshot& s : prefix) render(s);
    out += "(";
    for (const Snapshot& s : cycle) render(s);
    out += ")^w";
    return out;
  }
};

}  // namespace ctdb
