// The common vocabulary of events (Section 1 of the paper): the interface
// between contract providers and customers. Event names are interned to dense
// integer ids; every label bitmask, literal id and index key is expressed in
// terms of these ids.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace ctdb {

/// Dense id of an event in the vocabulary.
using EventId = uint32_t;

/// \brief An interned set of event names shared by a contract database and
/// all queries against it.
///
/// The vocabulary is append-only: events can be added at any time (the paper's
/// requirement iii — publishing a contract citing a new event must not force
/// revising existing contracts), never removed or renamed.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Convenience constructor from a list of names. Duplicates are an error in
  /// debug builds and ignored in release builds.
  explicit Vocabulary(const std::vector<std::string>& names);

  /// Interns `name`, returning its id (existing id if already present).
  /// Event names must be non-empty identifiers: [A-Za-z_][A-Za-z0-9_]*.
  Result<EventId> Intern(std::string_view name);

  /// Id of `name`, or NotFound.
  Result<EventId> Find(std::string_view name) const;

  /// True iff `name` is a registered event.
  bool Contains(std::string_view name) const;

  /// Name of event `id`. `id` must be valid.
  const std::string& Name(EventId id) const { return names_[id]; }

  /// Number of registered events.
  size_t size() const { return names_.size(); }

  /// All names, in id order.
  const std::vector<std::string>& names() const { return names_; }

  /// Validates that `name` is a legal event identifier.
  static Status ValidateName(std::string_view name);

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, EventId> index_;
};

}  // namespace ctdb
