#include "base/vocabulary.h"

#include <cctype>

#include "util/string_util.h"

namespace ctdb {

Vocabulary::Vocabulary(const std::vector<std::string>& names) {
  for (const std::string& n : names) {
    Intern(n).status();  // Errors surface via Find/Contains in tests.
  }
}

Status Vocabulary::ValidateName(std::string_view name) {
  if (name.empty()) {
    return Status::InvalidArgument("event name must be non-empty");
  }
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_')) {
    return Status::InvalidArgument(
        StringFormat("event name '%.*s' must start with a letter or '_'",
                     static_cast<int>(name.size()), name.data()));
  }
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return Status::InvalidArgument(
          StringFormat("event name '%.*s' contains illegal character '%c'",
                       static_cast<int>(name.size()), name.data(), c));
    }
  }
  return Status::OK();
}

Result<EventId> Vocabulary::Intern(std::string_view name) {
  CTDB_RETURN_NOT_OK(ValidateName(name));
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  const EventId id = static_cast<EventId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

Result<EventId> Vocabulary::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    return Status::NotFound(
        StringFormat("event '%.*s' is not in the vocabulary",
                     static_cast<int>(name.size()), name.data()));
  }
  return it->second;
}

bool Vocabulary::Contains(std::string_view name) const {
  return index_.count(std::string(name)) > 0;
}

}  // namespace ctdb
