// Transition labels: conjunctions of literals (Section 2.3).
//
// A Büchi-automaton transition is enabled in a snapshot iff every positive
// literal's event happens in that snapshot and no negative literal's event
// does. `true` is the empty conjunction. Labels are stored as a pair of
// bitmasks over the vocabulary, making the compatibility test of
// Definition 7 (point 3) a handful of word operations.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/literal.h"
#include "base/vocabulary.h"
#include "util/bitset.h"

namespace ctdb {

/// \brief A conjunction of literals over the vocabulary.
class Label {
 public:
  /// The empty conjunction `true`.
  Label() = default;

  /// A label over a vocabulary of `vocab_size` events with no literals yet.
  explicit Label(size_t vocab_size) : pos_(vocab_size), neg_(vocab_size) {}

  /// Builds a label from literals. Capacity grows to fit.
  static Label FromLiterals(const std::vector<Literal>& literals);

  /// Adds a literal (growing capacity as needed).
  void Add(Literal lit);
  void AddPositive(EventId e);
  void AddNegative(EventId e);

  /// True iff the label contains no literal (i.e. is `true`).
  bool IsTrue() const { return pos_.None() && neg_.None(); }

  /// True iff no event appears both positively and negatively.
  bool IsSatisfiable() const { return pos_.DisjointWith(neg_); }

  /// True iff the label contains the given literal.
  bool Contains(Literal lit) const {
    return lit.negated ? neg_.Test(lit.event) : pos_.Test(lit.event);
  }

  /// Events cited positively.
  const Bitset& positive() const { return pos_; }
  /// Events cited negatively.
  const Bitset& negative() const { return neg_; }

  /// All events cited (either polarity).
  Bitset Events() const { return pos_ | neg_; }

  /// Number of literals.
  size_t LiteralCount() const { return pos_.Count() + neg_.Count(); }

  /// Literals in canonical (sorted id) order.
  std::vector<Literal> Literals() const;

  /// Sorted literal-id key (for the prefilter index / signatures).
  LiteralKey Key() const;

  /// The conjunction of this and `other`. May be unsatisfiable; callers that
  /// care must check IsSatisfiable().
  Label ConjunctionWith(const Label& other) const;

  /// True iff `this ∧ other` is satisfiable, i.e. the labels do not conflict
  /// (second half of Definition 7's compatibility).
  bool ConsistentWith(const Label& other) const {
    return pos_.DisjointWith(other.neg_) && neg_.DisjointWith(other.pos_);
  }

  /// True iff every event cited in this label belongs to `events` (first half
  /// of Definition 7's compatibility: the query label must refer only to
  /// events in the contract).
  bool CitesOnly(const Bitset& events) const {
    return pos_.IsSubsetOf(events) && neg_.IsSubsetOf(events);
  }

  /// Projection on a literal set (Section 5): keeps only the literals of this
  /// label whose ids are in `retained` (given as positive/negative event
  /// masks), dropping all others.
  Label ProjectOnto(const Bitset& retained_pos, const Bitset& retained_neg) const;

  /// The expansion E(γ) of Section 4.2 / Example 11: this label's literals
  /// plus, for every event of `contract_events` not cited here, both the
  /// positive and the negative literal. Returned as a sorted literal-id list.
  LiteralKey Expansion(const Bitset& contract_events) const;

  bool operator==(const Label& other) const {
    return pos_ == other.pos_ && neg_ == other.neg_;
  }
  bool operator!=(const Label& other) const { return !(*this == other); }

  uint64_t Hash() const;

  /// e.g. "refund & !use" (or "true").
  std::string ToString(const Vocabulary& vocab) const;

 private:
  Bitset pos_;
  Bitset neg_;
};

}  // namespace ctdb
