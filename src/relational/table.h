// A deliberately small relational attribute layer.
//
// The paper assumes "a traditional DBMS takes care of the features modeled as
// relational attributes" (problem setting (a)) and uses it to pre-select
// contracts before the temporal machinery runs. This module provides just
// enough of that substrate for the examples: contracts carry attribute maps
// (route, price, dates, ...) and queries conjoin simple predicates.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "util/result.h"

namespace ctdb::relational {

/// An attribute value: integer, double or string.
using Value = std::variant<int64_t, double, std::string>;

/// Ordered comparison following SQL-ish semantics: numeric types compare
/// numerically with each other; strings compare lexicographically; numeric
/// vs string is an error.
Result<int> Compare(const Value& a, const Value& b);

/// A row: attribute name → value.
using Row = std::map<std::string, Value>;

/// Comparison operators for predicates.
enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// \brief One conjunct of a selection: `attribute op literal`.
/// Rows missing the attribute never match.
struct Predicate {
  std::string attribute;
  CompareOp op = CompareOp::kEq;
  Value literal;

  static Predicate Eq(std::string attr, Value v) {
    return {std::move(attr), CompareOp::kEq, std::move(v)};
  }
  static Predicate Le(std::string attr, Value v) {
    return {std::move(attr), CompareOp::kLe, std::move(v)};
  }
  static Predicate Ge(std::string attr, Value v) {
    return {std::move(attr), CompareOp::kGe, std::move(v)};
  }
  static Predicate Lt(std::string attr, Value v) {
    return {std::move(attr), CompareOp::kLt, std::move(v)};
  }
  static Predicate Gt(std::string attr, Value v) {
    return {std::move(attr), CompareOp::kGt, std::move(v)};
  }
  static Predicate Ne(std::string attr, Value v) {
    return {std::move(attr), CompareOp::kNe, std::move(v)};
  }
};

/// True iff `row` satisfies `predicate` (missing attribute ⇒ false;
/// incomparable types ⇒ false).
bool Matches(const Row& row, const Predicate& predicate);

/// \brief Keyed rows: key is the contract id in the broker examples.
class Table {
 public:
  /// Inserts or replaces the row for `key`.
  void Put(uint32_t key, Row row);

  /// The row for `key`, or NotFound.
  Result<Row> Get(uint32_t key) const;

  /// Keys of rows satisfying every predicate (ascending order).
  std::vector<uint32_t> Select(const std::vector<Predicate>& predicates) const;

  size_t size() const { return rows_.size(); }

 private:
  std::map<uint32_t, Row> rows_;
};

}  // namespace ctdb::relational
