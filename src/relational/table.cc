#include "relational/table.h"

namespace ctdb::relational {

Result<int> Compare(const Value& a, const Value& b) {
  const bool a_str = std::holds_alternative<std::string>(a);
  const bool b_str = std::holds_alternative<std::string>(b);
  if (a_str != b_str) {
    return Status::InvalidArgument("cannot compare string with number");
  }
  if (a_str) {
    const auto& sa = std::get<std::string>(a);
    const auto& sb = std::get<std::string>(b);
    return sa < sb ? -1 : (sa == sb ? 0 : 1);
  }
  const double da = std::holds_alternative<int64_t>(a)
                        ? static_cast<double>(std::get<int64_t>(a))
                        : std::get<double>(a);
  const double db = std::holds_alternative<int64_t>(b)
                        ? static_cast<double>(std::get<int64_t>(b))
                        : std::get<double>(b);
  return da < db ? -1 : (da == db ? 0 : 1);
}

bool Matches(const Row& row, const Predicate& predicate) {
  auto it = row.find(predicate.attribute);
  if (it == row.end()) return false;
  auto cmp = Compare(it->second, predicate.literal);
  if (!cmp.ok()) return false;
  switch (predicate.op) {
    case CompareOp::kEq: return *cmp == 0;
    case CompareOp::kNe: return *cmp != 0;
    case CompareOp::kLt: return *cmp < 0;
    case CompareOp::kLe: return *cmp <= 0;
    case CompareOp::kGt: return *cmp > 0;
    case CompareOp::kGe: return *cmp >= 0;
  }
  return false;
}

void Table::Put(uint32_t key, Row row) { rows_[key] = std::move(row); }

Result<Row> Table::Get(uint32_t key) const {
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    return Status::NotFound("no row for key " + std::to_string(key));
  }
  return it->second;
}

std::vector<uint32_t> Table::Select(
    const std::vector<Predicate>& predicates) const {
  std::vector<uint32_t> out;
  for (const auto& [key, row] : rows_) {
    bool all = true;
    for (const Predicate& p : predicates) {
      if (!Matches(row, p)) {
        all = false;
        break;
      }
    }
    if (all) out.push_back(key);
  }
  return out;
}

}  // namespace ctdb::relational
