// Micro-benchmarks for the permission core (Ablation A3): Algorithm 2
// (nested DFS) with and without the seeds optimization vs. the SCC product
// checker, on the paper's running example and on generated contracts.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/permission.h"
#include "ltl/parser.h"
#include "translate/cache.h"
#include "translate/ltl_to_ba.h"
#include "workload/generator.h"

namespace {

using namespace ctdb;

struct Fixture {
  Vocabulary vocab;
  ltl::FormulaFactory factory;
  automata::Buchi contract;
  Bitset contract_events;
  Bitset seeds;
  automata::Buchi query;

  Fixture(const std::string& contract_text, const std::string& query_text) {
    auto cf = ltl::Parse(contract_text, &factory, &vocab);
    auto qf = ltl::Parse(query_text, &factory, &vocab);
    contract = std::move(*translate::LtlToBuchi(*cf, &factory));
    query = std::move(*translate::LtlToBuchi(*qf, &factory));
    (*cf)->CollectEvents(&contract_events);
    seeds = core::ComputeSeedStates(contract);
  }
};

Fixture* TicketFixture() {
  static Fixture* fixture = new Fixture(
      "G(purchase -> !use & !missedFlight & !refund & !dateChange) &"
      "G(use -> !purchase & !missedFlight & !refund & !dateChange) &"
      "G(missedFlight -> !purchase & !use & !refund & !dateChange) &"
      "G(refund -> !purchase & !use & !missedFlight & !dateChange) &"
      "G(dateChange -> !purchase & !use & !missedFlight & !refund) &"
      "G(purchase -> X(!F purchase)) &"
      "(purchase B (use | missedFlight | refund | dateChange)) &"
      "G((missedFlight -> !F use) W dateChange) &"
      "G(refund -> X(!F(use | missedFlight | refund | dateChange))) &"
      "G(use -> X(!F(use | missedFlight | refund | dateChange))) &"
      "G(dateChange -> !F refund)",
      "F(missedFlight & F refund)");
  return fixture;
}

Fixture* GeneratedFixture() {
  static Fixture* fixture = [] {
    Vocabulary vocab;
    ltl::FormulaFactory factory;
    workload::GeneratorOptions options;
    options.properties = 5;
    workload::SpecGenerator contracts(options, 0xBE11C4, &vocab, &factory);
    options.properties = 2;
    workload::SpecGenerator queries(options, 0xBE11C5, &vocab, &factory);
    auto c = contracts.Next();
    auto q = queries.Next();
    auto* f = new Fixture("true", "true");
    f->vocab = vocab;
    f->contract = std::move(c->automaton);
    f->query = std::move(q->automaton);
    f->contract_events = Bitset();
    c->formula->CollectEvents(&f->contract_events);
    f->seeds = core::ComputeSeedStates(f->contract);
    return f;
  }();
  return fixture;
}

void RunPermission(benchmark::State& state, Fixture* fixture,
                   core::PermissionAlgorithm algorithm, bool use_seeds) {
  core::PermissionOptions options;
  options.algorithm = algorithm;
  options.use_seeds = use_seeds;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Permits(
        fixture->contract, fixture->contract_events, fixture->query, options,
        use_seeds ? &fixture->seeds : nullptr));
  }
  state.SetLabel(std::to_string(fixture->contract.StateCount()) + "s contract");
}

void BM_Ticket_NestedDfs_Seeds(benchmark::State& state) {
  RunPermission(state, TicketFixture(), core::PermissionAlgorithm::kNestedDfs,
                true);
}
void BM_Ticket_NestedDfs_NoSeeds(benchmark::State& state) {
  RunPermission(state, TicketFixture(), core::PermissionAlgorithm::kNestedDfs,
                false);
}
void BM_Ticket_Scc(benchmark::State& state) {
  RunPermission(state, TicketFixture(), core::PermissionAlgorithm::kScc,
                false);
}
void BM_Generated_NestedDfs_Seeds(benchmark::State& state) {
  RunPermission(state, GeneratedFixture(),
                core::PermissionAlgorithm::kNestedDfs, true);
}
void BM_Generated_NestedDfs_NoSeeds(benchmark::State& state) {
  RunPermission(state, GeneratedFixture(),
                core::PermissionAlgorithm::kNestedDfs, false);
}
void BM_Generated_Scc(benchmark::State& state) {
  RunPermission(state, GeneratedFixture(), core::PermissionAlgorithm::kScc,
                false);
}

BENCHMARK(BM_Ticket_NestedDfs_Seeds);
BENCHMARK(BM_Ticket_NestedDfs_NoSeeds);
BENCHMARK(BM_Ticket_Scc);
BENCHMARK(BM_Generated_NestedDfs_Seeds);
BENCHMARK(BM_Generated_NestedDfs_NoSeeds);
BENCHMARK(BM_Generated_Scc);

// The SCC checker's eager (full product + classify) vs. lazy (on-the-fly,
// stop at the first accepting SCC) construction. The ticket fixture permits
// its query, so the early exit skips the unexplored product remainder.
void BM_Ticket_Scc_Eager(benchmark::State& state) {
  Fixture* fixture = TicketFixture();
  core::PermissionOptions options;
  options.algorithm = core::PermissionAlgorithm::kScc;
  options.early_exit = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Permits(fixture->contract,
                                           fixture->contract_events,
                                           fixture->query, options));
  }
}
BENCHMARK(BM_Ticket_Scc_Eager);

/// One end-to-end universe per translation-cache capacity: the
/// repeated-query workload below cycles a fixed query set against it, the
/// regime the cache is built for (same structures queried again and again).
bench::Universe* CacheUniverse(size_t capacity) {
  static auto* universes = new std::map<size_t, bench::Universe*>();
  auto it = universes->find(capacity);
  if (it == universes->end()) {
    const double scale = bench::Scale();
    broker::DatabaseOptions options;
    options.translation_cache_capacity = capacity;
    const size_t contracts =
        std::max<size_t>(16, static_cast<size_t>(200 * scale));
    const size_t queries =
        std::max<size_t>(4, static_cast<size_t>(40 * scale));
    it = universes
             ->emplace(capacity, new bench::Universe(bench::BuildUniverse(
                                     contracts, 3, queries, options)))
             .first;
  }
  return it->second;
}

/// Repeated-query throughput through the whole broker read path
/// (translate → prefilter → permission). CacheOn vs CacheOff isolates the
/// translation cache: identical dataset, queries and checker, only
/// DatabaseOptions::translation_cache_capacity differs. CI's perf-smoke job
/// gates on the CacheOff/CacheOn time ratio and on cache_hit_rate > 0.
void RunRepeatedQueries(benchmark::State& state, size_t capacity) {
  bench::Universe* universe = CacheUniverse(capacity);
  std::vector<std::string> queries;
  for (const bench::QuerySet& set : universe->query_sets) {
    queries.insert(queries.end(), set.queries.begin(), set.queries.end());
  }
  size_t i = 0;
  for (auto _ : state) {
    auto r = universe->db->Query(queries[i % queries.size()]);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  const translate::TranslationCacheStats stats =
      universe->db->TranslationCacheStats();
  const double probes = static_cast<double>(stats.hits + stats.misses);
  state.counters["cache_hit_rate"] =
      probes > 0 ? static_cast<double>(stats.hits) / probes : 0.0;
}

void BM_RepeatedQuery_CacheOn(benchmark::State& state) {
  RunRepeatedQueries(state, 256);
}
void BM_RepeatedQuery_CacheOff(benchmark::State& state) {
  RunRepeatedQueries(state, 0);
}
BENCHMARK(BM_RepeatedQuery_CacheOn);
BENCHMARK(BM_RepeatedQuery_CacheOff);

}  // namespace
