// Micro-benchmarks for the permission core (Ablation A3): Algorithm 2
// (nested DFS) with and without the seeds optimization vs. the SCC product
// checker, on the paper's running example and on generated contracts.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/permission.h"
#include "ltl/parser.h"
#include "translate/ltl_to_ba.h"
#include "workload/generator.h"

namespace {

using namespace ctdb;

struct Fixture {
  Vocabulary vocab;
  ltl::FormulaFactory factory;
  automata::Buchi contract;
  Bitset contract_events;
  Bitset seeds;
  automata::Buchi query;

  Fixture(const std::string& contract_text, const std::string& query_text) {
    auto cf = ltl::Parse(contract_text, &factory, &vocab);
    auto qf = ltl::Parse(query_text, &factory, &vocab);
    contract = std::move(*translate::LtlToBuchi(*cf, &factory));
    query = std::move(*translate::LtlToBuchi(*qf, &factory));
    (*cf)->CollectEvents(&contract_events);
    seeds = core::ComputeSeedStates(contract);
  }
};

Fixture* TicketFixture() {
  static Fixture* fixture = new Fixture(
      "G(purchase -> !use & !missedFlight & !refund & !dateChange) &"
      "G(use -> !purchase & !missedFlight & !refund & !dateChange) &"
      "G(missedFlight -> !purchase & !use & !refund & !dateChange) &"
      "G(refund -> !purchase & !use & !missedFlight & !dateChange) &"
      "G(dateChange -> !purchase & !use & !missedFlight & !refund) &"
      "G(purchase -> X(!F purchase)) &"
      "(purchase B (use | missedFlight | refund | dateChange)) &"
      "G((missedFlight -> !F use) W dateChange) &"
      "G(refund -> X(!F(use | missedFlight | refund | dateChange))) &"
      "G(use -> X(!F(use | missedFlight | refund | dateChange))) &"
      "G(dateChange -> !F refund)",
      "F(missedFlight & F refund)");
  return fixture;
}

Fixture* GeneratedFixture() {
  static Fixture* fixture = [] {
    Vocabulary vocab;
    ltl::FormulaFactory factory;
    workload::GeneratorOptions options;
    options.properties = 5;
    workload::SpecGenerator contracts(options, 0xBE11C4, &vocab, &factory);
    options.properties = 2;
    workload::SpecGenerator queries(options, 0xBE11C5, &vocab, &factory);
    auto c = contracts.Next();
    auto q = queries.Next();
    auto* f = new Fixture("true", "true");
    f->vocab = vocab;
    f->contract = std::move(c->automaton);
    f->query = std::move(q->automaton);
    f->contract_events = Bitset();
    c->formula->CollectEvents(&f->contract_events);
    f->seeds = core::ComputeSeedStates(f->contract);
    return f;
  }();
  return fixture;
}

void RunPermission(benchmark::State& state, Fixture* fixture,
                   core::PermissionAlgorithm algorithm, bool use_seeds) {
  core::PermissionOptions options;
  options.algorithm = algorithm;
  options.use_seeds = use_seeds;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Permits(
        fixture->contract, fixture->contract_events, fixture->query, options,
        use_seeds ? &fixture->seeds : nullptr));
  }
  state.SetLabel(std::to_string(fixture->contract.StateCount()) + "s contract");
}

void BM_Ticket_NestedDfs_Seeds(benchmark::State& state) {
  RunPermission(state, TicketFixture(), core::PermissionAlgorithm::kNestedDfs,
                true);
}
void BM_Ticket_NestedDfs_NoSeeds(benchmark::State& state) {
  RunPermission(state, TicketFixture(), core::PermissionAlgorithm::kNestedDfs,
                false);
}
void BM_Ticket_Scc(benchmark::State& state) {
  RunPermission(state, TicketFixture(), core::PermissionAlgorithm::kScc,
                false);
}
void BM_Generated_NestedDfs_Seeds(benchmark::State& state) {
  RunPermission(state, GeneratedFixture(),
                core::PermissionAlgorithm::kNestedDfs, true);
}
void BM_Generated_NestedDfs_NoSeeds(benchmark::State& state) {
  RunPermission(state, GeneratedFixture(),
                core::PermissionAlgorithm::kNestedDfs, false);
}
void BM_Generated_Scc(benchmark::State& state) {
  RunPermission(state, GeneratedFixture(), core::PermissionAlgorithm::kScc,
                false);
}

BENCHMARK(BM_Ticket_NestedDfs_Seeds);
BENCHMARK(BM_Ticket_NestedDfs_NoSeeds);
BENCHMARK(BM_Ticket_Scc);
BENCHMARK(BM_Generated_NestedDfs_Seeds);
BENCHMARK(BM_Generated_NestedDfs_NoSeeds);
BENCHMARK(BM_Generated_Scc);

}  // namespace
