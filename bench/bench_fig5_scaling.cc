// Reproduces Figure 5: average query evaluation time for the unoptimized
// scan vs. the optimized system (prefilter + bisimulation projections), and
// the average per-query speedup with its standard deviation, as the number
// of simple contracts in the database grows (paper: 100 → 3000).
//
// Paper reference points (simple contracts, all query complexities):
//   unoptimized ≈ 2 s at 100 contracts → ≈ 100 s at 3000 (near-linear);
//   optimized   ≈ a few seconds at 3000; average speedup ≥ 20 and growing
//   with database size, rarely below 10.

#include <cstdio>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace ctdb;
  const double scale = bench::Scale();
  const std::vector<size_t> paper_sizes = {100, 500, 1000, 2000, 3000};
  const size_t queries_per_level =
      std::max<size_t>(3, static_cast<size_t>(100 * scale));

  bench::PrintHeader("Figure 5 — scaling with database size (scale=" +
                     std::to_string(scale) + ")");
  std::printf("%8s | %14s %14s | %9s %9s | %12s\n", "size", "scan avg ms",
              "optimized ms", "speedup", "sd", "cand./query");
  bench::PrintRule();

  // Build the largest database once; evaluate prefixes by rebuilding (keeps
  // per-size indexes honest). Sizes are scaled.
  for (size_t paper_size : paper_sizes) {
    const size_t size = std::max<size_t>(
        2, static_cast<size_t>(static_cast<double>(paper_size) * scale));
    bench::Universe u =
        bench::BuildUniverse(size, /*contract_patterns=*/5, queries_per_level);

    // Per-query speedups across all complexity levels (as in the figure).
    RunningStats scan_ms;
    RunningStats opt_ms;
    RunningStats speedup;
    RunningStats candidates;
    for (const auto& set : u.query_sets) {
      for (const std::string& q : set.queries) {
        auto opt = u.db->Query(q, bench::OptimizedOptions());
        auto scan = u.db->Query(q, bench::UnoptimizedOptions());
        if (!opt.ok() || !scan.ok()) {
          std::fprintf(stderr, "query failed\n");
          return 1;
        }
        scan_ms.Add(scan->stats.total_ms);
        opt_ms.Add(opt->stats.total_ms);
        candidates.Add(static_cast<double>(opt->stats.candidates));
        if (opt->stats.total_ms > 0) {
          speedup.Add(scan->stats.total_ms / opt->stats.total_ms);
        }
      }
    }
    std::printf("%8zu | %14.2f %14.2f | %9.1f %9.1f | %12.1f\n", size,
                scan_ms.mean(), opt_ms.mean(), speedup.mean(),
                speedup.stddev(), candidates.mean());

    // Telemetry pass on the largest universe: re-run its whole query set as
    // one parallel batch. The serial measurement loop above exercises
    // neither the quotient-cache hit path (every query runs once against a
    // fresh database) nor the shared executor, so this pass makes the
    // snapshot below cover all instrumented layers.
    if (paper_size == paper_sizes.back()) {
      broker::QueryOptions batch_options = bench::OptimizedOptions();
      batch_options.threads = 4;
      std::vector<std::string> all_queries;
      for (const auto& set : u.query_sets) {
        all_queries.insert(all_queries.end(), set.queries.begin(),
                           set.queries.end());
      }
      auto batch = u.db->QueryBatch(all_queries, batch_options);
      if (!batch.ok()) {
        std::fprintf(stderr, "telemetry batch failed: %s\n",
                     batch.status().ToString().c_str());
        return 1;
      }
    }
  }
  bench::PrintRule();
  std::printf(
      "Shape check: both curves ~linear in db size; speedup grows with the\n"
      "database (indexing effect) and stays well above 1.\n");

  // Pipeline telemetry for the whole workload: every instrumented layer
  // (translate, prefilter, permission, projection, thread pool, broker)
  // should report non-zero activity here.
  bench::PrintHeader("Metrics snapshot (obs registry)");
  std::printf("%s", ctdb::obs::MetricsRegistry::Default()
                        ->Snapshot()
                        .ToString()
                        .c_str());
  bench::WriteMetricsSnapshot("fig5_scaling");
  return 0;
}
