// Streaming-monitor benchmarks (DESIGN.md §15): what incremental automaton
// stepping costs per appended event, and what the two layers of batching
// buy. Four questions on one generated universe of event-pattern contracts:
//
//  * headline throughput — BM_StreamAppend_Matched drives batches drawn
//    from the contracts' own vocabulary through a monitor session
//    (items/sec = events/sec; the acceptance bar is ≥ 1M single-threaded);
//  * the naive ablation — BM_StreamAppend_Naive replays the identical
//    workload through a deliberately naive stepper (std::set state sets,
//    per-transition label evaluation, no freezing, no silent fast path),
//    pricing exactly what the bitset machinery buys;
//  * alphabet pruning — BM_StreamAppend_Mismatched streams events from a
//    vocabulary no contract cites with pruning on vs. off; the `stepped`
//    and `pruned` counters show the per-contract work collapsing to the
//    silent fixpoint, and the time ratio is the pruning speedup.
//
// Sessions are reopened outside the timed region every iteration so every
// measurement starts from the initial state set — a long-lived session
// freezes most contracts (violated is absorbing) and would mostly measure
// the frozen skip.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "base/run.h"
#include "bench_common.h"
#include "monitor/session.h"
#include "workload/events.h"

namespace {

using namespace ctdb;

constexpr size_t kBatchLen = 256;     ///< instants per Append call
constexpr size_t kBatchesPerIter = 4; ///< Append calls per timed iteration
constexpr size_t kBatchPool = 32;     ///< distinct pregenerated batches

struct MonitorFixture {
  std::unique_ptr<broker::ContractDatabase> db;
  std::shared_ptr<const broker::DatabaseSnapshot> snapshot;
  std::vector<monitor::EventBatch> matched;     ///< contracts' vocabulary
  std::vector<monitor::EventBatch> mismatched;  ///< vocabulary nobody cites

  MonitorFixture() {
    const double scale = bench::Scale();
    const size_t contracts =
        std::max<size_t>(16, static_cast<size_t>(320 * scale));
    db = std::make_unique<broker::ContractDatabase>();
    workload::GeneratorOptions gen;
    gen.vocabulary_size = 20;
    gen.properties = 1;
    workload::EventSpecGenerator specs(gen, bench::DefaultSeed(),
                                       db->vocabulary(), db->factory());
    for (size_t c = 0; c < contracts; ++c) {
      auto spec = specs.Next();
      if (!spec.ok()) abort();
      if (!db->Register("m" + std::to_string(c), spec->text).ok()) abort();
    }
    snapshot = db->Snapshot();

    workload::TraceOptions trace;
    trace.vocabulary_size = 20;
    workload::TraceGenerator p_events(trace, bench::DefaultSeed() ^ 0x5712);
    trace.prefix = "z";  // never interned: every instant is contract-silent
    workload::TraceGenerator z_events(trace, bench::DefaultSeed() ^ 0x5713);
    for (size_t i = 0; i < kBatchPool; ++i) {
      matched.push_back(p_events.NextBatch(kBatchLen));
      mismatched.push_back(z_events.NextBatch(kBatchLen));
    }
  }
};

MonitorFixture* GetFixture() {
  static MonitorFixture* fixture = new MonitorFixture();
  return fixture;
}

void RunSession(benchmark::State& state,
                const std::vector<monitor::EventBatch>& batches, bool prune) {
  MonitorFixture* f = GetFixture();
  monitor::StreamOptions options;
  options.prune = prune;
  uint64_t stepped = 0, pruned = 0;
  size_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto session = monitor::StreamSession::Open(f->snapshot, options);
    if (!session.ok()) abort();
    state.ResumeTiming();
    for (size_t b = 0; b < kBatchesPerIter; ++b) {
      const monitor::StreamAppendResult r =
          (*session)->Append(batches[i++ % kBatchPool]);
      stepped += r.stepped;
      pruned += r.pruned;
      benchmark::DoNotOptimize(r.deltas.data());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kBatchesPerIter * kBatchLen);
  state.counters["tracked"] = static_cast<double>(f->snapshot->size());
  state.counters["stepped"] =
      benchmark::Counter(static_cast<double>(stepped), benchmark::Counter::kAvgIterations);
  state.counters["pruned"] =
      benchmark::Counter(static_cast<double>(pruned), benchmark::Counter::kAvgIterations);
}

/// Headline: batched incremental stepping on in-vocabulary traffic.
void BM_StreamAppend_Matched(benchmark::State& state) {
  RunSession(state, GetFixture()->matched, /*prune=*/true);
}
BENCHMARK(BM_StreamAppend_Matched);

/// Pruning on a stream whose alphabet no contract cites: every stepper
/// rides the silent fixpoint, so almost every contract×event is `pruned`.
void BM_StreamAppend_Mismatched(benchmark::State& state) {
  RunSession(state, GetFixture()->mismatched, /*prune=*/true);
}
BENCHMARK(BM_StreamAppend_Mismatched);

/// The same mismatched stream with pruning disabled — the ablation bar for
/// "alphabet pruning measurably reduces stepped contracts".
void BM_StreamAppend_MismatchedNoPrune(benchmark::State& state) {
  RunSession(state, GetFixture()->mismatched, /*prune=*/false);
}
BENCHMARK(BM_StreamAppend_MismatchedNoPrune);

/// Naive per-event stepping: std::set state sets, every transition's label
/// evaluated at every instant, no freezing, no batching — the oracle the
/// differential suite compares against, here as the performance ablation.
class NaiveStepper {
 public:
  explicit NaiveStepper(const broker::Contract* contract)
      : contract_(contract) {
    reach_.insert(contract->automaton().initial());
    const automata::Buchi& ba = contract->automaton();
    live_.assign(ba.StateCount(), false);
    for (size_t s : contract->seed_states.Indices()) live_[s] = true;
    bool changed = true;
    while (changed) {
      changed = false;
      for (automata::StateId s = 0; s < ba.StateCount(); ++s) {
        if (live_[s]) continue;
        for (const automata::Transition& t : ba.Out(s)) {
          if (live_[t.to]) {
            live_[s] = true;
            changed = true;
            break;
          }
        }
      }
    }
  }

  void Step(const Snapshot& snapshot) {
    const automata::Buchi& ba = contract_->automaton();
    std::set<automata::StateId> next;
    for (automata::StateId s : reach_) {
      for (const automata::Transition& t : ba.Out(s)) {
        if (Satisfies(snapshot, t.label)) next.insert(t.to);
      }
    }
    reach_ = std::move(next);
  }

  monitor::StreamVerdict Verdict() const {
    const automata::Buchi& ba = contract_->automaton();
    bool any_live = false, any_final = false;
    for (automata::StateId s : reach_) {
      if (live_[s]) any_live = true;
      if (ba.finals().Test(s)) any_final = true;
    }
    if (!any_live) return monitor::StreamVerdict::kViolated;
    return any_final ? monitor::StreamVerdict::kSatisfied
                     : monitor::StreamVerdict::kUndetermined;
  }

 private:
  const broker::Contract* contract_;
  std::set<automata::StateId> reach_;
  std::vector<bool> live_;
};

void BM_StreamAppend_Naive(benchmark::State& state) {
  MonitorFixture* f = GetFixture();
  // Resolve the matched batches to snapshots once; the naive loop should
  // pay for stepping, not for name lookups the session also amortizes.
  const Vocabulary& vocab = f->snapshot->vocabulary();
  std::vector<std::vector<Snapshot>> batches;
  for (const monitor::EventBatch& batch : f->matched) {
    std::vector<Snapshot> resolved;
    for (const std::vector<std::string>& instant : batch) {
      Snapshot s(vocab.size());
      for (const std::string& name : instant) {
        if (auto id = vocab.Find(name); id.ok()) s.Set(*id);
      }
      resolved.push_back(std::move(s));
    }
    batches.push_back(std::move(resolved));
  }
  std::vector<const broker::Contract*> contracts;
  for (uint32_t id = 0; id < f->snapshot->slot_count(); ++id) {
    if (const broker::Contract* c = f->snapshot->contract_or_null(id)) {
      contracts.push_back(c);
    }
  }

  size_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<NaiveStepper> steppers;
    for (const broker::Contract* c : contracts) steppers.emplace_back(c);
    state.ResumeTiming();
    for (size_t b = 0; b < kBatchesPerIter; ++b) {
      for (const Snapshot& s : batches[i++ % kBatchPool]) {
        for (NaiveStepper& stepper : steppers) stepper.Step(s);
      }
    }
    for (NaiveStepper& stepper : steppers) {
      auto verdict = stepper.Verdict();
      benchmark::DoNotOptimize(verdict);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kBatchesPerIter * kBatchLen);
  state.counters["tracked"] = static_cast<double>(contracts.size());
}
BENCHMARK(BM_StreamAppend_Naive);

}  // namespace
