// Micro-benchmarks for the LTL→BA translation pipeline: cost by number of
// conjoined Dwyer patterns (the paper's contract complexity axis) and the
// effect of the rewriting / reduction stages.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"
#include "translate/cache.h"
#include "translate/ltl_to_ba.h"
#include "workload/generator.h"

namespace {

using namespace ctdb;

/// A pool of pre-generated formulas with `patterns` clauses.
const std::vector<const ltl::Formula*>& FormulaPool(size_t patterns,
                                                    ltl::FormulaFactory** fac) {
  struct Pool {
    Vocabulary vocab;
    ltl::FormulaFactory factory;
    std::vector<const ltl::Formula*> formulas;
  };
  static std::map<size_t, Pool*>* pools = new std::map<size_t, Pool*>();
  auto it = pools->find(patterns);
  if (it == pools->end()) {
    auto* pool = new Pool();
    workload::GeneratorOptions options;
    options.properties = patterns;
    workload::SpecGenerator generator(options, 0x77A + patterns, &pool->vocab,
                                      &pool->factory);
    for (int i = 0; i < 16; ++i) {
      auto spec = generator.Next();
      pool->formulas.push_back(spec->formula);
    }
    it = pools->emplace(patterns, pool).first;
  }
  *fac = &it->second->factory;
  return it->second->formulas;
}

void BM_LtlToBuchi(benchmark::State& state) {
  const size_t patterns = static_cast<size_t>(state.range(0));
  ltl::FormulaFactory* factory = nullptr;
  const auto& formulas = FormulaPool(patterns, &factory);
  size_t i = 0;
  size_t states_sum = 0;
  size_t runs = 0;
  for (auto _ : state) {
    auto ba = translate::LtlToBuchi(formulas[i % formulas.size()], factory);
    benchmark::DoNotOptimize(ba);
    states_sum += ba->StateCount();
    ++runs;
    ++i;
  }
  state.counters["avg_states"] =
      static_cast<double>(states_sum) / static_cast<double>(runs);
}
BENCHMARK(BM_LtlToBuchi)->Arg(1)->Arg(2)->Arg(3)->Arg(5)->Arg(6)->Arg(7);

// The same formula pool through the translation cache (translate/cache.h):
// after the first pass over the pool, every iteration costs NNF
// normalization + canonical-key build + one hash probe instead of the
// tableau pipeline. The ratio to BM_LtlToBuchi at the same arg is the
// per-translation cache win.
void BM_LtlToBuchi_Cached(benchmark::State& state) {
  const size_t patterns = static_cast<size_t>(state.range(0));
  ltl::FormulaFactory* factory = nullptr;
  const auto& formulas = FormulaPool(patterns, &factory);
  translate::TranslationCache cache(256);
  size_t i = 0;
  for (auto _ : state) {
    auto ba = translate::LtlToBuchiCached(formulas[i % formulas.size()],
                                          factory, &cache);
    benchmark::DoNotOptimize(ba);
    ++i;
  }
  const translate::TranslationCacheStats stats = cache.Stats();
  const double probes = static_cast<double>(stats.hits + stats.misses);
  state.counters["hit_rate"] =
      probes > 0 ? static_cast<double>(stats.hits) / probes : 0.0;
}
BENCHMARK(BM_LtlToBuchi_Cached)->Arg(1)->Arg(3)->Arg(5);

void BM_LtlToBuchi_NoReductions(benchmark::State& state) {
  ltl::FormulaFactory* factory = nullptr;
  const auto& formulas = FormulaPool(5, &factory);
  translate::TranslateOptions options;
  options.simplify_formula = false;
  options.prune = false;
  options.reduce = false;
  size_t i = 0;
  for (auto _ : state) {
    auto ba =
        translate::LtlToBuchi(formulas[i % formulas.size()], factory, options);
    benchmark::DoNotOptimize(ba);
    ++i;
  }
}
BENCHMARK(BM_LtlToBuchi_NoReductions);

}  // namespace
