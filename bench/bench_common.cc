#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "testing/universe.h"
#include "util/timer.h"

namespace ctdb::bench {

double Scale() {
  const char* env = std::getenv("CTDB_BENCH_SCALE");
  if (env == nullptr || env[0] == '\0') return kDefaultScale;
  const std::string value(env);
  if (value == "paper") return 1.0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || parsed <= 0) return kDefaultScale;
  return parsed;
}

uint64_t DefaultSeed() {
  static const uint64_t seed = [] {
    uint64_t value = 0xC7DB;
    const char* env = std::getenv("CTDB_BENCH_SEED");
    if (env != nullptr && env[0] != '\0') {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(env, &end, 0);
      if (end != env && *end == '\0' && parsed != 0) value = parsed;
    }
    std::fprintf(stderr, "bench dataset seed: 0x%llx\n",
                 static_cast<unsigned long long>(value));
    return value;
  }();
  return seed;
}

QuerySet GenerateQueries(broker::ContractDatabase* db, const char* level,
                         size_t patterns, size_t count, uint64_t seed) {
  QuerySet set;
  set.level = level;
  set.patterns = patterns;
  auto queries = testing::RandomQueries(db, patterns, count, seed);
  if (!queries.ok()) {
    std::fprintf(stderr, "query generation failed: %s\n",
                 queries.status().ToString().c_str());
    std::exit(1);
  }
  set.queries = std::move(*queries);
  return set;
}

Universe BuildUniverse(size_t contracts, size_t contract_patterns,
                       size_t queries_per_level,
                       const broker::DatabaseOptions& options, uint64_t seed) {
  if (seed == 0) seed = DefaultSeed();
  Universe u;
  Timer timer;

  testing::RandomDatabaseSpec spec;
  spec.contracts = contracts;
  spec.contract_patterns = contract_patterns;
  spec.database = options;
  auto db = testing::RandomDatabase(spec, seed);
  if (!db.ok()) {
    std::fprintf(stderr, "contract generation failed: %s\n",
                 db.status().ToString().c_str());
    std::exit(1);
  }
  u.db = std::move(*db);

  u.query_sets.push_back(
      GenerateQueries(u.db.get(), "simple", 1, queries_per_level, seed ^ 0x51));
  u.query_sets.push_back(
      GenerateQueries(u.db.get(), "medium", 2, queries_per_level, seed ^ 0x52));
  u.query_sets.push_back(GenerateQueries(u.db.get(), "complex", 3,
                                         queries_per_level, seed ^ 0x53));
  u.build_seconds = timer.ElapsedSeconds();
  return u;
}

EvalResult EvaluateAll(broker::ContractDatabase* db,
                       const std::vector<std::string>& queries,
                       const broker::QueryOptions& options) {
  EvalResult result;
  for (const std::string& q : queries) {
    auto r = db->Query(q, options);
    if (!r.ok()) {
      std::fprintf(stderr, "query '%s' failed: %s\n", q.c_str(),
                   r.status().ToString().c_str());
      std::exit(1);
    }
    result.total_ms.Add(r->stats.total_ms);
    result.candidates.Add(static_cast<double>(r->stats.candidates));
    result.matches.Add(static_cast<double>(r->stats.matches));
  }
  return result;
}

broker::QueryOptions UnoptimizedOptions() {
  broker::QueryOptions options;
  options.use_prefilter = false;
  options.use_projections = false;
  options.permission.use_seeds = false;
  return options;
}

broker::QueryOptions OptimizedOptions() {
  return broker::QueryOptions{};  // defaults: everything on
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintRule() {
  std::printf(
      "-----------------------------------------------------------------------"
      "---------\n");
}

void WriteMetricsSnapshot(std::string name) {
  if (name.rfind("bench_", 0) == 0) name.erase(0, 6);
  std::string path;
  const char* dir = std::getenv("CTDB_BENCH_METRICS_DIR");
  if (dir != nullptr && dir[0] != '\0') path = std::string(dir) + "/";
  path += "BENCH_" + name + ".metrics.json";

  const std::string json =
      obs::MetricsRegistry::Default()->Snapshot().ToJson();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "warning: cannot write metrics snapshot %s\n",
                 path.c_str());
    return;
  }
  std::fputs(json.c_str(), file);
  std::fputc('\n', file);
  std::fclose(file);
}

}  // namespace ctdb::bench
