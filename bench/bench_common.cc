#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/timer.h"

namespace ctdb::bench {

double Scale() {
  const char* env = std::getenv("CTDB_BENCH_SCALE");
  if (env == nullptr || env[0] == '\0') return kDefaultScale;
  const std::string value(env);
  if (value == "paper") return 1.0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || parsed <= 0) return kDefaultScale;
  return parsed;
}

QuerySet GenerateQueries(broker::ContractDatabase* db, const char* level,
                         size_t patterns, size_t count, uint64_t seed) {
  QuerySet set;
  set.level = level;
  set.patterns = patterns;
  workload::GeneratorOptions options;
  options.properties = patterns;
  workload::SpecGenerator generator(options, seed, db->vocabulary(),
                                    db->factory());
  for (size_t i = 0; i < count; ++i) {
    auto spec = generator.Next();
    if (!spec.ok()) {
      std::fprintf(stderr, "query generation failed: %s\n",
                   spec.status().ToString().c_str());
      std::exit(1);
    }
    set.queries.push_back(spec->text);
  }
  return set;
}

Universe BuildUniverse(size_t contracts, size_t contract_patterns,
                       size_t queries_per_level,
                       const broker::DatabaseOptions& options, uint64_t seed) {
  Universe u;
  u.db = std::make_unique<broker::ContractDatabase>(options);
  Timer timer;

  workload::GeneratorOptions gen_options;
  gen_options.properties = contract_patterns;
  workload::SpecGenerator generator(gen_options, seed, u.db->vocabulary(),
                                    u.db->factory());
  for (size_t i = 0; i < contracts; ++i) {
    auto spec = generator.Next();
    if (!spec.ok()) {
      std::fprintf(stderr, "contract generation failed: %s\n",
                   spec.status().ToString().c_str());
      std::exit(1);
    }
    auto id = u.db->RegisterFormula("c" + std::to_string(i), spec->formula,
                                    spec->text);
    if (!id.ok()) {
      std::fprintf(stderr, "registration failed: %s\n",
                   id.status().ToString().c_str());
      std::exit(1);
    }
  }

  u.query_sets.push_back(
      GenerateQueries(u.db.get(), "simple", 1, queries_per_level, seed ^ 0x51));
  u.query_sets.push_back(
      GenerateQueries(u.db.get(), "medium", 2, queries_per_level, seed ^ 0x52));
  u.query_sets.push_back(GenerateQueries(u.db.get(), "complex", 3,
                                         queries_per_level, seed ^ 0x53));
  u.build_seconds = timer.ElapsedSeconds();
  return u;
}

EvalResult EvaluateAll(broker::ContractDatabase* db,
                       const std::vector<std::string>& queries,
                       const broker::QueryOptions& options) {
  EvalResult result;
  for (const std::string& q : queries) {
    auto r = db->Query(q, options);
    if (!r.ok()) {
      std::fprintf(stderr, "query '%s' failed: %s\n", q.c_str(),
                   r.status().ToString().c_str());
      std::exit(1);
    }
    result.total_ms.Add(r->stats.total_ms);
    result.candidates.Add(static_cast<double>(r->stats.candidates));
    result.matches.Add(static_cast<double>(r->stats.matches));
  }
  return result;
}

broker::QueryOptions UnoptimizedOptions() {
  broker::QueryOptions options;
  options.use_prefilter = false;
  options.use_projections = false;
  options.permission.use_seeds = false;
  return options;
}

broker::QueryOptions OptimizedOptions() {
  return broker::QueryOptions{};  // defaults: everything on
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintRule() {
  std::printf(
      "-----------------------------------------------------------------------"
      "---------\n");
}

}  // namespace ctdb::bench
