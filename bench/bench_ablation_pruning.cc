// Ablation for §4.1.1's claim: the implemented approximation of the pruning
// conditions (incoming-transition cycle conditions) "has nearly the same
// number of false positives as the complete pruning conditions". Compares
// candidate-set sizes, false-positive counts (candidates that turn out not
// to permit) and extraction cost across all mode combinations.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "index/pruning.h"

int main() {
  using namespace ctdb;
  const double scale = bench::Scale();
  const size_t db_size =
      std::max<size_t>(5, static_cast<size_t>(1000 * scale));
  const size_t queries_per_level =
      std::max<size_t>(5, static_cast<size_t>(100 * scale));

  bench::Universe u = bench::BuildUniverse(db_size, 5, queries_per_level,
                                           broker::DatabaseOptions{}, 0x9417);
  std::vector<std::string> all_queries;
  for (const auto& set : u.query_sets) {
    all_queries.insert(all_queries.end(), set.queries.begin(),
                       set.queries.end());
  }

  struct Mode {
    const char* name;
    index::PathConditionMode path;
    index::CycleConditionMode cycle;
  };
  const Mode modes[] = {
      {"approx paths + approx cycles (paper impl.)",
       index::PathConditionMode::kCondensation,
       index::CycleConditionMode::kIncomingApprox},
      {"state paths + approx cycles (Alg. 1 memo)",
       index::PathConditionMode::kMemoizedStatePaths,
       index::CycleConditionMode::kIncomingApprox},
      {"approx paths + complete cycles",
       index::PathConditionMode::kCondensation,
       index::CycleConditionMode::kBoundedCycles},
      {"state paths + complete cycles ('complete')",
       index::PathConditionMode::kMemoizedStatePaths,
       index::CycleConditionMode::kBoundedCycles},
  };

  bench::PrintHeader("Ablation — pruning condition variants (db=" +
                     std::to_string(db_size) + ")");
  std::printf("%-44s | %12s %14s | %12s\n", "mode", "cand./query",
              "false pos/query", "avg query ms");
  bench::PrintRule();

  for (const Mode& mode : modes) {
    broker::QueryOptions options;  // fully optimized
    options.pruning.path_mode = mode.path;
    options.pruning.cycle_mode = mode.cycle;
    RunningStats candidates;
    RunningStats false_positives;
    RunningStats total_ms;
    for (const std::string& q : all_queries) {
      auto r = u.db->Query(q, options);
      if (!r.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      candidates.Add(static_cast<double>(r->stats.candidates));
      false_positives.Add(
          static_cast<double>(r->stats.candidates - r->stats.matches));
      total_ms.Add(r->stats.total_ms);
    }
    std::printf("%-44s | %12.1f %14.1f | %12.3f\n", mode.name,
                candidates.mean(), false_positives.mean(), total_ms.mean());
  }
  bench::PrintRule();
  std::printf(
      "Expectation (§4.1.1): the approximated conditions have nearly the\n"
      "same false-positive count as the complete ones, at lower cost.\n");
  bench::WriteMetricsSnapshot("ablation_pruning");
  return 0;
}
