// Network service benchmarks: full client → TCP → server → DurableDatabase
// round trips against an in-process server on the loopback interface, plus
// the layers underneath pulled apart — ExecuteRequest without the network,
// and the wire codec without the database — so a regression can be
// attributed to the protocol, the event loop, or the query pipeline.
//
// Recorded into BENCH_server.json by tools/perf/record_bench.py and gated
// by compare_bench.py like the other pinned benches.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "broker/durable.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "testing/temp_dir.h"
#include "wal/wal.h"

namespace {

using namespace ctdb;
using net::Client;
using net::MsgKind;
using net::Request;
using net::Response;

constexpr size_t kContracts = 64;

std::string NthLtl(size_t i) {
  switch (i % 3) {
    case 0: return "F pay";
    case 1: return "G(request -> F grant)";
    default: return "pay U deliver";
  }
}

/// One database + server + contracts, shared by every benchmark in the
/// process (google-benchmark runs them sequentially).
struct Fixture {
  Fixture() : dir("bench_server") {
    wal::DurabilityOptions durability;
    durability.fsync_policy = wal::FsyncPolicy::kNever;
    auto opened = broker::DurableDatabase::Open(dir.path(), durability);
    if (!opened.ok()) std::abort();
    db = std::move(*opened);
    for (size_t i = 0; i < kContracts; ++i) {
      if (!db->Register("c" + std::to_string(i), NthLtl(i)).ok()) {
        std::abort();
      }
    }
    auto started = net::Server::Start(db.get());
    if (!started.ok()) std::abort();
    server = std::move(*started);
  }
  ~Fixture() {
    server->Shutdown().ok();
    db->Close().ok();
  }
  testing::TempDir dir;
  std::unique_ptr<broker::DurableDatabase> db;
  std::unique_ptr<net::Server> server;
};

Fixture* SharedFixture() {
  static Fixture* fixture = new Fixture();
  return fixture;
}

// Full round trip: encode, send, event loop, worker, query pipeline,
// response, decode — one request at a time (latency-bound).
void BM_Server_QueryRoundTrip(benchmark::State& state) {
  Fixture* fixture = SharedFixture();
  auto client = Client::Connect("127.0.0.1", fixture->server->port());
  if (!client.ok()) { state.SkipWithError("connect failed"); return; }
  uint64_t id = 0;
  for (auto _ : state) {
    auto response = (*client)->Call(Request::Query(++id, "F pay"));
    if (!response.ok() || !response->status().ok()) {
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(response->answers);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

// Pipelined round trips: `depth` requests in flight per batch. Throughput
// amortizes the per-frame syscall and wakeup cost.
void BM_Server_PipelinedQueries(benchmark::State& state) {
  Fixture* fixture = SharedFixture();
  auto client = Client::Connect("127.0.0.1", fixture->server->port());
  if (!client.ok()) { state.SkipWithError("connect failed"); return; }
  const uint64_t depth = static_cast<uint64_t>(state.range(0));
  uint64_t id = 0;
  for (auto _ : state) {
    for (uint64_t i = 0; i < depth; ++i) {
      if (!(*client)->Send(Request::Query(++id, "F pay")).ok()) {
        state.SkipWithError("send failed");
        return;
      }
    }
    for (uint64_t i = 0; i < depth; ++i) {
      auto response = (*client)->Receive();
      if (!response.ok() || !response->status().ok()) {
        state.SkipWithError("receive failed");
        return;
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(depth));
}

// Stats round trip: measures framing plus the metrics-registry JSON dump —
// the big-response path (several KiB per reply).
void BM_Server_StatsRoundTrip(benchmark::State& state) {
  Fixture* fixture = SharedFixture();
  auto client = Client::Connect("127.0.0.1", fixture->server->port());
  if (!client.ok()) { state.SkipWithError("connect failed"); return; }
  uint64_t id = 0;
  for (auto _ : state) {
    auto response = (*client)->Call(Request::Stats(++id));
    if (!response.ok() || !response->status().ok()) {
      state.SkipWithError("stats failed");
      return;
    }
    benchmark::DoNotOptimize(response->stats_json);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

// The same query without any network: isolates the database side, so
// (BM_Server_QueryRoundTrip - this) is the transport cost.
void BM_Server_ExecuteRequestOnly(benchmark::State& state) {
  Fixture* fixture = SharedFixture();
  uint64_t id = 0;
  for (auto _ : state) {
    const Response response =
        net::ExecuteRequest(fixture->db.get(), Request::Query(++id, "F pay"));
    if (!response.status().ok()) {
      state.SkipWithError("execute failed");
      return;
    }
    benchmark::DoNotOptimize(response.answers);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

// Codec only: request encode + frame scan + decode, no sockets at all.
void BM_Protocol_QueryEncodeDecode(benchmark::State& state) {
  for (auto _ : state) {
    const std::string frame =
        net::EncodeRequestFrame(Request::Query(7, "F (p1 & X p2)"));
    size_t offset = 0;
    Request decoded;
    if (!net::DecodeRequestFrame(frame, &offset, &decoded).ok()) {
      state.SkipWithError("decode failed");
      return;
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_Protocol_ResponseEncodeDecode(benchmark::State& state) {
  Response response;
  response.id = 7;
  response.request_kind = MsgKind::kQuery;
  response.answers.push_back({{1, 2, 3, 5, 8, 13, 21, 34}, 1234, 64});
  for (auto _ : state) {
    const std::string payload = net::EncodeResponsePayload(response);
    Response decoded;
    if (!net::DecodeResponsePayload(payload, &decoded).ok()) {
      state.SkipWithError("decode failed");
      return;
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

BENCHMARK(BM_Server_QueryRoundTrip);
BENCHMARK(BM_Server_PipelinedQueries)->Arg(8)->Arg(64);
BENCHMARK(BM_Server_StatsRoundTrip);
BENCHMARK(BM_Server_ExecuteRequestOnly);
BENCHMARK(BM_Protocol_QueryEncodeDecode);
BENCHMARK(BM_Protocol_ResponseEncodeDecode);

}  // namespace
