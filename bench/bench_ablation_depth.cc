// Ablation A2 (DESIGN.md): prefilter index depth k (§4.2's node-label size
// cap) — build cost and index size vs. candidate-set selectivity.

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"

int main() {
  using namespace ctdb;
  const double scale = bench::Scale();
  const size_t db_size =
      std::max<size_t>(5, static_cast<size_t>(1000 * scale));
  const size_t queries_per_level =
      std::max<size_t>(3, static_cast<size_t>(100 * scale));

  bench::PrintHeader("Ablation — prefilter depth k (db=" +
                     std::to_string(db_size) + ")");
  std::printf("%3s | %10s %10s %12s | %12s %12s\n", "k", "build s",
              "nodes", "index size", "cand./query", "avg query ms");
  bench::PrintRule();

  for (size_t k = 1; k <= 3; ++k) {
    broker::DatabaseOptions options;
    options.prefilter.max_depth = k;
    bench::Universe u = bench::BuildUniverse(db_size, 5, queries_per_level,
                                             options, 0xDE27);
    std::vector<std::string> all_queries;
    for (const auto& set : u.query_sets) {
      all_queries.insert(all_queries.end(), set.queries.begin(),
                         set.queries.end());
    }
    const auto stats = u.db->prefilter().Stats();
    const bench::EvalResult r = bench::EvaluateAll(
        u.db.get(), all_queries, bench::OptimizedOptions());
    std::printf("%3zu | %10.2f %10zu %12s | %12.1f %12.3f\n", k,
                u.build_seconds, stats.node_count,
                HumanBytes(stats.memory_bytes).c_str(), r.candidates.mean(),
                r.total_ms.mean());
  }
  bench::PrintRule();
  std::printf(
      "Expectation: deeper indexes cost more to build and store but yield\n"
      "smaller candidate sets; k=2 (the paper's working point) balances "
      "both.\n");
  bench::WriteMetricsSnapshot("ablation_depth");
  return 0;
}
