// Durability subsystem benchmark (DESIGN.md §10): what the write-ahead log
// costs on the write path and what it buys at recovery time.
//
// Phase 1 — append: registers the same contract workload through
// broker::DurableDatabase under each fsync policy (always / group / never),
// single-threaded and with 4 concurrent writers, reporting throughput and
// per-Register latency. Shape check: group commit should recover most of the
// gap between always (one fsync per record) and never (no fsync), and its
// advantage should grow with concurrency because one fsync covers the whole
// group.
//
// Phase 2 — recovery: builds logs of increasing length, then measures
// RecoverDatabase wall time, replayed records and scanned bytes. Recovery
// time should grow roughly linearly with log length, and a checkpoint should
// collapse it to near-constant (the replay tail is empty).
//
// Phase 3 — sharded recovery: registers the same total workload into a
// ShardedDatabase at 1/2/4/8 shards and times the full Open (manifest +
// parallel per-shard replay). Splitting one log N ways beats replaying it
// serially twice over: shards recover concurrently, and per-record replay
// cost grows with the size of the database it lands in, so N small replays
// are cheaper than one big one even on a single core.
//
// JSON mode: invoked with --benchmark_format=json (plus the usual
// --benchmark_repetitions=N / --benchmark_report_aggregates_only=true) the
// binary runs only Phase 3 and emits a google-benchmark-shaped JSON report
// (ShardedRecovery/shards:N entries, median aggregates, ns) so
// tools/perf/record_bench.py can record the recovery trajectory exactly
// like the gbench binaries.
//
// Metrics snapshot: the wal.* counters (appends, groups, fsyncs, recovery.*)
// land in BENCH_wal.metrics.json for the CI bench-smoke validation.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "broker/durable.h"
#include "shard/sharded.h"
#include "testing/temp_dir.h"
#include "util/stats.h"
#include "wal/wal.h"

namespace {

using Clock = std::chrono::steady_clock;

struct AppendResult {
  double seconds = 0;
  size_t registered = 0;
  ctdb::RunningStats latency_us;
  double per_sec() const {
    return seconds > 0 ? static_cast<double>(registered) / seconds : 0;
  }
};

/// Registers `specs` (split evenly across `threads`) into a fresh durable
/// database under `policy` and reports wall time plus per-call latency.
AppendResult RunAppendPhase(const std::vector<std::string>& specs,
                            size_t threads, ctdb::wal::FsyncPolicy policy) {
  using namespace ctdb;
  testing::TempDir dir("bench_wal");
  wal::DurabilityOptions options;
  options.fsync_policy = policy;
  auto db = broker::DurableDatabase::Open(dir.path(), options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }

  std::atomic<bool> failed{false};
  std::vector<RunningStats> latency(threads);
  const auto start = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (size_t i = t; i < specs.size(); i += threads) {
        const auto before = Clock::now();
        auto id = (*db)->Register(
            "wal-" + std::to_string(t) + "-" + std::to_string(i), specs[i]);
        if (!id.ok()) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        latency[t].Add(
            std::chrono::duration<double, std::micro>(Clock::now() - before)
                .count());
      }
    });
  }
  for (std::thread& th : pool) th.join();
  const auto done = Clock::now();
  if (failed.load() || !(*db)->Close().ok()) {
    std::fprintf(stderr, "append phase failed (policy=%s)\n",
                 wal::FsyncPolicyName(policy));
    std::exit(1);
  }

  AppendResult result;
  result.seconds = std::chrono::duration<double>(done - start).count();
  result.registered = specs.size();
  for (const RunningStats& s : latency) result.latency_us.Merge(s);
  return result;
}

struct RecoveryResult {
  size_t contracts = 0;
  bool checkpointed = false;
  double build_seconds = 0;
  double recover_seconds = 0;
  ctdb::broker::RecoveryStats stats;
};

/// Builds a log with `count` registrations (fsync=never — the log content is
/// what matters, not the write path), optionally checkpoints, then times
/// RecoverDatabase over the resulting directory.
RecoveryResult RunRecoveryPhase(const std::vector<std::string>& specs,
                                size_t count, bool checkpoint) {
  using namespace ctdb;
  testing::TempDir dir("bench_wal_rec");
  wal::DurabilityOptions options;
  options.fsync_policy = wal::FsyncPolicy::kNever;
  RecoveryResult result;
  result.contracts = count;
  result.checkpointed = checkpoint;
  {
    const auto start = Clock::now();
    auto db = broker::DurableDatabase::Open(dir.path(), options);
    if (!db.ok()) std::exit(1);
    for (size_t i = 0; i < count; ++i) {
      if (!(*db)->Register("rec-" + std::to_string(i),
                           specs[i % specs.size()])
               .ok()) {
        std::fprintf(stderr, "recovery-phase build failed at %zu\n", i);
        std::exit(1);
      }
    }
    if (checkpoint && !(*db)->Checkpoint().ok()) std::exit(1);
    if (!(*db)->Close().ok()) std::exit(1);
    result.build_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
  }
  const auto start = Clock::now();
  auto recovered = broker::RecoverDatabase(dir.path(), {}, &result.stats);
  result.recover_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (!recovered.ok() || (*recovered)->size() != count) {
    std::fprintf(stderr, "recovery failed or lost records: %s\n",
                 recovered.status().ToString().c_str());
    std::exit(1);
  }
  return result;
}

/// Deliberately tiny formulas: Phase 3 measures the replay machinery (WAL
/// scan + re-register + snapshot publish), not LTL translation, so the
/// contract count can be large enough for sharding to matter.
const char* CheapLtl(size_t i) {
  switch (i % 3) {
    case 0: return "F pay";
    case 1: return "G(request -> F grant)";
    default: return "pay U deliver";
  }
}

struct ShardedRecoveryRow {
  size_t shards = 0;
  size_t contracts = 0;
  double build_seconds = 0;
  std::vector<double> recover_seconds;  ///< one sample per repetition
  double median_seconds() const {
    std::vector<double> sorted = recover_seconds;
    std::sort(sorted.begin(), sorted.end());
    return sorted.empty() ? 0 : sorted[sorted.size() / 2];
  }
};

/// Registers `count` cheap contracts into a fresh `shards`-way sharded
/// directory, closes it, then times ShardedDatabase::Open (adopting the
/// manifest) `reps` times over the same on-disk logs.
ShardedRecoveryRow RunShardedRecoveryPhase(size_t shards, size_t count,
                                           size_t reps) {
  using namespace ctdb;
  testing::TempDir dir("bench_wal_shard");
  wal::DurabilityOptions options;
  options.fsync_policy = wal::FsyncPolicy::kNever;

  ShardedRecoveryRow row;
  row.shards = shards;
  row.contracts = count;
  {
    broker::DatabaseOptions db_options;
    db_options.shards = shards;
    const auto start = Clock::now();
    auto db = shard::ShardedDatabase::Open(dir.path(), options, db_options);
    if (!db.ok()) {
      std::fprintf(stderr, "sharded open failed: %s\n",
                   db.status().ToString().c_str());
      std::exit(1);
    }
    for (size_t i = 0; i < count; ++i) {
      if (!(*db)->Register("srec-" + std::to_string(i), CheapLtl(i)).ok()) {
        std::fprintf(stderr, "sharded build failed at %zu\n", i);
        std::exit(1);
      }
    }
    if (!(*db)->Close().ok()) std::exit(1);
    row.build_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
  }

  broker::DatabaseOptions adopt;
  adopt.shards = 0;  // topology comes from the manifest
  for (size_t r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    auto db = shard::ShardedDatabase::Open(dir.path(), options, adopt);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (!db.ok() || (*db)->size() != count ||
        (*db)->shard_count() != shards) {
      std::fprintf(stderr, "sharded recovery failed or lost records: %s\n",
                   db.status().ToString().c_str());
      std::exit(1);
    }
    row.recover_seconds.push_back(seconds);
    if (!(*db)->Close().ok()) std::exit(1);
  }
  return row;
}

constexpr size_t kShardCounts[] = {1, 2, 4, 8};

/// Emits a google-benchmark-shaped JSON report for the Phase 3 rows:
/// median aggregates named ShardedRecovery/shards:N when reps > 1, plain
/// per-run entries otherwise. Matches what record_bench.py expects from a
/// real gbench binary with --benchmark_report_aggregates_only=true.
void PrintJsonReport(const std::vector<ShardedRecoveryRow>& rows,
                     size_t reps, double scale) {
  std::printf("{\n");
  std::printf("  \"context\": {\"ctdb_bench\": \"wal\", \"scale\": %g},\n",
              scale);
  std::printf("  \"benchmarks\": [");
  bool first = true;
  for (const ShardedRecoveryRow& row : rows) {
    const double ns = row.median_seconds() * 1e9;
    if (!first) std::printf(",");
    first = false;
    if (reps > 1) {
      std::printf(
          "\n    {\"name\": \"ShardedRecovery/shards:%zu_median\", "
          "\"run_name\": \"ShardedRecovery/shards:%zu\", "
          "\"run_type\": \"aggregate\", \"aggregate_name\": \"median\", "
          "\"repetitions\": %zu, \"iterations\": 1, "
          "\"real_time\": %.1f, \"cpu_time\": %.1f, \"time_unit\": \"ns\"}",
          row.shards, row.shards, reps, ns, ns);
    } else {
      std::printf(
          "\n    {\"name\": \"ShardedRecovery/shards:%zu\", "
          "\"run_type\": \"iteration\", \"iterations\": 1, "
          "\"real_time\": %.1f, \"cpu_time\": %.1f, \"time_unit\": \"ns\"}",
          row.shards, ns, ns);
    }
  }
  std::printf("\n  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ctdb;
  const double scale = bench::Scale();
  const size_t append_contracts =
      std::max<size_t>(64, static_cast<size_t>(4000 * scale));
  // Cheap contracts replay fast, so the sharded phase can afford a count
  // where per-shard database size actually dominates recovery cost.
  const size_t sharded_contracts =
      std::max<size_t>(64, static_cast<size_t>(20000 * scale));

  // Accept the google-benchmark flags record_bench.py passes; anything else
  // gbench-shaped is ignored so the binary stays drop-in compatible.
  bool json_mode = false;
  size_t repetitions = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--benchmark_format=json") {
      json_mode = true;
    } else if (arg.rfind("--benchmark_repetitions=", 0) == 0) {
      repetitions = std::max<size_t>(
          1, std::strtoull(arg.c_str() + arg.find('=') + 1, nullptr, 10));
    }
  }

  if (json_mode) {
    std::vector<ShardedRecoveryRow> rows;
    for (size_t shards : kShardCounts) {
      rows.push_back(
          RunShardedRecoveryPhase(shards, sharded_contracts, repetitions));
    }
    PrintJsonReport(rows, repetitions, scale);
    bench::WriteMetricsSnapshot("wal");
    return 0;
  }

  bench::PrintHeader("WAL durability — append cost and recovery time (scale=" +
                     std::to_string(scale) + ")");

  // Pre-generate realistic contract texts against a throwaway universe so
  // the measured phases never touch the generator (same trick as
  // bench_concurrent_mixed).
  std::vector<std::string> specs;
  {
    bench::Universe proto = bench::BuildUniverse(
        std::max<size_t>(8, append_contracts / 8), /*contract_patterns=*/3,
        /*queries_per_level=*/1);
    bench::QuerySet set =
        bench::GenerateQueries(proto.db.get(), "wal", /*patterns=*/2,
                               append_contracts, 0xDB5A);
    specs = std::move(set.queries);
  }

  // --- Phase 1: append throughput / latency per fsync policy. -------------
  struct AppendRow {
    wal::FsyncPolicy policy;
    size_t threads;
    AppendResult result;
  };
  std::vector<AppendRow> rows;
  for (wal::FsyncPolicy policy :
       {wal::FsyncPolicy::kAlways, wal::FsyncPolicy::kGroup,
        wal::FsyncPolicy::kNever}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      rows.push_back({policy, threads, RunAppendPhase(specs, threads, policy)});
    }
  }

  std::printf("%8s %8s | %10s %10s %12s | %12s %12s\n", "fsync", "threads",
              "records", "seconds", "reg/s", "lat_mean_us", "lat_max_us");
  bench::PrintRule();
  double group4 = 0, always4 = 0, never4 = 0;
  for (const AppendRow& row : rows) {
    if (row.threads == 4) {
      if (row.policy == wal::FsyncPolicy::kAlways) always4 = row.result.per_sec();
      if (row.policy == wal::FsyncPolicy::kGroup) group4 = row.result.per_sec();
      if (row.policy == wal::FsyncPolicy::kNever) never4 = row.result.per_sec();
    }
    std::printf("%8s %8zu | %10zu %10.3f %12.1f | %12.1f %12.1f\n",
                wal::FsyncPolicyName(row.policy), row.threads,
                row.result.registered, row.result.seconds,
                row.result.per_sec(), row.result.latency_us.mean(),
                row.result.latency_us.max());
  }
  bench::PrintRule();
  std::printf(
      "Shape check: reg/s ordering never >= group >= always at 4 threads\n"
      "(group commit amortizes one fsync over the whole group).\n");
  if (!(never4 >= group4 && group4 >= always4)) {
    std::printf(
        "note: ordering not strict on this run (always=%.1f group=%.1f "
        "never=%.1f) — fsync cost is filesystem-bound and can vanish on "
        "fast/ephemeral storage.\n",
        always4, group4, never4);
  }

  // --- Phase 2: recovery time vs log length. ------------------------------
  std::printf("\n");
  std::printf("%9s %11s | %10s %10s %12s | %10s\n", "contracts", "checkpoint",
              "replayed", "bytes", "recover_ms", "build_s");
  bench::PrintRule();
  std::vector<RecoveryResult> recovery;
  for (size_t count :
       {append_contracts / 4, append_contracts / 2, append_contracts}) {
    recovery.push_back(RunRecoveryPhase(specs, std::max<size_t>(8, count),
                                        /*checkpoint=*/false));
  }
  recovery.push_back(
      RunRecoveryPhase(specs, append_contracts, /*checkpoint=*/true));
  for (const RecoveryResult& row : recovery) {
    std::printf("%9zu %11s | %10zu %10llu %12.2f | %10.3f\n", row.contracts,
                row.checkpointed ? "yes" : "no", row.stats.records_replayed,
                static_cast<unsigned long long>(row.stats.bytes_scanned),
                row.recover_seconds * 1e3, row.build_seconds);
  }
  bench::PrintRule();
  const RecoveryResult& full = recovery[recovery.size() - 2];
  const RecoveryResult& ckpt = recovery.back();
  std::printf(
      "Shape check: recovery scales with log length; the checkpointed run\n"
      "replays %zu records instead of %zu (checkpoint covers the log).\n",
      ckpt.stats.records_replayed, full.stats.records_replayed);
  if (ckpt.stats.records_replayed >= full.stats.records_replayed &&
      full.stats.records_replayed > 0) {
    std::printf("WARNING: checkpoint did not shorten replay.\n");
  }

  // --- Phase 3: sharded recovery vs shard count. --------------------------
  std::printf("\n");
  std::printf("%7s %10s | %12s %10s | %10s\n", "shards", "contracts",
              "recover_ms", "speedup", "build_s");
  bench::PrintRule();
  std::vector<ShardedRecoveryRow> sharded;
  for (size_t shards : kShardCounts) {
    sharded.push_back(
        RunShardedRecoveryPhase(shards, sharded_contracts, /*reps=*/1));
  }
  const double serial_ms = sharded.front().median_seconds() * 1e3;
  for (const ShardedRecoveryRow& row : sharded) {
    const double ms = row.median_seconds() * 1e3;
    std::printf("%7zu %10zu | %12.2f %9.2fx | %10.3f\n", row.shards,
                row.contracts, ms, ms > 0 ? serial_ms / ms : 0,
                row.build_seconds);
  }
  bench::PrintRule();
  std::printf(
      "Shape check: the same total log recovers faster split across shards\n"
      "(parallel replay, and per-record replay cost grows with shard size).\n"
      "At full scale (20k contracts) 4 shards should be >= 2x over 1 shard;\n"
      "at smoke scales fixed per-shard overheads can mask the effect.\n");

  bench::WriteMetricsSnapshot("wal");
  return 0;
}
