// Durability subsystem benchmark (DESIGN.md §10): what the write-ahead log
// costs on the write path and what it buys at recovery time.
//
// Phase 1 — append: registers the same contract workload through
// broker::DurableDatabase under each fsync policy (always / group / never),
// single-threaded and with 4 concurrent writers, reporting throughput and
// per-Register latency. Shape check: group commit should recover most of the
// gap between always (one fsync per record) and never (no fsync), and its
// advantage should grow with concurrency because one fsync covers the whole
// group.
//
// Phase 2 — recovery: builds logs of increasing length, then measures
// RecoverDatabase wall time, replayed records and scanned bytes. Recovery
// time should grow roughly linearly with log length, and a checkpoint should
// collapse it to near-constant (the replay tail is empty).
//
// Metrics snapshot: the wal.* counters (appends, groups, fsyncs, recovery.*)
// land in BENCH_wal.metrics.json for the CI bench-smoke validation.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "broker/durable.h"
#include "testing/temp_dir.h"
#include "util/stats.h"
#include "wal/wal.h"

namespace {

using Clock = std::chrono::steady_clock;

struct AppendResult {
  double seconds = 0;
  size_t registered = 0;
  ctdb::RunningStats latency_us;
  double per_sec() const {
    return seconds > 0 ? static_cast<double>(registered) / seconds : 0;
  }
};

/// Registers `specs` (split evenly across `threads`) into a fresh durable
/// database under `policy` and reports wall time plus per-call latency.
AppendResult RunAppendPhase(const std::vector<std::string>& specs,
                            size_t threads, ctdb::wal::FsyncPolicy policy) {
  using namespace ctdb;
  testing::TempDir dir("bench_wal");
  wal::DurabilityOptions options;
  options.fsync_policy = policy;
  auto db = broker::DurableDatabase::Open(dir.path(), options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }

  std::atomic<bool> failed{false};
  std::vector<RunningStats> latency(threads);
  const auto start = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (size_t i = t; i < specs.size(); i += threads) {
        const auto before = Clock::now();
        auto id = (*db)->Register(
            "wal-" + std::to_string(t) + "-" + std::to_string(i), specs[i]);
        if (!id.ok()) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        latency[t].Add(
            std::chrono::duration<double, std::micro>(Clock::now() - before)
                .count());
      }
    });
  }
  for (std::thread& th : pool) th.join();
  const auto done = Clock::now();
  if (failed.load() || !(*db)->Close().ok()) {
    std::fprintf(stderr, "append phase failed (policy=%s)\n",
                 wal::FsyncPolicyName(policy));
    std::exit(1);
  }

  AppendResult result;
  result.seconds = std::chrono::duration<double>(done - start).count();
  result.registered = specs.size();
  for (const RunningStats& s : latency) result.latency_us.Merge(s);
  return result;
}

struct RecoveryResult {
  size_t contracts = 0;
  bool checkpointed = false;
  double build_seconds = 0;
  double recover_seconds = 0;
  ctdb::broker::RecoveryStats stats;
};

/// Builds a log with `count` registrations (fsync=never — the log content is
/// what matters, not the write path), optionally checkpoints, then times
/// RecoverDatabase over the resulting directory.
RecoveryResult RunRecoveryPhase(const std::vector<std::string>& specs,
                                size_t count, bool checkpoint) {
  using namespace ctdb;
  testing::TempDir dir("bench_wal_rec");
  wal::DurabilityOptions options;
  options.fsync_policy = wal::FsyncPolicy::kNever;
  RecoveryResult result;
  result.contracts = count;
  result.checkpointed = checkpoint;
  {
    const auto start = Clock::now();
    auto db = broker::DurableDatabase::Open(dir.path(), options);
    if (!db.ok()) std::exit(1);
    for (size_t i = 0; i < count; ++i) {
      if (!(*db)->Register("rec-" + std::to_string(i),
                           specs[i % specs.size()])
               .ok()) {
        std::fprintf(stderr, "recovery-phase build failed at %zu\n", i);
        std::exit(1);
      }
    }
    if (checkpoint && !(*db)->Checkpoint().ok()) std::exit(1);
    if (!(*db)->Close().ok()) std::exit(1);
    result.build_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
  }
  const auto start = Clock::now();
  auto recovered = broker::RecoverDatabase(dir.path(), {}, &result.stats);
  result.recover_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (!recovered.ok() || (*recovered)->size() != count) {
    std::fprintf(stderr, "recovery failed or lost records: %s\n",
                 recovered.status().ToString().c_str());
    std::exit(1);
  }
  return result;
}

}  // namespace

int main() {
  using namespace ctdb;
  const double scale = bench::Scale();
  const size_t append_contracts =
      std::max<size_t>(64, static_cast<size_t>(4000 * scale));

  bench::PrintHeader("WAL durability — append cost and recovery time (scale=" +
                     std::to_string(scale) + ")");

  // Pre-generate realistic contract texts against a throwaway universe so
  // the measured phases never touch the generator (same trick as
  // bench_concurrent_mixed).
  std::vector<std::string> specs;
  {
    bench::Universe proto = bench::BuildUniverse(
        std::max<size_t>(8, append_contracts / 8), /*contract_patterns=*/3,
        /*queries_per_level=*/1);
    bench::QuerySet set =
        bench::GenerateQueries(proto.db.get(), "wal", /*patterns=*/2,
                               append_contracts, 0xDB5A);
    specs = std::move(set.queries);
  }

  // --- Phase 1: append throughput / latency per fsync policy. -------------
  struct AppendRow {
    wal::FsyncPolicy policy;
    size_t threads;
    AppendResult result;
  };
  std::vector<AppendRow> rows;
  for (wal::FsyncPolicy policy :
       {wal::FsyncPolicy::kAlways, wal::FsyncPolicy::kGroup,
        wal::FsyncPolicy::kNever}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      rows.push_back({policy, threads, RunAppendPhase(specs, threads, policy)});
    }
  }

  std::printf("%8s %8s | %10s %10s %12s | %12s %12s\n", "fsync", "threads",
              "records", "seconds", "reg/s", "lat_mean_us", "lat_max_us");
  bench::PrintRule();
  double group4 = 0, always4 = 0, never4 = 0;
  for (const AppendRow& row : rows) {
    if (row.threads == 4) {
      if (row.policy == wal::FsyncPolicy::kAlways) always4 = row.result.per_sec();
      if (row.policy == wal::FsyncPolicy::kGroup) group4 = row.result.per_sec();
      if (row.policy == wal::FsyncPolicy::kNever) never4 = row.result.per_sec();
    }
    std::printf("%8s %8zu | %10zu %10.3f %12.1f | %12.1f %12.1f\n",
                wal::FsyncPolicyName(row.policy), row.threads,
                row.result.registered, row.result.seconds,
                row.result.per_sec(), row.result.latency_us.mean(),
                row.result.latency_us.max());
  }
  bench::PrintRule();
  std::printf(
      "Shape check: reg/s ordering never >= group >= always at 4 threads\n"
      "(group commit amortizes one fsync over the whole group).\n");
  if (!(never4 >= group4 && group4 >= always4)) {
    std::printf(
        "note: ordering not strict on this run (always=%.1f group=%.1f "
        "never=%.1f) — fsync cost is filesystem-bound and can vanish on "
        "fast/ephemeral storage.\n",
        always4, group4, never4);
  }

  // --- Phase 2: recovery time vs log length. ------------------------------
  std::printf("\n");
  std::printf("%9s %11s | %10s %10s %12s | %10s\n", "contracts", "checkpoint",
              "replayed", "bytes", "recover_ms", "build_s");
  bench::PrintRule();
  std::vector<RecoveryResult> recovery;
  for (size_t count :
       {append_contracts / 4, append_contracts / 2, append_contracts}) {
    recovery.push_back(RunRecoveryPhase(specs, std::max<size_t>(8, count),
                                        /*checkpoint=*/false));
  }
  recovery.push_back(
      RunRecoveryPhase(specs, append_contracts, /*checkpoint=*/true));
  for (const RecoveryResult& row : recovery) {
    std::printf("%9zu %11s | %10zu %10llu %12.2f | %10.3f\n", row.contracts,
                row.checkpointed ? "yes" : "no", row.stats.records_replayed,
                static_cast<unsigned long long>(row.stats.bytes_scanned),
                row.recover_seconds * 1e3, row.build_seconds);
  }
  bench::PrintRule();
  const RecoveryResult& full = recovery[recovery.size() - 2];
  const RecoveryResult& ckpt = recovery.back();
  std::printf(
      "Shape check: recovery scales with log length; the checkpointed run\n"
      "replays %zu records instead of %zu (checkpoint covers the log).\n",
      ckpt.stats.records_replayed, full.stats.records_replayed);
  if (ckpt.stats.records_replayed >= full.stats.records_replayed &&
      full.stats.records_replayed > 0) {
    std::printf("WARNING: checkpoint did not shorten replay.\n");
  }

  bench::WriteMetricsSnapshot("wal");
  return 0;
}
