// Mixed read/write throughput for the snapshot-isolated broker: N reader
// threads issue queries through the const read path while one writer thread
// registers new contracts into the same database (DESIGN.md §8).
//
// Each phase rebuilds an identical universe, so phases differ only in reader
// count. The baseline is a single reader with no writer; the headline number
// is aggregate reader throughput at 1/4/8 readers with the writer running.
// Shape check: read throughput should scale with reader threads (target ≥3x
// at 8 readers vs. 1 reader, both with a concurrent writer) because readers
// never take the writer mutex — they only load the published snapshot.
// Scaling is hardware-bound: on fewer cores than readers the ratio flattens,
// which the run flags instead of failing.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace {

using Clock = std::chrono::steady_clock;

struct PhaseResult {
  double seconds = 0;
  size_t queries = 0;
  size_t registered = 0;
  double qps() const {
    return seconds > 0 ? static_cast<double>(queries) / seconds : 0;
  }
};

/// Runs `readers` reader threads, each evaluating `per_reader` queries
/// through ContractDatabase::Query (const, snapshot-per-call), optionally
/// racing one writer that registers every spec in `writer_specs` once.
PhaseResult RunPhase(ctdb::broker::ContractDatabase* db,
                     const std::vector<std::string>& queries, size_t readers,
                     size_t per_reader,
                     const std::vector<std::string>* writer_specs) {
  const ctdb::broker::QueryOptions options = ctdb::bench::OptimizedOptions();
  std::atomic<size_t> completed{0};
  std::atomic<size_t> registered{0};
  std::atomic<bool> failed{false};

  const auto start = Clock::now();
  std::thread writer;
  if (writer_specs != nullptr) {
    writer = std::thread([&] {
      for (size_t i = 0; i < writer_specs->size(); ++i) {
        if (!db->Register("mixed" + std::to_string(i), (*writer_specs)[i])
                 .ok()) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        registered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> pool;
  pool.reserve(readers);
  for (size_t r = 0; r < readers; ++r) {
    pool.emplace_back([&, r] {
      for (size_t i = 0; i < per_reader; ++i) {
        const std::string& q = queries[(r + i) % queries.size()];
        auto result = db->Query(q, options);
        if (!result.ok()) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const auto readers_done = Clock::now();
  if (writer.joinable()) writer.join();

  if (failed.load()) {
    std::fprintf(stderr, "phase failed: query or registration error\n");
    std::exit(1);
  }
  PhaseResult result;
  // Reader wall time only: the writer may outlive the readers, but the
  // metric is read throughput under churn, not time-to-drain-the-writer.
  result.seconds = std::chrono::duration<double>(readers_done - start).count();
  result.queries = completed.load();
  result.registered = registered.load();
  return result;
}

}  // namespace

int main() {
  using namespace ctdb;
  const double scale = bench::Scale();
  const size_t db_size = std::max<size_t>(
      8, static_cast<size_t>(600 * scale));
  const size_t queries_per_level =
      std::max<size_t>(2, static_cast<size_t>(60 * scale));
  const size_t writer_contracts = std::max<size_t>(4, db_size / 2);

  bench::PrintHeader(
      "Concurrent mixed workload — readers vs. one writer (scale=" +
      std::to_string(scale) + ")");

  // Pre-generate the writer's contract texts against a throwaway universe so
  // the measured phases never touch the generator. Every phase's universe is
  // built from the same seed, so the p* vocabulary lines up.
  std::vector<std::string> writer_specs;
  {
    bench::Universe proto =
        bench::BuildUniverse(db_size, /*contract_patterns=*/3,
                             /*queries_per_level=*/1);
    bench::QuerySet extra = bench::GenerateQueries(
        proto.db.get(), "writer", /*patterns=*/3, writer_contracts, 0xA11CE);
    writer_specs = std::move(extra.queries);
  }

  std::vector<std::string> queries;
  std::vector<size_t> reader_counts = {1, 4, 8};
  struct Row {
    size_t readers;
    bool with_writer;
    PhaseResult result;
  };
  std::vector<Row> rows;

  auto build_db = [&] {
    bench::Universe u = bench::BuildUniverse(db_size, /*contract_patterns=*/3,
                                             queries_per_level);
    if (queries.empty()) {
      for (const auto& set : u.query_sets) {
        queries.insert(queries.end(), set.queries.begin(), set.queries.end());
      }
    }
    return std::move(u.db);
  };

  // Baseline: one reader, quiescent database. Built first so `queries` is
  // populated before per_reader is sized off it.
  {
    auto db = build_db();
    const size_t per_reader = std::max<size_t>(16, 2 * queries.size());
    rows.push_back({1, false,
                    RunPhase(db.get(), queries, 1, per_reader, nullptr)});
  }
  const size_t per_reader = std::max<size_t>(16, 2 * queries.size());
  // Mixed phases: each starts from an identical fresh universe.
  for (size_t readers : reader_counts) {
    auto db = build_db();
    rows.push_back({readers, true,
                    RunPhase(db.get(), queries, readers, per_reader,
                             &writer_specs)});
  }

  std::printf("%8s %8s | %10s %10s %10s | %10s\n", "readers", "writer",
              "queries", "seconds", "qps", "vs 1r+w");
  bench::PrintRule();
  double single_mixed_qps = 0;
  for (const Row& row : rows) {
    if (row.readers == 1 && row.with_writer) single_mixed_qps = row.result.qps();
  }
  double eight_ratio = 0;
  for (const Row& row : rows) {
    const double ratio =
        (row.with_writer && single_mixed_qps > 0)
            ? row.result.qps() / single_mixed_qps
            : 0;
    if (row.readers == 8 && row.with_writer) eight_ratio = ratio;
    std::printf("%8zu %8s | %10zu %10.3f %10.1f | %10.2f\n", row.readers,
                row.with_writer ? "yes" : "no", row.result.queries,
                row.result.seconds, row.result.qps(), ratio);
  }
  bench::PrintRule();

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "Shape check: qps scales with readers (target >=3x at 8 readers vs. 1\n"
      "reader, both with the concurrent writer). Registered %zu contracts\n"
      "per mixed phase.\n",
      writer_specs.size());
  if (eight_ratio < 3.0) {
    if (cores < 8) {
      std::printf(
          "note: 8-reader ratio %.2fx below 3x target — hardware-bound\n"
          "(hardware_concurrency=%u); the ratio is meaningful on >=8 cores.\n",
          eight_ratio, cores);
    } else {
      std::printf("WARNING: 8-reader ratio %.2fx below 3x target on %u "
                  "cores.\n", eight_ratio, cores);
    }
  }

  bench::WriteMetricsSnapshot("concurrent_mixed");
  return 0;
}
