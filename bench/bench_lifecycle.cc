// Lifecycle benchmarks (DESIGN.md §14): the cost of retiring the
// append-only assumption. Three questions on one generated universe:
//  * mutation cost — Replace (supersede a live spec in place) and the
//    Unregister+Register churn cycle, both dominated by the LTL→BA
//    translation plus the copy-on-write prefilter/history swaps;
//  * time-travel cost — as-of queries take the unindexed full-scan path
//    over VisibleAt(seq), so BM_QueryAsOf_* against BM_QueryLatest prices
//    exactly what the historical guarantee costs;
//  * depth sensitivity — as-of at the pre-churn clock resolves against the
//    deepest history, as-of at mid-churn against a mixed live/history set.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using namespace ctdb;

struct LifecycleFixture {
  bench::Universe universe;
  /// Replacement specifications (medium complexity, same vocabulary).
  std::vector<std::string> specs;
  /// Currently live contract ids, rotated by the churn benchmarks.
  std::vector<uint32_t> live;
  uint64_t pre_churn_clock = 0;  ///< deepest as-of point (all originals)
  uint64_t mid_churn_clock = 0;  ///< mixed live/history as-of point
  size_t next_name = 0;          ///< churn registration counter

  LifecycleFixture() {
    const double scale = bench::Scale();
    const size_t contracts =
        std::max<size_t>(16, static_cast<size_t>(400 * scale));
    const size_t queries =
        std::max<size_t>(6, static_cast<size_t>(60 * scale));
    universe = bench::BuildUniverse(contracts, 3, queries);
    specs = bench::GenerateQueries(universe.db.get(), "medium", 2, 32,
                                   bench::DefaultSeed() ^ 0x11FE)
                .queries;
    pre_churn_clock = universe.db->last_sequence();
    // Churn prologue: supersede every contract a few times so the as-of
    // benchmarks resolve against a real history store, not an empty one.
    size_t spec_i = 0;
    for (size_t round = 0; round < 4; ++round) {
      for (uint32_t id = 0; id < contracts; ++id) {
        auto r = universe.db->Replace(id, specs[spec_i++ % specs.size()]);
        if (!r.ok()) abort();
      }
      if (round == 1) mid_churn_clock = universe.db->last_sequence();
    }
    for (uint32_t id = 0; id < contracts; ++id) live.push_back(id);
  }
};

LifecycleFixture* GetFixture() {
  static LifecycleFixture* fixture = new LifecycleFixture();
  return fixture;
}

std::vector<std::string> AllQueries() {
  std::vector<std::string> queries;
  for (const bench::QuerySet& set : GetFixture()->universe.query_sets) {
    queries.insert(queries.end(), set.queries.begin(), set.queries.end());
  }
  return queries;
}

// Supersession in place: translate the new spec, swap the prefilter entry
// copy-on-write, move the old version (projections included) to history.
void BM_Replace(benchmark::State& state) {
  LifecycleFixture* f = GetFixture();
  size_t i = 0;
  for (auto _ : state) {
    const uint32_t id = f->live[i % f->live.size()];
    auto r = f->universe.db->Replace(id, f->specs[i % f->specs.size()]);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Replace);

// Full churn cycle: retire a live contract (its slot becomes a hole) and
// register a fresh one, keeping the live set size constant.
void BM_UnregisterRegister(benchmark::State& state) {
  LifecycleFixture* f = GetFixture();
  size_t i = 0;
  for (auto _ : state) {
    const uint32_t victim = f->live[i % f->live.size()];
    auto gone = f->universe.db->Unregister(victim);
    if (!gone.ok()) state.SkipWithError(gone.status().ToString().c_str());
    auto fresh = f->universe.db->Register(
        "churn-" + std::to_string(f->next_name++),
        f->specs[i % f->specs.size()]);
    if (!fresh.ok()) state.SkipWithError(fresh.status().ToString().c_str());
    f->live[i % f->live.size()] = *fresh;
    benchmark::DoNotOptimize(fresh);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnregisterRegister);

void EvaluateQueries(benchmark::State& state, uint64_t as_of) {
  LifecycleFixture* f = GetFixture();
  const std::vector<std::string> queries = AllQueries();
  broker::QueryOptions options = bench::OptimizedOptions();
  options.as_of = as_of;
  for (auto _ : state) {
    for (const std::string& q : queries) {
      auto r = f->universe.db->Query(q, options);
      if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
      benchmark::DoNotOptimize(r);
    }
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
}

// The baseline: the prefiltered, projected latest-snapshot path.
void BM_QueryLatest(benchmark::State& state) { EvaluateQueries(state, 0); }
BENCHMARK(BM_QueryLatest);

// Historical full scan at the mid-churn clock: roughly half the contracts
// resolve from the history store, half from the live table.
void BM_QueryAsOf_MidChurn(benchmark::State& state) {
  EvaluateQueries(state, GetFixture()->mid_churn_clock);
}
BENCHMARK(BM_QueryAsOf_MidChurn);

// Historical full scan at the pre-churn clock: every contract resolves
// from the deepest history version (the original registrations).
void BM_QueryAsOf_PreChurn(benchmark::State& state) {
  EvaluateQueries(state, GetFixture()->pre_churn_clock);
}
BENCHMARK(BM_QueryAsOf_PreChurn);

}  // namespace
