// Ablation A1 (DESIGN.md): contribution of each optimization technique.
// Rows: none / prefilter only / bisimulation only / both / both + seeds off /
// SCC product checker instead of Algorithm 2.

#include <cstdio>
#include <thread>

#include "bench_common.h"

int main() {
  using namespace ctdb;
  const double scale = bench::Scale();
  const size_t db_size =
      std::max<size_t>(5, static_cast<size_t>(1000 * scale));
  const size_t queries_per_level =
      std::max<size_t>(3, static_cast<size_t>(100 * scale));

  bench::Universe u = bench::BuildUniverse(db_size, 5, queries_per_level,
                                           broker::DatabaseOptions{}, 0xAB1A);

  struct Config {
    const char* name;
    broker::QueryOptions options;
  };
  broker::QueryOptions none = bench::UnoptimizedOptions();
  broker::QueryOptions prefilter_only = bench::UnoptimizedOptions();
  prefilter_only.use_prefilter = true;
  broker::QueryOptions bisim_only = bench::UnoptimizedOptions();
  bisim_only.use_projections = true;
  broker::QueryOptions both = bench::OptimizedOptions();
  broker::QueryOptions both_no_seeds = bench::OptimizedOptions();
  both_no_seeds.permission.use_seeds = false;
  broker::QueryOptions scc = bench::OptimizedOptions();
  scc.permission.algorithm = core::PermissionAlgorithm::kScc;
  broker::QueryOptions parallel = bench::OptimizedOptions();
  parallel.threads = 4;
  broker::QueryOptions parallel_scan = bench::UnoptimizedOptions();
  parallel_scan.threads = 4;

  const Config configs[] = {
      {"unoptimized (scan)", none},
      {"scan, 4 threads", parallel_scan},
      {"prefilter only", prefilter_only},
      {"bisimulation only", bisim_only},
      {"prefilter + bisim", both},
      {"both, seeds off", both_no_seeds},
      {"both, SCC checker", scc},
      {"both, 4 threads", parallel},
  };

  bench::PrintHeader("Ablation — optimization contributions (db=" +
                     std::to_string(db_size) + ")");
  std::printf("%-22s | %12s %12s | %12s %10s\n", "configuration",
              "avg ms", "sd ms", "cand./query", "matches");
  bench::PrintRule();
  std::vector<std::string> all_queries;
  for (const auto& set : u.query_sets) {
    all_queries.insert(all_queries.end(), set.queries.begin(),
                       set.queries.end());
  }
  for (const Config& config : configs) {
    const bench::EvalResult r =
        bench::EvaluateAll(u.db.get(), all_queries, config.options);
    std::printf("%-22s | %12.3f %12.3f | %12.1f %10.1f\n", config.name,
                r.total_ms.mean(), r.total_ms.stddev(), r.candidates.mean(),
                r.matches.mean());
  }
  bench::PrintRule();
  std::printf(
      "Expectation: each technique alone beats the scan; combined beats "
      "either;\nmatch counts identical across every row (correctness). "
      "Threaded rows only\nimprove wall-clock when the host has multiple "
      "cores (this host: %u).\n",
      std::thread::hardware_concurrency());
  bench::WriteMetricsSnapshot("ablation_opts");
  return 0;
}
