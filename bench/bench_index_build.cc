// Reproduces the §7.4 "Index building and size" measurements:
//   * prefilter index — total build time, average insertion time, size
//     (paper: < 25 min for 3000 contracts, ~500 ms/insert, ~10 MB);
//   * simplified-BA precomputation — average insertion time, distinct
//     partition ratio (paper: ~5% of subsets), storage relative to the
//     contract database (paper: ~80% extra, 112 MB total at 3000 contracts).

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "workload/generator.h"

int main() {
  using namespace ctdb;
  const double scale = bench::Scale();
  const size_t contracts =
      std::max<size_t>(5, static_cast<size_t>(3000 * scale));

  bench::PrintHeader("§7.4 — index building and size (contracts=" +
                     std::to_string(contracts) + ")");

  broker::ContractDatabase db;
  workload::GeneratorOptions gen_options;
  gen_options.properties = 5;
  workload::SpecGenerator generator(gen_options, 0x1DB, db.vocabulary(),
                                    db.factory());

  RunningStats translate_ms;
  RunningStats prefilter_ms;
  RunningStats projection_ms;
  RunningStats subset_ratio;
  size_t total_subsets = 0;
  size_t total_distinct = 0;
  Timer total;
  for (size_t i = 0; i < contracts; ++i) {
    auto spec = generator.Next();
    if (!spec.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   spec.status().ToString().c_str());
      return 1;
    }
    broker::RegistrationStats stats;
    auto id = db.RegisterFormula("c" + std::to_string(i), spec->formula,
                                 spec->text, &stats);
    if (!id.ok()) {
      std::fprintf(stderr, "registration failed\n");
      return 1;
    }
    translate_ms.Add(stats.translate_ms);
    prefilter_ms.Add(stats.prefilter_insert_ms);
    projection_ms.Add(stats.projection_precompute_ms);
    total_subsets += stats.projection_subsets;
    total_distinct += stats.projection_distinct;
    if (stats.projection_subsets > 0) {
      subset_ratio.Add(static_cast<double>(stats.projection_distinct) /
                       static_cast<double>(stats.projection_subsets));
    }
  }
  const double total_s = total.ElapsedSeconds();

  const auto prefilter_stats = db.prefilter().Stats();
  std::printf("total registration time          : %.2f s\n", total_s);
  std::printf("LTL→BA translation               : %s\n",
              translate_ms.ToString().c_str());
  std::printf("prefilter insertion (ms)         : %s\n",
              prefilter_ms.ToString().c_str());
  std::printf("prefilter index nodes            : %zu\n",
              prefilter_stats.node_count);
  std::printf("prefilter index size             : %s   (paper: ~10 MB at "
              "3000 contracts)\n",
              HumanBytes(prefilter_stats.memory_bytes).c_str());
  std::printf("projection precompute (ms)       : %s   (paper: 42 s/contract "
              "avg with full literal subsets)\n",
              projection_ms.ToString().c_str());
  std::printf("distinct partitions / subsets    : %.1f%%   (paper: ~5%%)\n",
              100.0 * static_cast<double>(total_distinct) /
                  static_cast<double>(total_subsets));
  std::printf("contract BA storage              : %s\n",
              HumanBytes(db.ContractMemoryUsage()).c_str());
  std::printf("projection (partition) storage   : %s   (paper: simplified "
              "BAs ≈ 80%% of DB size)\n",
              HumanBytes(db.ProjectionMemoryUsage()).c_str());
  bench::WriteMetricsSnapshot("index_build");
  return 0;
}
