// Shared infrastructure for the paper-reproduction benchmarks.
//
// Every bench binary regenerates one table or figure of Section 7. Dataset
// sizes default to a scaled-down copy of the paper's (Table 2) so the whole
// bench suite completes in CI time; set CTDB_BENCH_SCALE=paper (or a numeric
// factor, e.g. 0.5) to run larger instances.

#pragma once

#include <string>
#include <vector>

#include "broker/database.h"
#include "util/stats.h"
#include "workload/generator.h"
#include "workload/spec.h"

namespace ctdb::bench {

/// Scale factor from CTDB_BENCH_SCALE ("paper" → 1.0, numeric string → its
/// value, unset/invalid → kDefaultScale).
double Scale();
inline constexpr double kDefaultScale = 0.05;

/// The pinned dataset seed shared by every bench binary: CTDB_BENCH_SEED
/// when set (decimal or 0x-prefixed hex, strtoull base 0), else 0xC7DB.
/// Printed to stderr once per process, so any recorded run documents the
/// dataset it measured — recorded numbers are only comparable across runs
/// that print the same seed.
uint64_t DefaultSeed();

/// A query workload: LTL text plus the complexity level it was drawn from.
struct QuerySet {
  std::string level;             ///< "simple" / "medium" / "complex"
  size_t patterns = 0;           ///< 1 / 2 / 3
  std::vector<std::string> queries;
};

/// A fully generated benchmark universe: one broker database filled with
/// contracts plus the three query workloads, sharing one vocabulary.
struct Universe {
  std::unique_ptr<broker::ContractDatabase> db;
  std::vector<QuerySet> query_sets;
  double build_seconds = 0;
};

/// Builds a universe with `contracts` contracts of `patterns` clauses each
/// and `queries_per_level` queries per complexity level. Seed 0 (the
/// default) means DefaultSeed() — pass an explicit nonzero seed only when a
/// bench deliberately measures a different dataset.
Universe BuildUniverse(size_t contracts, size_t contract_patterns,
                       size_t queries_per_level,
                       const broker::DatabaseOptions& options = {},
                       uint64_t seed = 0);

/// Generates query texts only (against an existing database's vocabulary).
QuerySet GenerateQueries(broker::ContractDatabase* db, const char* level,
                         size_t patterns, size_t count, uint64_t seed);

/// Evaluates every query of `set` and accumulates per-query total times (ms)
/// and speedup inputs. Aborts the process on query errors (bench data is
/// generated, so errors are bugs).
struct EvalResult {
  RunningStats total_ms;
  RunningStats candidates;
  RunningStats matches;
};
EvalResult EvaluateAll(broker::ContractDatabase* db,
                       const std::vector<std::string>& queries,
                       const broker::QueryOptions& options);

/// The paper's unoptimized configuration (§3: full scan, no projections).
broker::QueryOptions UnoptimizedOptions();
/// The paper's optimized configuration (§7: prefilter + bisimulation).
broker::QueryOptions OptimizedOptions();

/// Prints a header / row with aligned columns.
void PrintHeader(const std::string& title);
void PrintRule();

/// Dumps the process metrics registry (obs/metrics.h) as JSON to
/// BENCH_<name>.metrics.json — in CTDB_BENCH_METRICS_DIR when set, else the
/// current directory — so every bench run ships the pipeline-layer telemetry
/// (translate.*, prefilter.*, permission.*, projection.*, threadpool.*,
/// broker.*) next to its results. A leading "bench_" in `name` is stripped.
/// Warns instead of failing on I/O errors; with observability compiled out
/// or disabled the file holds an empty registry.
void WriteMetricsSnapshot(std::string name);

}  // namespace ctdb::bench
