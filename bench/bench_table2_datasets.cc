// Reproduces Table 2: statistics of the six generated datasets (number of
// specifications, LTL patterns per specification, BA states and transitions,
// mean ± stddev). Paper-reported values are printed alongside for shape
// comparison; exact values differ because the translator is not LTL2BA.

#include <cstdio>

#include "bench_common.h"
#include "util/stats.h"
#include "workload/spec.h"

namespace {

struct PaperRow {
  double states_avg, states_sd, trans_avg, trans_sd;
};

// Table 2 of the paper, in dataset order.
const PaperRow kPaperRows[6] = {
    {31.00, 34.73, 628.71, 1253.37},  // Simple contracts
    {41.82, 43.23, 964.69, 1628.66},  // Medium contracts
    {50.85, 47.5, 1291.63, 1904.82},  // Complex contracts
    {2.31, 1.41, 5.2, 5.4},           // Simple queries
    {5.44, 4.81, 23.86, 33.18},       // Medium queries
    {9.6, 11.11, 92.84, 203.42},      // Complex queries
};

}  // namespace

int main() {
  using namespace ctdb;
  const double scale = bench::Scale();
  bench::PrintHeader("Table 2 — dataset statistics (scale=" +
                     std::to_string(scale) + ")");

  std::printf("%-18s %6s %5s | %10s %10s %12s %12s | %s\n", "dataset", "size",
              "#LTL", "states avg", "states sd", "trans avg", "trans sd",
              "paper (st avg/sd, tr avg/sd)");
  bench::PrintRule();

  Vocabulary vocab;
  ltl::FormulaFactory factory;
  const auto datasets = workload::ScaledDatasets(scale);
  for (size_t d = 0; d < datasets.size(); ++d) {
    const auto& spec = datasets[d];
    auto generated =
        workload::GenerateDataset(spec, &vocab, &factory);
    if (!generated.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    RunningStats states;
    RunningStats transitions;
    for (const auto& g : *generated) {
      states.Add(static_cast<double>(g.automaton.StateCount()));
      transitions.Add(static_cast<double>(g.automaton.TransitionCount()));
    }
    const PaperRow& paper = kPaperRows[d];
    std::printf(
        "%-18s %6zu %5zu | %10.2f %10.2f %12.2f %12.2f | %.1f/%.1f %.1f/%.1f\n",
        spec.name.c_str(), spec.size, spec.patterns, states.mean(),
        states.stddev(), transitions.mean(), transitions.stddev(),
        paper.states_avg, paper.states_sd, paper.trans_avg, paper.trans_sd);
  }
  bench::PrintRule();
  std::printf(
      "Shape check: states and transitions must grow with pattern count, and\n"
      "queries must be an order of magnitude smaller than contracts.\n");
  bench::WriteMetricsSnapshot("table2_datasets");
  return 0;
}
