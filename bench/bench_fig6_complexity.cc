// Reproduces Figure 6: average speedup (optimized vs. unoptimized) and its
// standard deviation for every combination of contract complexity
// (simple/medium/complex = 5/6/7 patterns, database of 1000) and query
// complexity (simple/medium/complex = 1/2/3 patterns, 100 queries).
//
// Paper shape: speedups grow with contract complexity (the bisimulation
// projections discard more of a bigger contract) and shrink with query
// complexity (more query variables defeat the most aggressive projections).

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ctdb;
  const double scale = bench::Scale();
  const size_t db_size =
      std::max<size_t>(3, static_cast<size_t>(1000 * scale));
  const size_t queries_per_level =
      std::max<size_t>(3, static_cast<size_t>(100 * scale));

  bench::PrintHeader("Figure 6 — speedup vs contract × query complexity "
                     "(db size=" + std::to_string(db_size) + ")");
  std::printf("%-18s | %-22s | %9s %9s | %12s %12s\n", "contracts", "queries",
              "speedup", "sd", "scan ms", "opt ms");
  bench::PrintRule();

  const struct {
    const char* name;
    size_t patterns;
  } contract_levels[] = {{"Simple (5)", 5}, {"Medium (6)", 6},
                         {"Complex (7)", 7}};

  for (const auto& level : contract_levels) {
    bench::Universe u = bench::BuildUniverse(db_size, level.patterns,
                                             queries_per_level,
                                             broker::DatabaseOptions{},
                                             0xF16'0000 + level.patterns);
    for (const auto& set : u.query_sets) {
      RunningStats speedup;
      RunningStats scan_ms;
      RunningStats opt_ms;
      for (const std::string& q : set.queries) {
        auto opt = u.db->Query(q, bench::OptimizedOptions());
        auto scan = u.db->Query(q, bench::UnoptimizedOptions());
        if (!opt.ok() || !scan.ok()) {
          std::fprintf(stderr, "query failed\n");
          return 1;
        }
        scan_ms.Add(scan->stats.total_ms);
        opt_ms.Add(opt->stats.total_ms);
        if (opt->stats.total_ms > 0) {
          speedup.Add(scan->stats.total_ms / opt->stats.total_ms);
        }
      }
      std::printf("%-18s | %-22s | %9.1f %9.1f | %12.3f %12.3f\n", level.name,
                  (set.level + " (" + std::to_string(set.patterns) + ")")
                      .c_str(),
                  speedup.mean(), speedup.stddev(), scan_ms.mean(),
                  opt_ms.mean());
    }
  }
  bench::PrintRule();
  std::printf(
      "Shape check: speedup increases down the contract axis and decreases\n"
      "along the query axis (paper Figure 6).\n");
  bench::WriteMetricsSnapshot("fig6_complexity");
  return 0;
}
