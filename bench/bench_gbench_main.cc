// Custom google-benchmark main for the ctdb gbench targets: runs the
// registered benchmarks, then dumps the process metrics registry
// (BENCH_<binary>.metrics.json) so every bench run ships the pipeline-layer
// telemetry gathered while it executed.

#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::string name = argv[0];
  const size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name.erase(0, slash + 1);
  ctdb::bench::WriteMetricsSnapshot(std::move(name));
  return 0;
}
