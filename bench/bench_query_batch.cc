// Executor benchmarks: per-call thread spawning vs. the shared
// work-stealing pool, and per-call Query vs. the batched QueryBatch API.
//
// Three layers are measured on one generated universe:
//  * dispatch cost alone — spawning N std::threads per call (what the
//    broker used to do) against ThreadPool::ParallelFor on a warm pool;
//  * query throughput — serial Query, pooled Query (threads = N), and
//    QueryBatch over the whole workload (amortizing dispatch and sharing
//    quotient caches across queries);
//  * batch scaling across thread counts.

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "util/thread_pool.h"

namespace {

using namespace ctdb;

bench::Universe* SharedUniverse() {
  static bench::Universe* universe = [] {
    const double scale = bench::Scale();
    const size_t contracts =
        std::max<size_t>(16, static_cast<size_t>(400 * scale));
    const size_t queries = std::max<size_t>(6, static_cast<size_t>(60 * scale));
    auto* u = new bench::Universe(
        bench::BuildUniverse(contracts, 3, queries));
    return u;
  }();
  return universe;
}

std::vector<std::string> AllQueries() {
  std::vector<std::string> queries;
  for (const bench::QuerySet& set : SharedUniverse()->query_sets) {
    queries.insert(queries.end(), set.queries.begin(), set.queries.end());
  }
  return queries;
}

constexpr size_t kDispatchTasks = 64;

// The old broker behavior: spawn + join raw threads on every call.
void BM_Dispatch_PerCallThreads(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  std::atomic<size_t> sink{0};
  for (auto _ : state) {
    std::vector<std::thread> workers;
    for (size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (size_t i = t; i < kDispatchTasks; i += threads) {
          sink.fetch_add(i, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * kDispatchTasks);
}
BENCHMARK(BM_Dispatch_PerCallThreads)->Arg(2)->Arg(4);

// The new behavior: one warm pool reused across calls.
void BM_Dispatch_Pooled(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  util::ThreadPool pool(threads - 1);  // the caller participates
  std::atomic<size_t> sink{0};
  for (auto _ : state) {
    const Status status =
        pool.ParallelFor(0, kDispatchTasks, [&](size_t i) -> Status {
          sink.fetch_add(i, std::memory_order_relaxed);
          return Status::OK();
        });
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * kDispatchTasks);
}
BENCHMARK(BM_Dispatch_Pooled)->Arg(2)->Arg(4);

void EvaluatePerCall(benchmark::State& state, size_t threads) {
  bench::Universe* universe = SharedUniverse();
  const std::vector<std::string> queries = AllQueries();
  broker::QueryOptions options;
  options.threads = threads;
  for (auto _ : state) {
    for (const std::string& q : queries) {
      auto r = universe->db->Query(q, options);
      if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
      benchmark::DoNotOptimize(r);
    }
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
}

void BM_Query_Serial(benchmark::State& state) { EvaluatePerCall(state, 1); }
BENCHMARK(BM_Query_Serial);

void BM_Query_Pooled(benchmark::State& state) {
  EvaluatePerCall(state, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_Query_Pooled)->Arg(2)->Arg(4);

void BM_QueryBatch(benchmark::State& state) {
  bench::Universe* universe = SharedUniverse();
  const std::vector<std::string> queries = AllQueries();
  broker::QueryOptions options;
  options.threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto r = universe->db->QueryBatch(queries, options);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
}
BENCHMARK(BM_QueryBatch)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
