// Micro-benchmarks for the prefiltering index: insertion, S(λ) lookups at
// and above the depth cap, pruning-condition extraction and full condition
// evaluation.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "index/prefilter.h"
#include "index/pruning.h"
#include "workload/generator.h"

namespace {

using namespace ctdb;

struct IndexFixture {
  Vocabulary vocab;
  ltl::FormulaFactory factory;
  index::PrefilterIndex index;
  std::vector<workload::GeneratedSpec> contracts;
  std::vector<workload::GeneratedSpec> queries;

  IndexFixture() {
    workload::GeneratorOptions options;
    options.properties = 5;
    workload::SpecGenerator gen(options, 0x1DEC5, &vocab, &factory);
    for (uint32_t i = 0; i < 100; ++i) {
      auto spec = gen.Next();
      Bitset events;
      spec->formula->CollectEvents(&events);
      index.Insert(i, spec->automaton, events);
      contracts.push_back(std::move(*spec));
    }
    options.properties = 2;
    workload::SpecGenerator qgen(options, 0x1DEC6, &vocab, &factory);
    for (int i = 0; i < 32; ++i) {
      auto spec = qgen.Next();
      queries.push_back(std::move(*spec));
    }
  }
};

IndexFixture* GetFixture() {
  static IndexFixture* fixture = new IndexFixture();
  return fixture;
}

void BM_Insert(benchmark::State& state) {
  IndexFixture* f = GetFixture();
  size_t i = 0;
  for (auto _ : state) {
    index::PrefilterIndex fresh;
    const auto& spec = f->contracts[i % f->contracts.size()];
    Bitset events;
    spec.formula->CollectEvents(&events);
    fresh.Insert(0, spec.automaton, events);
    benchmark::DoNotOptimize(fresh);
    ++i;
  }
}
BENCHMARK(BM_Insert);

void BM_LookupSingleLiteral(benchmark::State& state) {
  IndexFixture* f = GetFixture();
  Label label;
  label.AddPositive(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f->index.Lookup(label));
  }
}
BENCHMARK(BM_LookupSingleLiteral);

void BM_LookupBeyondDepth(benchmark::State& state) {
  IndexFixture* f = GetFixture();
  Label label;  // 4 literals > default depth 2: S'(λ) intersection path.
  label.AddPositive(1);
  label.AddNegative(2);
  label.AddPositive(5);
  label.AddNegative(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f->index.Lookup(label));
  }
}
BENCHMARK(BM_LookupBeyondDepth);

void BM_ExtractPruningCondition(benchmark::State& state) {
  IndexFixture* f = GetFixture();
  size_t i = 0;
  for (auto _ : state) {
    const auto& query = f->queries[i % f->queries.size()];
    benchmark::DoNotOptimize(
        index::ExtractPruningCondition(query.automaton));
    ++i;
  }
}
BENCHMARK(BM_ExtractPruningCondition);

void BM_ConditionEvaluate(benchmark::State& state) {
  IndexFixture* f = GetFixture();
  std::vector<index::Condition> conditions;
  for (const auto& query : f->queries) {
    conditions.push_back(index::ExtractPruningCondition(query.automaton));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        conditions[i % conditions.size()].Evaluate(f->index));
    ++i;
  }
}
BENCHMARK(BM_ConditionEvaluate);

}  // namespace
