// ctdb_server: the contract database as a long-running network service.
//
// Opens (or recovers) a broker::DurableDatabase in --dir — or, with
// --shards=N, a shard::ShardedDatabase partitioned across N durable shard
// directories (DESIGN.md §13) — and serves the wire protocol of
// net/protocol.h on --host:--port until SIGTERM/SIGINT,
// then drains gracefully: stop accepting, finish in-flight requests (their
// WAL group flushes as they complete), flush responses, close, and write
// the final metrics snapshot to --metrics-out.
//
//   ctdb_server --dir=/var/lib/ctdb --port=7421 --workers=8
//
// The bound address is printed as the first stdout line
// ("listening on <host>:<port>") so scripts can scrape an ephemeral port.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "broker/broker.h"
#include "broker/durable.h"
#include "net/server.h"
#include "shard/sharded.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace {

ctdb::net::Server* g_server = nullptr;

extern "C" void HandleShutdownSignal(int) {
  // RequestDrain is async-signal-safe: an atomic store + one write(2).
  if (g_server != nullptr) g_server->RequestDrain();
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --dir=PATH [--host=127.0.0.1] [--port=0]\n"
      "          [--workers=4] [--db-threads=1] [--max-pending=256]\n"
      "          [--max-connections=1024] [--fsync=group|always|never]\n"
      "          [--checkpoint-log-bytes=N] [--metrics-out=PATH]\n"
      "          [--shards=N]  (0 adopts the directory's manifest)\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  ctdb::net::ServerOptions server_options;
  ctdb::wal::DurabilityOptions durability;
  ctdb::broker::DatabaseOptions db_options;
  std::string metrics_out;
  bool sharded = false;
  std::string value;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (ParseFlag(arg, "--dir", &value)) {
      dir = value;
    } else if (ParseFlag(arg, "--host", &value)) {
      server_options.host = value;
    } else if (ParseFlag(arg, "--port", &value)) {
      server_options.port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "--workers", &value)) {
      server_options.workers = static_cast<size_t>(std::atol(value.c_str()));
    } else if (ParseFlag(arg, "--db-threads", &value)) {
      db_options.threads = static_cast<size_t>(std::atol(value.c_str()));
    } else if (ParseFlag(arg, "--max-pending", &value)) {
      server_options.max_pending =
          static_cast<size_t>(std::atol(value.c_str()));
    } else if (ParseFlag(arg, "--max-connections", &value)) {
      server_options.max_connections =
          static_cast<size_t>(std::atol(value.c_str()));
    } else if (ParseFlag(arg, "--fsync", &value)) {
      if (value == "always") {
        durability.fsync_policy = ctdb::wal::FsyncPolicy::kAlways;
      } else if (value == "group") {
        durability.fsync_policy = ctdb::wal::FsyncPolicy::kGroup;
      } else if (value == "never") {
        durability.fsync_policy = ctdb::wal::FsyncPolicy::kNever;
      } else {
        return Usage(argv[0]);
      }
    } else if (ParseFlag(arg, "--checkpoint-log-bytes", &value)) {
      durability.checkpoint_log_bytes =
          static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "--shards", &value)) {
      db_options.shards = static_cast<size_t>(std::atol(value.c_str()));
      sharded = true;
    } else if (ParseFlag(arg, "--metrics-out", &value)) {
      metrics_out = value;
    } else {
      return Usage(argv[0]);
    }
  }
  if (dir.empty()) return Usage(argv[0]);

  // A --shards flag (even --shards=1) selects the sharded topology; without
  // it the directory is a plain single-WAL DurableDatabase, as before.
  std::unique_ptr<ctdb::broker::Broker> db;
  if (sharded) {
    auto opened = ctdb::shard::ShardedDatabase::Open(dir, durability,
                                                     db_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "open %s: %s\n", dir.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "recovered %zu contracts from %zu shards in %s\n",
                 (*opened)->size(), (*opened)->shard_count(), dir.c_str());
    db = std::move(*opened);
  } else {
    auto opened = ctdb::broker::DurableDatabase::Open(dir, durability,
                                                      db_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "open %s: %s\n", dir.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "recovered %zu contracts from %s\n",
                 (*opened)->size(), dir.c_str());
    db = std::move(*opened);
  }

  auto server = ctdb::net::Server::Start(db.get(), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "start: %s\n", server.status().ToString().c_str());
    return 1;
  }
  g_server = server->get();

  struct sigaction action {};
  action.sa_handler = HandleShutdownSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  std::printf("listening on %s:%u\n", server_options.host.c_str(),
              (*server)->port());
  std::fflush(stdout);

  while (!(*server)->draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "draining (%zu pending, %zu connections)\n",
               (*server)->pending_requests(), (*server)->connection_count());
  (*server)->Shutdown();
  g_server = nullptr;

  const ctdb::Status close_status = db->Close();
  if (!close_status.ok()) {
    std::fprintf(stderr, "close: %s\n", close_status.ToString().c_str());
  }

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    out << ctdb::obs::MetricsRegistry::Default()->Snapshot().ToJson() << "\n";
    if (!out) {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   metrics_out.c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "shut down cleanly with %zu contracts\n", db->size());
  return close_status.ok() ? 0 : 1;
}
