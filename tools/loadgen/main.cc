// loadgen: closed-loop and open-loop load generator for ctdb_server.
//
// Replays src/workload generator traffic (Dwyer-pattern contracts and
// queries over the shared p1..pN vocabulary) against a running server:
//
//   1. Priming: register one contract citing every vocabulary event, so
//      generated queries never trip the unknown-event check, then register
//      --contracts generated contracts in batches.
//   2. Load: --connections worker threads, each with its own connection
//      and its own seeded generator, issue a Register/Query/QueryBatch mix
//      until --duration-s elapses. Closed loop (--qps=0) sends
//      back-to-back; open loop paces sends at --qps across all
//      connections and measures latency from the *scheduled* send time,
//      so queueing delay is charged to the server (no coordinated
//      omission).
//   3. Report: p50/p99/p999/mean/max from the client-side obs histogram
//      (loadgen.request_us), outcome counters, and the server's own
//      metrics snapshot fetched with a Stats request, emitted as one JSON
//      object on stdout (and --metrics-out when given).
//
// Unavailable responses are the server load-shedding as designed — they
// are counted separately and are not errors. Protocol errors (frames that
// fail to decode, unexpected closes) fail the run's health check in CI.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/vocabulary.h"
#include "ltl/formula.h"
#include "monitor/types.h"
#include "net/client.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/generator.h"

namespace {

using ctdb::net::Client;
using ctdb::net::Request;
using ctdb::net::Response;

struct Options {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t connections = 8;
  double duration_s = 10;
  double qps = 0;  ///< 0 = closed loop
  size_t contracts = 50;
  size_t vocabulary = 20;
  size_t query_properties = 2;
  /// Operation mix in percent; the remainder is single queries.
  size_t register_pct = 10;
  size_t query_batch_pct = 20;
  /// Lifecycle band: half Unregister, half Replace, targeting contracts
  /// this worker registered itself (so the target is reliably live). When
  /// non-zero, a quarter of single queries also time-travel (random as_of
  /// up to the latest lifecycle clock the worker observed).
  size_t lifecycle_pct = 0;
  /// Stream band: each worker keeps one monitor stream open ("lg-stream-N")
  /// and spends this share of its operations appending random event batches
  /// to it (occasionally closing and reopening, so the server's open/close
  /// paths stay hot). Streams are closed at the end of the run.
  size_t stream_pct = 0;
  size_t batch_size = 4;
  uint64_t seed = 0xC7DB;
  std::string metrics_out;
};

struct Tally {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> unavailable{0};
  std::atomic<uint64_t> errors{0};           ///< non-OK, non-Unavailable
  std::atomic<uint64_t> protocol_errors{0};  ///< transport/decode failures
  std::atomic<uint64_t> stream_events{0};    ///< events appended to streams
  std::atomic<uint64_t> stream_verdicts{0};  ///< verdict deltas received
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port=PORT [--host=127.0.0.1] [--connections=8]\n"
      "          [--duration-s=10] [--qps=0 (closed loop)] [--contracts=50]\n"
      "          [--register-pct=10] [--query-batch-pct=20] [--seed=N]\n"
      "          [--lifecycle-mix[=PCT]] [--stream-mix[=PCT]]\n"
      "          [--metrics-out=PATH]\n",
      argv0);
  return 2;
}

/// A per-thread pool of pre-generated traffic: generation is too slow (and
/// too lock-hungry) for the hot loop, so each worker cycles through its own
/// seeded pool.
struct Traffic {
  std::vector<std::string> queries;
  std::vector<std::string> contracts;
};

/// Generated once in main, before the measured window opens: spec
/// generation translates every draw (to reject degenerate ones), which is
/// far too slow for the hot loop — workers share this immutable pool and
/// pick from it with their own RNGs.
Traffic GenerateTraffic(const Options& options, uint64_t seed) {
  Traffic traffic;
  ctdb::Vocabulary vocab;
  ctdb::ltl::FormulaFactory factory;
  ctdb::workload::GeneratorOptions gen;
  gen.vocabulary_size = options.vocabulary;
  gen.properties = options.query_properties;
  ctdb::workload::SpecGenerator queries(gen, seed, &vocab, &factory);
  for (size_t i = 0; i < 128; ++i) {
    auto spec = queries.Next();
    if (spec.ok()) traffic.queries.push_back(spec->text);
  }
  gen.properties = 5;
  ctdb::workload::SpecGenerator contracts(gen, seed ^ 0x5eed, &vocab,
                                          &factory);
  for (size_t i = 0; i < 16; ++i) {
    auto spec = contracts.Next();
    if (spec.ok()) traffic.contracts.push_back(spec->text);
  }
  return traffic;
}

/// The priming contract's text: cites every event so any generated query
/// parses against the server's vocabulary.
std::string PrimingLtl(size_t vocabulary) {
  std::string text = "F (";
  for (size_t i = 1; i <= vocabulary; ++i) {
    if (i > 1) text += " | ";
    text += "p" + std::to_string(i);
  }
  text += ")";
  return text;
}

void RecordOutcome(const ctdb::Result<Response>& result, Tally* tally) {
  tally->requests.fetch_add(1, std::memory_order_relaxed);
  if (!result.ok()) {
    tally->protocol_errors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  switch (result->code) {
    case ctdb::StatusCode::kOk:
      tally->ok.fetch_add(1, std::memory_order_relaxed);
      break;
    case ctdb::StatusCode::kUnavailable:
      tally->unavailable.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      tally->errors.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

void Worker(const Options& options, const Traffic& traffic, size_t index,
            Tally* tally) {
  auto client = Client::Connect(options.host, options.port);
  if (!client.ok()) {
    std::fprintf(stderr, "worker %zu connect: %s\n", index,
                 client.status().ToString().c_str());
    tally->protocol_errors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ctdb::Rng rng(options.seed ^ (index * 0x9E3779B97F4A7C15ull | 1));

  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(options.duration_s));
  // Open loop: this worker owes one request every `interval`.
  const bool open_loop = options.qps > 0;
  const auto interval =
      open_loop ? std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(
                          static_cast<double>(options.connections) /
                          options.qps))
                : Clock::duration::zero();
  auto scheduled = Clock::now();
  uint64_t next_id = 1;
  uint64_t contract_serial = 0;
  // Lifecycle state: ids this worker registered (and has not unregistered)
  // and the latest system-period clock it observed in a lifecycle response.
  std::vector<uint32_t> owned;
  uint64_t max_clock = 0;
  // Stream state: one named monitor stream per worker.
  const std::string stream_name = ctdb::StringFormat("lg-stream-%zu", index);
  bool stream_open = false;
  auto random_batch = [&rng, &options]() {
    ctdb::monitor::EventBatch batch(1 + rng.Uniform(4));
    for (std::vector<std::string>& instant : batch) {
      const size_t events = rng.Uniform(4);
      for (size_t i = 0; i < events; ++i) {
        instant.push_back(
            "p" + std::to_string(1 + rng.Uniform(options.vocabulary)));
      }
    }
    return batch;
  };

  while (Clock::now() < deadline) {
    if (open_loop) {
      std::this_thread::sleep_until(scheduled);
    } else {
      scheduled = Clock::now();
    }

    Request request;
    bool track_register = false;
    uint64_t appended = 0;
    const size_t dice = rng.Uniform(100);
    const size_t lifecycle_band = options.register_pct + options.lifecycle_pct;
    const size_t stream_band = lifecycle_band + options.stream_pct;
    const bool want_register = dice < options.register_pct ||
                               (dice < lifecycle_band && owned.empty());
    if (want_register && !traffic.contracts.empty()) {
      const std::string& ltl =
          traffic.contracts[rng.Uniform(traffic.contracts.size())];
      request = Request::Register(
          next_id++,
          ctdb::StringFormat("lg-%zu-%llu", index,
                             static_cast<unsigned long long>(
                                 contract_serial++)),
          ltl);
      track_register = true;
    } else if (dice < lifecycle_band && !owned.empty()) {
      const size_t pick = rng.Uniform(owned.size());
      if (rng.Chance(0.5)) {
        request = Request::Unregister(next_id++, owned[pick]);
        owned.erase(owned.begin() + static_cast<ptrdiff_t>(pick));
      } else {
        request = Request::Replace(
            next_id++, owned[pick],
            traffic.contracts[rng.Uniform(traffic.contracts.size())]);
      }
    } else if (dice < stream_band) {
      if (!stream_open) {
        request = Request::StreamOpen(next_id++, stream_name);
      } else if (rng.Chance(0.05)) {
        // Occasionally cycle the stream so close/reopen stays exercised.
        request = Request::StreamClose(next_id++, stream_name);
      } else {
        ctdb::monitor::EventBatch batch = random_batch();
        appended = batch.size();
        request =
            Request::StreamAppend(next_id++, stream_name, std::move(batch));
      }
    } else if (dice < stream_band + options.query_batch_pct) {
      std::vector<std::string> batch;
      batch.reserve(options.batch_size);
      for (size_t i = 0; i < options.batch_size; ++i) {
        batch.push_back(traffic.queries[rng.Uniform(traffic.queries.size())]);
      }
      request = Request::QueryBatch(next_id++, std::move(batch));
    } else {
      uint64_t as_of = 0;
      if (options.lifecycle_pct > 0 && max_clock > 0 && rng.Chance(0.25)) {
        as_of = 1 + rng.Uniform(max_clock);
      }
      request = Request::Query(
          next_id++, traffic.queries[rng.Uniform(traffic.queries.size())],
          as_of);
    }

    const auto result = (*client)->Call(request);
    const auto latency = std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - scheduled);
    CTDB_OBS_HIST("loadgen.request_us",
                  static_cast<uint64_t>(latency.count()));
    RecordOutcome(result, tally);
    if (!result.ok()) return;  // transport broken; stop this worker
    if (result->status().ok()) {
      if (track_register && !result->ids.empty()) {
        owned.push_back(result->ids[0]);
      }
      if (result->request_kind == ctdb::net::MsgKind::kUnregister ||
          result->request_kind == ctdb::net::MsgKind::kReplace) {
        max_clock = std::max(max_clock, result->sequence);
      }
      switch (result->request_kind) {
        case ctdb::net::MsgKind::kStreamOpen:
          stream_open = true;
          break;
        case ctdb::net::MsgKind::kStreamClose:
          stream_open = false;
          break;
        case ctdb::net::MsgKind::kStreamAppend:
          tally->stream_events.fetch_add(appended, std::memory_order_relaxed);
          tally->stream_verdicts.fetch_add(result->verdicts.size(),
                                           std::memory_order_relaxed);
          break;
        default:
          break;
      }
    } else if (result->request_kind == ctdb::net::MsgKind::kStreamOpen &&
               result->code == ctdb::StatusCode::kAlreadyExists) {
      stream_open = true;  // a previous open's response was tallied as lost
    }

    if (open_loop) scheduled += interval;
  }

  // Leave no stream behind: the final summary also covers StreamClose when
  // the 5% in-loop close never fired.
  if (stream_open) {
    RecordOutcome((*client)->Call(Request::StreamClose(next_id++, stream_name)),
                  tally);
  }
}

/// Registers the priming contract and the pre-load contract set.
bool Prime(const Options& options, const Traffic& traffic) {
  auto client = Client::Connect(options.host, options.port);
  if (!client.ok()) {
    std::fprintf(stderr, "prime connect: %s\n",
                 client.status().ToString().c_str());
    return false;
  }
  auto primed = (*client)->Call(
      Request::Register(1, "loadgen-priming", PrimingLtl(options.vocabulary)));
  if (!primed.ok() || !primed->status().ok()) {
    std::fprintf(stderr, "priming registration failed: %s\n",
                 (primed.ok() ? primed->status() : primed.status())
                     .ToString()
                     .c_str());
    return false;
  }

  uint64_t id = 2;
  size_t registered = 0;
  while (registered < options.contracts) {
    std::vector<Request::Entry> batch;
    for (size_t i = 0; i < 16 && registered < options.contracts;
         ++i, ++registered) {
      const std::string& ltl =
          traffic.contracts.empty()
              ? PrimingLtl(options.vocabulary)
              : traffic.contracts[registered % traffic.contracts.size()];
      batch.push_back({ctdb::StringFormat("preload-%zu", registered), ltl});
    }
    auto result = (*client)->Call(Request::RegisterBatch(id++, std::move(batch)));
    if (!result.ok() || !result->status().ok()) {
      std::fprintf(stderr, "preload batch failed: %s\n",
                   (result.ok() ? result->status() : result.status())
                       .ToString()
                       .c_str());
      return false;
    }
  }
  return true;
}

std::string FetchServerMetrics(const Options& options) {
  auto client = Client::Connect(options.host, options.port);
  if (!client.ok()) return "{}";
  auto result = (*client)->Call(Request::Stats(1));
  if (!result.ok() || !result->status().ok() || result->stats_json.empty()) {
    return "{}";
  }
  return result->stats_json;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (ParseFlag(arg, "--host", &value)) {
      options.host = value;
    } else if (ParseFlag(arg, "--port", &value)) {
      options.port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "--connections", &value)) {
      options.connections = static_cast<size_t>(std::atol(value.c_str()));
    } else if (ParseFlag(arg, "--duration-s", &value)) {
      options.duration_s = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--qps", &value)) {
      options.qps = std::atof(value.c_str());
    } else if (ParseFlag(arg, "--contracts", &value)) {
      options.contracts = static_cast<size_t>(std::atol(value.c_str()));
    } else if (ParseFlag(arg, "--register-pct", &value)) {
      options.register_pct = static_cast<size_t>(std::atol(value.c_str()));
    } else if (ParseFlag(arg, "--query-batch-pct", &value)) {
      options.query_batch_pct = static_cast<size_t>(std::atol(value.c_str()));
    } else if (std::strcmp(arg, "--lifecycle-mix") == 0) {
      options.lifecycle_pct = 20;
    } else if (ParseFlag(arg, "--lifecycle-mix", &value)) {
      options.lifecycle_pct = static_cast<size_t>(std::atol(value.c_str()));
    } else if (std::strcmp(arg, "--stream-mix") == 0) {
      options.stream_pct = 20;
    } else if (ParseFlag(arg, "--stream-mix", &value)) {
      options.stream_pct = static_cast<size_t>(std::atol(value.c_str()));
    } else if (ParseFlag(arg, "--batch-size", &value)) {
      options.batch_size = static_cast<size_t>(std::atol(value.c_str()));
    } else if (ParseFlag(arg, "--seed", &value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(arg, "--metrics-out", &value)) {
      options.metrics_out = value;
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.port == 0 || options.connections == 0) return Usage(argv[0]);

  const Traffic traffic = GenerateTraffic(options, options.seed);
  if (traffic.queries.empty()) {
    std::fprintf(stderr, "traffic generation produced no queries\n");
    return 1;
  }
  if (!Prime(options, traffic)) return 1;

  Tally tally;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(options.connections);
  for (size_t i = 0; i < options.connections; ++i) {
    workers.emplace_back(Worker, std::cref(options), std::cref(traffic), i,
                         &tally);
  }
  for (std::thread& t : workers) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const std::string server_metrics = FetchServerMetrics(options);

  const auto snapshot = ctdb::obs::MetricsRegistry::Default()->Snapshot();
  const ctdb::obs::HistogramSnapshot* latency =
      snapshot.FindHistogram("loadgen.request_us");
  ctdb::obs::HistogramSnapshot empty;
  if (latency == nullptr) latency = &empty;

  const uint64_t requests = tally.requests.load();
  std::ostringstream out;
  out << "{\n"
      << "  \"mode\": \"" << (options.qps > 0 ? "open" : "closed") << "\",\n"
      << "  \"connections\": " << options.connections << ",\n"
      << "  \"duration_s\": " << elapsed << ",\n"
      << "  \"target_qps\": " << options.qps << ",\n"
      << "  \"requests\": " << requests << ",\n"
      << "  \"ok\": " << tally.ok.load() << ",\n"
      << "  \"unavailable\": " << tally.unavailable.load() << ",\n"
      << "  \"errors\": " << tally.errors.load() << ",\n"
      << "  \"protocol_errors\": " << tally.protocol_errors.load() << ",\n"
      << "  \"stream_events\": " << tally.stream_events.load() << ",\n"
      << "  \"stream_verdicts\": " << tally.stream_verdicts.load() << ",\n"
      << "  \"qps\": " << (elapsed > 0 ? requests / elapsed : 0) << ",\n"
      << "  \"latency_us\": {\n"
      << "    \"p50\": " << latency->PercentileUpperBound(0.5) << ",\n"
      << "    \"p99\": " << latency->PercentileUpperBound(0.99) << ",\n"
      << "    \"p999\": " << latency->PercentileUpperBound(0.999) << ",\n"
      << "    \"mean\": " << latency->mean() << ",\n"
      << "    \"max\": " << latency->max << "\n"
      << "  },\n"
      << "  \"server\": " << server_metrics << "\n"
      << "}\n";

  std::fputs(out.str().c_str(), stdout);
  if (!options.metrics_out.empty()) {
    std::ofstream file(options.metrics_out);
    file << out.str();
  }
  return tally.protocol_errors.load() == 0 ? 0 : 1;
}
