// libFuzzer harness for the WAL segment reader and record codec.
//
// Feeds arbitrary bytes to wal::ParseSegment. The reader must terminate
// with OK (possibly torn-tail-truncated) or Status::Corruption — never
// crash, overread, or allocate unboundedly (the kMaxRecordBytes cap is what
// keeps a hostile length prefix from turning into a giant allocation).
// Every record the reader accepts must re-encode and re-decode to itself
// (frame-level fixed point), and the declared valid_bytes prefix must
// reparse to exactly the same record list with no torn tail.
//
// Built with -fsanitize=fuzzer under Clang; elsewhere fuzz_driver_main.cc
// supplies a standalone corpus-replay main with the same CLI shape.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "wal/record.h"
#include "wal/segment.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace ctdb;
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  wal::ParsedSegment parsed;
  const Status status = wal::ParseSegment(bytes, &parsed);
  if (!status.ok()) {
    if (!status.IsCorruption()) {
      std::fprintf(stderr, "non-Corruption rejection: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
    return 0;  // rejected cleanly — fine
  }

  if (parsed.valid_bytes > size) {
    std::fprintf(stderr, "valid_bytes %zu exceeds input size %zu\n",
                 parsed.valid_bytes, size);
    std::abort();
  }

  // Accepted records must round-trip through the codec.
  for (const wal::Record& record : parsed.records) {
    const std::string frame = wal::EncodeFrame(record);
    size_t offset = 0;
    wal::Record again;
    const Status decode = wal::DecodeFrame(frame, &offset, &again);
    if (!decode.ok() || offset != frame.size() || !(again == record)) {
      std::fprintf(stderr, "accepted record does not round-trip: %s\n",
                   decode.ToString().c_str());
      std::abort();
    }
  }

  // The valid prefix is self-consistent: reparsing it yields the same
  // records and no torn tail.
  wal::ParsedSegment prefix;
  const Status again =
      wal::ParseSegment(bytes.substr(0, parsed.valid_bytes), &prefix);
  if (!again.ok() || prefix.torn_tail ||
      !(prefix.records == parsed.records) ||
      prefix.valid_bytes != parsed.valid_bytes) {
    std::fprintf(stderr, "valid_bytes prefix is not a fixed point: %s\n",
                 again.ToString().c_str());
    std::abort();
  }
  return 0;
}
