// libFuzzer harness for the Büchi-automaton text serializer.
//
// Feeds arbitrary bytes to automata::Deserialize. Malformed inputs must
// fail with a Status (the declared-state cap keeps "ba states=<huge>" from
// exhausting memory). Accepted automata must satisfy Validate() and reach a
// serialization fixed point: Serialize → Deserialize → Serialize must
// reproduce the first serialization byte-for-byte.
//
// Built with -fsanitize=fuzzer under Clang; elsewhere fuzz_driver_main.cc
// supplies a standalone corpus-replay main with the same CLI shape.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "automata/serialize.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace ctdb;
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  Vocabulary vocab;
  auto ba = automata::Deserialize(text, &vocab);
  if (!ba.ok()) return 0;  // rejected cleanly — fine

  Status valid = ba->Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "deserializer accepted an invalid automaton: %s\n",
                 valid.ToString().c_str());
    std::abort();
  }

  const std::string first = automata::Serialize(*ba, vocab);
  auto round = automata::Deserialize(first, &vocab);
  if (!round.ok()) {
    std::fprintf(stderr, "serialized form failed to reparse: %s\n%s\n",
                 round.status().ToString().c_str(), first.c_str());
    std::abort();
  }
  const std::string second = automata::Serialize(*round, vocab);
  if (first != second) {
    std::fprintf(stderr,
                 "serialization is not a fixed point:\n--- first ---\n%s\n"
                 "--- second ---\n%s\n",
                 first.c_str(), second.c_str());
    std::abort();
  }
  return 0;
}
