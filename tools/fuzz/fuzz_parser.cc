// libFuzzer harness for the LTL parser.
//
// Feeds arbitrary bytes to ltl::Parse. Malformed inputs must fail with a
// Status (never crash, hang, or overflow the stack — the max_depth guard is
// what keeps "((((..." safe). Well-formed inputs must round-trip: printing
// with minimal parentheses and reparsing into the same hash-consing factory
// must yield the very same node, which cross-checks the printer's
// precedence handling against the grammar.
//
// Built with -fsanitize=fuzzer under Clang; elsewhere fuzz_driver_main.cc
// supplies a standalone corpus-replay main with the same CLI shape.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "ltl/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace ctdb;
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  ltl::FormulaFactory factory;
  Vocabulary vocab;
  auto parsed = ltl::Parse(text, &factory, &vocab);
  if (!parsed.ok()) return 0;  // rejected cleanly — fine

  const std::string printed = (*parsed)->ToString(vocab);
  auto reparsed = ltl::Parse(printed, &factory, &vocab);
  if (!reparsed.ok()) {
    std::fprintf(stderr, "printed form failed to reparse: '%s': %s\n",
                 printed.c_str(), reparsed.status().ToString().c_str());
    std::abort();
  }
  if (*reparsed != *parsed) {
    std::fprintf(stderr,
                 "print/parse round-trip changed the formula:\n  '%s'\n  "
                 "reparsed as '%s'\n",
                 printed.c_str(), (*reparsed)->ToString(vocab).c_str());
    std::abort();
  }

  // Strict mode must accept exactly the already-interned events.
  auto strict = ltl::Parse(printed, &factory, &vocab,
                           {.require_known_events = true});
  if (!strict.ok() || *strict != *parsed) {
    std::fprintf(stderr, "strict reparse diverged for '%s'\n", printed.c_str());
    std::abort();
  }
  return 0;
}
