// libFuzzer harness for the streaming-monitor wire payloads (net/protocol.h
// kStreamOpen / kStreamAppend / kStreamClose).
//
// fuzz_protocol already attacks the whole codec; this harness concentrates
// coverage on the stream bodies — the only variable-depth nesting in the
// protocol (batch of instants, each a list of names, plus verdict lists in
// responses) — by steering every input toward them:
//
//  1. The raw bytes are decoded as-is (both directions), so cross-kind
//     confusion stays covered.
//  2. The kind byte is overwritten with one of the three stream kinds
//     (requests), and the request_kind byte with one of the three stream
//     kinds under a forced kResponse header (responses), so nearly every
//     mutation lands inside a stream body parser.
//
// Invariants: decode returns OK or Status::Corruption — never a crash,
// never another status — and any accepted payload is a round-trip fixed
// point (re-encode reproduces the bytes, re-decode the message). A verdict
// byte above 2 must be rejected as Corruption.
//
// Built with -fsanitize=fuzzer under Clang; elsewhere fuzz_driver_main.cc
// supplies a standalone corpus-replay main with the same CLI shape.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "net/protocol.h"

namespace {

using ctdb::Status;
using namespace ctdb::net;

void CheckRequestPayload(std::string_view payload) {
  Request request;
  const Status status = DecodeRequestPayload(payload, &request);
  if (!status.ok()) {
    if (!status.IsCorruption()) {
      std::fprintf(stderr, "request: non-Corruption rejection: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
    return;
  }
  const std::string encoded = EncodeRequestPayload(request);
  if (encoded != payload) {
    std::fprintf(stderr, "request: accepted payload is not a fixed point\n");
    std::abort();
  }
  Request again;
  if (!DecodeRequestPayload(encoded, &again).ok() || !(again == request)) {
    std::fprintf(stderr, "request: re-decode does not match\n");
    std::abort();
  }
}

void CheckResponsePayload(std::string_view payload) {
  Response response;
  const Status status = DecodeResponsePayload(payload, &response);
  if (!status.ok()) {
    if (!status.IsCorruption()) {
      std::fprintf(stderr, "response: non-Corruption rejection: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
    return;
  }
  for (const auto& v : response.verdicts) {
    if (static_cast<uint8_t>(v.verdict) > 2) {
      std::fprintf(stderr, "response: out-of-range verdict accepted\n");
      std::abort();
    }
  }
  const std::string encoded = EncodeResponsePayload(response);
  if (encoded != payload) {
    std::fprintf(stderr, "response: accepted payload is not a fixed point\n");
    std::abort();
  }
  Response again;
  if (!DecodeResponsePayload(encoded, &again).ok() || !(again == response)) {
    std::fprintf(stderr, "response: re-decode does not match\n");
    std::abort();
  }
}

uint8_t StreamKind(uint8_t steer) {
  return static_cast<uint8_t>(MsgKind::kStreamOpen) + steer % 3;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  // Unsteered pass: whatever kind the input claims to be.
  CheckRequestPayload(bytes);
  CheckResponsePayload(bytes);
  if (bytes.empty()) return 0;

  // Steered request: force the kind byte into the stream range so the
  // mutated tail lands in a stream body parser.
  std::string request(bytes);
  request[0] = static_cast<char>(StreamKind(static_cast<uint8_t>(bytes[0])));
  CheckRequestPayload(request);

  // Steered response: force the kResponse header and a stream request_kind
  // (payload := kind u8 · id u64 · request_kind u8 · ...).
  if (bytes.size() > 9) {
    std::string response(bytes);
    response[0] = static_cast<char>(MsgKind::kResponse);
    response[9] = static_cast<char>(StreamKind(static_cast<uint8_t>(bytes[9])));
    CheckResponsePayload(response);
  }
  return 0;
}
