// ctdb_diff_fuzz — seeded differential fuzzer for the full query pipeline.
//
// Each iteration builds a random contract database + query workload and
// cross-checks indexed vs. unindexed answers, QueryBatch vs. serial Query,
// threads=N vs. threads=1, persistence save/load round-trips, core::Permits
// vs. an independent product-automaton reference checker, and metamorphic
// LTL rewrites. With --lifecycle it instead fuzzes the contract lifecycle:
// random Register / Unregister / Replace streams whose QueryAsOf(s) answers
// are cross-checked against fresh databases built from the prefix at s
// (testing/differential.h, RunLifecycleDifferential). With --monitor it
// fuzzes the streaming compliance monitor: random event-pattern contracts
// driven over random traces, incremental stepper verdicts cross-checked
// against a naive set-based recomputation, batched vs. single appends,
// pruning on vs. off, and violated verdicts against ltl::Evaluate on random
// lasso extensions (RunMonitorDifferential). Any mismatch prints a single
// seed that reproduces it:
//
//   ctdb_diff_fuzz [--lifecycle|--monitor] --iters=1 --seed=<seed>
//
// Exit status: 0 when all checks agree, 1 on any mismatch, 2 on bad usage.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "testing/differential.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--iters=N] [--seed=S] [--contracts=N] "
               "[--contract-patterns=N]\n"
               "          [--queries=N] [--query-patterns=N] [--vocab=N] "
               "[--threads=N]\n"
               "          [--words-per-formula=N] [--max-mismatches=N]\n"
               "          [--lifecycle] [--mutations=N] [--sample-ticks=N]\n"
               "          [--monitor] [--batches=N] [--batch-events=N]\n",
               argv0);
}

bool ParseFlag(const char* arg, const char* name, uint64_t* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  char* end = nullptr;
  *out = std::strtoull(arg + len + 1, &end, 10);
  return end != arg + len + 1 && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  ctdb::testing::DiffOptions options;
  ctdb::testing::LifecycleDiffOptions lifecycle_options;
  ctdb::testing::MonitorDiffOptions monitor_options;
  bool lifecycle = false;
  bool monitor = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t value = 0;
    if (std::strcmp(arg, "--lifecycle") == 0) {
      lifecycle = true;
    } else if (std::strcmp(arg, "--monitor") == 0) {
      monitor = true;
    } else if (ParseFlag(arg, "--iters", &value)) {
      options.iters = value;
      lifecycle_options.iters = value;
      monitor_options.iters = value;
    } else if (ParseFlag(arg, "--seed", &value)) {
      options.seed = value;
      lifecycle_options.seed = value;
      monitor_options.seed = value;
    } else if (ParseFlag(arg, "--contracts", &value)) {
      options.contracts = value;
      monitor_options.contracts = value;
    } else if (ParseFlag(arg, "--contract-patterns", &value)) {
      options.contract_patterns = value;
      lifecycle_options.contract_patterns = value;
      monitor_options.contract_patterns = value;
    } else if (ParseFlag(arg, "--queries", &value)) {
      options.queries = value;
      lifecycle_options.queries = value;
    } else if (ParseFlag(arg, "--query-patterns", &value)) {
      options.query_patterns = value;
      lifecycle_options.query_patterns = value;
    } else if (ParseFlag(arg, "--vocab", &value)) {
      options.vocabulary_size = value;
      lifecycle_options.vocabulary_size = value;
      monitor_options.vocabulary_size = value;
    } else if (ParseFlag(arg, "--threads", &value)) {
      options.threads = value;
    } else if (ParseFlag(arg, "--words-per-formula", &value)) {
      options.words_per_formula = value;
    } else if (ParseFlag(arg, "--max-mismatches", &value)) {
      options.max_mismatches = value;
      lifecycle_options.max_mismatches = value;
      monitor_options.max_mismatches = value;
    } else if (ParseFlag(arg, "--mutations", &value)) {
      lifecycle_options.mutations = value;
    } else if (ParseFlag(arg, "--sample-ticks", &value)) {
      lifecycle_options.sample_ticks = value;
    } else if (ParseFlag(arg, "--batches", &value)) {
      monitor_options.batches = value;
    } else if (ParseFlag(arg, "--batch-events", &value)) {
      monitor_options.batch_events = value;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg);
      Usage(argv[0]);
      return 2;
    }
  }
  if (lifecycle && monitor) {
    std::fprintf(stderr, "--lifecycle and --monitor are mutually exclusive\n");
    Usage(argv[0]);
    return 2;
  }

  if (monitor) {
    std::printf(
        "ctdb_diff_fuzz --monitor: %zu iterations from seed %" PRIu64
        " (%zu contracts, %zu batches x %zu events, vocab %zu)\n",
        monitor_options.iters, monitor_options.seed, monitor_options.contracts,
        monitor_options.batches, monitor_options.batch_events,
        monitor_options.vocabulary_size);
  } else if (lifecycle) {
    std::printf(
        "ctdb_diff_fuzz --lifecycle: %zu iterations from seed %" PRIu64
        " (%zu mutations, %zu queries, vocab %zu)\n",
        lifecycle_options.iters, lifecycle_options.seed,
        lifecycle_options.mutations, lifecycle_options.queries,
        lifecycle_options.vocabulary_size);
  } else {
    std::printf(
        "ctdb_diff_fuzz: %zu iterations from seed %" PRIu64
        " (%zu contracts, %zu queries, vocab %zu, threads %zu)\n",
        options.iters, options.seed, options.contracts, options.queries,
        options.vocabulary_size, options.threads);
  }

  const ctdb::testing::DiffReport report =
      monitor ? ctdb::testing::RunMonitorDifferential(monitor_options)
      : lifecycle
          ? ctdb::testing::RunLifecycleDifferential(lifecycle_options)
          : ctdb::testing::RunDifferential(options);

  for (const auto& mismatch : report.mismatches) {
    std::fprintf(stderr, "%s\n",
                 ctdb::testing::FormatMismatch(mismatch).c_str());
  }
  std::printf("%zu iterations, %zu checks, %zu mismatches\n", report.iterations,
              report.checks, report.mismatches.size());
  return report.ok() ? 0 : 1;
}
