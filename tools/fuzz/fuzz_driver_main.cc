// Standalone driver for the fuzz harnesses on toolchains without libFuzzer
// (e.g. GCC). Linked instead of -fsanitize=fuzzer; replays the corpus and
// then runs seeded random mutations of it through LLVMFuzzerTestOneInput.
//
// Understands the subset of libFuzzer's CLI the CI jobs use, so the same
// command line works against either build:
//   fuzz_parser -runs=1000 -seed=1 -max_total_time=60 <corpus dir/file>...
// A failure aborts (as under libFuzzer); rerunning with the same seed and
// corpus reproduces it deterministically.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

using Input = std::vector<uint8_t>;

void LoadFile(const std::filesystem::path& path, std::vector<Input>* corpus) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return;
  Input bytes((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  corpus->push_back(std::move(bytes));
}

void LoadPath(const char* arg, std::vector<Input>* corpus) {
  std::error_code ec;
  const std::filesystem::path path(arg);
  if (std::filesystem::is_directory(path, ec)) {
    for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
      if (entry.is_regular_file()) LoadFile(entry.path(), corpus);
    }
  } else {
    LoadFile(path, corpus);
  }
}

bool ParseFlag(const char* arg, const char* name, uint64_t* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::strtoull(arg + len + 1, nullptr, 10);
  return true;
}

Input Mutate(const Input& base, ctdb::Rng* rng, size_t max_len) {
  Input input = base;
  const size_t edits = 1 + rng->Uniform(8);
  for (size_t e = 0; e < edits; ++e) {
    const uint64_t kind = rng->Uniform(4);
    if (input.empty() || kind == 0) {
      // Insert a random byte, biased towards printable ASCII.
      const size_t at = input.empty() ? 0 : rng->Uniform(input.size() + 1);
      const uint8_t byte = rng->Chance(0.8)
                               ? static_cast<uint8_t>(32 + rng->Uniform(95))
                               : static_cast<uint8_t>(rng->Uniform(256));
      input.insert(input.begin() + static_cast<ptrdiff_t>(at), byte);
    } else if (kind == 1) {
      input[rng->Uniform(input.size())] ^=
          static_cast<uint8_t>(1u << rng->Uniform(8));
    } else if (kind == 2) {
      input.erase(input.begin() + static_cast<ptrdiff_t>(rng->Uniform(input.size())));
    } else {
      // Duplicate a chunk (grows nesting/repetition patterns).
      const size_t from = rng->Uniform(input.size());
      const size_t len = 1 + rng->Uniform(input.size() - from);
      Input chunk(input.begin() + static_cast<ptrdiff_t>(from),
                  input.begin() + static_cast<ptrdiff_t>(from + len));
      const size_t at = rng->Uniform(input.size() + 1);
      input.insert(input.begin() + static_cast<ptrdiff_t>(at), chunk.begin(),
                   chunk.end());
    }
  }
  if (input.size() > max_len) input.resize(max_len);
  return input;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t runs = 1000;
  uint64_t seed = 1;
  uint64_t max_total_time = 0;  // seconds; 0 = no time limit
  uint64_t max_len = 4096;
  std::vector<Input> corpus;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (arg[0] == '-') {
      uint64_t value = 0;
      if (ParseFlag(arg, "-runs", &value) || ParseFlag(arg, "--iters", &value)) {
        runs = value;
      } else if (ParseFlag(arg, "-seed", &value) ||
                 ParseFlag(arg, "--seed", &value)) {
        seed = value;
      } else if (ParseFlag(arg, "-max_total_time", &value)) {
        max_total_time = value;
      } else if (ParseFlag(arg, "-max_len", &value)) {
        max_len = value;
      }
      // Other libFuzzer flags (-artifact_prefix, ...) are accepted and
      // ignored so CI command lines stay portable across builds.
      continue;
    }
    LoadPath(arg, &corpus);
  }

  std::printf("standalone fuzz driver: %zu corpus inputs, %llu runs, seed %llu\n",
              corpus.size(), static_cast<unsigned long long>(runs),
              static_cast<unsigned long long>(seed));

  for (const Input& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }

  ctdb::Rng rng(seed);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(max_total_time);
  uint64_t executed = 0;
  for (; executed < runs; ++executed) {
    if (max_total_time > 0 && std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    const Input* base = nullptr;
    static const Input kEmpty;
    base = corpus.empty() ? &kEmpty : &corpus[rng.Uniform(corpus.size())];
    const Input input = Mutate(*base, &rng, max_len);
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }

  std::printf("done: %zu corpus replays + %llu mutated runs, no failures\n",
              corpus.size(), static_cast<unsigned long long>(executed));
  return 0;
}
