// libFuzzer harness for the network wire protocol (net/protocol.h).
//
// The input bytes are attacked at both layers:
//
//  1. Frame layer: ScanFrame must return kFrame / kNeedMore / kCorrupt —
//     never crash or overread — and a hostile length prefix must be
//     rejected before any allocation (kMaxFrameBytes cap). An accepted
//     frame's payload must lie inside the input buffer.
//  2. Payload layer: the raw input is fed to DecodeRequestPayload and
//     DecodeResponsePayload directly (bypassing the CRC gate so the fuzzer
//     can reach the structural parser). Each must return OK or
//     Status::Corruption, and anything accepted must be a round-trip fixed
//     point: re-encoding the decoded message reproduces the input bytes
//     exactly, and decoding that again yields an equal message.
//
// Built with -fsanitize=fuzzer under Clang; elsewhere fuzz_driver_main.cc
// supplies a standalone corpus-replay main with the same CLI shape.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "net/protocol.h"

namespace {

using ctdb::Status;
using namespace ctdb::net;

void CheckRequestPayload(std::string_view payload) {
  Request request;
  const Status status = DecodeRequestPayload(payload, &request);
  if (!status.ok()) {
    if (!status.IsCorruption()) {
      std::fprintf(stderr, "request: non-Corruption rejection: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
    return;
  }
  const std::string encoded = EncodeRequestPayload(request);
  if (encoded != payload) {
    std::fprintf(stderr, "request: accepted payload is not a fixed point\n");
    std::abort();
  }
  Request again;
  if (!DecodeRequestPayload(encoded, &again).ok() || !(again == request)) {
    std::fprintf(stderr, "request: re-decode does not match\n");
    std::abort();
  }
}

void CheckResponsePayload(std::string_view payload) {
  Response response;
  const Status status = DecodeResponsePayload(payload, &response);
  if (!status.ok()) {
    if (!status.IsCorruption()) {
      std::fprintf(stderr, "response: non-Corruption rejection: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
    return;
  }
  const std::string encoded = EncodeResponsePayload(response);
  if (encoded != payload) {
    std::fprintf(stderr, "response: accepted payload is not a fixed point\n");
    std::abort();
  }
  Response again;
  if (!DecodeResponsePayload(encoded, &again).ok() || !(again == response)) {
    std::fprintf(stderr, "response: re-decode does not match\n");
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  // Frame layer: scan the whole buffer as a stream of frames, exactly the
  // way the server's connection loop consumes its input buffer.
  size_t offset = 0;
  std::string_view payload;
  for (;;) {
    const size_t before = offset;
    const FrameScan scan = ScanFrame(bytes, &offset, &payload);
    if (scan != FrameScan::kFrame) {
      if (offset != before) {
        std::fprintf(stderr, "ScanFrame moved offset without a frame\n");
        std::abort();
      }
      break;
    }
    if (offset <= before || offset > bytes.size() ||
        payload.size() > kMaxFrameBytes ||
        payload.data() < bytes.data() ||
        payload.data() + payload.size() > bytes.data() + bytes.size()) {
      std::fprintf(stderr, "ScanFrame returned an out-of-bounds frame\n");
      std::abort();
    }
    CheckRequestPayload(payload);
    CheckResponsePayload(payload);
  }

  // Payload layer: the CRC gate would otherwise hide the structural parser
  // from the fuzzer, so attack it with the raw input too.
  CheckRequestPayload(bytes);
  CheckResponsePayload(bytes);
  return 0;
}
