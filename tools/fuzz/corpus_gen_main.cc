// ctdb_corpus_gen — regenerates the checked-in fuzz corpus seeds from the
// real codecs, so the seed files track the current wire and WAL formats
// instead of rotting when a format evolves (as the v2 WAL payload and the
// lifecycle wire extensions did). Deterministic: same binary → same bytes.
//
//   ctdb_corpus_gen <corpus-root>  # writes <root>/{protocol,stream,wal}
//
// Parser and serialize seeds are plain text / stable formats and are left
// alone. Exit status: 0 on success, 1 on any I/O failure, 2 on bad usage.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "net/protocol.h"
#include "wal/record.h"
#include "wal/segment.h"

namespace {

bool g_failed = false;

void WriteSeed(const std::filesystem::path& dir, const char* name,
               const std::string& bytes) {
  const std::filesystem::path path = dir / name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.string().c_str());
    g_failed = true;
    return;
  }
  std::printf("wrote %s (%zu bytes)\n", path.string().c_str(), bytes.size());
}

void GenerateProtocol(const std::filesystem::path& dir) {
  using namespace ctdb::net;

  // Requests: one seed per operation kind, covering every body shape.
  WriteSeed(dir, "register",
            EncodeRequestFrame(
                Request::Register(1, "gold-cust", "G(request -> F grant)")));
  WriteSeed(dir, "register_batch",
            EncodeRequestFrame(Request::RegisterBatch(
                2, {{"fast-pay", "F paid"}, {"no-breach", "G !breach"}})));
  WriteSeed(dir, "query",
            EncodeRequestFrame(Request::Query(3, "F (p1 & X p2)")));
  WriteSeed(dir, "query_as_of",
            EncodeRequestFrame(Request::Query(4, "F (p1 & X p2)", 17)));
  WriteSeed(dir, "query_batch",
            EncodeRequestFrame(
                Request::QueryBatch(5, {"F p1", "G(p1 -> F p2)"}, 9)));
  WriteSeed(dir, "checkpoint", EncodeRequestFrame(Request::Checkpoint(6)));
  WriteSeed(dir, "stats", EncodeRequestFrame(Request::Stats(7)));
  WriteSeed(dir, "unregister",
            EncodeRequestFrame(Request::Unregister(8, 2)));
  WriteSeed(dir, "replace",
            EncodeRequestFrame(Request::Replace(9, 3, "G !breach")));

  // Two back-to-back frames, the way a pipelining client sends them.
  WriteSeed(dir, "two_frames",
            EncodeRequestFrame(Request::Query(10, "F p1")) +
                EncodeRequestFrame(Request::Unregister(11, 1)));

  // Bare payloads (no frame header) to seed the payload-layer attack.
  WriteSeed(dir, "payload_query",
            EncodeRequestPayload(Request::Query(12, "F (p1 & X p2)", 3)));

  // Responses: one seed per body shape.
  Response response;
  response.id = 1;
  response.request_kind = MsgKind::kRegister;
  response.ids = {1};
  WriteSeed(dir, "response_register", EncodeResponseFrame(response));

  response = Response();
  response.id = 2;
  response.request_kind = MsgKind::kRegisterBatch;
  response.ids = {1, 2, 3};
  WriteSeed(dir, "response_register_batch", EncodeResponseFrame(response));

  response = Response();
  response.id = 3;
  response.request_kind = MsgKind::kQuery;
  response.answers.push_back({{0, 2}, 150, 3});
  WriteSeed(dir, "response_query", EncodeResponseFrame(response));
  WriteSeed(dir, "payload_response", EncodeResponsePayload(response));

  response = Response();
  response.id = 5;
  response.request_kind = MsgKind::kQueryBatch;
  response.answers.push_back({{1}, 90, 2});
  response.answers.push_back({{}, 40, 0});
  WriteSeed(dir, "response_query_batch", EncodeResponseFrame(response));

  response = Response();
  response.id = 6;
  response.request_kind = MsgKind::kCheckpoint;
  response.sequence = 12;
  WriteSeed(dir, "response_checkpoint", EncodeResponseFrame(response));

  response = Response();
  response.id = 7;
  response.request_kind = MsgKind::kStats;
  response.stats_json = "{\"counters\":{},\"histograms\":{}}";
  WriteSeed(dir, "response_stats", EncodeResponseFrame(response));

  response = Response();
  response.id = 8;
  response.request_kind = MsgKind::kUnregister;
  response.sequence = 5;
  WriteSeed(dir, "response_unregister", EncodeResponseFrame(response));

  response = Response();
  response.id = 9;
  response.request_kind = MsgKind::kReplace;
  response.sequence = 6;
  WriteSeed(dir, "response_replace", EncodeResponseFrame(response));

  WriteSeed(dir, "response_error",
            EncodeResponseFrame(Response::Error(
                Request::Query(10, "F p1"),
                ctdb::Status::InvalidArgument("unknown event 'p9'"))));
  WriteSeed(dir, "response_unavailable",
            EncodeResponseFrame(Response::Error(
                Request::Register(11, "late", "F p1"),
                ctdb::Status::Unavailable("draining"))));
}

void GenerateStream(const std::filesystem::path& dir) {
  using namespace ctdb::net;

  // Requests: every stream body shape, including the nesting extremes the
  // fuzzer should mutate from (empty batch, empty instant, multi-event).
  WriteSeed(dir, "stream_open",
            EncodeRequestFrame(Request::StreamOpen(1, "orders")));
  WriteSeed(dir, "stream_open_as_of",
            EncodeRequestFrame(Request::StreamOpen(2, "orders", 17)));
  WriteSeed(dir, "stream_append",
            EncodeRequestFrame(Request::StreamAppend(
                3, "orders", {{"request"}, {}, {"grant", "paid"}})));
  WriteSeed(dir, "stream_append_empty",
            EncodeRequestFrame(Request::StreamAppend(4, "orders", {})));
  WriteSeed(dir, "stream_close",
            EncodeRequestFrame(Request::StreamClose(5, "orders")));
  WriteSeed(dir, "payload_stream_append",
            EncodeRequestPayload(Request::StreamAppend(
                6, "orders", {{"p1", "p2"}, {"p3"}})));

  // A pipelined open → append → close exchange.
  WriteSeed(dir, "stream_lifecycle",
            EncodeRequestFrame(Request::StreamOpen(7, "s")) +
                EncodeRequestFrame(
                    Request::StreamAppend(8, "s", {{"p1"}, {"p2"}})) +
                EncodeRequestFrame(Request::StreamClose(9, "s")));

  // Responses: one seed per stream body shape.
  Response response;
  response.id = 1;
  response.request_kind = MsgKind::kStreamOpen;
  response.sequence = 12;
  response.tracked = 3;
  WriteSeed(dir, "response_stream_open", EncodeResponseFrame(response));

  response = Response();
  response.id = 3;
  response.request_kind = MsgKind::kStreamAppend;
  response.events = 3;
  response.stepped = 7;
  response.pruned = 2;
  response.verdicts = {{0, ctdb::monitor::StreamVerdict::kSatisfied},
                       {2, ctdb::monitor::StreamVerdict::kViolated}};
  WriteSeed(dir, "response_stream_append", EncodeResponseFrame(response));
  WriteSeed(dir, "payload_response_stream_append",
            EncodeResponsePayload(response));

  response = Response();
  response.id = 5;
  response.request_kind = MsgKind::kStreamClose;
  response.events = 3;
  response.satisfied = 1;
  response.violated = 1;
  response.undetermined = 1;
  response.verdicts = {{0, ctdb::monitor::StreamVerdict::kSatisfied},
                       {1, ctdb::monitor::StreamVerdict::kUndetermined},
                       {2, ctdb::monitor::StreamVerdict::kViolated}};
  WriteSeed(dir, "response_stream_close", EncodeResponseFrame(response));

  WriteSeed(dir, "response_stream_error",
            EncodeResponseFrame(Response::Error(
                Request::StreamAppend(10, "gone", {{"p1"}}),
                ctdb::Status::NotFound("no open stream named 'gone'"))));
}

void GenerateWal(const std::filesystem::path& dir) {
  using namespace ctdb::wal;
  const std::string magic(kSegmentMagic);

  WriteSeed(dir, "magic_only", magic);

  // The historical seed name, upgraded to the v2 payload format.
  WriteSeed(
      dir, "two_registers_and_checkpoint",
      magic +
          EncodeFrame(Record::Register(1, 1, 0, "gold-cust",
                                       "G(request -> F grant)")) +
          EncodeFrame(Record::Register(2, 2, 1, "fast-pay", "F paid")) +
          EncodeFrame(Record::Checkpoint(2, "checkpoint-000002")));

  // A full lifecycle: register ×2, replace, unregister, checkpoint.
  WriteSeed(dir, "lifecycle_stream",
            magic +
                EncodeFrame(Record::Register(1, 1, 0, "gold-cust",
                                             "G(request -> F grant)")) +
                EncodeFrame(Record::Register(2, 2, 1, "fast-pay", "F paid")) +
                EncodeFrame(Record::Replace(3, 3, 0, "G !breach")) +
                EncodeFrame(Record::Unregister(4, 4, 1)) +
                EncodeFrame(Record::Checkpoint(4, "checkpoint-000004")));

  // One whole frame followed by half of another — a torn tail the segment
  // reader must accept as a clean truncation, not corruption.
  const std::string torn =
      EncodeFrame(Record::Register(2, 2, 1, "fast-pay", "F paid"));
  WriteSeed(dir, "torn_tail",
            magic +
                EncodeFrame(Record::Register(1, 1, 0, "gold-cust",
                                             "G(request -> F grant)")) +
                torn.substr(0, torn.size() / 2));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path root = argv[1];
  std::error_code ec;
  std::filesystem::create_directories(root / "protocol", ec);
  std::filesystem::create_directories(root / "stream", ec);
  std::filesystem::create_directories(root / "wal", ec);
  GenerateProtocol(root / "protocol");
  GenerateStream(root / "stream");
  GenerateWal(root / "wal");
  return g_failed ? 1 : 0;
}
