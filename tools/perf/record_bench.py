#!/usr/bin/env python3
"""Record a pinned benchmark set into the committed perf trajectory.

Runs the pinned google-benchmark binaries (bench_permission,
bench_translate, bench_query_batch by default) and appends one entry per
bench to the root-level ``BENCH_<name>.json`` trajectory files:

    {
      "bench": "permission",
      "unit": "ns",
      "entries": [
        {
          "sha": "<git rev-parse HEAD>",
          "date": "2026-08-09T12:00:00Z",
          "host": "<cpu model> x<cores>",
          "scale": 0.02,
          "repetitions": 5,
          "seed": "0xc7db",
          "metrics": {"BM_Ticket_NestedDfs_Seeds": 1234.5, ...}
        },
        ...
      ]
    }

Metrics are per-benchmark median real times in nanoseconds (plain real time
when --repetitions=1). Entries are append-only: the history *is* the
product — ``compare_bench.py`` gates CI on it, and the committed files
document the hot path's trajectory PR by PR. Entries carry a host
fingerprint because absolute times are only comparable on the same machine;
compare_bench.py pairs each entry with the most recent prior entry from the
same host.

Usage:
    tools/perf/record_bench.py [--build-dir build] [--repetitions 5]
                               [--scale 0.02] [--benches permission,...]
                               [--output-dir .]
"""

import argparse
import datetime
import json
import os
import subprocess
import sys
import tempfile

DEFAULT_BENCHES = ["permission", "translate", "query_batch"]


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))


def git_sha(root):
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"], cwd=root,
                             capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def host_fingerprint():
    model = "unknown-cpu"
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as f:
            for line in f:
                if line.lower().startswith("model name"):
                    model = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return f"{model} x{os.cpu_count() or 0}"


def run_bench(binary, repetitions, scale, env_extra):
    cmd = [binary, "--benchmark_format=json"]
    if repetitions > 1:
        cmd += [f"--benchmark_repetitions={repetitions}",
                "--benchmark_report_aggregates_only=true"]
    env = dict(os.environ)
    env["CTDB_BENCH_SCALE"] = str(scale)
    env.update(env_extra)
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise RuntimeError(f"{binary} exited with {proc.returncode}")
    # The pinned seed line goes to stderr; surface it so recorded runs are
    # visibly tied to their dataset.
    for line in proc.stderr.splitlines():
        if "seed" in line.lower():
            print(f"  {line.strip()}")
    return json.loads(proc.stdout)


def extract_metrics(report, repetitions):
    """run_name -> median real_time (ns) from a gbench JSON report."""
    metrics = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") != "median":
                continue
            name = bench.get("run_name", bench["name"])
        else:
            if repetitions > 1:
                continue  # aggregates-only mode should not reach here
            name = bench["name"]
        if bench.get("time_unit", "ns") != "ns":
            continue
        metrics[name] = bench["real_time"]
    return metrics


def append_entry(path, bench_name, entry):
    trajectory = {"bench": bench_name, "unit": "ns", "entries": []}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as f:
            trajectory = json.load(f)
    trajectory["entries"].append(entry)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(trajectory, f, indent=2, sort_keys=True)
        f.write("\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--benches", default=",".join(DEFAULT_BENCHES),
                        help="comma-separated bench names (without bench_)")
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--scale", default=os.environ.get(
        "CTDB_BENCH_SCALE", "0.02"))
    parser.add_argument("--output-dir", default=None,
                        help="where the BENCH_<name>.json files live "
                             "(default: repo root)")
    args = parser.parse_args()

    root = repo_root()
    out_dir = args.output_dir or root
    sha = git_sha(root)
    host = host_fingerprint()
    date = datetime.datetime.now(datetime.timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ")
    seed = os.environ.get("CTDB_BENCH_SEED", "0xc7db")

    failures = 0
    for bench in [b.strip() for b in args.benches.split(",") if b.strip()]:
        binary = os.path.join(args.build_dir, "bench", f"bench_{bench}")
        if not os.path.isabs(binary):
            binary = os.path.join(root, binary)
        if not os.path.exists(binary):
            print(f"error: {binary} not built", file=sys.stderr)
            failures += 1
            continue
        print(f"recording bench_{bench} "
              f"(scale={args.scale}, reps={args.repetitions})")
        # Obs metrics snapshots are per-run noise — keep them out of the
        # committed trajectory directory.
        with tempfile.TemporaryDirectory() as scratch:
            report = run_bench(binary, args.repetitions, args.scale,
                               {"CTDB_BENCH_METRICS_DIR": scratch})
        metrics = extract_metrics(report, args.repetitions)
        if not metrics:
            print(f"error: bench_{bench} produced no metrics",
                  file=sys.stderr)
            failures += 1
            continue
        entry = {
            "sha": sha,
            "date": date,
            "host": host,
            "scale": float(args.scale),
            "repetitions": args.repetitions,
            "seed": seed,
            "metrics": metrics,
        }
        path = os.path.join(out_dir, f"BENCH_{bench}.json")
        append_entry(path, bench, entry)
        print(f"  {len(metrics)} metrics -> {os.path.relpath(path, root)}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
