#!/usr/bin/env python3
"""Gate CI on the committed perf trajectory.

For each ``BENCH_<name>.json`` trajectory file (written by
``record_bench.py``), compares the *latest* entry against the most recent
*prior* entry recorded on the same host. Absolute benchmark times are not
comparable across machines, so entries from other hosts are never used as a
baseline; when a file has no prior same-host entry (e.g. a fresh CI runner
fleet), the file passes with an explanatory note rather than failing.

The gate: the geomean over common benchmarks of candidate/baseline real
time must stay below ``--threshold`` (default 1.10, i.e. a 10% regression
budget to absorb runner noise). Individual benchmarks may exceed the
threshold without failing the gate — only the geomean fails it — but every
per-benchmark ratio is printed so regressions localized to one benchmark
are visible in the log.

Exit status: 0 = all files pass (or had no comparable baseline),
1 = regression beyond threshold, 2 = malformed input.

Usage:
    tools/perf/compare_bench.py BENCH_permission.json BENCH_translate.json
                                [--threshold 1.10]
"""

import argparse
import json
import math
import sys


def load_trajectory(path):
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    entries = data.get("entries", [])
    if not isinstance(entries, list) or not entries:
        raise ValueError(f"{path}: no entries")
    return data


def find_baseline(entries, candidate):
    """Most recent entry before `candidate` recorded on the same host."""
    for entry in reversed(entries[:-1]):
        if entry.get("host") == candidate.get("host"):
            return entry
    return None


def compare_file(path, threshold):
    """Returns True if the file passes the gate."""
    try:
        data = load_trajectory(path)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"FAIL {path}: {err}")
        return None  # malformed, not a perf regression
    entries = data["entries"]
    candidate = entries[-1]
    baseline = find_baseline(entries, candidate)
    if baseline is None:
        print(f"PASS {path}: no prior entry from host "
              f"'{candidate.get('host', '?')}' — nothing to compare "
              f"(recorded as the new baseline)")
        return True

    common = sorted(set(candidate.get("metrics", {}))
                    & set(baseline.get("metrics", {})))
    if not common:
        print(f"PASS {path}: no common benchmarks with baseline "
              f"{baseline.get('sha', '?')[:12]} — nothing to compare")
        return True

    log_sum = 0.0
    rows = []
    for name in common:
        base = baseline["metrics"][name]
        cand = candidate["metrics"][name]
        if base <= 0 or cand <= 0:
            continue
        ratio = cand / base
        log_sum += math.log(ratio)
        rows.append((name, base, cand, ratio))
    if not rows:
        print(f"PASS {path}: no positive-valued common benchmarks")
        return True
    geomean = math.exp(log_sum / len(rows))

    ok = geomean <= threshold
    verdict = "PASS" if ok else "FAIL"
    print(f"{verdict} {path}: geomean ratio {geomean:.3f} "
          f"(threshold {threshold:.2f}) vs baseline "
          f"{baseline.get('sha', '?')[:12]} ({baseline.get('date', '?')})")
    width = max(len(name) for name, *_ in rows)
    for name, base, cand, ratio in rows:
        marker = "  <-- regression" if ratio > threshold else ""
        print(f"  {name:<{width}}  {base:>12.1f} ns -> {cand:>12.1f} ns  "
              f"x{ratio:.3f}{marker}")
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trajectories", nargs="+",
                        help="BENCH_<name>.json files to check")
    parser.add_argument("--threshold", type=float, default=1.10,
                        help="max allowed geomean candidate/baseline ratio "
                             "(default: 1.10)")
    args = parser.parse_args()

    results = [compare_file(path, args.threshold)
               for path in args.trajectories]
    if any(r is None for r in results):
        return 2
    return 0 if all(results) else 1


if __name__ == "__main__":
    sys.exit(main())
