file(REMOVE_RECURSE
  "CMakeFiles/permission_property_test.dir/permission_property_test.cc.o"
  "CMakeFiles/permission_property_test.dir/permission_property_test.cc.o.d"
  "permission_property_test"
  "permission_property_test.pdb"
  "permission_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/permission_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
