file(REMOVE_RECURSE
  "CMakeFiles/translate_property_test.dir/translate_property_test.cc.o"
  "CMakeFiles/translate_property_test.dir/translate_property_test.cc.o.d"
  "translate_property_test"
  "translate_property_test.pdb"
  "translate_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translate_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
