file(REMOVE_RECURSE
  "CMakeFiles/prefilter_test.dir/prefilter_test.cc.o"
  "CMakeFiles/prefilter_test.dir/prefilter_test.cc.o.d"
  "prefilter_test"
  "prefilter_test.pdb"
  "prefilter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefilter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
