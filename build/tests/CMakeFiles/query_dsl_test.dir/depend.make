# Empty dependencies file for query_dsl_test.
# This may be replaced when dependencies are built.
