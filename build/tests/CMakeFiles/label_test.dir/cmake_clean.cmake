file(REMOVE_RECURSE
  "CMakeFiles/label_test.dir/label_test.cc.o"
  "CMakeFiles/label_test.dir/label_test.cc.o.d"
  "label_test"
  "label_test.pdb"
  "label_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/label_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
