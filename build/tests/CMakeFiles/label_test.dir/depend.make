# Empty dependencies file for label_test.
# This may be replaced when dependencies are built.
