# Empty compiler generated dependencies file for ctdb.
# This may be replaced when dependencies are built.
