file(REMOVE_RECURSE
  "libctdb.a"
)
