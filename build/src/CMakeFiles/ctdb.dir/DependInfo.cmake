
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/bisimulation.cc" "src/CMakeFiles/ctdb.dir/automata/bisimulation.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/automata/bisimulation.cc.o.d"
  "/root/repo/src/automata/buchi.cc" "src/CMakeFiles/ctdb.dir/automata/buchi.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/automata/buchi.cc.o.d"
  "/root/repo/src/automata/dot.cc" "src/CMakeFiles/ctdb.dir/automata/dot.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/automata/dot.cc.o.d"
  "/root/repo/src/automata/ops.cc" "src/CMakeFiles/ctdb.dir/automata/ops.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/automata/ops.cc.o.d"
  "/root/repo/src/automata/quotient.cc" "src/CMakeFiles/ctdb.dir/automata/quotient.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/automata/quotient.cc.o.d"
  "/root/repo/src/automata/scc.cc" "src/CMakeFiles/ctdb.dir/automata/scc.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/automata/scc.cc.o.d"
  "/root/repo/src/automata/serialize.cc" "src/CMakeFiles/ctdb.dir/automata/serialize.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/automata/serialize.cc.o.d"
  "/root/repo/src/automata/word.cc" "src/CMakeFiles/ctdb.dir/automata/word.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/automata/word.cc.o.d"
  "/root/repo/src/base/label.cc" "src/CMakeFiles/ctdb.dir/base/label.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/base/label.cc.o.d"
  "/root/repo/src/base/vocabulary.cc" "src/CMakeFiles/ctdb.dir/base/vocabulary.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/base/vocabulary.cc.o.d"
  "/root/repo/src/broker/database.cc" "src/CMakeFiles/ctdb.dir/broker/database.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/broker/database.cc.o.d"
  "/root/repo/src/broker/persistence.cc" "src/CMakeFiles/ctdb.dir/broker/persistence.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/broker/persistence.cc.o.d"
  "/root/repo/src/broker/stats.cc" "src/CMakeFiles/ctdb.dir/broker/stats.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/broker/stats.cc.o.d"
  "/root/repo/src/core/permission.cc" "src/CMakeFiles/ctdb.dir/core/permission.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/core/permission.cc.o.d"
  "/root/repo/src/core/witness.cc" "src/CMakeFiles/ctdb.dir/core/witness.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/core/witness.cc.o.d"
  "/root/repo/src/index/condition.cc" "src/CMakeFiles/ctdb.dir/index/condition.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/index/condition.cc.o.d"
  "/root/repo/src/index/prefilter.cc" "src/CMakeFiles/ctdb.dir/index/prefilter.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/index/prefilter.cc.o.d"
  "/root/repo/src/index/pruning.cc" "src/CMakeFiles/ctdb.dir/index/pruning.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/index/pruning.cc.o.d"
  "/root/repo/src/ltl/evaluator.cc" "src/CMakeFiles/ctdb.dir/ltl/evaluator.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/ltl/evaluator.cc.o.d"
  "/root/repo/src/ltl/formula.cc" "src/CMakeFiles/ctdb.dir/ltl/formula.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/ltl/formula.cc.o.d"
  "/root/repo/src/ltl/parser.cc" "src/CMakeFiles/ctdb.dir/ltl/parser.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/ltl/parser.cc.o.d"
  "/root/repo/src/ltl/patterns.cc" "src/CMakeFiles/ctdb.dir/ltl/patterns.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/ltl/patterns.cc.o.d"
  "/root/repo/src/ltl/query_dsl.cc" "src/CMakeFiles/ctdb.dir/ltl/query_dsl.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/ltl/query_dsl.cc.o.d"
  "/root/repo/src/ltl/rewriter.cc" "src/CMakeFiles/ctdb.dir/ltl/rewriter.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/ltl/rewriter.cc.o.d"
  "/root/repo/src/projection/projection.cc" "src/CMakeFiles/ctdb.dir/projection/projection.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/projection/projection.cc.o.d"
  "/root/repo/src/projection/store.cc" "src/CMakeFiles/ctdb.dir/projection/store.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/projection/store.cc.o.d"
  "/root/repo/src/relational/table.cc" "src/CMakeFiles/ctdb.dir/relational/table.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/relational/table.cc.o.d"
  "/root/repo/src/translate/degeneralize.cc" "src/CMakeFiles/ctdb.dir/translate/degeneralize.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/translate/degeneralize.cc.o.d"
  "/root/repo/src/translate/ltl_to_ba.cc" "src/CMakeFiles/ctdb.dir/translate/ltl_to_ba.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/translate/ltl_to_ba.cc.o.d"
  "/root/repo/src/translate/tableau.cc" "src/CMakeFiles/ctdb.dir/translate/tableau.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/translate/tableau.cc.o.d"
  "/root/repo/src/util/bitset.cc" "src/CMakeFiles/ctdb.dir/util/bitset.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/util/bitset.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/ctdb.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/util/rng.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/ctdb.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/util/stats.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/ctdb.dir/util/status.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/ctdb.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/util/string_util.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/ctdb.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/spec.cc" "src/CMakeFiles/ctdb.dir/workload/spec.cc.o" "gcc" "src/CMakeFiles/ctdb.dir/workload/spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
