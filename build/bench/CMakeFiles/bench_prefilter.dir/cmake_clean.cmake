file(REMOVE_RECURSE
  "CMakeFiles/bench_prefilter.dir/bench_common.cc.o"
  "CMakeFiles/bench_prefilter.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_prefilter.dir/bench_prefilter.cc.o"
  "CMakeFiles/bench_prefilter.dir/bench_prefilter.cc.o.d"
  "bench_prefilter"
  "bench_prefilter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prefilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
