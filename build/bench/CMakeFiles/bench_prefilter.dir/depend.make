# Empty dependencies file for bench_prefilter.
# This may be replaced when dependencies are built.
