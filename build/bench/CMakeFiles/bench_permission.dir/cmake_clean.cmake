file(REMOVE_RECURSE
  "CMakeFiles/bench_permission.dir/bench_common.cc.o"
  "CMakeFiles/bench_permission.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_permission.dir/bench_permission.cc.o"
  "CMakeFiles/bench_permission.dir/bench_permission.cc.o.d"
  "bench_permission"
  "bench_permission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_permission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
