# Empty compiler generated dependencies file for bench_permission.
# This may be replaced when dependencies are built.
