# Empty compiler generated dependencies file for bench_translate.
# This may be replaced when dependencies are built.
