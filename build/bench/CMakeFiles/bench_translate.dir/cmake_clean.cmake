file(REMOVE_RECURSE
  "CMakeFiles/bench_translate.dir/bench_common.cc.o"
  "CMakeFiles/bench_translate.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_translate.dir/bench_translate.cc.o"
  "CMakeFiles/bench_translate.dir/bench_translate.cc.o.d"
  "bench_translate"
  "bench_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
