# Empty compiler generated dependencies file for warranty_market.
# This may be replaced when dependencies are built.
