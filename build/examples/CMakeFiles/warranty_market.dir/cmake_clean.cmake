file(REMOVE_RECURSE
  "CMakeFiles/warranty_market.dir/warranty_market.cpp.o"
  "CMakeFiles/warranty_market.dir/warranty_market.cpp.o.d"
  "warranty_market"
  "warranty_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warranty_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
