file(REMOVE_RECURSE
  "CMakeFiles/airfare_broker.dir/airfare_broker.cpp.o"
  "CMakeFiles/airfare_broker.dir/airfare_broker.cpp.o.d"
  "airfare_broker"
  "airfare_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airfare_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
