# Empty dependencies file for airfare_broker.
# This may be replaced when dependencies are built.
