file(REMOVE_RECURSE
  "CMakeFiles/spec_inspector.dir/spec_inspector.cpp.o"
  "CMakeFiles/spec_inspector.dir/spec_inspector.cpp.o.d"
  "spec_inspector"
  "spec_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
