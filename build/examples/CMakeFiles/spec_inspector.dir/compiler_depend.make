# Empty compiler generated dependencies file for spec_inspector.
# This may be replaced when dependencies are built.
