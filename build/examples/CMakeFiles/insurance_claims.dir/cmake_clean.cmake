file(REMOVE_RECURSE
  "CMakeFiles/insurance_claims.dir/insurance_claims.cpp.o"
  "CMakeFiles/insurance_claims.dir/insurance_claims.cpp.o.d"
  "insurance_claims"
  "insurance_claims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insurance_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
