# Empty compiler generated dependencies file for insurance_claims.
# This may be replaced when dependencies are built.
