file(REMOVE_RECURSE
  "CMakeFiles/broker_shell.dir/broker_shell.cpp.o"
  "CMakeFiles/broker_shell.dir/broker_shell.cpp.o.d"
  "broker_shell"
  "broker_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broker_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
