# Empty dependencies file for broker_shell.
# This may be replaced when dependencies are built.
