// Whole-system integration tests: the optimized broker pipeline (prefilter +
// simplified projections + seeds) must return exactly the unoptimized scan's
// results on generated workloads — the paper's Table 2-style data, end to
// end — and the serialization boundary must round-trip registration data.

#include <gtest/gtest.h>

#include "automata/serialize.h"
#include "broker/database.h"
#include "workload/generator.h"
#include "workload/spec.h"

namespace ctdb {
namespace {

using broker::ContractDatabase;
using broker::DatabaseOptions;
using broker::QueryOptions;
using broker::QueryResult;

class IntegrationTest : public ::testing::Test {
 protected:
  /// Builds a database of `contracts` generated specs with `patterns`
  /// clauses each, seeded deterministically.
  void BuildDatabase(ContractDatabase* db, size_t contracts, size_t patterns,
                     uint64_t seed) {
    workload::GeneratorOptions options;
    options.properties = patterns;
    options.vocabulary_size = 8;  // small vocabulary → contracts interact
    workload::SpecGenerator generator(options, seed, db->vocabulary(),
                                      db->factory());
    for (size_t i = 0; i < contracts; ++i) {
      auto spec = generator.Next();
      ASSERT_TRUE(spec.ok()) << spec.status();
      auto id = db->RegisterFormula("c" + std::to_string(i), spec->formula,
                                    spec->text);
      ASSERT_TRUE(id.ok()) << id.status();
    }
  }

  std::vector<std::string> GenerateQueries(ContractDatabase* db, size_t count,
                                           size_t patterns, uint64_t seed) {
    workload::GeneratorOptions options;
    options.properties = patterns;
    options.vocabulary_size = 8;
    workload::SpecGenerator generator(options, seed, db->vocabulary(),
                                      db->factory());
    std::vector<std::string> out;
    for (size_t i = 0; i < count; ++i) {
      auto spec = generator.Next();
      EXPECT_TRUE(spec.ok());
      out.push_back(spec->text);
    }
    return out;
  }
};

TEST_F(IntegrationTest, OptimizedEqualsUnoptimizedOnGeneratedWorkload) {
  ContractDatabase db;
  BuildDatabase(&db, 25, 3, 0xABCDE);
  const auto queries = GenerateQueries(&db, 20, 1, 0x12345);

  QueryOptions optimized;  // defaults: everything on
  QueryOptions unoptimized;
  unoptimized.use_prefilter = false;
  unoptimized.use_projections = false;
  unoptimized.permission.use_seeds = false;

  size_t total_matches = 0;
  size_t total_candidates_opt = 0;
  size_t total_candidates_unopt = 0;
  for (const std::string& q : queries) {
    auto r_opt = db.Query(q, optimized);
    auto r_unopt = db.Query(q, unoptimized);
    ASSERT_TRUE(r_opt.ok()) << q << ": " << r_opt.status();
    ASSERT_TRUE(r_unopt.ok());
    EXPECT_EQ(r_opt->matches, r_unopt->matches) << q;
    total_matches += r_opt->matches.size();
    total_candidates_opt += r_opt->stats.candidates;
    total_candidates_unopt += r_unopt->stats.candidates;
  }
  // The workload is not degenerate, and the prefilter actually pruned.
  EXPECT_GT(total_matches, 0u);
  EXPECT_LT(total_candidates_opt, total_candidates_unopt);
}

TEST_F(IntegrationTest, SccAlgorithmAgreesOnGeneratedWorkload) {
  ContractDatabase db;
  BuildDatabase(&db, 15, 4, 0xBEEF);
  const auto queries = GenerateQueries(&db, 15, 2, 0xF00D);
  QueryOptions nested;
  QueryOptions scc;
  scc.permission.algorithm = core::PermissionAlgorithm::kScc;
  for (const std::string& q : queries) {
    auto r1 = db.Query(q, nested);
    auto r2 = db.Query(q, scc);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r1->matches, r2->matches) << q;
  }
}

TEST_F(IntegrationTest, CappedProjectionStoreStaysCorrect) {
  DatabaseOptions capped;
  capped.projections.max_enumerated_events = 2;
  capped.projections.max_subset_size = 1;
  ContractDatabase db(capped);
  BuildDatabase(&db, 15, 3, 0xCAFE);
  const auto queries = GenerateQueries(&db, 15, 2, 0xD00D);
  QueryOptions optimized;
  QueryOptions unoptimized;
  unoptimized.use_prefilter = false;
  unoptimized.use_projections = false;
  for (const std::string& q : queries) {
    auto r1 = db.Query(q, optimized);
    auto r2 = db.Query(q, unoptimized);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r1->matches, r2->matches) << q;
  }
}

TEST_F(IntegrationTest, DeeperPrefilterStaysSoundAndTighter) {
  DatabaseOptions deep;
  deep.prefilter.max_depth = 3;
  ContractDatabase db3(deep);
  ContractDatabase db2;  // default depth 2
  BuildDatabase(&db3, 20, 3, 0x9999);
  BuildDatabase(&db2, 20, 3, 0x9999);
  const auto queries = GenerateQueries(&db3, 12, 2, 0x1111);
  GenerateQueries(&db2, 12, 2, 0x1111);  // keep vocab/factory aligned
  for (const std::string& q : queries) {
    auto r3 = db3.Query(q);
    auto r2 = db2.Query(q);
    ASSERT_TRUE(r3.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r3->matches, r2->matches) << q;
    EXPECT_LE(r3->stats.candidates, r2->stats.candidates) << q;
  }
}

TEST_F(IntegrationTest, SerializationBoundaryRoundTrips) {
  // The paper's prototype ships contract BAs between modules as text files
  // (§7.1). Simulate that boundary: translate → serialize → parse → compare
  // query results against the in-process path.
  ContractDatabase db;
  BuildDatabase(&db, 10, 3, 0x4444);
  for (uint32_t id = 0; id < db.size(); ++id) {
    const auto& ba = db.contract(id).automaton();
    const std::string text = automata::Serialize(ba, *db.vocabulary());
    Vocabulary vocab_copy = *db.vocabulary();
    auto parsed = automata::Deserialize(text, &vocab_copy);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed->StateCount(), ba.StateCount());
    EXPECT_EQ(parsed->TransitionCount(), ba.TransitionCount());
  }
}

TEST_F(IntegrationTest, QueryStatsConsistency) {
  ContractDatabase db;
  BuildDatabase(&db, 12, 3, 0x7777);
  const auto queries = GenerateQueries(&db, 8, 1, 0x8888);
  for (const std::string& q : queries) {
    auto r = db.Query(q);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r->stats.matches, r->stats.candidates);
    EXPECT_LE(r->stats.candidates, r->stats.database_size);
    EXPECT_EQ(r->stats.matches, r->matches.size());
  }
}

}  // namespace
}  // namespace ctdb
