// Torture tests for the network service's ugly paths (net/server.h):
// clients that disconnect mid-request, half-written frames, slow readers
// against a full send buffer, oversized / garbage / zero-length frames, and
// admission-control overflow. After every abuse the server must stay
// serviceable for well-behaved connections — that is the invariant each
// test ends on.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "broker/durable.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "testing/temp_dir.h"
#include "util/crc32c.h"
#include "wal/wal.h"

namespace ctdb::net {
namespace {

using ::ctdb::broker::DurableDatabase;
using ::ctdb::testing::TempDir;

wal::DurabilityOptions FastDurability() {
  wal::DurabilityOptions options;
  options.fsync_policy = wal::FsyncPolicy::kNever;
  return options;
}

struct Harness {
  explicit Harness(const std::string& dir, ServerOptions options = {}) {
    auto opened = DurableDatabase::Open(dir, FastDurability());
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    db = std::move(*opened);
    auto started = Server::Start(db.get(), options);
    EXPECT_TRUE(started.ok()) << started.status().ToString();
    server = std::move(*started);
  }
  ~Harness() {
    if (server != nullptr) {
      EXPECT_TRUE(server->Shutdown().ok());
    }
    if (db != nullptr) {
      EXPECT_TRUE(db->Close().ok());
    }
  }
  std::unique_ptr<Client> Connect() {
    auto client = Client::Connect("127.0.0.1", server->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }
  /// The end-of-test invariant: a fresh connection still gets service.
  void ExpectServiceable() {
    auto client = Connect();
    ASSERT_NE(client, nullptr);
    auto response = client->Call(Request::Stats(999));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->status().ok()) << response->message;
  }
  std::unique_ptr<DurableDatabase> db;
  std::unique_ptr<Server> server;
};

TEST(ServerTortureTest, ClientDisconnectsMidRequest) {
  TempDir dir("torture");
  Harness harness(dir.path());

  // Full request delivered, then a hard close before reading the response:
  // the server's write hits a dead socket and must just reap the
  // connection.
  for (int i = 0; i < 8; ++i) {
    auto client = harness.Connect();
    ASSERT_TRUE(client
                    ->Send(Request::Register(1, "gone-" + std::to_string(i),
                                             "F pay"))
                    .ok());
    client->Close();
  }
  harness.ExpectServiceable();
}

TEST(ServerTortureTest, HalfWrittenFrameThenClose) {
  TempDir dir("torture");
  Harness harness(dir.path());

  const std::string frame = EncodeRequestFrame(Request::Query(1, "F pay"));
  for (size_t cut : {size_t{1}, size_t{4}, kFrameHeaderBytes,
                     frame.size() - 1}) {
    // Hard close: the partial frame is simply dropped.
    auto hard = harness.Connect();
    ASSERT_TRUE(hard->SendBytes(frame.substr(0, cut)).ok());
    hard->Close();

    // Half close: the server sees EOF mid-frame, drops the partial frame,
    // answers nothing, and closes cleanly (no error frame, no hang).
    auto half = harness.Connect();
    ASSERT_TRUE(half->SendBytes(frame.substr(0, cut)).ok());
    half->CloseWrite();
    auto response = half->Receive();
    EXPECT_FALSE(response.ok());
    EXPECT_TRUE(response.status().IsUnavailable())
        << response.status().ToString();
  }
  harness.ExpectServiceable();
}

TEST(ServerTortureTest, GarbageFrameGetsErrorResponseThenClose) {
  TempDir dir("torture");
  Harness harness(dir.path());

  // A CRC mismatch is unrecoverable: one final error response (correlation
  // id 0), then the server closes the connection.
  std::string frame = EncodeRequestFrame(Request::Query(7, "F pay"));
  frame[kFrameHeaderBytes] ^= 0x40;
  auto client = harness.Connect();
  ASSERT_TRUE(client->SendBytes(frame).ok());
  auto response = client->Receive();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->id, 0u);
  EXPECT_FALSE(response->status().ok());
  auto eof = client->Receive();
  EXPECT_TRUE(eof.status().IsUnavailable()) << eof.status().ToString();
  harness.ExpectServiceable();
}

TEST(ServerTortureTest, UndecodablePayloadGetsErrorResponseThenClose) {
  TempDir dir("torture");
  Harness harness(dir.path());

  // Valid frame (length + CRC check out) around a payload that is not a
  // request: kind byte 200.
  std::string payload = EncodeRequestPayload(Request::Checkpoint(3));
  payload[0] = static_cast<char>(200);
  // Re-frame by hand through the response-side encoder path is not
  // possible, so build the header directly against the public contract:
  // ScanFrame accepts it iff length and CRC match the payload.
  std::string frame;
  const auto put_u32 = [&frame](uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      frame.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  put_u32(static_cast<uint32_t>(payload.size()));
  put_u32(util::Crc32c(payload));
  frame += payload;
  {
    size_t offset = 0;
    std::string_view view;
    ASSERT_EQ(ScanFrame(frame, &offset, &view), FrameScan::kFrame);
  }

  auto client = harness.Connect();
  ASSERT_TRUE(client->SendBytes(frame).ok());
  auto response = client->Receive();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->id, 0u);
  EXPECT_FALSE(response->status().ok());
  auto eof = client->Receive();
  EXPECT_TRUE(eof.status().IsUnavailable());
  harness.ExpectServiceable();
}

TEST(ServerTortureTest, OversizedAndZeroLengthFrames) {
  TempDir dir("torture");
  Harness harness(dir.path());

  // Length prefix past kMaxFrameBytes: rejected before any allocation,
  // error response, close — the server must not wait for 4 GiB to arrive.
  {
    auto client = harness.Connect();
    const std::string header = {'\xff', '\xff', '\xff', '\xff',
                                '\0',   '\0',   '\0',   '\0'};
    ASSERT_TRUE(client->SendBytes(header).ok());
    auto response = client->Receive();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->status().ok());
    EXPECT_TRUE(client->Receive().status().IsUnavailable());
  }

  // Zero-length frame: structurally a frame, but an empty payload has no
  // kind byte — protocol error, same ending.
  {
    auto client = harness.Connect();
    const std::string frame(kFrameHeaderBytes, '\0');
    ASSERT_TRUE(client->SendBytes(frame).ok());
    auto response = client->Receive();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->status().ok());
    EXPECT_TRUE(client->Receive().status().IsUnavailable());
  }
  harness.ExpectServiceable();
}

TEST(ServerTortureTest, SlowReaderIsBackpressuredNotKilled) {
  TempDir dir("torture");
  ServerOptions options;
  options.max_outbound_bytes = 16 * 1024;  // tiny cap: easy to fill
  Harness harness(dir.path(), options);

  auto seed = harness.Connect();
  ASSERT_TRUE(
      seed->Call(Request::Register(0, "seed", "F pay"))->status().ok());

  // Pipeline many stats requests (large JSON responses) without reading a
  // byte. The responses vastly exceed the outbound cap and the socket's
  // send buffer; the server must park the backlog (pausing reads if
  // requests are still arriving) and drop nothing: once the client finally
  // reads, every response arrives intact.
  auto slow = harness.Connect();
  constexpr uint64_t kRequests = 256;
  for (uint64_t id = 1; id <= kRequests; ++id) {
    ASSERT_TRUE(slow->Send(Request::Stats(id)).ok());
  }
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < kRequests; ++i) {
    auto response = slow->Receive();
    ASSERT_TRUE(response.ok()) << "after " << i << " responses: "
                               << response.status().ToString();
    EXPECT_TRUE(response->status().ok()) << response->message;
    EXPECT_TRUE(seen.insert(response->id).second);
  }
  EXPECT_EQ(seen.size(), kRequests);
  harness.ExpectServiceable();
}

TEST(ServerTortureTest, QueueOverflowShedsWithUnavailable) {
  TempDir dir("torture");
  ServerOptions options;
  options.workers = 1;
  options.max_pending = 2;
  Harness harness(dir.path(), options);

  // Registrations translate their formula server-side, which takes real
  // work — pipelining many of them through a 1-worker, max_pending=2 server
  // must trip admission control. Shed requests get a Status::Unavailable
  // *response* (correlation id intact), never a hang or a dropped frame.
  constexpr uint64_t kRequests = 64;
  auto client = harness.Connect();
  for (uint64_t id = 1; id <= kRequests; ++id) {
    ASSERT_TRUE(client
                    ->Send(Request::Register(
                        id, "burst-" + std::to_string(id),
                        "G(a0 -> ((!b0 U (c0 & !b0)) | G !b0))"))
                    .ok());
  }
  std::set<uint64_t> seen;
  uint64_t ok = 0, shed = 0;
  for (uint64_t i = 0; i < kRequests; ++i) {
    auto response = client->Receive();
    ASSERT_TRUE(response.ok()) << "after " << i << " responses: "
                               << response.status().ToString();
    EXPECT_TRUE(seen.insert(response->id).second);
    if (response->status().ok()) {
      ++ok;
    } else {
      ASSERT_TRUE(response->status().IsUnavailable())
          << response->status().ToString();
      ++shed;
    }
  }
  EXPECT_EQ(seen.size(), kRequests);
  EXPECT_EQ(ok + shed, kRequests);
  EXPECT_GT(ok, 0u);    // the server kept doing real work
  EXPECT_GT(shed, 0u);  // and it did shed under overload
  // Only acked registrations made it into the database.
  EXPECT_EQ(harness.db->size(), static_cast<size_t>(ok));
  harness.ExpectServiceable();
}

TEST(ServerTortureTest, ConnectionLimitRefusesExtraClients) {
  TempDir dir("torture");
  ServerOptions options;
  options.max_connections = 2;
  Harness harness(dir.path(), options);

  auto first = harness.Connect();
  auto second = harness.Connect();
  ASSERT_TRUE(first->Call(Request::Stats(1))->status().ok());
  ASSERT_TRUE(second->Call(Request::Stats(2))->status().ok());

  // The third connection is accepted and immediately closed by the server;
  // any attempt to use it fails rather than hangs.
  auto third = harness.Connect();
  ASSERT_NE(third, nullptr);
  (void)third->Send(Request::Stats(3));
  EXPECT_FALSE(third->Receive().ok());

  // Dropping one earlier connection frees a slot.
  first->Close();
  for (int attempt = 0; attempt < 100; ++attempt) {
    auto retry = harness.Connect();
    if (retry != nullptr && retry->Call(Request::Stats(4)).ok()) {
      SUCCEED();
      return;
    }
  }
  FAIL() << "no connection slot was freed after a client closed";
}

}  // namespace
}  // namespace ctdb::net
