#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace ctdb {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(7);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[rng.Uniform(5)];
  for (int c : counts) EXPECT_GT(c, 700);  // ~1000 expected each
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 4000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 2);
  EXPECT_GT(counts[0], 500);
}

TEST(RngTest, WeightedIndexAllZeroFallsBack) {
  Rng rng(19);
  EXPECT_EQ(rng.WeightedIndex({0.0, 0.0, 0.0}), 2u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng a(31);
  Rng fork1 = a.Fork(1);
  Rng fork1_again = Rng(31).Fork(1);
  EXPECT_EQ(fork1.Next(), fork1_again.Next());
  Rng fork2 = a.Fork(2);
  EXPECT_NE(Rng(31).Fork(1).Next(), fork2.Next());
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

}  // namespace
}  // namespace ctdb
